"""Equivalence and interface suite for the vectorized environment layer.

Mirrors ``tests/test_sim_equivalence.py`` one level up: episodes stepped
through :class:`~repro.envs.VectorRecoveryEnv` under a policy's decisions
must reproduce the scalar :class:`~repro.solvers.evaluation.RecoverySimulator`
**exactly** (same per-episode ``SeedSequence`` streams), including the
forced-recovery (``Delta_R``) and crash-reset branches.  The cross-backend
class asserts the acceptance property of the layer: the same strategy /
policy object runs unmodified on both the simulation and the emulation
backends.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    MultiThresholdStrategy,
    NodeParameters,
    NoRecoveryStrategy,
    PeriodicStrategy,
    ThresholdStrategy,
)
from repro.emulation import EmulationConfig, EmulationVectorEnv, tolerance_policy
from repro.envs import (
    FleetVectorEnv,
    StrategyPolicy,
    VectorObservation,
    VectorRecoveryEnv,
    rollout,
)
from repro.sim import BatchRecoveryEngine, FleetScenario
from repro.solvers import PPOConfig, RecoverySimulator
from repro.solvers.ppo import PPOPolicy

HORIZON = 50
EPISODES = 20

STRATEGY_CASES = {
    "threshold": ThresholdStrategy(0.6),
    "multi-threshold": MultiThresholdStrategy.from_vector([0.2, 0.5, 0.9], delta_r=8.0),
    "periodic": PeriodicStrategy(5),
    "forced-only": NoRecoveryStrategy(),  # recoveries only via the BTR deadline
}


@pytest.fixture
def simulator(observation_model):
    return RecoverySimulator(
        NodeParameters(p_a=0.1, delta_r=8), observation_model, horizon=HORIZON
    )


def make_env(simulator, num_envs=EPISODES, **kwargs):
    scenario = FleetScenario.single_node(
        simulator.params,
        simulator.observation_model,
        horizon=simulator.horizon,
        enforce_btr=simulator.enforce_btr,
    )
    return VectorRecoveryEnv(scenario, num_envs=num_envs, **kwargs)


class TestScalarRolloutParity:
    @pytest.mark.parametrize("strategy", STRATEGY_CASES.values(), ids=STRATEGY_CASES.keys())
    def test_env_rollout_reproduces_scalar_episodes_exactly(self, simulator, strategy):
        """Stepping the env under a strategy == the scalar simulator, bit for bit."""
        env = make_env(simulator)
        rollout(env, StrategyPolicy(strategy), seed=7)
        scalar = simulator.evaluate(strategy, num_episodes=EPISODES, seed=7)
        assert env.result().episode_results(node=0) == scalar

    def test_forced_recovery_branch_is_exercised_and_exact(self, simulator):
        """With a never-recover strategy, every recovery comes from Delta_R."""
        env = make_env(simulator)
        result = rollout(env, StrategyPolicy(NoRecoveryStrategy()), seed=3)
        batch = env.result()
        assert batch.num_recoveries.sum() > 0  # the BTR deadline fired
        assert simulator.evaluate(NoRecoveryStrategy(), EPISODES, seed=3) == (
            batch.episode_results(node=0)
        )
        # Forced steps cost exactly 1 (the recovery cost of Eq. 5).
        assert result.average_cost.shape == (EPISODES, 1)

    def test_crash_reset_branch_is_exercised_and_exact(self, observation_model):
        """High crash probabilities: crashed nodes reset and skip observations."""
        crashy = RecoverySimulator(
            NodeParameters(p_a=0.1, p_c1=0.25, p_c2=0.3, delta_r=8),
            observation_model,
            horizon=40,
        )
        env = make_env(crashy, num_envs=15)
        rollout(env, StrategyPolicy(ThresholdStrategy(0.6)), seed=11)
        # A crashed stream consumes no observation uniform that step, so its
        # cursor lags behind 2 * t — witness that the branch really ran.
        assert (env._sim.cursor < 2 * env._sim.t).any()
        assert crashy.evaluate(ThresholdStrategy(0.6), 15, seed=11) == (
            env.result().episode_results(node=0)
        )

    def test_step_costs_sum_to_episode_costs(self, simulator):
        env = make_env(simulator)
        result = rollout(env, StrategyPolicy(ThresholdStrategy(0.6)), seed=5)
        batch = env.result()
        np.testing.assert_allclose(result.average_cost, batch.average_cost)

    def test_fast_path_returns_identical_step_costs(self, simulator):
        """track_metrics=False changes bookkeeping only, not dynamics/costs."""
        policy = StrategyPolicy(ThresholdStrategy(0.6))
        tracked = rollout(make_env(simulator), policy, seed=9)
        fast = rollout(
            make_env(simulator, track_metrics=False, copy_observations=False),
            policy,
            seed=9,
        )
        assert np.array_equal(tracked.total_cost, fast.total_cost)


class TestEnvInterface:
    def test_reset_required_before_step(self, simulator):
        env = make_env(simulator)
        with pytest.raises(RuntimeError):
            env.step(np.zeros((EPISODES, 1), dtype=bool))

    def test_done_episodes_refuse_further_steps(self, simulator):
        env = make_env(simulator, num_envs=3)
        rollout(env, StrategyPolicy(ThresholdStrategy(0.5)), seed=0)
        assert env.done
        with pytest.raises(RuntimeError):
            env.step(np.zeros((3, 1), dtype=bool))

    def test_observation_shapes_and_forced_mask(self, simulator):
        env = make_env(simulator, num_envs=4)
        observation = env.reset(seed=0)
        assert isinstance(observation, VectorObservation)
        assert observation.beliefs.shape == (4, 1)
        assert observation.active.all()
        assert not observation.forced.any()  # fresh episodes: clock at 0
        # Never recovering walks the clock to the deadline: delta_r=8 forces
        # at time_since_recovery >= 7.
        for _ in range(7):
            observation, _, _, _ = env.step(np.zeros((4, 1), dtype=bool))
        assert observation.forced.all()

    def test_invalid_num_envs_rejected(self, simulator):
        with pytest.raises(ValueError):
            make_env(simulator, num_envs=0)

    def test_features_helper_matches_ppo_convention(self, simulator):
        env = make_env(simulator, num_envs=3)
        observation = env.reset(seed=1)
        features = observation.features(node=0)
        assert features.shape == (3, 2)
        np.testing.assert_allclose(features[:, 0], observation.beliefs[:, 0])


class TestFleetVectorEnv:
    def test_availability_matches_engine_run(self, observation_model):
        params = NodeParameters(p_a=0.1, delta_r=10)
        scenario = FleetScenario.homogeneous(
            params, observation_model, 3, horizon=30, f=1
        )
        strategy = ThresholdStrategy(0.5)
        env = FleetVectorEnv(scenario, num_envs=8)
        rollout(env, StrategyPolicy(strategy), seed=21)
        reference = BatchRecoveryEngine(scenario).run(strategy, 8, seed=21)
        np.testing.assert_array_equal(env.availability(), reference.availability)
        np.testing.assert_array_equal(env.result().average_cost, reference.average_cost)

    def test_system_state_info_and_transitions(self, observation_model):
        params = NodeParameters(p_a=0.1, delta_r=10)
        scenario = FleetScenario.homogeneous(
            params, observation_model, 4, horizon=20, f=1
        )
        env = FleetVectorEnv(scenario, num_envs=5)
        result = rollout(env, StrategyPolicy(ThresholdStrategy(0.6)), seed=2)
        states = result.final_info["system_state"]
        assert states.shape == (5,)
        assert np.all((states >= 0) & (states <= 4))
        transitions = env.system_state_transitions()
        assert transitions.shape == (20 * 5, 2)
        assert transitions.min() >= 0 and transitions.max() <= 4
        assert "failed_nodes" in result.final_info


class TestStrategyPolicy:
    def test_per_node_strategies_match_engine(self, observation_model):
        params = (
            NodeParameters(p_a=0.05, delta_r=10, eta=1.5),
            NodeParameters(p_a=0.2, delta_r=6, eta=3.0),
        )
        scenario = FleetScenario(
            params, (observation_model, observation_model), horizon=30
        )
        strategies = [ThresholdStrategy(0.5), PeriodicStrategy(4)]
        env = VectorRecoveryEnv(scenario, num_envs=10)
        rollout(env, StrategyPolicy(strategies), seed=13)
        reference = BatchRecoveryEngine(scenario).run(strategies, 10, seed=13)
        np.testing.assert_array_equal(env.result().average_cost, reference.average_cost)

    def test_per_node_count_validated(self, observation_model):
        scenario = FleetScenario.homogeneous(
            NodeParameters(p_a=0.1), observation_model, 3, horizon=10
        )
        env = VectorRecoveryEnv(scenario, num_envs=2)
        policy = StrategyPolicy([ThresholdStrategy(0.5)])  # one strategy, 3 nodes
        with pytest.raises(ValueError):
            rollout(env, policy, seed=0)

    def test_from_factory_builds_per_slot_strategies(self):
        policy = StrategyPolicy.from_factory(lambda nid: ThresholdStrategy(0.7), 4)
        observation = VectorObservation(
            beliefs=np.array([[0.9, 0.1, 0.8, 0.2]]),
            time_since_recovery=np.zeros((1, 4), dtype=np.int64),
            forced=np.zeros((1, 4), dtype=bool),
            active=np.ones((1, 4), dtype=bool),
        )
        np.testing.assert_array_equal(
            policy.act(observation), [[True, False, True, False]]
        )

    def test_inactive_slots_never_recover(self):
        policy = StrategyPolicy(ThresholdStrategy(0.0))  # always recover
        observation = VectorObservation(
            beliefs=np.array([[0.5, 0.5]]),
            time_since_recovery=np.zeros((1, 2), dtype=np.int64),
            forced=np.zeros((1, 2), dtype=bool),
            active=np.array([[True, False]]),
        )
        np.testing.assert_array_equal(policy.act(observation), [[True, False]])


class TestCrossBackendIntegration:
    """One policy object, both backends — the layer's acceptance property."""

    def _emulation_env(self, num_envs=2, horizon=25):
        config = EmulationConfig(
            initial_nodes=3,
            horizon=horizon,
            delta_r=15,
            node_params=NodeParameters(p_a=0.1),
        )
        return EmulationVectorEnv(
            config, tolerance_policy(), num_envs=num_envs, seed=4
        )

    def _sim_env(self, observation_model, num_envs=2, horizon=25):
        scenario = FleetScenario.homogeneous(
            NodeParameters(p_a=0.1, delta_r=15), observation_model, 3, horizon=horizon
        )
        return VectorRecoveryEnv(scenario, num_envs=num_envs)

    def test_threshold_strategy_runs_on_both_backends(self, observation_model):
        policy = StrategyPolicy(ThresholdStrategy(0.75))  # one object, reused
        sim_result = rollout(self._sim_env(observation_model), policy, seed=3)
        emu_result = rollout(self._emulation_env(), policy)
        assert sim_result.steps == emu_result.steps == 25
        assert np.isfinite(sim_result.mean_cost)
        assert np.isfinite(emu_result.mean_cost)
        assert emu_result.average_cost.shape[0] == 2

    def test_evaluation_policy_strategy_runs_on_both_backends(self, observation_model):
        """The EvaluationPolicy's recovery strategy drives sim and testbed."""
        evaluation_policy = tolerance_policy(alpha=0.75)
        sim_env = self._sim_env(observation_model)
        policy = StrategyPolicy.from_factory(
            evaluation_policy.recovery_strategy_factory, sim_env.num_nodes
        )
        sim_result = rollout(sim_env, policy, seed=6)
        emulation_env = self._emulation_env()
        emu_policy = StrategyPolicy.from_factory(
            evaluation_policy.recovery_strategy_factory, emulation_env.num_nodes
        )
        emu_result = rollout(emulation_env, emu_policy)
        assert np.isfinite(sim_result.mean_cost)
        assert all(m.episode_length == 25 for m in emulation_env.episode_metrics())
        assert np.isfinite(emu_result.mean_cost)

    def test_ppo_policy_runs_on_both_backends(self, observation_model):
        """A learned policy is just another strategy object for both backends."""
        ppo_policy = PPOPolicy(PPOConfig(hidden_size=8), np.random.default_rng(0))
        policy = StrategyPolicy(ppo_policy)  # native action_batch, no wrapper loop
        sim_result = rollout(self._sim_env(observation_model), policy, seed=8)
        emu_result = rollout(self._emulation_env(), policy)
        assert np.isfinite(sim_result.mean_cost)
        assert np.isfinite(emu_result.mean_cost)

    def test_emulation_env_respects_recovery_limit_and_btr(self):
        """External decisions still obey k-parallel recoveries and Delta_R."""
        env = self._emulation_env(num_envs=1, horizon=30)
        observation = env.reset()
        always = StrategyPolicy(ThresholdStrategy(0.0))
        done = False
        while not done:
            observation, _, done, info = env.step(always.act(observation))
            assert all(record.recoveries <= env.config.k for record in info["records"])
        # With delta_r=15 and a 30-step horizon the BTR deadline alone would
        # have forced recoveries; the always-recover policy requested more,
        # but grants never exceeded k per step (asserted above).
        assert env.episode_metrics()[0].recoveries > 0
