"""Tests for the consensus-backed control loop (controller-driven MinBFT).

Covers the safety-audit helper, the stepwise/pipelined client workload with
served-availability accounting, the ``on_step`` observer hook of the batched
controller, and the :class:`~repro.control.ConsensusBackedFleet` integration
that mirrors controller decisions onto a live cluster.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.consensus import (
    ByzantineBehavior,
    ClientWorkload,
    MinBFTClient,
    MinBFTCluster,
    audit_safety,
)
from repro.control import ConsensusBackedFleet, TwoLevelController
from repro.core import (
    BetaBinomialObservationModel,
    NodeParameters,
    ThresholdStrategy,
)
from repro.core.strategies import ReplicationThresholdStrategy
from repro.sim import FleetScenario


def small_scenario(num_nodes: int = 8, horizon: int = 20) -> FleetScenario:
    return FleetScenario.homogeneous(
        NodeParameters(p_a=0.1),
        BetaBinomialObservationModel(),
        num_nodes=num_nodes,
        horizon=horizon,
        f=1,
    )


class TestSafetyAudit:
    def test_healthy_cluster_passes(self):
        cluster = MinBFTCluster(num_replicas=4, seed=0)
        client = MinBFTClient("client-0", cluster)
        for i in range(3):
            client.write_and_wait("x", i)
        cluster.run(ticks=20)
        audit = audit_safety(cluster)
        assert audit.ok
        assert audit.consistent and audit.no_duplicates
        assert len(audit.audited) == 4
        assert audit.divergent == ()
        assert audit.duplicated == {}

    def test_detects_divergent_log(self):
        from repro.consensus import ClientRequest

        cluster = MinBFTCluster(num_replicas=4, seed=1)
        client = MinBFTClient("client-0", cluster)
        client.write_and_wait("x", 1)
        cluster.run(ticks=20)
        # Corrupt one replica's state machine directly: its log is no longer
        # a prefix of the others'.
        rogue = ClientRequest(
            client_id="rogue", request_id=1, operation="write", key="x", value=9
        )
        cluster.replicas["replica-3"].state_machine = type(
            cluster.replicas["replica-3"].state_machine
        )()
        cluster.replicas["replica-3"].state_machine.apply(rogue, 1)
        audit = audit_safety(cluster)
        assert not audit.consistent
        assert "replica-3" in audit.divergent
        assert not audit.ok

    def test_detects_duplicate_execution(self):
        cluster = MinBFTCluster(num_replicas=4, seed=2)
        client = MinBFTClient("client-0", cluster)
        client.write_and_wait("x", 1)
        cluster.run(ticks=20)
        replica = cluster.replicas["replica-1"]
        # Simulate the pre-fix recovery bug: the same request re-executes in
        # a later incarnation of the replica.
        identifier = replica.execution_log[0][0]
        replica.execution_log.append((identifier, 99))
        audit = audit_safety(cluster)
        assert not audit.no_duplicates
        assert audit.duplicated["replica-1"] == (identifier,)

    def test_byzantine_replicas_excluded(self):
        cluster = MinBFTCluster(num_replicas=4, seed=3)
        client = MinBFTClient("client-0", cluster)
        client.write_and_wait("x", 1)
        cluster.compromise("replica-2", ByzantineBehavior.ARBITRARY)
        audit = audit_safety(cluster)
        assert "replica-2" not in audit.audited
        assert len(audit.audited) == 3


class TestStepwiseWorkload:
    def test_pump_keeps_pipeline_full(self):
        cluster = MinBFTCluster(num_replicas=4, seed=4)
        workload = ClientWorkload(cluster, num_clients=2, pipeline=3)
        workload.start()
        assert workload.submitted == 6
        workload.pump(60)
        assert workload.completed_requests > 0
        # Closed loop: outstanding never exceeds the pipeline.
        for client in workload.clients:
            assert client.pending_count <= 3
        assert workload.submitted == workload.completed_requests + sum(
            client.pending_count for client in workload.clients
        )

    def test_served_availability_all_served_with_loose_deadline(self):
        cluster = MinBFTCluster(num_replicas=4, seed=5)
        workload = ClientWorkload(
            cluster, num_clients=2, pipeline=1, deadline_ticks=1000
        )
        workload.pump(80)
        assert workload.completed_requests > 0
        assert workload.served_availability == 1.0
        assert workload.due_requests == workload.served_requests

    def test_served_availability_counts_missed_deadlines(self):
        # Deadline below the protocol round-trip: every due request misses.
        cluster = MinBFTCluster(num_replicas=4, seed=6)
        workload = ClientWorkload(
            cluster, num_clients=2, pipeline=1, deadline_ticks=1
        )
        workload.pump(60)
        assert workload.due_requests > 0
        assert workload.served_requests == 0
        assert workload.served_availability == 0.0
        # A request counted missed at expiry is not double-counted when it
        # later completes.
        assert workload.due_requests <= workload.submitted

    def test_stats_keys_and_run_compatibility(self):
        cluster = MinBFTCluster(num_replicas=4, seed=7)
        workload = ClientWorkload(cluster, num_clients=2)
        stats = workload.run(total_ticks=100)
        for key in (
            "completed_requests",
            "throughput_rps",
            "mean_latency_ticks",
            "ticks",
            "served_availability",
            "served_requests",
            "due_requests",
            "submitted_requests",
        ):
            assert key in stats
        assert stats["ticks"] == 100.0
        assert stats["completed_requests"] > 0
        assert stats["throughput_rps"] > 0

    def test_retry_restores_liveness_after_lost_requests(self):
        # Crash a replica before its replies go out; with retries the client
        # still reaches the f + 1 reply quorum once it recovers.
        cluster = MinBFTCluster(num_replicas=4, seed=8)
        workload = ClientWorkload(
            cluster, num_clients=1, pipeline=1, retry_interval=8
        )
        workload.start()
        cluster.crash("replica-0")
        cluster.crash("replica-1")
        workload.pump(10)
        before = workload.completed_requests
        cluster.network.restart("replica-0")
        cluster.network.restart("replica-1")
        workload.pump(80)
        assert workload.completed_requests > before

    def test_validation(self):
        cluster = MinBFTCluster(num_replicas=4, seed=9)
        with pytest.raises(ValueError):
            ClientWorkload(cluster, pipeline=0)
        with pytest.raises(ValueError):
            ClientWorkload(cluster, retry_interval=-1)


class TestOnStepHook:
    def test_observer_sees_every_step(self):
        scenario = small_scenario(horizon=15)
        controller = TwoLevelController(
            scenario,
            num_envs=3,
            recovery_policy=ThresholdStrategy(0.75),
            replication_strategy=ReplicationThresholdStrategy(1),
        )
        events = []
        controller.run(seed=0, on_step=events.append)
        assert [event.t for event in events] == list(range(15))
        for event in events:
            assert event.active.shape == (3, scenario.num_nodes)
            assert event.activated.shape == (3,)
            # An activated slot is active after the step.
            for episode, slot in enumerate(event.activated):
                if slot >= 0:
                    assert event.active[episode, slot]

    def test_observer_availability_matches_result(self):
        scenario = small_scenario(horizon=25)
        controller = TwoLevelController(
            scenario,
            num_envs=2,
            recovery_policy=ThresholdStrategy(0.75),
            replication_strategy=ReplicationThresholdStrategy(1),
        )
        availability = []
        result = controller.run(seed=1, on_step=lambda e: availability.append(e.available))
        fraction = np.stack(availability).mean(axis=0)
        np.testing.assert_allclose(fraction, result.availability)

    def test_run_without_observer_unchanged(self):
        scenario = small_scenario(horizon=15)

        def build():
            return TwoLevelController(
                scenario,
                num_envs=2,
                recovery_policy=ThresholdStrategy(0.75),
                replication_strategy=ReplicationThresholdStrategy(1),
            )

        plain = build().run(seed=2)
        observed = build().run(seed=2, on_step=lambda e: None)
        np.testing.assert_allclose(plain.availability, observed.availability)
        np.testing.assert_allclose(plain.average_cost, observed.average_cost)


class TestConsensusBackedFleet:
    def build(self, horizon: int = 20, **kwargs) -> ConsensusBackedFleet:
        defaults = dict(
            recovery_policy=ThresholdStrategy(0.75),
            replication_strategy=ReplicationThresholdStrategy(1),
            num_clients=3,
            pipeline=2,
            ticks_per_step=12,
        )
        defaults.update(kwargs)
        return ConsensusBackedFleet(small_scenario(horizon=horizon), **defaults)

    def test_closed_loop_serves_requests_safely(self):
        fleet = self.build()
        result = fleet.run(seed=0)
        assert result.workload["completed_requests"] > 0
        assert 0.0 <= result.availability <= 1.0
        assert 0.0 <= result.served_availability <= 1.0
        assert result.safety_ok
        # Reconfigurations happened and each one was audited.
        operations = result.recoveries + result.evictions + result.additions
        assert operations > 0
        assert len(result.audits) > 0
        assert len(result.final_membership) >= 1

    def test_same_seed_reproduces_run(self):
        first = self.build().run(seed=7)
        second = self.build().run(seed=7)
        assert first.workload == second.workload
        assert first.recoveries == second.recoveries
        assert first.evictions == second.evictions
        assert first.additions == second.additions
        assert first.availability == second.availability

    def test_cluster_membership_tracks_controller(self):
        fleet = self.build()
        result = fleet.run(seed=3)
        assert fleet.cluster is not None
        # Every mirrored addition created a replica beyond the initial ones;
        # membership = initial + additions - evictions (skipped ones stay).
        expected = (
            fleet.controller.initial_nodes + result.additions - result.evictions
        )
        assert len(fleet.cluster.membership) == expected

    def test_strict_mode_default_and_error_type(self):
        from repro.control import ConsensusSafetyError

        fleet = self.build()
        assert fleet.strict
        assert issubclass(ConsensusSafetyError, AssertionError)

    def test_validation(self):
        with pytest.raises(ValueError):
            self.build(ticks_per_step=0)
