"""Tests for the Raft substrate of the system controller (Section IV)."""

from __future__ import annotations

import pytest

from repro.consensus import RaftCluster, RaftRole


class TestLeaderElection:
    def test_single_leader_elected(self):
        cluster = RaftCluster(num_nodes=3, seed=1)
        leader = cluster.elect_leader()
        assert leader is not None
        leaders = [
            node_id
            for node_id, node in cluster.nodes.items()
            if node.role is RaftRole.LEADER
        ]
        assert len(leaders) == 1

    def test_leader_has_majority_term(self):
        cluster = RaftCluster(num_nodes=5, seed=2)
        leader = cluster.elect_leader()
        assert leader is not None
        term = cluster.nodes[leader].current_term
        followers_on_term = sum(
            1 for node in cluster.nodes.values() if node.current_term == term
        )
        assert followers_on_term >= 3

    def test_new_leader_after_crash(self):
        cluster = RaftCluster(num_nodes=3, seed=3)
        first = cluster.elect_leader()
        cluster.crash(first)
        second = cluster.elect_leader()
        assert second is not None
        assert second != first

    def test_no_leader_without_majority(self):
        cluster = RaftCluster(num_nodes=3, seed=4)
        cluster.elect_leader()
        node_ids = list(cluster.nodes)
        cluster.crash(node_ids[0])
        cluster.crash(node_ids[1])
        cluster.crash(node_ids[2])
        # All nodes crashed: no new leader can arise.
        cluster.run(ticks=100)
        assert cluster.leader() is None

    def test_single_node_cluster(self):
        cluster = RaftCluster(num_nodes=1, seed=5)
        leader = cluster.elect_leader()
        assert leader is not None

    def test_requires_at_least_one_node(self):
        with pytest.raises(ValueError):
            RaftCluster(num_nodes=0)


class TestLogReplication:
    def test_committed_command_reaches_majority(self):
        cluster = RaftCluster(num_nodes=3, seed=6)
        assert cluster.propose({"action": "add", "node": "n1"})
        cluster.run(ticks=30)
        applied = cluster.committed_commands()
        replicated = sum(1 for commands in applied.values() if commands)
        assert replicated >= 2

    def test_commands_applied_in_order(self):
        cluster = RaftCluster(num_nodes=3, seed=7)
        for index in range(4):
            assert cluster.propose({"seq": index})
        cluster.run(ticks=50)
        leader = cluster.leader()
        commands = cluster.nodes[leader].applied_commands
        assert [c["seq"] for c in commands] == [0, 1, 2, 3]

    def test_survives_minority_crash(self):
        """The system controller stays operational when a minority crashes (Section IV)."""
        cluster = RaftCluster(num_nodes=3, seed=8)
        cluster.propose({"decision": 1})
        leader = cluster.leader()
        followers = [n for n in cluster.nodes if n != leader]
        cluster.crash(followers[0])
        assert cluster.propose({"decision": 2})
        surviving = cluster.nodes[cluster.leader()]
        assert {c["decision"] for c in surviving.applied_commands} == {1, 2}

    def test_follower_rejects_proposals(self):
        cluster = RaftCluster(num_nodes=3, seed=9)
        cluster.elect_leader()
        leader = cluster.leader()
        follower_id = next(n for n in cluster.nodes if n != leader)
        assert not cluster.nodes[follower_id].propose({"x": 1})

    def test_crashed_leader_log_recovered_by_new_leader(self):
        cluster = RaftCluster(num_nodes=3, seed=10)
        assert cluster.propose({"entry": "committed-before-crash"})
        old_leader = cluster.leader()
        cluster.crash(old_leader)
        new_leader = cluster.elect_leader()
        assert new_leader is not None
        assert cluster.propose({"entry": "after-crash"})
        commands = cluster.nodes[new_leader].applied_commands
        assert {c["entry"] for c in commands} == {"committed-before-crash", "after-crash"}
