"""End-to-end integration tests of the TOLERANCE architecture (Fig. 2)."""

from __future__ import annotations

import pytest

from repro.core import NodeParameters, ToleranceArchitecture
from repro.emulation import EmulationConfig, no_recovery_policy, tolerance_policy


@pytest.fixture(scope="module")
def small_run():
    """One short integrated run shared by the read-only assertions below."""
    architecture = ToleranceArchitecture(
        config=EmulationConfig(
            initial_nodes=4, horizon=12, node_params=NodeParameters(p_a=0.1)
        ),
        policy=tolerance_policy(0.75),
        requests_per_step=2.0,
        seed=11,
    )
    report = architecture.run()
    return architecture, report


class TestIntegratedArchitecture:
    def test_safety_holds(self, small_run):
        _, report = small_run
        assert report.safety_holds

    def test_validity_holds(self, small_run):
        _, report = small_run
        assert report.validity_holds

    def test_client_requests_complete(self, small_run):
        """Liveness: the replicated service keeps serving requests while the
        attacker compromises replicas and controllers recover them."""
        _, report = small_run
        assert report.requests_submitted > 0
        assert report.requests_completed > 0
        assert report.requests_completed <= report.requests_submitted

    def test_availability_reported(self, small_run):
        _, report = small_run
        assert 0.0 <= report.metrics.availability <= 1.0

    def test_consensus_membership_tracks_emulation(self, small_run):
        architecture, _ = small_run
        # Every emulated node is mapped to a live replica.
        assert len(architecture.environment.nodes) >= 3
        mapped = set(architecture._node_to_replica.values())
        assert mapped <= set(architecture.cluster.replicas)

    def test_controller_log_is_consistent(self, small_run):
        architecture, report = small_run
        committed = architecture.controller_log.committed_commands()
        lengths = {len(v) for v in committed.values() if v}
        # All nodes that applied commands applied the same number (prefix property).
        assert len(lengths) <= 2
        assert report.controller_log_entries >= 0

    def test_no_recovery_policy_degrades_availability(self):
        architecture = ToleranceArchitecture(
            config=EmulationConfig(
                initial_nodes=4, horizon=40, node_params=NodeParameters(p_a=0.1)
            ),
            policy=no_recovery_policy(),
            requests_per_step=0.5,
            seed=5,
        )
        report = architecture.run()
        assert report.metrics.availability < 0.9
