"""Tests for the observation models Z (Eq. 3, Fig. 11, Fig. 14, Appendix H)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BetaBinomialObservationModel,
    DiscreteObservationModel,
    EmpiricalObservationModel,
    NodeState,
    is_tp2,
    kl_divergence,
    poisson_observation_model,
)


class TestKLDivergence:
    def test_zero_for_identical_distributions(self):
        p = np.array([0.2, 0.3, 0.5])
        assert kl_divergence(p, p) == pytest.approx(0.0, abs=1e-12)

    def test_positive_for_different_distributions(self):
        p = np.array([0.9, 0.1])
        q = np.array([0.1, 0.9])
        assert kl_divergence(p, q) > 0.0

    def test_asymmetry(self):
        p = np.array([0.9, 0.1])
        q = np.array([0.5, 0.5])
        assert kl_divergence(p, q) != pytest.approx(kl_divergence(q, p))

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            kl_divergence(np.array([0.5, 0.5]), np.array([1.0]))

    def test_handles_zeros_in_q(self):
        p = np.array([0.5, 0.5])
        q = np.array([1.0, 0.0])
        assert np.isfinite(kl_divergence(p, q))


class TestTP2:
    def test_identity_is_tp2(self):
        assert is_tp2(np.eye(2) + 0.1)

    def test_monotone_likelihood_ratio_matrix_is_tp2(self):
        matrix = np.array([[0.6, 0.3, 0.1], [0.1, 0.3, 0.6]])
        assert is_tp2(matrix)

    def test_reversed_matrix_is_not_tp2(self):
        matrix = np.array([[0.1, 0.3, 0.6], [0.6, 0.3, 0.1]])
        assert not is_tp2(matrix)


class TestBetaBinomialModel:
    def test_pmfs_normalized(self, observation_model):
        for state in (NodeState.HEALTHY, NodeState.COMPROMISED):
            assert observation_model.pmf(state).sum() == pytest.approx(1.0)

    def test_assumption_d_full_support(self, observation_model):
        assert observation_model.satisfies_assumption_d()

    def test_assumption_e_tp2(self, observation_model):
        """The Appendix E parameters satisfy assumption E of Theorem 1."""
        assert observation_model.satisfies_assumption_e()

    def test_compromised_mean_larger(self, observation_model):
        obs = observation_model.observations
        healthy_mean = float(obs @ observation_model.pmf(NodeState.HEALTHY))
        compromised_mean = float(obs @ observation_model.pmf(NodeState.COMPROMISED))
        assert compromised_mean > healthy_mean

    def test_num_observations(self, observation_model):
        assert observation_model.num_observations == 10

    def test_sampling_within_support(self, observation_model, rng):
        samples = observation_model.sample_many(NodeState.COMPROMISED, 100, rng)
        assert samples.min() >= 0
        assert samples.max() <= 9

    def test_probability_lookup(self, observation_model):
        pmf = observation_model.pmf(NodeState.HEALTHY)
        assert observation_model.probability(0, NodeState.HEALTHY) == pytest.approx(pmf[0])

    def test_probability_outside_support_raises(self, observation_model):
        with pytest.raises(ValueError):
            observation_model.probability(99, NodeState.HEALTHY)

    def test_detection_divergence_positive(self, observation_model):
        assert observation_model.detection_divergence() > 0.0

    def test_matrix_rows(self, observation_model):
        matrix = observation_model.matrix()
        assert matrix.shape == (3, 10)
        assert np.allclose(matrix.sum(axis=1), 1.0)


class TestDiscreteModel:
    def test_requires_two_observations(self):
        with pytest.raises(ValueError):
            DiscreteObservationModel([0], [1.0], [1.0])

    def test_pmf_lengths_must_match(self):
        with pytest.raises(ValueError):
            DiscreteObservationModel([0, 1, 2], [0.5, 0.5], [0.2, 0.8])

    def test_crashed_defaults_to_healthy(self):
        model = DiscreteObservationModel([0, 1], [0.8, 0.2], [0.1, 0.9])
        assert np.allclose(model.pmf(NodeState.CRASHED), model.pmf(NodeState.HEALTHY))

    def test_explicit_crashed_pmf(self):
        model = DiscreteObservationModel([0, 1], [0.8, 0.2], [0.1, 0.9], crashed_pmf=[1.0, 0.0])
        assert model.probability(0, NodeState.CRASHED) == pytest.approx(1.0)

    def test_divergence_to_other_model(self):
        a = DiscreteObservationModel([0, 1], [0.8, 0.2], [0.1, 0.9])
        b = DiscreteObservationModel([0, 1], [0.5, 0.5], [0.5, 0.5])
        assert a.divergence_to(b, NodeState.HEALTHY) > 0.0

    def test_divergence_requires_same_support(self):
        a = DiscreteObservationModel([0, 1], [0.8, 0.2], [0.1, 0.9])
        b = DiscreteObservationModel([0, 1, 2], [0.6, 0.2, 0.2], [0.1, 0.4, 0.5])
        with pytest.raises(ValueError):
            a.divergence_to(b, NodeState.HEALTHY)


class TestEmpiricalModel:
    def test_fit_from_samples(self, rng):
        healthy = rng.poisson(2, size=500)
        compromised = rng.poisson(6, size=500)
        model = EmpiricalObservationModel(healthy, compromised)
        assert model.satisfies_assumption_d()
        healthy_mean = float(model.observations @ model.pmf(NodeState.HEALTHY))
        compromised_mean = float(model.observations @ model.pmf(NodeState.COMPROMISED))
        assert compromised_mean > healthy_mean

    def test_rejects_empty_samples(self):
        with pytest.raises(ValueError):
            EmpiricalObservationModel([], [1, 2, 3])

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            EmpiricalObservationModel([-1, 2], [3, 4])

    def test_from_traces(self):
        traces = [(1, False), (2, False), (8, True), (9, True)]
        model = EmpiricalObservationModel.from_traces(traces)
        assert model.num_healthy_samples == 2
        assert model.num_compromised_samples == 2

    def test_glivenko_cantelli_convergence(self, rng):
        """The MLE converges to the generating distribution (large-sample check)."""
        truth = BetaBinomialObservationModel()
        healthy = truth.sample_many(NodeState.HEALTHY, 20000, rng)
        compromised = truth.sample_many(NodeState.COMPROMISED, 20000, rng)
        fitted = EmpiricalObservationModel(
            healthy, compromised, num_observations=10, smoothing=0.0 + 1e-9
        )
        assert fitted.divergence_to(truth, NodeState.HEALTHY) < 0.01
        assert fitted.divergence_to(truth, NodeState.COMPROMISED) < 0.01

    def test_explicit_num_observations(self):
        model = EmpiricalObservationModel([0, 1], [2, 3], num_observations=8)
        assert model.num_observations == 8


class TestPoissonModel:
    def test_tp2_property(self):
        model = poisson_observation_model(12, healthy_rate=1.0, compromised_rate=5.0)
        assert model.satisfies_assumption_e()

    def test_requires_higher_compromised_rate(self):
        with pytest.raises(ValueError):
            poisson_observation_model(12, healthy_rate=5.0, compromised_rate=1.0)

    def test_pmfs_normalized(self):
        model = poisson_observation_model(12, healthy_rate=1.0, compromised_rate=5.0)
        assert model.pmf(NodeState.HEALTHY).sum() == pytest.approx(1.0)
        assert model.pmf(NodeState.COMPROMISED).sum() == pytest.approx(1.0)
