"""Class-aware system level: solvers, strategies, control plane, deadlines.

The anchor of this suite is the homogeneous-reduction regression: with a
single ``NodeClass`` (and survival ``q = 1``) the class-indexed solvers
must reduce **bit for bit** to the classless Algorithm 2 solutions, so
growing the action space never changes homogeneous results.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.control import (
    TwoLevelController,
    apply_class_deltas,
    fit_class_aware_system_model,
    fit_system_models_per_class,
    fresh_node_survival_from_model,
    optimize_class_deltas,
    train_ppo_replication,
)
from repro.core import (
    BetaBinomialObservationModel,
    BinomialSystemModel,
    ClassAwareSystemModel,
    ClassPreferenceReplicationStrategy,
    ClassTabularReplicationStrategy,
    NodeParameters,
    ReplicationThresholdStrategy,
    ThresholdStrategy,
    class_aware_system_model,
    fresh_node_survival,
    sample_action_index,
    strategy_is_class_aware,
)
from repro.emulation import EmulationConfig
from repro.envs import FleetVectorEnv, StrategyPolicy, rollout
from repro.sim import FleetScenario, NodeClass
from repro.solvers import (
    PPOConfig,
    evaluate_class_aware_strategy,
    evaluate_replication_strategy,
    solve_class_aware_replication_lagrangian,
    solve_class_aware_replication_lp,
    solve_replication_lagrangian,
    solve_replication_lp,
)

HARDENED = NodeParameters(p_a=0.05, p_c1=0.02, p_c2=0.06, eta=1.5, delta_r=25)
VULNERABLE = NodeParameters(p_a=0.25, p_c1=0.04, p_c2=0.15, eta=3.0, delta_r=10)


@pytest.fixture
def base_model():
    return BinomialSystemModel(
        smax=10,
        f=2,
        per_node_failure_probability=0.1,
        regeneration_probability=0.05,
        epsilon_a=0.9,
    )


def mixed_scenario(horizon: int = 80) -> FleetScenario:
    model = BetaBinomialObservationModel()
    return FleetScenario.mixed(
        [
            NodeClass("vulnerable", VULNERABLE, model, count=3),
            NodeClass("hardened", HARDENED, model, count=3),
        ],
        horizon=horizon,
        f=1,
    )


def stochastic_class_strategy(num_states: int = 7) -> ClassTabularReplicationStrategy:
    probabilities = np.zeros((num_states, 3))
    probabilities[:, 0] = np.linspace(0.0, 1.0, num_states)
    probabilities[:, 1] = 0.3 * (1.0 - probabilities[:, 0])
    probabilities[:, 2] = 0.7 * (1.0 - probabilities[:, 0])
    probabilities /= probabilities.sum(axis=1, keepdims=True)
    return ClassTabularReplicationStrategy(("vulnerable", "hardened"), probabilities)


# ---------------------------------------------------------------------------
# Homogeneous reduction: single class == classless, bit for bit
# ---------------------------------------------------------------------------
class TestHomogeneousReduction:
    def test_single_class_kernel_is_bitwise_classless(self, base_model):
        model = class_aware_system_model(base_model, ["only"], [1.0])
        assert np.array_equal(model.transition[0], base_model.transition[0])
        assert np.array_equal(model.transition[1], base_model.transition[1])

    def test_lp_reduces_bit_for_bit(self, base_model):
        classless = solve_replication_lp(base_model)
        class_aware = solve_class_aware_replication_lp(
            class_aware_system_model(base_model, ["only"], [1.0])
        )
        assert class_aware.feasible
        assert np.array_equal(classless.occupancy, class_aware.occupancy)
        assert classless.expected_cost == class_aware.expected_cost
        assert classless.availability == class_aware.availability
        for s, p_add in classless.strategy.add_probabilities.items():
            assert class_aware.strategy.probabilities[s, 1] == p_add

    def test_lagrangian_reduces_bit_for_bit(self, base_model):
        classless = solve_replication_lagrangian(base_model)
        class_aware = solve_class_aware_replication_lagrangian(
            class_aware_system_model(base_model, ["only"], [1.0])
        )
        assert classless.kappa == class_aware.kappa
        assert classless.lambda_low == class_aware.lambda_low
        assert classless.lambda_high == class_aware.lambda_high
        classless_probs = np.array(
            [
                classless.strategy.add_probability(s)
                for s in range(base_model.num_states)
            ]
        )
        assert np.array_equal(classless_probs, class_aware.strategy.probabilities[:, 1])
        assert np.array_equal(
            classless_probs,
            np.array(
                [
                    class_aware.strategy.add_probability(s)
                    for s in range(base_model.num_states)
                ]
            ),
        )

    def test_stationary_evaluation_matches_classless(self, base_model):
        model = class_aware_system_model(base_model, ["only"], [1.0])
        add_probs = np.linspace(1.0, 0.0, base_model.num_states)
        table = np.stack([1.0 - add_probs, add_probs], axis=1)
        cost_classless, avail_classless = evaluate_replication_strategy(
            base_model, add_probs
        )
        cost_ca, avail_ca = evaluate_class_aware_strategy(model, table)
        assert cost_ca == pytest.approx(cost_classless, abs=1e-9)
        assert avail_ca == pytest.approx(avail_classless, abs=1e-9)


class TestSolverGuards:
    def test_classless_solvers_reject_class_aware_models(self, base_model):
        """A class-aware model must not silently solve a truncated problem."""
        model = class_aware_system_model(base_model, ["weak", "strong"], [0.4, 0.95])
        with pytest.raises(ValueError, match="class-aware counterpart"):
            solve_replication_lp(model)
        with pytest.raises(ValueError, match="class-aware counterpart"):
            solve_replication_lagrangian(model)
        with pytest.raises(ValueError, match="class-aware counterpart"):
            evaluate_replication_strategy(model, np.zeros(model.num_states))

    def test_lagrangian_mixture_tracks_the_constraint(self):
        """Regression: the bisection must refresh availability_low, so the
        kappa mixture lands near the availability constraint instead of
        overshooting it from the stale lambda=0 bracket."""
        model = BinomialSystemModel(
            smax=8,
            f=2,
            per_node_failure_probability=0.12,
            regeneration_probability=0.05,
            epsilon_a=0.88,
        )
        solution = solve_replication_lagrangian(model)
        add_probs = np.array(
            [solution.strategy.add_probability(s) for s in range(model.num_states)]
        )
        _, availability = evaluate_replication_strategy(model, add_probs)
        assert availability >= model.epsilon_a - 1e-6
        assert availability <= model.epsilon_a + 0.05, (
            f"mixture availability {availability:.3f} overshoots the "
            f"constraint {model.epsilon_a} (stale bisection bracket)"
        )
        class_solution = solve_class_aware_replication_lagrangian(
            class_aware_system_model(model, ["only"], [1.0])
        )
        assert class_solution.kappa == solution.kappa

    def test_vector_controller_rejects_non_rng_class_aware_strategy(self):
        from repro.control import VectorSystemController

        class DeterministicClassStrategy:
            class_names = ("a", "b")
            consumes_rng = False

            def action_probabilities(self, state):
                return np.array([0.0, 1.0, 0.0])

            def add_probability(self, state):
                return 1.0

            def action(self, state, rng):
                return 1

        with pytest.raises(ValueError, match="consumes_rng"):
            VectorSystemController(
                f=1, strategy=DeterministicClassStrategy(), smax=4, num_episodes=2
            )


# ---------------------------------------------------------------------------
# Class-aware model construction
# ---------------------------------------------------------------------------
class TestClassAwareModel:
    def test_survival_interpolates_kernels(self, base_model):
        model = class_aware_system_model(base_model, ["a", "b"], [0.0, 0.5])
        assert np.array_equal(model.transition[1], base_model.transition[0])
        expected = 0.5 * base_model.transition[0] + 0.5 * base_model.transition[1]
        assert np.allclose(model.transition[2], expected)
        assert model.num_actions == 3
        assert model.actions == (0, 1, 2)

    def test_add_costs_enter_the_cost_function(self, base_model):
        model = class_aware_system_model(
            base_model, ["a", "b"], [1.0, 1.0], add_costs=[0.0, 0.25, 0.75]
        )
        assert model.cost(4, 0) == 4.0
        assert model.cost(4, 1) == 4.25
        assert model.cost(4, 2) == 4.75

    def test_validation_errors(self, base_model):
        with pytest.raises(ValueError, match="survival"):
            class_aware_system_model(base_model, ["a"], [1.5])
        with pytest.raises(ValueError, match="one survival"):
            class_aware_system_model(base_model, ["a", "b"], [1.0])
        with pytest.raises(ValueError, match="unique"):
            ClassAwareSystemModel(
                np.stack([base_model.transition[0]] * 3),
                f=2,
                epsilon_a=0.9,
                class_names=("a", "a"),
            )
        with pytest.raises(ValueError, match="zero add cost"):
            class_aware_system_model(
                base_model, ["a"], [1.0], add_costs=[0.5, 0.0]
            )
        with pytest.raises(ValueError, match="classless two-action"):
            class_aware_system_model(
                class_aware_system_model(base_model, ["a", "b"], [1.0, 1.0]),
                ["c"],
                [1.0],
            )

    def test_costly_class_loses_the_add_mass(self, base_model):
        """With equal survivals, the LP routes additions to the cheap class."""
        model = class_aware_system_model(
            base_model, ["cheap", "pricey"], [1.0, 1.0], add_costs=[0.0, 0.0, 5.0]
        )
        solution = solve_class_aware_replication_lp(model)
        assert solution.feasible
        mass = solution.occupancy[:, 1:].sum(axis=0)
        assert mass[0] > mass[1]

    def test_better_survival_wins_the_add_mass(self, base_model):
        model = class_aware_system_model(base_model, ["weak", "strong"], [0.4, 0.95])
        solution = solve_class_aware_replication_lp(model)
        assert solution.feasible
        mass = solution.occupancy[:, 1:].sum(axis=0)
        assert mass[1] > mass[0]

    def test_fresh_node_survival_model_based(self):
        assert fresh_node_survival(0.0, 0.0) == 1.0
        assert fresh_node_survival(0.2, 0.1) == pytest.approx(0.72)
        with pytest.raises(ValueError):
            fresh_node_survival(1.5, 0.0)


# ---------------------------------------------------------------------------
# Class-aware strategies
# ---------------------------------------------------------------------------
class TestClassAwareStrategies:
    def test_sample_action_index_inverse_cdf(self):
        cumulative = np.array([0.2, 0.5, 1.0])
        assert sample_action_index(cumulative, 0.1) == 0
        assert sample_action_index(cumulative, 0.2) == 1  # boundary: cum <= u
        assert sample_action_index(cumulative, 0.49) == 1
        assert sample_action_index(cumulative, 0.99) == 2
        assert sample_action_index(cumulative, 1.0) == 2  # clipped

    def test_tabular_strategy_protocol(self):
        strategy = stochastic_class_strategy()
        assert strategy_is_class_aware(strategy)
        assert not strategy_is_class_aware(ReplicationThresholdStrategy(beta=3))
        row = strategy.action_probabilities(2)
        assert row.sum() == pytest.approx(1.0)
        assert strategy.add_probability(2) == pytest.approx(1.0 - row[0])
        rng = np.random.default_rng(0)
        actions = [strategy.action(2, rng) for _ in range(500)]
        counts = np.bincount(actions, minlength=3) / 500
        assert np.allclose(counts, row, atol=0.08)

    def test_preference_strategy_lifts_classless(self):
        base = ReplicationThresholdStrategy(beta=3)
        strategy = ClassPreferenceReplicationStrategy(
            base, "hardened", ("vulnerable", "hardened")
        )
        assert strategy_is_class_aware(strategy)
        assert np.array_equal(strategy.action_probabilities(2), [0.0, 0.0, 1.0])
        assert np.array_equal(strategy.action_probabilities(5), [1.0, 0.0, 0.0])
        rng = np.random.default_rng(0)
        assert strategy.action(2, rng) == 2
        assert strategy.action(5, rng) == 0
        with pytest.raises(ValueError, match="not among"):
            ClassPreferenceReplicationStrategy(base, "missing", ("a", "b"))

    def test_tabular_validation(self):
        with pytest.raises(ValueError, match="shape"):
            ClassTabularReplicationStrategy(("a",), np.ones((3, 3)))
        with pytest.raises(ValueError, match="sum to one"):
            ClassTabularReplicationStrategy(("a", "b"), np.full((2, 3), 0.5))


# ---------------------------------------------------------------------------
# Closed-loop control plane
# ---------------------------------------------------------------------------
class TestClassAwareControlPlane:
    def test_batched_and_scalar_decisions_identical(self):
        scenario = mixed_scenario()
        controller = TwoLevelController(
            scenario,
            num_envs=6,
            recovery_policy=ThresholdStrategy(0.75),
            replication_strategy=stochastic_class_strategy(),
            initial_nodes=4,
            record_decisions=True,
        )
        batched = controller.run(seed=11)
        batched_trace = controller.last_decision_trace
        scalar = controller.run_scalar_reference(seed=11)
        scalar_trace = controller.last_decision_trace
        for t in range(scenario.horizon):
            assert np.array_equal(batched_trace.states[t], scalar_trace.states[t])
            assert np.array_equal(batched_trace.adds[t], scalar_trace.adds[t])
            assert np.array_equal(
                batched_trace.add_classes[t], scalar_trace.add_classes[t]
            )
            assert np.array_equal(
                batched_trace.emergencies[t], scalar_trace.emergencies[t]
            )
        assert np.array_equal(batched.additions, scalar.additions)
        assert np.array_equal(batched.availability, scalar.availability)
        assert np.allclose(batched.average_cost, scalar.average_cost)

    def test_add_activates_slot_of_chosen_class(self):
        """A deterministic hardened-only strategy must fill hardened slots."""
        scenario = mixed_scenario(horizon=40)
        strategy = ClassPreferenceReplicationStrategy(
            ReplicationThresholdStrategy(beta=scenario.num_nodes),
            "hardened",
            ("vulnerable", "hardened"),
        )
        controller = TwoLevelController(
            scenario,
            num_envs=4,
            recovery_policy=ThresholdStrategy(0.75),
            replication_strategy=strategy,
            initial_nodes=2,
            enforce_invariant=False,
            record_decisions=True,
        )
        controller.run(seed=0)
        trace = controller.last_decision_trace
        # With always-add pressure, the first additions must claim hardened
        # slots (indices 3..5) even though vulnerable slots 2 is free.
        first_step_classes = trace.add_classes[0]
        assert (first_step_classes == 1).all()

    def test_classless_strategy_requires_no_labels(self):
        """Classless strategies keep working on unlabelled scenarios."""
        params = NodeParameters(p_a=0.1, p_c1=0.01, p_c2=0.05)
        scenario = FleetScenario.homogeneous(
            params, BetaBinomialObservationModel(), num_nodes=5, horizon=30, f=1
        )
        controller = TwoLevelController(
            scenario,
            num_envs=3,
            recovery_policy=ThresholdStrategy(0.75),
            replication_strategy=ReplicationThresholdStrategy(beta=3),
            initial_nodes=4,
        )
        result = controller.run(seed=0)
        assert result.num_episodes == 3

    def test_class_aware_strategy_rejects_unlabelled_scenario(self):
        params = NodeParameters(p_a=0.1, p_c1=0.01, p_c2=0.05)
        scenario = FleetScenario.homogeneous(
            params, BetaBinomialObservationModel(), num_nodes=5, horizon=30, f=1
        )
        with pytest.raises(ValueError, match="labelled scenario"):
            TwoLevelController(
                scenario,
                num_envs=2,
                recovery_policy=ThresholdStrategy(0.75),
                replication_strategy=stochastic_class_strategy(),
            )

    def test_class_aware_strategy_rejects_unknown_class(self):
        scenario = mixed_scenario(horizon=20)
        strategy = ClassTabularReplicationStrategy(
            ("vulnerable", "missing"), stochastic_class_strategy().probabilities
        )
        with pytest.raises(ValueError, match="missing"):
            TwoLevelController(
                scenario,
                num_envs=2,
                recovery_policy=ThresholdStrategy(0.75),
                replication_strategy=strategy,
            )

    def test_system_trace_records_classes(self):
        scenario = mixed_scenario(horizon=30)
        controller = TwoLevelController(
            scenario,
            num_envs=4,
            recovery_policy=ThresholdStrategy(0.75),
            replication_strategy=stochastic_class_strategy(),
            initial_nodes=4,
            record_system_trace=True,
        )
        controller.run(seed=5)
        trace = controller.system_trace
        assert trace.add_classes is not None
        assert trace.add_classes.shape == (30, 4)
        assert trace.action_probabilities.shape == (30, 4, 3)
        # Wherever a class was chosen the action must be an add.
        chosen = trace.add_classes >= 0
        assert np.all(trace.actions[chosen])


# ---------------------------------------------------------------------------
# Per-class deadlines and the fitted class-aware kernel
# ---------------------------------------------------------------------------
class TestPerClassPipeline:
    def test_scenario_node_classes_roundtrip(self):
        scenario = mixed_scenario()
        classes = scenario.node_classes()
        assert [c.name for c in classes] == ["vulnerable", "hardened"]
        assert [c.count for c in classes] == [3, 3]
        rebuilt = FleetScenario.mixed(
            classes, horizon=scenario.horizon, f=scenario.f
        )
        assert rebuilt.node_params == scenario.node_params
        assert rebuilt.node_labels == scenario.node_labels

    def test_with_class_deltas_routes_per_slot(self):
        scenario = mixed_scenario()
        updated = scenario.with_class_deltas({"vulnerable": 5, "hardened": math.inf})
        deltas = [p.delta_r for p in updated.node_params]
        assert deltas == [5, 5, 5, math.inf, math.inf, math.inf]
        # Untouched fields survive.
        assert updated.node_params[0].p_a == VULNERABLE.p_a
        with pytest.raises(ValueError, match="does not define"):
            scenario.with_class_deltas({"missing": 5})
        unlabelled = FleetScenario.homogeneous(
            HARDENED, BetaBinomialObservationModel(), num_nodes=3, horizon=20
        )
        with pytest.raises(ValueError, match="labelled"):
            unlabelled.with_class_deltas({"hardened": 5})

    def test_optimize_class_deltas_picks_grid_minimum(self):
        scenario = mixed_scenario(horizon=40)
        results = optimize_class_deltas(
            scenario.node_classes(),
            delta_grid=(5, math.inf),
            horizon=40,
            episodes_per_evaluation=3,
            final_evaluation_episodes=5,
            seed=0,
        )
        assert set(results) == {"vulnerable", "hardened"}
        for result in results.values():
            assert set(result.costs) == {5.0, math.inf}
            assert result.estimated_cost == min(result.costs.values())
            assert result.costs[result.delta_r] == result.estimated_cost
        optimized = apply_class_deltas(scenario, results)
        for label, slots in optimized.class_slots().items():
            for j in slots:
                assert optimized.node_params[j].delta_r == results[label].delta_r

    def test_optimize_class_deltas_validates_grid(self):
        scenario = mixed_scenario(horizon=20)
        with pytest.raises(ValueError, match="at least one"):
            optimize_class_deltas(scenario.node_classes(), delta_grid=())
        with pytest.raises(ValueError, match="positive integers"):
            optimize_class_deltas(scenario.node_classes(), delta_grid=(2.5,))

    def test_fit_class_aware_model_orders_and_separates_classes(self):
        scenario = mixed_scenario(horizon=60)
        env = FleetVectorEnv(scenario, 60)
        rollout(env, StrategyPolicy(ThresholdStrategy(0.75)), seed=0)
        model = fit_class_aware_system_model(env, epsilon_a=0.6)
        assert model.class_names == ("vulnerable", "hardened")
        class_models = fit_system_models_per_class(env, epsilon_a=0.6)
        survival_vulnerable = fresh_node_survival_from_model(
            class_models["vulnerable"]
        )
        survival_hardened = fresh_node_survival_from_model(class_models["hardened"])
        assert survival_hardened > survival_vulnerable

    def test_fit_class_aware_model_survival_overrides(self):
        scenario = mixed_scenario(horizon=40)
        env = FleetVectorEnv(scenario, 30)
        rollout(env, StrategyPolicy(ThresholdStrategy(0.75)), seed=0)
        model = fit_class_aware_system_model(
            env,
            epsilon_a=0.6,
            survival_probabilities={"vulnerable": 0.0, "hardened": 1.0},
        )
        assert np.array_equal(model.transition[1], model.transition[0])
        with pytest.raises(ValueError, match="does not define"):
            fit_class_aware_system_model(env, add_costs={"missing": 1.0})


# ---------------------------------------------------------------------------
# Fleet environment and learned policies
# ---------------------------------------------------------------------------
class TestEnvAndPPO:
    def test_fleet_env_class_availability(self):
        scenario = mixed_scenario(horizon=25)
        env = FleetVectorEnv(scenario, 8)
        assert env.num_replication_actions == 3
        rollout(env, StrategyPolicy(ThresholdStrategy(0.75)), seed=0)
        availability = env.class_availability()
        assert set(availability) == {"vulnerable", "hardened"}
        for values in availability.values():
            assert values.shape == (8,)
            assert np.all((0.0 <= values) & (values <= 1.0))
        # The hardened sub-fleet fails less often.
        assert (
            availability["hardened"].mean() >= availability["vulnerable"].mean()
        )

    def test_fleet_env_class_availability_requires_labels(self):
        params = NodeParameters(p_a=0.1, p_c1=0.01, p_c2=0.05)
        scenario = FleetScenario.homogeneous(
            params, BetaBinomialObservationModel(), num_nodes=4, horizon=10, f=1
        )
        env = FleetVectorEnv(scenario, 2)
        assert env.num_replication_actions == 2
        rollout(env, StrategyPolicy(ThresholdStrategy(0.75)), seed=0)
        with pytest.raises(ValueError, match="labelled"):
            env.class_availability()

    def test_class_aware_ppo_trains_deterministically(self):
        scenario = mixed_scenario(horizon=40)
        config = PPOConfig(
            hidden_size=8, learning_rate=5e-2, updates=2, rollout_episodes=4
        )
        kwargs = dict(
            config=config,
            initial_nodes=4,
            seed=0,
            evaluation_episodes=5,
            class_aware=True,
        )
        first = train_ppo_replication(scenario, ThresholdStrategy(0.75), **kwargs)
        second = train_ppo_replication(scenario, ThresholdStrategy(0.75), **kwargs)
        assert np.array_equal(
            first.strategy.class_weights, second.strategy.class_weights
        )
        assert first.strategy.class_names == ("vulnerable", "hardened")
        row = first.strategy.action_probabilities(2)
        assert row.shape == (3,)
        assert row.sum() == pytest.approx(1.0)
        batch = first.strategy.action_probabilities_batch(
            np.array([1, 3]), np.array([4, 5])
        )
        assert batch.shape == (2, 3)
        assert np.allclose(batch.sum(axis=1), 1.0)

    def test_class_aware_ppo_requires_labels(self):
        params = NodeParameters(p_a=0.1, p_c1=0.01, p_c2=0.05)
        scenario = FleetScenario.homogeneous(
            params, BetaBinomialObservationModel(), num_nodes=4, horizon=10, f=1
        )
        with pytest.raises(ValueError, match="labelled"):
            train_ppo_replication(
                scenario, ThresholdStrategy(0.75), class_aware=True
            )


# ---------------------------------------------------------------------------
# Emulation-backend limitation (documented, loudly enforced)
# ---------------------------------------------------------------------------
class TestEmulationRouting:
    def test_homogeneous_scenario_maps_to_config(self):
        params = NodeParameters(p_a=0.1, p_c1=0.01, p_c2=0.05, delta_r=20)
        scenario = FleetScenario.homogeneous(
            params, BetaBinomialObservationModel(), num_nodes=4, horizon=50, f=1
        )
        config = EmulationConfig.from_scenario(scenario, k=2)
        assert config.initial_nodes == 4
        assert config.horizon == 50
        assert config.delta_r == 20
        assert config.node_params == params
        assert config.f == 1
        assert config.k == 2

    def test_mixed_scenario_raises_with_class_names(self):
        scenario = mixed_scenario()
        with pytest.raises(NotImplementedError) as excinfo:
            EmulationConfig.from_scenario(scenario)
        message = str(excinfo.value)
        assert "hardened" in message and "vulnerable" in message
        assert "TwoLevelController" in message
