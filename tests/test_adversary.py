"""The PR-9 adversary seam: bit-exactness, the zoo, and every run path.

Four layers of guarantees:

* **Seam parity (hypothesis property):** a scenario with no adversary, with
  the default :class:`~repro.sim.adversary.StaticAdversary`, and with
  ``StaticAdversary(force_dynamic=True)`` — which routes through the
  per-step dynamic-CDF construction — produce bit-identical engine logs on
  every available backend, over randomized parameters and seeds.
* **Run-path parity:** the dynamic path agrees bit-for-bit between the
  batched controller run and its scalar reference, and between serial and
  sharded (``n_jobs``) sweeps.
* **Golden snapshots:** each zoo member's fixed-seed summary metrics are
  pinned, turning the zoo into a regression suite.
* **Behavioural checks:** stealth suppresses beliefs, correlation couples
  nodes, and the emulation attacker honours the seam.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BetaBinomialObservationModel,
    NodeParameters,
    ReplicationThresholdStrategy,
    ThresholdStrategy,
)
from repro.control import TwoLevelController
from repro.control.parallel import (
    parallel_closed_loop_table,
    parallel_engine_sweep_table,
)
from repro.control.sweep import ClosedLoopCell
from repro.emulation import (
    Attacker,
    AttackerConfig,
    EmulationConfig,
    EmulationEnvironment,
    tolerance_policy,
)
from repro.sim import (
    ADVERSARY_TYPES,
    BatchRecoveryEngine,
    BurstyAdversary,
    CorrelatedAdversary,
    FleetScenario,
    StaticAdversary,
    StealthAdversary,
    adversary_from_spec,
    adversary_to_spec,
    available_backends,
)

_MODEL = BetaBinomialObservationModel()
_EXACT_BACKENDS = [b for b in available_backends() if b in ("fused", "reference")]

#: Engine log fields compared bit-for-bit.
_LOG_FIELDS = (
    "average_cost",
    "time_to_recovery",
    "recovery_frequency",
    "num_recoveries",
    "num_compromises",
    "availability",
)


def _scenario(adversary, p_a=0.08, num_nodes=3, horizon=100, delta_r=15.0):
    return FleetScenario.homogeneous(
        NodeParameters(p_a=p_a, delta_r=delta_r),
        _MODEL,
        num_nodes,
        horizon=horizon,
        f=1,
        adversary=adversary,
    )


def _run(scenario, backend, seed, num_episodes=16, alpha=0.75):
    engine = BatchRecoveryEngine(scenario, backend=backend)
    return engine.run(ThresholdStrategy(alpha), num_episodes=num_episodes, seed=seed)


def _assert_logs_equal(a, b):
    for field in _LOG_FIELDS:
        left, right = getattr(a, field), getattr(b, field)
        if left is None and right is None:
            continue
        assert np.array_equal(left, right), f"{field} differs"


class TestStaticSeamBitExact:
    """The refactor must not move a single bit of the static attacker."""

    @given(
        p_a=st.floats(min_value=0.01, max_value=0.5),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        num_nodes=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=15, deadline=None)
    def test_static_seam_reproduces_pre_refactor_logs(self, p_a, seed, num_nodes):
        scenarios = [
            _scenario(None, p_a=p_a, num_nodes=num_nodes, horizon=40),
            _scenario(StaticAdversary(), p_a=p_a, num_nodes=num_nodes, horizon=40),
            _scenario(
                StaticAdversary(force_dynamic=True),
                p_a=p_a,
                num_nodes=num_nodes,
                horizon=40,
            ),
        ]
        for backend in _EXACT_BACKENDS:
            results = [_run(s, backend, seed, num_episodes=8) for s in scenarios]
            _assert_logs_equal(results[0], results[1])
            _assert_logs_equal(results[0], results[2])

    @pytest.mark.parametrize("backend", _EXACT_BACKENDS)
    def test_force_dynamic_bit_exact_across_backends(self, backend):
        r_static = _run(_scenario(None), backend, seed=1234, num_episodes=32)
        r_dynamic = _run(
            _scenario(StaticAdversary(force_dynamic=True)),
            backend,
            seed=1234,
            num_episodes=32,
        )
        _assert_logs_equal(r_static, r_dynamic)

    @pytest.mark.parametrize("backend", _EXACT_BACKENDS)
    def test_two_level_result_parity_static_vs_seam(self, backend):
        results = []
        for adversary in (None, StaticAdversary(force_dynamic=True)):
            controller = TwoLevelController(
                _scenario(adversary, horizon=60),
                8,
                ThresholdStrategy(0.75),
                replication_strategy=ReplicationThresholdStrategy(1),
                backend=backend,
            )
            results.append(controller.run(seed=9))
        a, b = results
        assert np.array_equal(a.availability, b.availability)
        assert np.array_equal(a.average_cost, b.average_cost)
        assert np.array_equal(a.average_nodes, b.average_nodes)
        assert np.array_equal(a.recovery_frequency, b.recovery_frequency)
        assert np.array_equal(a.additions, b.additions)
        assert np.array_equal(a.evictions, b.evictions)


class TestDynamicRunPathParity:
    """Every run path sees the same adversary uniform streams."""

    @pytest.mark.parametrize(
        "adversary", [BurstyAdversary(), CorrelatedAdversary(), StealthAdversary()]
    )
    def test_batched_vs_scalar_reference(self, adversary):
        controller = TwoLevelController(
            _scenario(adversary, horizon=50),
            6,
            ThresholdStrategy(0.75),
            replication_strategy=ReplicationThresholdStrategy(1),
        )
        batched = controller.run(seed=11)
        scalar = controller.run_scalar_reference(seed=11)
        assert np.array_equal(batched.availability, scalar.availability)
        assert np.array_equal(batched.average_cost, scalar.average_cost)
        assert np.array_equal(batched.recovery_frequency, scalar.recovery_frequency)

    def test_engine_shards_match_serial(self):
        scenario = _scenario(CorrelatedAdversary(), horizon=60)
        serial = _run(scenario, None, seed=5, num_episodes=16)
        for n_jobs in (1, 2):
            table = parallel_engine_sweep_table(
                [("s", scenario)],
                {"thr": ThresholdStrategy(0.75)},
                num_episodes=16,
                seed=5,
                n_jobs=n_jobs,
            )
            _assert_logs_equal(serial, table[("s", "thr")])

    def test_closed_loop_shards_match_serial(self):
        scenario = _scenario(BurstyAdversary(), horizon=60)
        cell = ClosedLoopCell(
            "tol", ThresholdStrategy(0.75), ReplicationThresholdStrategy(1)
        )
        controller = TwoLevelController(
            scenario,
            12,
            ThresholdStrategy(0.75),
            replication_strategy=ReplicationThresholdStrategy(1),
        )
        serial = controller.run(seed=21)
        for n_jobs in (1, 2):
            table = parallel_closed_loop_table(
                [("s", scenario)], [cell], 12, 21, 1, None, n_jobs=n_jobs
            )
            sharded = table[("s", "tol")]
            assert np.array_equal(serial.average_cost, sharded.average_cost)
            assert np.array_equal(serial.availability, sharded.availability)

    def test_predrawn_uniforms_require_adversary_buffer(self):
        scenario = _scenario(BurstyAdversary(), horizon=30)
        engine = BatchRecoveryEngine(scenario)
        uniforms = engine.draw_uniforms(3, 4)
        with pytest.raises(ValueError, match="adversary_uniforms"):
            engine.run(ThresholdStrategy(0.75), uniforms=uniforms)

    def test_population_evaluation_shares_attack_realisations(self):
        scenario = FleetScenario.single_node(
            NodeParameters(p_a=0.1), _MODEL, horizon=40, adversary=BurstyAdversary()
        )
        engine = BatchRecoveryEngine(scenario)
        costs = engine.run_threshold_population(
            np.array([[0.5], [0.75], [0.95]]), num_episodes=32, seed=7
        )
        assert costs.shape == (3,)
        assert np.isfinite(costs).all()


class TestZooGoldenSnapshots:
    """Fixed seed -> pinned summary metrics, one snapshot per zoo member."""

    GOLDEN = {
        "static-forced": (
            StaticAdversary(force_dynamic=True),
            {"cost": 0.34270833333333334, "availability": 0.9084375,
             "recoveries": 1850, "compromises": 1241},
        ),
        "bursty": (
            BurstyAdversary(),
            {"cost": 0.30593750000000003, "availability": 0.93296875,
             "recoveries": 1778, "compromises": 923},
        ),
        "correlated": (
            CorrelatedAdversary(),
            {"cost": 0.506875, "availability": 0.7745312500000001,
             "recoveries": 2256, "compromises": 1665},
        ),
        "stealth": (
            StealthAdversary(),
            {"cost": 0.69296875, "availability": 0.69421875,
             "recoveries": 1407, "compromises": 1017},
        ),
    }

    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_golden_snapshot(self, name):
        adversary, expected = self.GOLDEN[name]
        result = _run(_scenario(adversary), None, seed=1234, num_episodes=64)
        assert float(result.average_cost.mean()) == pytest.approx(
            expected["cost"], rel=1e-12
        )
        assert float(result.availability.mean()) == pytest.approx(
            expected["availability"], rel=1e-12
        )
        assert int(result.num_recoveries.sum()) == expected["recoveries"]
        assert int(result.num_compromises.sum()) == expected["compromises"]


class TestZooBehaviour:
    def test_stealth_suppression_degrades_detection(self):
        """Suppression hides compromises from the IDS: cost rises sharply."""
        baseline = _run(_scenario(StealthAdversary(suppression=0.0)), None, 42, 64)
        stealthy = _run(_scenario(StealthAdversary(suppression=0.9)), None, 42, 64)
        assert stealthy.average_cost.mean() > baseline.average_cost.mean()
        assert stealthy.availability.mean() < baseline.availability.mean()

    def test_correlated_campaign_couples_nodes(self):
        """Shared latent intensity correlates per-node compromise counts."""

        def mean_pairwise_correlation(adversary):
            result = _run(_scenario(adversary, horizon=200), None, 7, 128)
            counts = result.num_compromises.astype(float)
            corr = np.corrcoef(counts, rowvar=False)
            off_diagonal = corr[~np.eye(corr.shape[0], dtype=bool)]
            return off_diagonal.mean()

        correlated = mean_pairwise_correlation(
            CorrelatedAdversary(p_enter=0.03, p_exit=0.1, campaign_scale=8.0,
                                calm_scale=0.1)
        )
        independent = mean_pairwise_correlation(StaticAdversary(force_dynamic=True))
        assert correlated > independent + 0.1

    def test_bursty_differs_from_static(self):
        static = _run(_scenario(None), None, 1234, 64)
        bursty = _run(_scenario(BurstyAdversary()), None, 1234, 64)
        assert not np.array_equal(static.average_cost, bursty.average_cost)

    def test_spec_round_trip(self):
        for adversary in (
            StaticAdversary(),
            BurstyAdversary(p_on=0.1),
            CorrelatedAdversary(campaign_scale=2.5),
            StealthAdversary(suppression=0.5),
        ):
            assert adversary_from_spec(adversary_to_spec(adversary)) == adversary

    def test_spec_rejects_unknown_type(self):
        with pytest.raises(ValueError, match="unknown adversary type"):
            adversary_from_spec({"type": "quantum"})
        with pytest.raises(ValueError, match="'type'"):
            adversary_from_spec({"p_on": 0.1})
        with pytest.raises(ValueError, match="invalid parameters"):
            adversary_from_spec({"type": "bursty", "p_off": 0.2, "warp": 9})

    def test_registry_covers_zoo(self):
        assert set(ADVERSARY_TYPES) == {"static", "correlated", "bursty", "stealth"}

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="p_on"):
            BurstyAdversary(p_on=1.5)
        with pytest.raises(ValueError, match="suppression"):
            StealthAdversary(suppression=-0.1)
        with pytest.raises(ValueError, match="campaign_scale"):
            CorrelatedAdversary(campaign_scale=-1.0)


class TestEmulationSeam:
    def test_static_attacker_unchanged(self):
        attacker = Attacker(AttackerConfig(), seed=7)
        attacker.begin_step()
        assert attacker._start_probability == 0.2
        assert attacker.observed_intrusion_activity("node-0") is False

    def test_bursty_modulates_start_probability(self):
        config = AttackerConfig(
            start_probability=0.1,
            adversary=BurstyAdversary(p_on=1.0, p_off=0.0, burst_scale=5.0),
        )
        attacker = Attacker(config, seed=7)
        attacker.begin_step()  # chain switches on deterministically (p_on=1)
        assert attacker._start_probability == pytest.approx(0.5)

    def test_stealth_hides_intrusion_activity(self):
        config = AttackerConfig(adversary=StealthAdversary(suppression=1.0))
        attacker = Attacker(config, seed=7)
        state = attacker.state_of("node-0")
        state.phase = state.phase.__class__.IN_PROGRESS
        attacker.begin_step()
        assert state.intrusion_activity is True
        assert attacker.observed_intrusion_activity("node-0") is False

    def test_from_scenario_routes_adversary(self):
        scenario = _scenario(BurstyAdversary(), horizon=30, delta_r=10.0)
        config = EmulationConfig.from_scenario(scenario)
        assert config.attacker.adversary == scenario.adversary

    def test_emulation_episode_runs_with_adversary(self):
        scenario = _scenario(CorrelatedAdversary(), horizon=25, delta_r=10.0)
        environment = EmulationEnvironment(
            EmulationConfig.from_scenario(scenario), tolerance_policy(), seed=3
        )
        metrics = environment.run()
        assert 0.0 <= metrics.availability <= 1.0
