"""Regression pins and determinism guarantees around the solver stack.

The vectorization refactor (repro.sim) must not shift solver results.  These
tests pin the exact numeric outputs of the quantities Algorithm 1 and the
POMDP machinery depend on — ``belief_transition_distribution`` and
``extract_threshold`` — on a fixed parameter set (the Appendix E defaults),
assert the deterministic-seeding contract of :class:`RecoverySimulator`, and
smoke-test that every benchmark module still imports.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core import (
    NodeAction,
    NodeParameters,
    NodeTransitionModel,
    ThresholdStrategy,
    belief_transition_distribution,
)
from repro.solvers import (
    RecoveryPOMDP,
    RecoverySimulator,
    belief_value_iteration,
    extract_threshold,
)

BENCHMARKS_DIR = Path(__file__).resolve().parent.parent / "benchmarks"

#: Appendix E defaults — the fixed parameter set all pins below refer to.
PINNED_PARAMS = NodeParameters(p_a=0.1, p_c1=1e-5, p_c2=1e-3, p_u=0.02, eta=2.0)

#: belief_transition_distribution(0.3, WAIT) under the Beta-Binomial model.
PINNED_WAIT_PROBS = [
    0.261276119123, 0.161763272978, 0.119748469752, 0.093552946228,
    0.075482856830, 0.062858948825, 0.054592796706, 0.050511836682,
    0.051879151383, 0.068333601493,
]
PINNED_WAIT_BELIEFS = [
    0.100486927581, 0.167900742117, 0.235646954152, 0.315135675610,
    0.411133728038, 0.525214209525, 0.653772284605, 0.785102172086,
    0.899306122414, 0.975367011359,
]
#: belief_transition_distribution(0.3, RECOVER) under the Beta-Binomial model.
PINNED_RECOVER_PROBS = [
    0.339698113303, 0.197886630066, 0.137242674467, 0.098744023588,
    0.071411859390, 0.051295140674, 0.036549989697, 0.026256513680,
    0.020214023714, 0.020701031421,
]
PINNED_RECOVER_BELIEFS = [
    0.021243847295, 0.037725335424, 0.056514469047, 0.082065617556,
    0.119447788982, 0.176906739244, 0.268405623802, 0.415144511242,
    0.634402176181, 0.884967680557,
]


class TestBeliefTransitionDistributionPins:
    @pytest.fixture
    def transition_model(self):
        return NodeTransitionModel(PINNED_PARAMS)

    @pytest.mark.parametrize(
        "action, probs, beliefs",
        [
            (NodeAction.WAIT, PINNED_WAIT_PROBS, PINNED_WAIT_BELIEFS),
            (NodeAction.RECOVER, PINNED_RECOVER_PROBS, PINNED_RECOVER_BELIEFS),
        ],
        ids=["wait", "recover"],
    )
    def test_pinned_distribution(self, transition_model, observation_model, action, probs, beliefs):
        entries = belief_transition_distribution(
            0.3, action, transition_model, observation_model
        )
        assert len(entries) == 10
        np.testing.assert_allclose([p for p, _ in entries], probs, atol=1e-9)
        np.testing.assert_allclose([b for _, b in entries], beliefs, atol=1e-9)

    def test_distribution_still_normalized(self, transition_model, observation_model):
        entries = belief_transition_distribution(
            0.3, NodeAction.WAIT, transition_model, observation_model
        )
        assert sum(p for p, _ in entries) == pytest.approx(1.0, abs=1e-12)


class TestExtractThresholdPins:
    def test_synthetic_policy_threshold(self):
        grid = np.linspace(0.0, 1.0, 11)
        policy = (grid >= 0.7).astype(int)
        assert extract_threshold(grid, policy) == pytest.approx(0.7)

    def test_never_recover_policy_returns_one(self):
        grid = np.linspace(0.0, 1.0, 11)
        assert extract_threshold(grid, np.zeros(11, dtype=int)) == 1.0

    def test_value_iteration_threshold_pinned(self, observation_model):
        """The VI threshold on the Appendix E defaults is pinned at 0.30."""
        pomdp = RecoveryPOMDP(PINNED_PARAMS, observation_model, discount=0.9)
        result = belief_value_iteration(
            pomdp, grid_size=51, max_iterations=500, tolerance=1e-8
        )
        assert result.threshold() == pytest.approx(0.30, abs=1e-12)
        assert result.value_at(0.0) == pytest.approx(2.517753101518, abs=1e-8)
        assert result.value_at(1.0) == pytest.approx(3.517753101518, abs=1e-8)


class TestSimulatorDeterminism:
    @pytest.fixture
    def simulator(self, observation_model):
        return RecoverySimulator(
            NodeParameters(p_a=0.1, delta_r=12), observation_model, horizon=50
        )

    @pytest.mark.parametrize("batch", [False, True], ids=["scalar", "batch"])
    def test_same_seed_gives_identical_episode_results(self, simulator, batch):
        strategy = ThresholdStrategy(0.6)
        first = simulator.evaluate(strategy, num_episodes=8, seed=21, batch=batch)
        second = simulator.evaluate(strategy, num_episodes=8, seed=21, batch=batch)
        assert first == second

    def test_different_seeds_give_different_results(self, simulator):
        strategy = ThresholdStrategy(0.6)
        a = simulator.evaluate(strategy, num_episodes=8, seed=1)
        b = simulator.evaluate(strategy, num_episodes=8, seed=2)
        assert a != b

    def test_episode_results_independent_of_batch_size(self, simulator):
        """Episode k's statistics depend only on seed and k, not on B."""
        strategy = ThresholdStrategy(0.6)
        small = simulator.evaluate(strategy, num_episodes=4, seed=33)
        large = simulator.evaluate(strategy, num_episodes=8, seed=33)
        assert small == large[:4]

    def test_estimate_cost_deterministic(self, simulator):
        strategy = ThresholdStrategy(0.6)
        assert simulator.estimate_cost(strategy, 8, seed=5) == simulator.estimate_cost(
            strategy, 8, seed=5
        )


class TestBenchmarkModulesImport:
    @pytest.mark.parametrize(
        "path",
        sorted(BENCHMARKS_DIR.glob("bench_*.py")),
        ids=lambda p: p.stem,
    )
    def test_benchmark_module_imports_cleanly(self, path):
        """Every benchmarks/bench_*.py module must import without side effects."""
        name = f"_bench_import_smoke_{path.stem}"
        spec = importlib.util.spec_from_file_location(name, path)
        module = importlib.util.module_from_spec(spec)
        sys.modules[name] = module
        try:
            spec.loader.exec_module(module)
        finally:
            sys.modules.pop(name, None)
