"""Sharded multi-process sweeps and the fitted-model policy-solve cache.

The parallel execution layer (:mod:`repro.control.parallel`) promises one
thing above all: **any shard count reproduces the single-process sweep bit
for bit** under a fixed seed.  This suite pins that contract down —

* the sharding/seeding primitives: contiguous episode partitions,
  spawn-key reconstruction of ``SeedSequence`` children, uniform-buffer
  slices identical to the engine's own seed tree;
* bit-exact table parity for ``n_jobs in {1, 2, 3}`` across
  ``closed_loop_sweep``, ``attacker_intensity_sweep``,
  ``engine_fleet_sweep`` and ``mixed_closed_loop_sweep`` — including
  stochastic replication cells (which consume the per-episode system
  streams) and labelled scenarios (per-class metric dictionaries);
* :meth:`EngineProfile.merge` and profile pickling round-trips;
* the named ``n_jobs``/``n1`` validation errors;
* the policy-solve cache: hit/miss/invalidation accounting, infeasible
  outcome caching, and the two hash properties the cache key relies on —
  order-insensitivity over however a fit enumerated its transitions, and
  collision-distinctness for perturbed kernels (hypothesis properties).
"""

from __future__ import annotations

import pickle
import sys
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control import (
    ClosedLoopCell,
    PolicySolveCache,
    attacker_intensity_sweep,
    closed_loop_sweep,
    default_tolerance_threshold,
    engine_fleet_sweep,
    identify_replication_strategies,
    mixed_closed_loop_sweep,
)
from repro.control.parallel import (
    parallel_closed_loop_table,
    resolve_root_entropy,
    shard_episodes,
    shard_uniforms,
    spawned_child,
    validate_n_jobs,
)
from repro.control.two_level import TwoLevelController
from repro.control.policy_cache import fitted_model_key
from repro.core import (
    BetaBinomialObservationModel,
    MixedReplicationStrategy,
    NodeParameters,
    ReplicationThresholdStrategy,
    ThresholdStrategy,
)
from repro.core.system_model import EmpiricalSystemModel, class_aware_system_model
from repro.sim import BatchRecoveryEngine, FleetScenario, NodeClass
from repro.sim.kernels import EngineProfile

PARAMS = NodeParameters(p_a=0.1)
HARDENED = NodeParameters(p_a=0.04, p_c1=0.01, p_c2=0.03, eta=1.5, delta_r=20)
VULNERABLE = NodeParameters(p_a=0.3, p_c1=0.02, p_c2=0.08, eta=3.0, delta_r=8)

TWO_LEVEL_FIELDS = (
    "availability",
    "average_nodes",
    "average_cost",
    "recovery_frequency",
    "additions",
    "emergency_additions",
    "evictions",
)
ENGINE_FIELDS = (
    "average_cost",
    "time_to_recovery",
    "recovery_frequency",
    "num_recoveries",
    "num_compromises",
)


@pytest.fixture(scope="module")
def observation_model():
    return BetaBinomialObservationModel()


def _cells() -> list[ClosedLoopCell]:
    stochastic = MixedReplicationStrategy(
        ReplicationThresholdStrategy(4), ReplicationThresholdStrategy(5), kappa=0.5
    )
    return [
        ClosedLoopCell("tolerance", ThresholdStrategy(0.75)),
        ClosedLoopCell("det-add", ThresholdStrategy(0.75), ReplicationThresholdStrategy(4)),
        ClosedLoopCell("stoch-add", ThresholdStrategy(0.75), stochastic),
    ]


def _assert_two_level_tables_equal(reference: dict, table: dict) -> None:
    assert set(reference) == set(table)
    for key in reference:
        a, b = reference[key], table[key]
        assert a.steps == b.steps
        for field in TWO_LEVEL_FIELDS:
            x, y = getattr(a, field), getattr(b, field)
            assert x.dtype == y.dtype, (key, field)
            np.testing.assert_array_equal(x, y, err_msg=f"{key}/{field}")
        assert (a.class_average_cost is None) == (b.class_average_cost is None)
        if a.class_average_cost is not None:
            assert list(a.class_average_cost) == list(b.class_average_cost)
            for label in a.class_average_cost:
                np.testing.assert_array_equal(
                    a.class_average_cost[label], b.class_average_cost[label]
                )
                np.testing.assert_array_equal(
                    a.class_recovery_frequency[label],
                    b.class_recovery_frequency[label],
                )


class TestShardingPrimitives:
    def test_shards_are_contiguous_and_cover_every_episode(self):
        for episodes in (1, 2, 5, 7, 100):
            for jobs in (1, 2, 3, 4, 9):
                shards = shard_episodes(episodes, jobs)
                assert shards[0][0] == 0 and shards[-1][1] == episodes
                for (_, hi), (lo, _) in zip(shards, shards[1:]):
                    assert hi == lo
                sizes = [hi - lo for lo, hi in shards]
                assert all(size >= 1 for size in sizes)
                assert max(sizes) - min(sizes) <= 1
                assert len(shards) == min(jobs, episodes)

    def test_shard_episodes_rejects_empty_batches(self):
        with pytest.raises(ValueError, match="num_episodes"):
            shard_episodes(0, 2)

    @pytest.mark.parametrize("bad", [0, -1, 1.5, "2", True])
    def test_validate_n_jobs_names_the_parameter(self, bad):
        with pytest.raises(ValueError, match="n_jobs"):
            validate_n_jobs(bad)

    def test_validate_n_jobs_accepts_numpy_integers(self):
        assert validate_n_jobs(np.int64(3)) == 3

    def test_spawned_child_matches_serial_spawn(self):
        for entropy in (0, 7, 123456789):
            children = np.random.SeedSequence(entropy).spawn(5)
            for index, child in enumerate(children):
                rebuilt = spawned_child(entropy, index)
                assert rebuilt.spawn_key == child.spawn_key
                assert (
                    np.random.default_rng(rebuilt).random(8).tolist()
                    == np.random.default_rng(child).random(8).tolist()
                )

    def test_resolve_root_entropy(self):
        assert resolve_root_entropy(42) == 42
        drawn = resolve_root_entropy(None)
        assert isinstance(drawn, int) and drawn != resolve_root_entropy(None)

    def test_shard_uniforms_slices_the_engine_seed_tree(self, observation_model):
        scenario = FleetScenario.homogeneous(
            PARAMS, observation_model, num_nodes=4, horizon=10, f=1
        )
        engine = BatchRecoveryEngine(scenario)
        full = engine.draw_uniforms(5, num_episodes=6)
        for lo, hi in ((0, 2), (2, 5), (5, 6), (0, 6)):
            shard = shard_uniforms(5, lo, hi, scenario.num_nodes, 2 * scenario.horizon)
            np.testing.assert_array_equal(shard, full[lo:hi])


class TestDefaultToleranceThreshold:
    def test_bft_rule_for_positive_fleets(self):
        assert [default_tolerance_threshold(n) for n in (1, 2, 3, 4, 7, 10)] == [
            0, 0, 0, 1, 2, 3,
        ]

    @pytest.mark.parametrize("n1", [0, -1, -10])
    def test_rejects_non_positive_fleet_sizes(self, n1):
        with pytest.raises(ValueError, match="n1 >= 1"):
            default_tolerance_threshold(n1)


class TestSweepParity:
    @pytest.mark.parametrize("n_jobs", [2, 3])
    def test_closed_loop_sweep_is_bit_identical(self, observation_model, n_jobs):
        kwargs = dict(
            n1_values=[4, 7],
            cells=_cells(),
            node_params=PARAMS,
            observation_model=observation_model,
            smax=9,
            num_envs=7,
            horizon=15,
            seed=3,
        )
        reference = closed_loop_sweep(**kwargs)
        _assert_two_level_tables_equal(reference, closed_loop_sweep(**kwargs, n_jobs=n_jobs))

    @pytest.mark.parametrize("n_jobs", [2, 3])
    def test_attacker_intensity_sweep_is_bit_identical(self, observation_model, n_jobs):
        scenario = FleetScenario.homogeneous(
            PARAMS, observation_model, num_nodes=6, horizon=15, f=1
        )
        kwargs = dict(
            scenario=scenario,
            intensities=[1.0, 2.5],
            cells=_cells(),
            num_envs=7,
            seed=11,
            initial_nodes=4,
        )
        reference = attacker_intensity_sweep(**kwargs)
        _assert_two_level_tables_equal(
            reference, attacker_intensity_sweep(**kwargs, n_jobs=n_jobs)
        )

    def test_mixed_sweep_carries_class_metrics_through_shards(self, observation_model):
        scenario = FleetScenario.mixed(
            [
                NodeClass("hardened", HARDENED, observation_model, count=3),
                NodeClass("vulnerable", VULNERABLE, observation_model, count=3),
            ],
            horizon=15,
            f=1,
        )
        kwargs = dict(
            scenarios={"mixed": scenario},
            cells=_cells(),
            num_envs=6,
            seed=7,
            initial_nodes=4,
        )
        reference = mixed_closed_loop_sweep(**kwargs)
        table = mixed_closed_loop_sweep(**kwargs, n_jobs=3)
        _assert_two_level_tables_equal(reference, table)
        assert table[("mixed", "tolerance")].class_average_cost is not None

    @pytest.mark.parametrize("n_jobs", [2, 3])
    def test_engine_fleet_sweep_is_bit_identical(self, observation_model, n_jobs):
        kwargs = dict(
            n1_values=[4, 7],
            strategies={"threshold": ThresholdStrategy(0.75)},
            node_params=PARAMS,
            observation_model=observation_model,
            num_episodes=7,
            horizon=15,
            seed=3,
        )
        reference = engine_fleet_sweep(**kwargs)
        table = engine_fleet_sweep(**kwargs, n_jobs=n_jobs)
        assert set(reference) == set(table)
        for key in reference:
            a, b = reference[key], table[key]
            assert a.steps == b.steps
            for field in ENGINE_FIELDS:
                np.testing.assert_array_equal(
                    getattr(a, field), getattr(b, field), err_msg=f"{key}/{field}"
                )
            assert (a.availability is None) == (b.availability is None)
            if a.availability is not None:
                np.testing.assert_array_equal(a.availability, b.availability)

    @pytest.mark.parametrize("n_jobs", [2, 3])
    def test_episode_shards_replay_the_serial_seed_tree(
        self, observation_model, n_jobs
    ):
        """A single stochastic cell forces true episode sharding.

        With one (scenario, cell) pair every worker owns a proper
        ``[lo, hi)`` episode range, so this exercises both halves of the
        seeding contract: the engine's episode-major uniform children and
        the per-episode system-controller streams at offset ``B * N + b``
        (consumed by the stochastic replication strategy).
        """
        scenario = FleetScenario.homogeneous(
            PARAMS, observation_model, num_nodes=6, horizon=15, f=1
        )
        stochastic = MixedReplicationStrategy(
            ReplicationThresholdStrategy(4), ReplicationThresholdStrategy(5), kappa=0.5
        )
        cell = ClosedLoopCell("stoch", ThresholdStrategy(0.75), stochastic)
        serial = TwoLevelController(
            scenario,
            7,
            cell.recovery,
            replication_strategy=cell.replication,
            initial_nodes=4,
        ).run(seed=13)
        table = parallel_closed_loop_table(
            [("s", scenario)], [cell], 7, 13, 1, 4, n_jobs
        )
        _assert_two_level_tables_equal({("s", "stoch"): serial}, table)

    def test_sweeps_validate_n_jobs(self, observation_model):
        with pytest.raises(ValueError, match="n_jobs"):
            closed_loop_sweep(
                [4],
                _cells()[:1],
                PARAMS,
                observation_model,
                smax=6,
                num_envs=2,
                horizon=5,
                n_jobs=0,
            )
        with pytest.raises(ValueError, match="n_jobs"):
            engine_fleet_sweep(
                [4],
                {"t": ThresholdStrategy(0.75)},
                PARAMS,
                observation_model,
                num_episodes=2,
                horizon=5,
                n_jobs=-2,
            )


class TestEngineProfileMerge:
    def test_merge_sums_phases_steps_and_keeps_backend(self):
        a = EngineProfile(nanos={"strategy": 5, "belief_update": 7}, steps=3, backend="fused")
        b = EngineProfile(nanos={"strategy": 2, "trellis": 11}, steps=4)
        merged = EngineProfile.merge(a, None, b)
        assert merged.nanos["strategy"] == 7
        assert merged.nanos["belief_update"] == 7
        assert merged.nanos["trellis"] == 11
        assert merged.steps == 7
        assert merged.backend == "fused"

    def test_merge_of_nothing_is_empty(self):
        merged = EngineProfile.merge()
        assert merged.steps == 0 and merged.total_ns == 0

    def test_numpy_increments_survive_pickle_round_trips(self):
        profile = EngineProfile()
        profile.add("strategy", np.int64(41))
        profile.add("strategy", np.int64(1))
        clone = pickle.loads(pickle.dumps(profile))
        assert type(clone.nanos["strategy"]) is int
        assert clone.nanos == profile.nanos
        assert clone.steps == profile.steps
        assert EngineProfile.merge(clone, profile).nanos["strategy"] == 84


def _model_from_counts(counts: np.ndarray, f: int = 1) -> EmpiricalSystemModel:
    return EmpiricalSystemModel.from_counts(
        np.asarray(counts, dtype=float), f=f, epsilon_a=0.9, num_observed=1
    )


def _triples(num_states: int):
    """Hypothesis strategy: a non-empty list of (s, a, s') transitions."""
    state = st.integers(min_value=0, max_value=num_states - 1)
    return st.lists(st.tuples(state, st.integers(0, 1), state), min_size=1, max_size=30)


class TestContentHash:
    @settings(max_examples=25, deadline=None)
    @given(triples=_triples(4), seed=st.integers(0, 2**16))
    def test_hash_is_order_insensitive_over_transition_enumeration(self, triples, seed):
        smax = 3
        shuffled = list(triples)
        np.random.default_rng(seed).shuffle(shuffled)
        a = EmpiricalSystemModel(triples, smax=smax, f=1, epsilon_a=0.9)
        b = EmpiricalSystemModel(shuffled, smax=smax, f=1, epsilon_a=0.9)
        assert a.content_hash() == b.content_hash()

    @settings(max_examples=25, deadline=None)
    @given(
        action=st.integers(0, 1),
        row=st.integers(0, 3),
        column=st.integers(0, 3),
        bump=st.floats(min_value=0.01, max_value=0.9),
    )
    def test_hash_distinguishes_perturbed_kernels(self, action, row, column, bump):
        counts = np.ones((2, 4, 4))
        base = _model_from_counts(counts)
        perturbed_counts = counts.copy()
        perturbed_counts[action, row, column] += bump
        perturbed = _model_from_counts(perturbed_counts)
        assert base.content_hash() != perturbed.content_hash()

    def test_hash_covers_class_names_and_add_costs(self):
        base = _model_from_counts(np.ones((2, 4, 4)))
        one = class_aware_system_model(
            base, class_names=["a", "b"], survival_probabilities=[0.5, 0.9]
        )
        renamed = class_aware_system_model(
            base, class_names=["a", "c"], survival_probabilities=[0.5, 0.9]
        )
        priced = class_aware_system_model(
            base,
            class_names=["a", "b"],
            survival_probabilities=[0.5, 0.9],
            add_costs=[0.0, 0.0, 1.0],
        )
        hashes = {base.content_hash(), one.content_hash(), renamed.content_hash(), priced.content_hash()}
        assert len(hashes) == 4

    def test_fitted_model_key_canonicalizes_parameter_order(self):
        model = _model_from_counts(np.ones((2, 4, 4)))
        assert fitted_model_key(model, "s", a=1, b=2) == fitted_model_key(
            model, "s", b=2, a=1
        )
        assert fitted_model_key(model, "s", a=1) != fitted_model_key(model, "s", a=2)
        assert fitted_model_key(model, "s") != fitted_model_key(model, "t")


class TestPolicySolveCache:
    def test_counts_hits_misses_and_reuses_outcomes(self):
        model = _model_from_counts(np.ones((2, 5, 5)) + np.eye(5))
        cache = PolicySolveCache()
        first = cache.solve_lp(model)
        again = cache.solve_lp(model)
        assert again is first
        assert cache.stats() == {"hits": 1, "misses": 1, "invalidations": 0, "size": 1}

    def test_lagrangian_parameters_split_the_key(self):
        model = _model_from_counts(np.ones((2, 5, 5)) + np.eye(5))
        cache = PolicySolveCache()
        for kwargs in ({}, {"tolerance": 1e-3}):
            try:
                cache.solve_lagrangian(model, **kwargs)
            except ValueError:
                pass
        assert cache.hits == 0 and cache.misses == 2

    def test_infeasible_outcomes_are_cached_and_reraised(self):
        model = _model_from_counts(np.ones((2, 5, 5)))
        cache = PolicySolveCache()
        boom = {"n": 0}

        def solve():
            boom["n"] += 1
            raise ValueError("relaxation infeasible on the fitted kernel")

        with pytest.raises(ValueError, match="infeasible"):
            cache.get_or_solve(model, "lagrangian", solve)
        with pytest.raises(ValueError, match="infeasible"):
            cache.get_or_solve(model, "lagrangian", solve)
        assert boom["n"] == 1
        assert cache.hits == 1 and cache.misses == 1

    def test_invalidate_drops_every_solve_of_one_model(self):
        model = _model_from_counts(np.ones((2, 5, 5)) + np.eye(5))
        other = _model_from_counts(np.ones((2, 5, 5)) + 2 * np.eye(5))
        cache = PolicySolveCache()
        cache.solve_lp(model)
        cache.solve_lp(other)
        assert cache.invalidate(model) == 1
        assert len(cache) == 1
        assert cache.invalidations == 1
        cache.solve_lp(model)
        assert cache.misses == 3  # the invalidated solve re-runs

    def test_clear_and_lru_bound(self):
        cache = PolicySolveCache(maxsize=2)
        models = [
            _model_from_counts(np.ones((2, 4, 4)) + k * np.eye(4)) for k in range(3)
        ]
        for model in models:
            cache.get_or_solve(model, "s", lambda: object())
        assert len(cache) == 2  # the first entry was evicted
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_concurrent_stampede_is_single_flight(self):
        """Regression test for the unlocked cache: the lock is held across a
        miss's ``solve()``, so a thread stampede on one fitted model runs
        the solver exactly once and everyone else hits.  The unlocked
        implementation lets every racer pass the check-then-act lookup
        before the first solve stores, so misses pile up and the solver
        runs concurrently with itself."""
        model = _model_from_counts(np.ones((2, 4, 4)) + np.eye(4))
        cache = PolicySolveCache()
        threads = 8
        in_solver = {"now": 0, "peak": 0, "calls": 0}
        gauge = threading.Lock()
        start = threading.Barrier(threads)
        errors: list[Exception] = []

        def solve() -> object:
            with gauge:
                in_solver["now"] += 1
                in_solver["calls"] += 1
                in_solver["peak"] = max(in_solver["peak"], in_solver["now"])
            time.sleep(0.02)  # widen the check-then-act window
            with gauge:
                in_solver["now"] -= 1
            return object()

        def stampede() -> None:
            try:
                start.wait()
                cache.get_or_solve(model, "s", solve)
            except Exception as error:  # pragma: no cover - only on races
                errors.append(error)

        workers = [threading.Thread(target=stampede) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()

        assert errors == []
        assert in_solver["calls"] == 1  # single-flight: the LP ran once
        assert in_solver["peak"] == 1  # never two concurrent solves
        assert cache.misses == 1 and cache.hits == threads - 1
        assert len(cache) == 1

    def test_concurrent_hammering_keeps_counters_consistent(self):
        """Threads racing on lookup, insert and LRU eviction must never
        lose a counter increment or corrupt the entry dict: ``maxsize`` is
        kept below the model pool so every round churns the LRU, and the
        switch interval is shrunk to force interleaving inside the
        read-modify-write counter updates."""
        models = [
            _model_from_counts(np.ones((2, 4, 4)) + k * np.eye(4)) for k in range(6)
        ]
        keys = [fitted_model_key(model, "s") for model in models]
        cache = PolicySolveCache(maxsize=3)
        threads, rounds = 8, 300
        errors: list[Exception] = []
        start = threading.Barrier(threads)

        def hammer(worker: int) -> None:
            try:
                start.wait()
                for call in range(rounds):
                    model = models[(worker + call) % len(models)]
                    outcome = cache.get_or_solve(model, "s", object)
                    assert outcome is not None
                    if call % 50 == 0:
                        cache.stats()
                        len(cache)
                        keys[worker % len(keys)] in cache
            except Exception as error:  # pragma: no cover - only on races
                errors.append(error)

        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)
        try:
            workers = [
                threading.Thread(target=hammer, args=(w,)) for w in range(threads)
            ]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
        finally:
            sys.setswitchinterval(old_interval)

        assert errors == []
        assert cache.hits + cache.misses == threads * rounds
        assert len(cache) <= cache.maxsize
        stats = cache.stats()
        assert stats["hits"] == cache.hits and stats["misses"] == cache.misses

    def test_sysid_refit_on_unchanged_kernel_is_all_hits(self, observation_model):
        scenario = FleetScenario.homogeneous(
            PARAMS, observation_model, num_nodes=5, horizon=12, f=1
        )
        cache = PolicySolveCache()
        kwargs = dict(
            num_fit_episodes=6, num_eval_episodes=3, seed=2, policy_cache=cache
        )
        first = identify_replication_strategies(scenario, ThresholdStrategy(0.75), **kwargs)
        assert cache.misses == 2 and cache.hits == 0
        second = identify_replication_strategies(scenario, ThresholdStrategy(0.75), **kwargs)
        assert cache.hits == 2 and cache.misses == 2
        assert second.lp is first.lp
        np.testing.assert_array_equal(first.model.transition, second.model.transition)

    def test_sysid_cache_bypass(self, observation_model):
        scenario = FleetScenario.homogeneous(
            PARAMS, observation_model, num_nodes=5, horizon=12, f=1
        )
        result = identify_replication_strategies(
            scenario,
            ThresholdStrategy(0.75),
            num_fit_episodes=6,
            num_eval_episodes=3,
            seed=2,
            policy_cache=False,
        )
        assert "never-add" in result.closed_loop
