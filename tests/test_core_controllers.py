"""Tests for the node controller and the system controller (Section IV-V)."""

from __future__ import annotations

import math

import pytest

from repro.core import (
    NodeAction,
    NodeController,
    NodeParameters,
    ReplicationThresholdStrategy,
    SystemController,
    ThresholdStrategy,
)


class TestNodeController:
    def test_initial_belief_is_prior(self, params, observation_model):
        controller = NodeController("n1", params, observation_model)
        assert controller.belief == pytest.approx(params.p_a)

    def test_high_alerts_trigger_recovery(self, params, observation_model):
        controller = NodeController(
            "n1", params, observation_model, strategy=ThresholdStrategy(0.6)
        )
        actions = []
        for _ in range(6):
            action, belief = controller.step(9)
            actions.append(action)
        assert NodeAction.RECOVER in actions

    def test_low_alerts_do_not_trigger_recovery(self, params, observation_model):
        controller = NodeController(
            "n1", params, observation_model, strategy=ThresholdStrategy(0.6)
        )
        for _ in range(20):
            action, _ = controller.step(0)
            assert action is NodeAction.WAIT

    def test_recovery_resets_belief_and_clock(self, params, observation_model):
        controller = NodeController(
            "n1", params, observation_model, strategy=ThresholdStrategy(0.3)
        )
        for _ in range(10):
            action, _ = controller.step(9)
            if action is NodeAction.RECOVER:
                break
        assert controller.belief == pytest.approx(params.p_a)
        assert controller.time_since_recovery == 0
        assert controller.total_recoveries >= 1

    def test_btr_constraint_forces_recovery(self, observation_model):
        params = NodeParameters(delta_r=5)
        controller = NodeController(
            "n1", params, observation_model, strategy=ThresholdStrategy(1.0)
        )
        actions = [controller.step(0)[0] for _ in range(12)]
        assert actions[:4] == [NodeAction.WAIT] * 4
        assert NodeAction.RECOVER in actions[4:6]

    def test_btr_disabled(self, observation_model):
        params = NodeParameters(delta_r=5)
        controller = NodeController(
            "n1", params, observation_model, strategy=ThresholdStrategy(1.0), enforce_btr=False
        )
        actions = [controller.step(0)[0] for _ in range(12)]
        assert all(action is NodeAction.WAIT for action in actions)

    def test_infinite_delta_r_never_forces(self, observation_model):
        params = NodeParameters(delta_r=math.inf)
        controller = NodeController(
            "n1", params, observation_model, strategy=ThresholdStrategy(1.0)
        )
        assert not controller.btr_deadline_reached()

    def test_state_snapshot(self, params, observation_model):
        controller = NodeController("n1", params, observation_model)
        controller.step(3)
        state = controller.state()
        assert state.last_observation == 3
        assert 0.0 <= state.belief <= 1.0

    def test_reset(self, params, observation_model):
        controller = NodeController("n1", params, observation_model)
        controller.step(9)
        controller.reset()
        assert controller.belief == pytest.approx(params.p_a)
        assert controller.time_since_recovery == 0


class TestSystemController:
    def test_minimum_nodes(self):
        controller = SystemController(f=2, k=1)
        assert controller.minimum_nodes == 6

    def test_expected_healthy_nodes_floor(self):
        controller = SystemController(f=1, smax=10)
        beliefs = {"a": 0.1, "b": 0.2, "c": 0.9}
        # sum of (1 - b) = 0.9 + 0.8 + 0.1 = 1.8 -> floor 1
        assert controller.expected_healthy_nodes(beliefs) == 1

    def test_missing_reports_are_evicted(self):
        controller = SystemController(f=1, enforce_invariant=False)
        decision = controller.step(
            reported_beliefs={"a": 0.1},
            registered_nodes={"a", "b"},
            current_node_count=2,
        )
        assert decision.evicted_nodes == ("b",)
        assert controller.total_evictions == 1

    def test_strategy_drives_addition(self):
        controller = SystemController(
            f=1, strategy=ReplicationThresholdStrategy(beta=5), smax=10, enforce_invariant=False
        )
        decision = controller.step({"a": 0.5, "b": 0.5}, current_node_count=2)
        assert decision.add_node

    def test_no_addition_above_threshold(self):
        controller = SystemController(
            f=1, strategy=ReplicationThresholdStrategy(beta=1), smax=10, enforce_invariant=False
        )
        beliefs = {f"n{i}": 0.0 for i in range(8)}
        decision = controller.step(beliefs, current_node_count=8)
        assert not decision.add_node

    def test_invariant_forces_addition(self):
        controller = SystemController(f=1, k=1, enforce_invariant=True, smax=10)
        decision = controller.step({"a": 0.1, "b": 0.1}, current_node_count=2)
        assert decision.add_node
        assert decision.emergency_add

    def test_addition_capped_at_smax(self):
        controller = SystemController(
            f=1, strategy=ReplicationThresholdStrategy(beta=100), smax=3, enforce_invariant=False
        )
        beliefs = {f"n{i}": 0.0 for i in range(3)}
        decision = controller.step(beliefs, current_node_count=3)
        assert not decision.add_node

    def test_validates_arguments(self):
        with pytest.raises(ValueError):
            SystemController(f=-1)
        with pytest.raises(ValueError):
            SystemController(f=1, k=0)
        with pytest.raises(ValueError):
            SystemController(f=1, smax=0)

    def test_counts_additions(self):
        controller = SystemController(
            f=1, strategy=ReplicationThresholdStrategy(beta=100), smax=20, enforce_invariant=False
        )
        for _ in range(3):
            controller.step({"a": 0.0, "b": 0.0}, current_node_count=2)
        assert controller.total_additions == 3

    def test_eviction_triggers_emergency_add(self):
        """A lost report shrinks N_t below 2f + 1 + k and forces an add."""
        controller = SystemController(f=1, k=1, enforce_invariant=True, smax=10)
        decision = controller.step(
            reported_beliefs={"a": 0.1, "b": 0.1, "c": 0.1},
            registered_nodes={"a", "b", "c", "d"},
            current_node_count=4,
        )
        assert decision.evicted_nodes == ("d",)
        assert decision.add_node and decision.emergency_add
        assert controller.total_evictions == 1
        assert controller.emergency_additions == 1
        assert controller.total_additions == 1

    def test_emergency_add_dropped_when_cluster_exhausted(self):
        """The Prop. 1 override cannot exceed the physical cluster size."""
        controller = SystemController(f=2, k=1, enforce_invariant=True, smax=3)
        beliefs = {f"n{i}": 0.0 for i in range(3)}
        decision = controller.step(beliefs, current_node_count=3)
        # N_t = 3 < 2f + 1 + k = 6 wants an emergency add, but smax = 3
        # drops the request; the attempt is still counted.
        assert not decision.add_node
        assert not decision.emergency_add
        assert controller.emergency_additions == 1
        assert controller.total_additions == 0

    def test_eviction_ignores_unregistered_reports(self):
        """Reports from unknown nodes neither evict nor enter the state."""
        controller = SystemController(f=1, enforce_invariant=False, smax=10)
        decision = controller.step(
            reported_beliefs={"a": 0.0, "ghost": 0.0},
            registered_nodes={"a"},
            current_node_count=1,
        )
        assert decision.evicted_nodes == ()
        assert decision.state == 1

    def test_strategy_add_on_top_of_eviction(self):
        """Evictions and strategy-driven additions compose in one step."""
        controller = SystemController(
            f=1,
            k=1,
            strategy=ReplicationThresholdStrategy(beta=10),
            smax=10,
            enforce_invariant=True,
        )
        decision = controller.step(
            reported_beliefs={"a": 0.0, "b": 0.0, "c": 0.0, "d": 0.0},
            registered_nodes={"a", "b", "c", "d", "e"},
            current_node_count=5,
        )
        assert decision.evicted_nodes == ("e",)
        # The strategy adds (state 4 <= beta); no emergency flag since the
        # addition was not forced.
        assert decision.add_node and not decision.emergency_add
