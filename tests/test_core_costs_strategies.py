"""Tests for the cost functions (Eq. 5, Eq. 9) and the control strategies."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import (
    MixedReplicationStrategy,
    MultiThresholdStrategy,
    NeverAddStrategy,
    NoRecoveryStrategy,
    NodeAction,
    NodeCostFunction,
    NodeState,
    PeriodicStrategy,
    ReplicationThresholdStrategy,
    SystemCostFunction,
    TabularReplicationStrategy,
    ThresholdStrategy,
    expected_node_cost,
    lagrangian_system_cost,
    node_cost,
    system_cost,
)
from repro.core.strategies import AdaptiveHeuristicReplicationStrategy, BeliefPeriodicStrategy


class TestNodeCost:
    def test_wait_while_healthy_is_free(self):
        assert node_cost(NodeState.HEALTHY, NodeAction.WAIT) == 0.0

    def test_wait_while_compromised_costs_eta(self):
        assert node_cost(NodeState.COMPROMISED, NodeAction.WAIT, eta=2.0) == 2.0
        assert node_cost(NodeState.COMPROMISED, NodeAction.WAIT, eta=3.0) == 3.0

    def test_recovery_costs_one(self):
        assert node_cost(NodeState.HEALTHY, NodeAction.RECOVER) == 1.0
        assert node_cost(NodeState.COMPROMISED, NodeAction.RECOVER) == 1.0

    def test_crashed_state_has_no_cost(self):
        assert node_cost(NodeState.CRASHED, NodeAction.WAIT) == 0.0

    def test_rejects_eta_below_one(self):
        with pytest.raises(ValueError):
            node_cost(NodeState.HEALTHY, NodeAction.WAIT, eta=0.5)

    def test_expected_cost_on_belief(self):
        assert expected_node_cost(0.5, NodeAction.WAIT, eta=2.0) == pytest.approx(1.0)
        assert expected_node_cost(0.5, NodeAction.RECOVER, eta=2.0) == pytest.approx(1.0)
        assert expected_node_cost(0.9, NodeAction.WAIT, eta=2.0) == pytest.approx(1.8)

    def test_expected_cost_rejects_invalid_belief(self):
        with pytest.raises(ValueError):
            expected_node_cost(-0.1, NodeAction.WAIT)

    def test_cost_function_matrix(self):
        matrix = NodeCostFunction(eta=2.0).matrix()
        assert matrix.shape == (2, 3)
        assert matrix[0, 1] == 2.0  # wait while compromised
        assert matrix[1, 0] == 1.0  # recover while healthy

    def test_indifference_belief_is_one_over_eta(self):
        """c(b, W) = c(b, R) exactly at b = 1/eta, the myopic threshold."""
        eta = 2.0
        b = 1.0 / eta
        assert expected_node_cost(b, NodeAction.WAIT, eta) == pytest.approx(
            expected_node_cost(b, NodeAction.RECOVER, eta)
        )


class TestSystemCost:
    def test_cost_is_node_count(self):
        assert system_cost(7) == 7.0

    def test_rejects_negative_state(self):
        with pytest.raises(ValueError):
            system_cost(-1)

    def test_lagrangian_penalty_applied_below_f_plus_one(self):
        assert lagrangian_system_cost(3, f=3, lagrange_multiplier=10.0) == 13.0
        assert lagrangian_system_cost(4, f=3, lagrange_multiplier=10.0) == 4.0

    def test_lagrangian_rejects_negative_multiplier(self):
        with pytest.raises(ValueError):
            lagrangian_system_cost(3, f=3, lagrange_multiplier=-1.0)

    def test_system_cost_function_vector(self):
        cost = SystemCostFunction(f=1, lagrange_multiplier=5.0)
        vector = cost.vector(4)
        assert vector.tolist() == [5.0, 6.0, 2.0, 3.0]

    def test_availability_indicator(self):
        cost = SystemCostFunction(f=2)
        assert cost.availability_indicator(3) == 1.0
        assert cost.availability_indicator(2) == 0.0


class TestRecoveryStrategies:
    def test_threshold_strategy(self):
        strategy = ThresholdStrategy(0.5)
        assert strategy.action(0.6) is NodeAction.RECOVER
        assert strategy.action(0.4) is NodeAction.WAIT
        assert strategy.action(0.5) is NodeAction.RECOVER

    def test_threshold_strategy_validates(self):
        with pytest.raises(ValueError):
            ThresholdStrategy(1.5)

    def test_no_recovery_never_recovers(self):
        strategy = NoRecoveryStrategy()
        assert strategy.action(1.0, 1000) is NodeAction.WAIT

    def test_periodic_recovers_on_schedule(self):
        strategy = PeriodicStrategy(5)
        assert strategy.action(0.0, 3) is NodeAction.WAIT
        assert strategy.action(0.0, 4) is NodeAction.RECOVER
        assert strategy.action(1.0, 0) is NodeAction.WAIT

    def test_periodic_with_infinite_period_never_recovers(self):
        strategy = PeriodicStrategy(math.inf)
        assert strategy.action(1.0, 10_000) is NodeAction.WAIT

    def test_periodic_validates_period(self):
        with pytest.raises(ValueError):
            PeriodicStrategy(0)

    def test_belief_periodic_emergency_trigger(self):
        strategy = BeliefPeriodicStrategy(period=100, alpha=0.9)
        assert strategy.action(0.95, 1) is NodeAction.RECOVER
        assert strategy.action(0.5, 1) is NodeAction.WAIT

    def test_multi_threshold_uses_time_index(self):
        strategy = MultiThresholdStrategy((0.9, 0.5, 0.1), delta_r=4)
        assert strategy.action(0.6, 0) is NodeAction.WAIT  # threshold 0.9
        assert strategy.action(0.6, 1) is NodeAction.RECOVER  # threshold 0.5
        assert strategy.action(0.6, 10) is NodeAction.RECOVER  # clamps to last

    def test_multi_threshold_dimension_rule(self):
        assert MultiThresholdStrategy.parameter_dimension(math.inf) == 1
        assert MultiThresholdStrategy.parameter_dimension(5) == 4
        assert MultiThresholdStrategy.parameter_dimension(1) == 1

    def test_multi_threshold_from_vector(self):
        strategy = MultiThresholdStrategy.from_vector(np.array([0.4, 0.6]))
        assert strategy.thresholds == (0.4, 0.6)

    def test_multi_threshold_validates(self):
        with pytest.raises(ValueError):
            MultiThresholdStrategy(())
        with pytest.raises(ValueError):
            MultiThresholdStrategy((1.5,))


class TestReplicationStrategies:
    def test_threshold_strategy_adds_below_beta(self):
        strategy = ReplicationThresholdStrategy(beta=4)
        assert strategy.action(3) == 1
        assert strategy.action(4) == 1
        assert strategy.action(5) == 0

    def test_mixed_strategy_interpolates(self):
        low = ReplicationThresholdStrategy(beta=2)
        high = ReplicationThresholdStrategy(beta=5)
        mixed = MixedReplicationStrategy(low, high, kappa=0.25)
        # state 4: only the high-threshold strategy adds.
        assert mixed.add_probability(4) == pytest.approx(0.75)
        assert mixed.add_probability(1) == pytest.approx(1.0)
        assert mixed.add_probability(6) == pytest.approx(0.0)

    def test_mixed_strategy_validates_kappa(self):
        low = ReplicationThresholdStrategy(beta=2)
        with pytest.raises(ValueError):
            MixedReplicationStrategy(low, low, kappa=1.5)

    def test_mixed_strategy_sampling(self, rng):
        low = ReplicationThresholdStrategy(beta=2)
        high = ReplicationThresholdStrategy(beta=5)
        mixed = MixedReplicationStrategy(low, high, kappa=0.5)
        samples = [mixed.action(4, rng) for _ in range(2000)]
        assert 0.4 < np.mean(samples) < 0.6

    def test_tabular_strategy_lookup_and_default(self, rng):
        strategy = TabularReplicationStrategy({2: 1.0, 5: 0.0}, default_add_probability=0.5)
        assert strategy.add_probability(2) == 1.0
        assert strategy.add_probability(5) == 0.0
        assert strategy.add_probability(9) == 0.5
        assert strategy.action(2, rng) == 1

    def test_tabular_threshold_like(self):
        monotone = TabularReplicationStrategy({0: 1.0, 1: 1.0, 2: 0.3, 3: 0.0})
        not_monotone = TabularReplicationStrategy({0: 0.0, 1: 1.0})
        assert monotone.is_threshold_like()
        assert not not_monotone.is_threshold_like()

    def test_never_add(self, rng):
        strategy = NeverAddStrategy()
        assert strategy.action(0, rng) == 0
        assert strategy.add_probability(0) == 0.0

    def test_adaptive_heuristic_trigger(self):
        heuristic = AdaptiveHeuristicReplicationStrategy(alert_mean=3.0)
        assert heuristic.triggered(6.0)
        assert not heuristic.triggered(5.0)
        assert heuristic.add_probability(3) == 0.0
