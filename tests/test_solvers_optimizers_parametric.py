"""Tests for the black-box optimizers, Algorithm 1, the simulator and PPO."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import (
    NodeParameters,
    NoRecoveryStrategy,
    PeriodicStrategy,
    ThresholdStrategy,
)
from repro.solvers import (
    BayesianOptimization,
    CrossEntropyMethod,
    DifferentialEvolution,
    PPOConfig,
    RandomSearch,
    RecoverySimulator,
    SPSA,
    solve_recovery_problem,
    threshold_dimension,
    train_ppo_recovery,
)


def sphere(theta: np.ndarray) -> float:
    """Convex test objective with minimum at 0.3 in every coordinate."""
    return float(np.sum((theta - 0.3) ** 2))


class TestOptimizers:
    @pytest.mark.parametrize(
        "optimizer",
        [
            CrossEntropyMethod(population_size=30, iterations=15),
            DifferentialEvolution(population_size=8, iterations=25),
            SPSA(iterations=80),
            BayesianOptimization(iterations=20, initial_samples=5),
            RandomSearch(iterations=300),
        ],
        ids=["cem", "de", "spsa", "bo", "random"],
    )
    def test_minimizes_sphere(self, optimizer):
        result = optimizer.optimize(sphere, dimension=2, seed=0)
        assert result.best_value < 0.1
        assert np.all(result.best_parameters >= 0.0)
        assert np.all(result.best_parameters <= 1.0)

    def test_history_is_non_increasing(self):
        result = CrossEntropyMethod(population_size=20, iterations=10).optimize(
            sphere, dimension=3, seed=1
        )
        assert all(b <= a + 1e-12 for a, b in zip(result.history, result.history[1:]))

    def test_evaluation_counts_recorded(self):
        optimizer = RandomSearch(iterations=10)
        result = optimizer.optimize(sphere, dimension=2, seed=0)
        assert result.evaluations == 11

    def test_reproducible_with_seed(self):
        optimizer = DifferentialEvolution(population_size=6, iterations=10)
        a = optimizer.optimize(sphere, dimension=2, seed=7)
        b = optimizer.optimize(sphere, dimension=2, seed=7)
        assert np.allclose(a.best_parameters, b.best_parameters)

    def test_cem_respects_bounds_in_high_dimension(self):
        result = CrossEntropyMethod(population_size=20, iterations=5).optimize(
            sphere, dimension=14, seed=0
        )
        assert np.all(result.best_parameters >= 0.0)
        assert np.all(result.best_parameters <= 1.0)


class TestRecoverySimulator:
    @pytest.fixture
    def simulator(self, observation_model):
        return RecoverySimulator(NodeParameters(p_a=0.1), observation_model, horizon=100)

    def test_no_recovery_costs_more_than_threshold(self, simulator):
        threshold_cost = simulator.estimate_cost(ThresholdStrategy(0.7), num_episodes=10, seed=0)
        no_recovery_cost = simulator.estimate_cost(NoRecoveryStrategy(), num_episodes=10, seed=0)
        assert threshold_cost < no_recovery_cost

    def test_always_recover_frequency_is_one(self, simulator, rng):
        result = simulator.run_episode(ThresholdStrategy(0.0), rng)
        assert result.recovery_frequency == pytest.approx(1.0)
        assert result.average_cost == pytest.approx(1.0)

    def test_periodic_recovery_frequency(self, simulator, rng):
        result = simulator.run_episode(PeriodicStrategy(10), rng)
        assert 0.05 <= result.recovery_frequency <= 0.25

    def test_btr_constraint_enforced(self, observation_model, rng):
        params = NodeParameters(p_a=0.01, delta_r=10)
        simulator = RecoverySimulator(params, observation_model, horizon=100)
        result = simulator.run_episode(NoRecoveryStrategy(), rng)
        # Forced recoveries every 10 steps -> frequency around 0.1.
        assert result.recovery_frequency >= 0.08

    def test_evaluate_returns_per_episode_results(self, simulator):
        results = simulator.evaluate(ThresholdStrategy(0.7), num_episodes=5, seed=0)
        assert len(results) == 5
        assert all(r.steps == 100 for r in results)

    def test_validates_horizon(self, observation_model):
        with pytest.raises(ValueError):
            RecoverySimulator(NodeParameters(), observation_model, horizon=0)


class TestAlgorithm1:
    def test_threshold_dimension_rule(self):
        assert threshold_dimension(math.inf) == 1
        assert threshold_dimension(5) == 4
        assert threshold_dimension(1) == 1
        with pytest.raises(ValueError):
            threshold_dimension(0.2)

    def test_finds_reasonable_threshold(self, observation_model):
        params = NodeParameters(p_a=0.1, delta_r=math.inf)
        solution = solve_recovery_problem(
            params,
            observation_model,
            CrossEntropyMethod(population_size=20, iterations=8),
            horizon=80,
            episodes_per_evaluation=4,
            final_evaluation_episodes=10,
            seed=0,
        )
        assert len(solution.strategy.thresholds) == 1
        assert solution.estimated_cost < 0.6  # far better than never recovering
        assert solution.wall_clock_seconds > 0.0

    def test_respects_delta_r_dimension(self, observation_model):
        params = NodeParameters(p_a=0.1, delta_r=5)
        solution = solve_recovery_problem(
            params,
            observation_model,
            RandomSearch(iterations=10),
            horizon=40,
            episodes_per_evaluation=2,
            final_evaluation_episodes=4,
            seed=0,
        )
        assert len(solution.strategy.thresholds) == 4

    def test_better_than_no_recovery(self, observation_model):
        params = NodeParameters(p_a=0.1, delta_r=math.inf)
        simulator = RecoverySimulator(params, observation_model, horizon=80)
        baseline = simulator.estimate_cost(NoRecoveryStrategy(), num_episodes=10, seed=1)
        solution = solve_recovery_problem(
            params,
            observation_model,
            RandomSearch(iterations=30),
            horizon=80,
            episodes_per_evaluation=4,
            final_evaluation_episodes=10,
            seed=1,
        )
        assert solution.estimated_cost < baseline

    def test_optimizer_name_recorded(self, observation_model):
        solution = solve_recovery_problem(
            NodeParameters(delta_r=math.inf),
            observation_model,
            RandomSearch(iterations=5),
            horizon=30,
            episodes_per_evaluation=2,
            final_evaluation_episodes=2,
            seed=0,
        )
        assert solution.optimizer_name == "random"


class TestPPOBaseline:
    def test_training_runs_and_produces_policy(self, observation_model):
        config = PPOConfig(updates=3, rollout_episodes=2, horizon=30, hidden_size=8)
        result = train_ppo_recovery(NodeParameters(p_a=0.1), observation_model, config, seed=0)
        assert len(result.history) == 3
        assert np.isfinite(result.estimated_cost)
        assert result.wall_clock_seconds > 0.0

    def test_policy_action_interface(self, observation_model):
        config = PPOConfig(updates=1, rollout_episodes=1, horizon=20, hidden_size=8)
        result = train_ppo_recovery(NodeParameters(p_a=0.1), observation_model, config, seed=0)
        action = result.policy.action(0.9, 3)
        assert action in (0, 1) or hasattr(action, "name")

    def test_ppo_cost_bounded_by_always_recover(self, observation_model):
        """PPO should not be worse than the trivial always-recover policy by much."""
        config = PPOConfig(updates=5, rollout_episodes=3, horizon=40, hidden_size=16)
        result = train_ppo_recovery(NodeParameters(p_a=0.1), observation_model, config, seed=0)
        assert result.estimated_cost <= 1.6
