"""Tests for reliability analysis (Appendix F, Fig. 6) and the metrics (Section III-C)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    EpisodeMetrics,
    MetricsCollector,
    NodeParameters,
    ReliabilityAnalysis,
    confidence_interval,
    healthy_nodes_transition_matrix,
    mean_time_to_failure,
    metric_divergence_report,
    reliability_function,
    summarize_runs,
)


class TestHealthyNodesChain:
    def test_rows_stochastic(self):
        matrix = healthy_nodes_transition_matrix(10, 0.1)
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_no_spontaneous_births(self):
        matrix = healthy_nodes_transition_matrix(5, 0.2)
        for s in range(6):
            for s_next in range(s + 1, 6):
                assert matrix[s, s_next] == pytest.approx(0.0)

    def test_absorbing_threshold(self):
        matrix = healthy_nodes_transition_matrix(5, 0.2, absorbing_threshold=2)
        for s in range(3):
            assert matrix[s, s] == 1.0

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            healthy_nodes_transition_matrix(0, 0.1)
        with pytest.raises(ValueError):
            healthy_nodes_transition_matrix(5, 1.5)


class TestMTTF:
    def test_zero_when_starting_failed(self):
        matrix = healthy_nodes_transition_matrix(5, 0.2)
        assert mean_time_to_failure(matrix, failure_threshold=3, initial_state=2) == 0.0

    def test_single_node_geometric(self):
        p_fail = 0.25
        matrix = healthy_nodes_transition_matrix(1, p_fail)
        mttf = mean_time_to_failure(matrix, failure_threshold=0, initial_state=1)
        assert mttf == pytest.approx(1.0 / p_fail, rel=1e-9)

    def test_more_nodes_live_longer(self):
        """The Fig. 6a shape: MTTF grows with N_1."""
        analysis = ReliabilityAnalysis(NodeParameters(p_a=0.025), f=3, k=1)
        curve = analysis.mttf_curve([10, 20, 40, 80])
        assert np.all(np.diff(curve) > 0)

    def test_higher_attack_rate_reduces_mttf(self):
        """The Fig. 6a ordering across p_A curves."""
        aggressive = ReliabilityAnalysis(NodeParameters(p_a=0.1), f=3, k=1).mttf(50)
        mild = ReliabilityAnalysis(NodeParameters(p_a=0.01), f=3, k=1).mttf(50)
        assert mild > aggressive

    def test_validates_initial_state(self):
        matrix = healthy_nodes_transition_matrix(5, 0.2)
        with pytest.raises(ValueError):
            mean_time_to_failure(matrix, failure_threshold=1, initial_state=99)


class TestReliabilityFunction:
    def test_monotone_decreasing(self):
        analysis = ReliabilityAnalysis(NodeParameters(p_a=0.05), f=3, k=1)
        curve = analysis.reliability_curve(25, 100)
        assert np.all(np.diff(curve) <= 1e-12)

    def test_bounded_in_unit_interval(self):
        analysis = ReliabilityAnalysis(NodeParameters(p_a=0.05), f=3, k=1)
        curve = analysis.reliability_curve(25, 100)
        assert np.all((curve >= -1e-12) & (curve <= 1.0 + 1e-12))

    def test_more_nodes_more_reliable(self):
        """The Fig. 6b ordering: larger N_1 gives higher reliability at every t."""
        analysis = ReliabilityAnalysis(NodeParameters(p_a=0.05), f=3, k=1)
        small = analysis.reliability_curve(25, 60)
        large = analysis.reliability_curve(100, 60)
        assert np.all(large >= small - 1e-9)
        assert large[30] > small[30]

    def test_reliability_is_survival_of_mttf(self):
        """MTTF = sum_{t>=0} P[T > t] = 1 + sum_{t>=1} R(t)."""
        analysis = ReliabilityAnalysis(NodeParameters(p_a=0.1), f=1, k=1)
        mttf = analysis.mttf(10)
        curve = analysis.reliability_curve(10, 2000)
        assert 1.0 + float(curve.sum()) == pytest.approx(mttf, rel=1e-2)

    def test_direct_reliability_function(self):
        matrix = healthy_nodes_transition_matrix(4, 0.3)
        curve = reliability_function(matrix, failure_threshold=1, initial_state=4, horizon=20)
        assert curve.shape == (20,)
        assert curve[0] > curve[-1]


class TestMetricsCollector:
    def test_availability_counts_steps_within_f(self):
        collector = MetricsCollector(f=1)
        collector.record_step(healthy=3, compromised=1, crashed=0)
        collector.record_step(healthy=2, compromised=2, crashed=0)
        assert collector.availability() == pytest.approx(0.5)

    def test_empty_collector_defaults(self):
        collector = MetricsCollector(f=1)
        metrics = collector.finalize()
        assert metrics.availability == 1.0
        assert metrics.time_to_recovery == 0.0
        assert metrics.recovery_frequency == 0.0

    def test_recovery_frequency_is_per_node(self):
        collector = MetricsCollector(f=1)
        for _ in range(10):
            collector.record_step(healthy=4, compromised=0, crashed=0, recoveries=1)
        assert collector.recovery_frequency() == pytest.approx(10 / 40)

    def test_time_to_recovery_accounting(self):
        collector = MetricsCollector(f=1)
        collector.record_compromise("a")
        collector.record_step(4, 1, 0)
        collector.record_step(4, 1, 0)
        collector.record_recovery_start("a")
        collector.record_step(5, 0, 0, recoveries=1)
        assert collector.time_to_recovery() == pytest.approx(2.0)

    def test_unrecovered_compromise_is_censored(self):
        collector = MetricsCollector(f=1, max_time_to_recovery=100)
        collector.record_compromise("a")
        for _ in range(5):
            collector.record_step(2, 1, 0)
        assert collector.time_to_recovery() == pytest.approx(5.0)

    def test_censoring_respects_ceiling(self):
        collector = MetricsCollector(f=1, max_time_to_recovery=3)
        collector.record_compromise("a")
        for _ in range(10):
            collector.record_step(2, 1, 0)
        assert collector.time_to_recovery() == pytest.approx(3.0)

    def test_negative_counts_rejected(self):
        collector = MetricsCollector(f=1)
        with pytest.raises(ValueError):
            collector.record_step(-1, 0, 0)

    def test_f_must_be_non_negative(self):
        with pytest.raises(ValueError):
            MetricsCollector(f=-1)

    def test_finalize_counts(self):
        collector = MetricsCollector(f=1)
        collector.record_compromise("a")
        collector.record_step(2, 1, 0, recoveries=1)
        collector.record_recovery_start("a")
        metrics = collector.finalize()
        assert metrics.compromises == 1
        assert metrics.recoveries == 1
        assert metrics.episode_length == 1
        assert metrics.average_nodes == pytest.approx(3.0)


class TestStatistics:
    def test_confidence_interval_single_sample(self):
        mean, half = confidence_interval([5.0])
        assert mean == 5.0
        assert half == 0.0

    def test_confidence_interval_contains_mean(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(10.0, 1.0, size=50)
        mean, half = confidence_interval(samples)
        assert abs(mean - 10.0) < half + 0.5
        assert half > 0.0

    def test_confidence_interval_zero_variance(self):
        mean, half = confidence_interval([2.0, 2.0, 2.0])
        assert mean == 2.0
        assert half == 0.0

    def test_confidence_interval_requires_samples(self):
        with pytest.raises(ValueError):
            confidence_interval([])

    def test_summarize_runs(self):
        runs = [
            EpisodeMetrics(0.9, 2.0, 0.1, 3.0, 100),
            EpisodeMetrics(0.8, 4.0, 0.2, 3.0, 100),
        ]
        summary = summarize_runs(runs)
        assert summary["availability"][0] == pytest.approx(0.85)
        assert summary["time_to_recovery"][0] == pytest.approx(3.0)

    def test_summarize_runs_requires_runs(self):
        with pytest.raises(ValueError):
            summarize_runs([])

    def test_metric_divergence_report_ranks_informative_metric_higher(self, rng):
        """The Appendix H analysis: a well-separated metric has larger KL divergence."""
        report = metric_divergence_report(
            {
                "ids_alerts": (rng.normal(10, 2, 500), rng.normal(30, 2, 500)),
                "blocks_read": (rng.normal(10, 2, 500), rng.normal(10.5, 2, 500)),
            }
        )
        assert report["ids_alerts"] > report["blocks_read"]

    def test_metric_divergence_constant_metric_is_zero(self):
        report = metric_divergence_report({"constant": ([1.0] * 10, [1.0] * 10)})
        assert report["constant"] == 0.0

    def test_metric_divergence_requires_samples(self):
        with pytest.raises(ValueError):
            metric_divergence_report({"empty": ([], [1.0])})
