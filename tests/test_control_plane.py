"""Tests for the closed-loop two-level control plane (``repro.control``).

The load-bearing guarantee is *bit parity*: the vectorized system
controller and the batched two-level loop must take decision-for-decision
identical trajectories to the scalar :class:`SystemController` reference
under shared seeds — that is what makes the 5x+ closed-loop speedup a free
lunch rather than a model change.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.control import (
    PPOReplicationStrategy,
    TwoLevelController,
    VectorSystemController,
    evaluate_replication_closed_loop,
    expected_healthy_nodes_batch,
    fit_system_model_from_env,
    fit_system_model_from_pairs,
    fit_system_model_from_trace,
    identify_replication_strategies,
    strategy_consumes_rng,
    train_ppo_replication,
)
from repro.core import (
    BetaBinomialObservationModel,
    MixedReplicationStrategy,
    NeverAddStrategy,
    NodeParameters,
    NoRecoveryStrategy,
    ReplicationThresholdStrategy,
    SystemController,
    TabularReplicationStrategy,
    ThresholdStrategy,
)
from repro.envs import FleetVectorEnv, StrategyPolicy, rollout
from repro.sim import FleetScenario
from repro.solvers.ppo import PPOConfig


REPLICATION_STRATEGIES = {
    "never": NeverAddStrategy(),
    "threshold": ReplicationThresholdStrategy(beta=4),
    "mixed": MixedReplicationStrategy(
        ReplicationThresholdStrategy(3), ReplicationThresholdStrategy(5), kappa=0.37
    ),
    "tabular": TabularReplicationStrategy(
        {0: 1.0, 1: 1.0, 2: 0.8, 3: 0.5, 4: 0.25, 5: 0.0},
        default_add_probability=0.0,
    ),
}


@pytest.fixture
def observation_model():
    return BetaBinomialObservationModel()


def _fleet_scenario(observation_model, **overrides):
    defaults = dict(num_nodes=6, horizon=40, f=1)
    defaults.update(overrides)
    return FleetScenario.homogeneous(
        NodeParameters(p_a=0.12, p_c1=0.02, p_c2=0.06, delta_r=15),
        observation_model,
        **defaults,
    )


class TestVectorSystemControllerParity:
    """One vectorized controller == B scalar controllers, bit for bit."""

    @pytest.mark.parametrize("name", sorted(REPLICATION_STRATEGIES))
    def test_decision_parity_under_shared_seeds(self, name):
        strategy = REPLICATION_STRATEGIES[name]
        batch, slots, steps, smax = 8, 7, 30, 7
        seed = 1234
        rng = np.random.default_rng(99)

        vector = VectorSystemController(
            f=1,
            k=1,
            strategy=strategy,
            smax=smax,
            num_episodes=batch,
            horizon=steps,
            seed=seed,
        )
        children = np.random.SeedSequence(seed).spawn(batch)
        scalars = [
            SystemController(f=1, k=1, strategy=strategy, smax=smax, seed=child)
            for child in children
        ]

        for _ in range(steps):
            beliefs = rng.random((batch, slots))
            registered = rng.random((batch, slots)) < 0.85
            reporting = registered & (rng.random((batch, slots)) < 0.9)
            counts = registered.sum(axis=1)
            decision = vector.step(
                beliefs, reporting=reporting, registered=registered, node_counts=counts
            )
            for b, controller in enumerate(scalars):
                reported = {
                    j: float(beliefs[b, j])
                    for j in range(slots)
                    if reporting[b, j]
                }
                scalar = controller.step(
                    reported_beliefs=reported,
                    registered_nodes={j for j in range(slots) if registered[b, j]},
                    current_node_count=int(counts[b]),
                )
                assert decision.state[b] == scalar.state
                assert bool(decision.add_node[b]) == scalar.add_node
                assert bool(decision.emergency_add[b]) == scalar.emergency_add
                assert decision.evicted[b].sum() == len(scalar.evicted_nodes)
        for b, controller in enumerate(scalars):
            assert vector.total_additions[b] == controller.total_additions
            assert vector.total_evictions[b] == controller.total_evictions
            assert vector.emergency_additions[b] == controller.emergency_additions

    def test_state_matches_scalar_formula(self):
        controller = SystemController(f=1, smax=10)
        beliefs = np.array([[0.1, 0.2, 0.9, 0.4]])
        reporting = np.array([[True, True, True, False]])
        state = expected_healthy_nodes_batch(beliefs, reporting, smax=10)
        assert state[0] == controller.expected_healthy_nodes(
            {0: 0.1, 1: 0.2, 2: 0.9}
        )

    def test_strategy_classification(self):
        assert not strategy_consumes_rng(ReplicationThresholdStrategy(beta=2))
        assert not strategy_consumes_rng(NeverAddStrategy())
        assert strategy_consumes_rng(REPLICATION_STRATEGIES["mixed"])
        assert strategy_consumes_rng(REPLICATION_STRATEGIES["tabular"])

    def test_stochastic_horizon_exhaustion_raises(self):
        controller = VectorSystemController(
            f=1,
            strategy=REPLICATION_STRATEGIES["mixed"],
            smax=4,
            num_episodes=2,
            horizon=1,
            seed=0,
        )
        beliefs = np.zeros((2, 4))
        reporting = np.ones((2, 4), dtype=bool)
        controller.step(beliefs, reporting)
        with pytest.raises(RuntimeError):
            controller.step(beliefs, reporting)

    def test_validates_arguments(self):
        with pytest.raises(ValueError):
            VectorSystemController(f=-1)
        with pytest.raises(ValueError):
            VectorSystemController(f=1, k=0)
        with pytest.raises(ValueError):
            VectorSystemController(f=1, smax=0)
        with pytest.raises(ValueError):
            VectorSystemController(f=1, num_episodes=0)
        with pytest.raises(ValueError):
            VectorSystemController(
                f=1,
                strategy=REPLICATION_STRATEGIES["mixed"],
                num_episodes=3,
                seed_sequences=np.random.SeedSequence(0).spawn(2),
            )


class TestTwoLevelControllerParity:
    """Full closed-loop trace parity between the batched and scalar paths."""

    @pytest.mark.parametrize("name", ["never", "threshold", "mixed", "tabular"])
    def test_closed_loop_trace_parity(self, observation_model, name):
        scenario = _fleet_scenario(observation_model)
        controller = TwoLevelController(
            scenario,
            num_envs=6,
            recovery_policy=ThresholdStrategy(0.7),
            replication_strategy=REPLICATION_STRATEGIES[name],
            initial_nodes=4,
            record_decisions=True,
        )
        batched = controller.run(seed=77)
        batched_trace = controller.last_decision_trace
        scalar = controller.run_scalar_reference(seed=77)
        scalar_trace = controller.last_decision_trace

        for t in range(scenario.horizon):
            assert np.array_equal(batched_trace.states[t], scalar_trace.states[t])
            assert np.array_equal(batched_trace.adds[t], scalar_trace.adds[t])
            assert np.array_equal(
                batched_trace.emergencies[t], scalar_trace.emergencies[t]
            )
            assert np.array_equal(
                batched_trace.evictions[t], scalar_trace.evictions[t]
            )
        assert np.array_equal(batched.additions, scalar.additions)
        assert np.array_equal(batched.emergency_additions, scalar.emergency_additions)
        assert np.array_equal(batched.evictions, scalar.evictions)
        assert np.array_equal(batched.availability, scalar.availability)
        assert np.array_equal(batched.average_nodes, scalar.average_nodes)
        assert np.allclose(batched.average_cost, scalar.average_cost)
        assert np.allclose(batched.recovery_frequency, scalar.recovery_frequency)

    def test_different_seeds_differ(self, observation_model):
        scenario = _fleet_scenario(observation_model)
        controller = TwoLevelController(
            scenario,
            num_envs=8,
            recovery_policy=ThresholdStrategy(0.7),
            replication_strategy=REPLICATION_STRATEGIES["threshold"],
            initial_nodes=4,
        )
        first = controller.run(seed=0)
        second = controller.run(seed=1)
        assert not np.array_equal(first.availability, second.availability)


class TestTwoLevelSemantics:
    def test_recovery_limit_grants_k_per_step(self, observation_model):
        # Crash-free nodes, a policy that requests recovery everywhere and
        # no BTR deadline: exactly k of the N active slots recover per step.
        scenario = FleetScenario.homogeneous(
            NodeParameters(p_a=0.1, p_c1=0.0, p_c2=0.0, delta_r=float("inf")),
            observation_model,
            num_nodes=3,
            horizon=30,
            f=1,
        )
        controller = TwoLevelController(
            scenario,
            num_envs=4,
            recovery_policy=ThresholdStrategy(0.0),
            initial_nodes=3,
            k=1,
            enforce_invariant=False,
        )
        result = controller.run(seed=3)
        assert np.allclose(result.recovery_frequency, 1.0 / 3.0)

        unlimited = TwoLevelController(
            scenario,
            num_envs=4,
            recovery_policy=ThresholdStrategy(0.0),
            initial_nodes=3,
            k=1,
            enforce_invariant=False,
            respect_recovery_limit=False,
        )
        assert np.allclose(unlimited.run(seed=3).recovery_frequency, 1.0)

    def test_emergency_adds_maintain_quorum(self, observation_model):
        scenario = _fleet_scenario(observation_model, num_nodes=7)
        controller = TwoLevelController(
            scenario,
            num_envs=10,
            recovery_policy=ThresholdStrategy(0.7),
            replication_strategy=None,
            initial_nodes=4,
            enforce_invariant=True,
        )
        result = controller.run(seed=11)
        # Crash-prone nodes get evicted; the Prop. 1 invariant replaces them.
        assert result.evictions.sum() > 0
        assert result.emergency_additions.sum() > 0
        assert np.array_equal(result.additions, result.emergency_additions)
        minimum = 2 * scenario.f + 1 + controller.k
        assert result.average_nodes.mean() > minimum - 1.0

        passive = TwoLevelController(
            scenario,
            num_envs=10,
            recovery_policy=ThresholdStrategy(0.7),
            replication_strategy=None,
            initial_nodes=4,
            enforce_invariant=False,
        )
        drained = passive.run(seed=11)
        assert drained.additions.sum() == 0
        assert drained.average_nodes.mean() < result.average_nodes.mean()

    def test_requires_tolerance_threshold(self, observation_model):
        scenario = FleetScenario.homogeneous(
            NodeParameters(), observation_model, num_nodes=4, horizon=10
        )
        with pytest.raises(ValueError):
            TwoLevelController(scenario, 2, ThresholdStrategy(0.5))

    def test_validates_initial_nodes(self, observation_model):
        scenario = _fleet_scenario(observation_model)
        with pytest.raises(ValueError):
            TwoLevelController(
                scenario, 2, ThresholdStrategy(0.5), initial_nodes=99
            )

    def test_system_trace_shapes(self, observation_model):
        scenario = _fleet_scenario(observation_model, horizon=25)
        controller = TwoLevelController(
            scenario,
            num_envs=3,
            recovery_policy=ThresholdStrategy(0.7),
            replication_strategy=REPLICATION_STRATEGIES["threshold"],
            initial_nodes=4,
            record_system_trace=True,
        )
        controller.run(seed=0)
        trace = controller.system_trace
        assert trace.states.shape == (25, 3)
        assert trace.actions.dtype == bool
        transitions = trace.transitions()
        assert transitions.shape == (24 * 3, 3)
        assert transitions[:, 0].min() >= 0
        assert set(np.unique(transitions[:, 1])) <= {0, 1}


class TestSystemIdentification:
    def test_fit_from_pairs_shift_structure(self):
        pairs = np.array([[3, 2], [3, 3], [2, 2], [2, 1], [4, 3], [3, 2]])
        model = fit_system_model_from_pairs(pairs, smax=5, f=1, smoothing=0.25)
        assert np.allclose(model.transition.sum(axis=2), 1.0)
        assert model.num_observed_transitions == 2 * len(pairs)
        # Eq. 8 structure: adding a node shifts the successor distribution
        # up by one.  No observed successor sits at the smax boundary here,
        # so the shift is exact (no clipped mass).
        for s in range(4):
            np.testing.assert_allclose(
                model.transition[1, s, 1:], model.transition[0, s, :-1]
            )

    def test_fit_from_env_round_trip(self, observation_model):
        scenario = _fleet_scenario(observation_model, num_nodes=5, horizon=30)
        env = FleetVectorEnv(scenario, num_envs=40)
        rollout(env, StrategyPolicy(ThresholdStrategy(0.7)), seed=0)
        model = fit_system_model_from_env(env, epsilon_a=0.5)
        assert model.smax == 5
        assert model.f == scenario.f
        assert np.allclose(model.transition.sum(axis=2), 1.0)
        assert np.all(model.transition > 0.0)  # Laplace smoothing
        assert model.num_observed_transitions == 2 * 30 * 40

    def test_fit_from_trace_uses_observed_actions(self, observation_model):
        scenario = _fleet_scenario(observation_model, horizon=30)
        controller = TwoLevelController(
            scenario,
            num_envs=20,
            recovery_policy=ThresholdStrategy(0.7),
            replication_strategy=REPLICATION_STRATEGIES["threshold"],
            initial_nodes=4,
            record_system_trace=True,
        )
        controller.run(seed=0)
        model = fit_system_model_from_trace(
            controller.system_trace, smax=scenario.num_nodes, f=scenario.f
        )
        assert np.allclose(model.transition.sum(axis=2), 1.0)
        assert model.num_observed_transitions == 29 * 20

    def test_identify_and_reevaluate_loop(self, observation_model):
        scenario = _fleet_scenario(observation_model, num_nodes=5, horizon=40)
        result = identify_replication_strategies(
            scenario,
            ThresholdStrategy(0.7),
            num_fit_episodes=50,
            num_eval_episodes=20,
            epsilon_a=0.4,
            seed=0,
            initial_nodes=4,
        )
        assert result.lp.feasible
        assert "never-add" in result.closed_loop and "lp" in result.closed_loop
        for summary in result.closed_loop.values():
            availability, _ = summary["availability"]
            assert 0.0 <= availability <= 1.0
        never_nodes = result.closed_loop["never-add"]["average_nodes"][0]
        lp_nodes = result.closed_loop["lp"]["average_nodes"][0]
        assert lp_nodes >= never_nodes - 1e-9

    def test_closed_loop_evaluation_runs(self, observation_model):
        scenario = _fleet_scenario(observation_model, horizon=25)
        result = evaluate_replication_closed_loop(
            scenario,
            num_envs=10,
            recovery_policy=ThresholdStrategy(0.7),
            replication_strategy=REPLICATION_STRATEGIES["mixed"],
            seed=0,
            initial_nodes=4,
        )
        assert result.num_episodes == 10
        summary = result.summary()
        assert set(summary) == {
            "availability",
            "average_nodes",
            "average_cost",
            "recovery_frequency",
        }

    def test_fit_from_pairs_validates_shape(self):
        with pytest.raises(ValueError):
            fit_system_model_from_pairs(np.zeros((3, 3)), smax=5, f=1)


class TestPPOReplication:
    def test_training_smoke(self, observation_model):
        scenario = _fleet_scenario(observation_model, num_nodes=5, horizon=30)
        config = PPOConfig(
            updates=3, rollout_episodes=8, hidden_size=16, learning_rate=5e-2
        )
        result = train_ppo_replication(
            scenario,
            ThresholdStrategy(0.7),
            config=config,
            seed=0,
            initial_nodes=4,
            evaluation_episodes=10,
        )
        assert len(result.history) == 3
        assert len(result.availability_history) == 3
        assert result.evaluation is not None
        for s in range(scenario.num_nodes + 1):
            assert 0.0 <= result.strategy.add_probability(s) <= 1.0

    def test_strategy_is_scalar_compatible(self, observation_model):
        scenario = _fleet_scenario(observation_model, num_nodes=5, horizon=20)
        config = PPOConfig(updates=1, rollout_episodes=4, hidden_size=8)
        result = train_ppo_replication(
            scenario,
            ThresholdStrategy(0.7),
            config=config,
            seed=0,
            initial_nodes=4,
            evaluation_episodes=0,
        )
        strategy = result.strategy
        assert strategy_consumes_rng(strategy)
        controller = SystemController(f=1, strategy=strategy, smax=5, seed=0)
        decision = controller.step({0: 0.2, 1: 0.1, 2: 0.3}, current_node_count=3)
        assert decision.add_node in (True, False)

    def test_training_is_deterministic_given_seed(self, observation_model):
        scenario = _fleet_scenario(observation_model, num_nodes=5, horizon=20)
        config = PPOConfig(updates=2, rollout_episodes=4, hidden_size=8)
        first = train_ppo_replication(
            scenario, ThresholdStrategy(0.7), config=config, seed=5,
            initial_nodes=4, evaluation_episodes=0,
        )
        second = train_ppo_replication(
            scenario, ThresholdStrategy(0.7), config=config, seed=5,
            initial_nodes=4, evaluation_episodes=0,
        )
        assert first.history == second.history
        np.testing.assert_array_equal(first.policy.w1, second.policy.w1)

    def test_reference_probability_batch_agreement(self):
        rng = np.random.default_rng(0)
        from repro.solvers.ppo import PPOPolicy

        policy = PPOPolicy(PPOConfig(hidden_size=8), rng)
        strategy = PPOReplicationStrategy(policy, smax=6, reference_node_count=4)
        batch = strategy.add_probability_batch(np.array([2]), np.array([4]))
        assert strategy.add_probability(2) == pytest.approx(float(batch[0]))


class TestBaselineInteroperability:
    def test_no_recovery_baseline_runs(self, observation_model):
        scenario = _fleet_scenario(observation_model, horizon=30)
        controller = TwoLevelController(
            scenario,
            num_envs=6,
            recovery_policy=NoRecoveryStrategy(),
            initial_nodes=4,
            enforce_invariant=False,
        )
        result = controller.run(seed=0)
        # Without recoveries and with BTR disabled... the scenario enforces
        # BTR at delta_r=15, so recoveries still happen at the deadline.
        assert np.all(result.availability <= 1.0)
        assert result.steps == 30
