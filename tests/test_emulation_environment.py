"""Tests for the evaluation environment (Section VIII) and the trace dataset."""

from __future__ import annotations

import math

import pytest

from repro.core import NodeParameters, summarize_runs
from repro.emulation import (
    EmulationConfig,
    EmulationEnvironment,
    generate_traces,
    load_traces,
    no_recovery_policy,
    periodic_adaptive_policy,
    periodic_policy,
    save_traces,
    tolerance_policy,
)


@pytest.fixture
def config():
    return EmulationConfig(initial_nodes=3, horizon=150, delta_r=15, node_params=NodeParameters(p_a=0.1))


class TestEnvironmentMechanics:
    def test_initial_nodes_created(self, config):
        env = EmulationEnvironment(config, tolerance_policy(), seed=0)
        assert len(env.nodes) == 3

    def test_tolerance_threshold_rule(self):
        """Appendix E: f = min[(N1 - 1) / 2, 2]."""
        assert EmulationConfig(initial_nodes=3).tolerance_threshold() == 1
        assert EmulationConfig(initial_nodes=6).tolerance_threshold() == 2
        assert EmulationConfig(initial_nodes=9).tolerance_threshold() == 2
        assert EmulationConfig(initial_nodes=5, f=1).tolerance_threshold() == 1

    def test_step_produces_record(self, config):
        env = EmulationEnvironment(config, tolerance_policy(), seed=0)
        record = env.step()
        assert record.time_step == 1
        assert record.num_nodes >= 3
        assert set(record.beliefs) <= set(env.nodes)

    def test_run_returns_metrics(self, config):
        env = EmulationEnvironment(config, tolerance_policy(), seed=0)
        metrics = env.run(50)
        assert metrics.episode_length == 50
        assert 0.0 <= metrics.availability <= 1.0

    def test_node_count_never_exceeds_smax(self, config):
        env = EmulationEnvironment(config, periodic_adaptive_policy(10), seed=0)
        env.run(100)
        assert all(record.num_nodes <= config.max_nodes for record in env.trace)

    def test_tolerance_respects_parallel_recovery_limit(self, config):
        """Prop. 1c: TOLERANCE never recovers more than k nodes per step."""
        env = EmulationEnvironment(config, tolerance_policy(0.5), seed=0)
        env.run(100)
        assert all(record.recoveries <= config.k for record in env.trace)

    def test_tolerance_maintains_replication_invariant(self, config):
        """Prop. 1d: with the feedback replication strategy the system keeps
        N_t >= 2f + 1 + k (emergency additions)."""
        env = EmulationEnvironment(config, tolerance_policy(), seed=1)
        env.run(100)
        minimum = 2 * env.f + 1 + config.k
        # After the first few steps (initial ramp-up) the invariant holds.
        assert all(record.num_nodes >= minimum for record in env.trace[3:])

    def test_crashed_nodes_are_evicted(self):
        config = EmulationConfig(
            initial_nodes=4,
            horizon=30,
            node_params=NodeParameters(p_a=0.01, p_c1=0.2, p_c2=0.2),
        )
        env = EmulationEnvironment(config, no_recovery_policy(), seed=2)
        env.run(30)
        total_evictions = sum(record.evicted for record in env.trace)
        assert total_evictions > 0

    def test_system_state_transitions_exported(self, config):
        env = EmulationEnvironment(config, tolerance_policy(), seed=0)
        env.run(20)
        transitions = env.system_state_transitions()
        assert len(transitions) == 19
        assert all(0 <= s <= config.max_nodes for s, _, _ in transitions)

    def test_reproducible_with_seed(self, config):
        metrics_a = EmulationEnvironment(config, tolerance_policy(), seed=7).run(50)
        metrics_b = EmulationEnvironment(config, tolerance_policy(), seed=7).run(50)
        assert metrics_a.availability == metrics_b.availability
        assert metrics_a.recovery_frequency == metrics_b.recovery_frequency

    def test_reset_replays_the_episode(self, config):
        """reset() restores the construction state: same seed, same episode."""
        env = EmulationEnvironment(config, tolerance_policy(), seed=9)
        first = env.run(40)
        env.reset()
        assert env.time_step == 0 and len(env.trace) == 0
        assert len(env.nodes) == config.initial_nodes
        second = env.run(40)
        assert first == second

    def test_reset_with_new_seed_gives_new_episode(self, config):
        env = EmulationEnvironment(config, tolerance_policy(), seed=9)
        first = env.run(60)
        second = env.reset(10).run(60)
        assert first != second
        # And resetting back replays the new seed deterministically.
        assert env.reset().run(60) == second

    def test_external_actions_override_controllers(self, config):
        """step(actions) drives recoveries externally; BTR still enforced."""
        import math

        from repro.core import NodeAction

        no_btr = EmulationConfig(
            initial_nodes=3,
            horizon=50,
            delta_r=math.inf,
            node_params=NodeParameters(p_a=0.1),
        )
        env = EmulationEnvironment(no_btr, no_recovery_policy(), seed=3)
        # Never any recoveries from the NO-RECOVERY controllers...
        for _ in range(5):
            env.step()
        assert env.metrics.finalize().recoveries == 0
        # ...but external RECOVER decisions execute regardless.
        recover_all = {node_id: NodeAction.RECOVER for node_id in env.nodes}
        record = env.step(recover_all)
        assert record.recoveries > 0

    def test_observe_apply_phases_compose_to_step(self, config):
        """Driving the phase split by hand equals the one-shot step()."""
        env_a = EmulationEnvironment(config, tolerance_policy(), seed=12)
        env_b = EmulationEnvironment(config, tolerance_policy(), seed=12)
        for _ in range(20):
            env_a.step()
            env_b.apply_phase(env_b.observe_phase())
        assert env_a.metrics.finalize() == env_b.metrics.finalize()
        assert env_a.trace[-1] == env_b.trace[-1]


class TestPolicyComparison:
    """Small-scale version of the Table 7 / Fig. 12 comparison."""

    def _run(self, policy_factory, config, seeds=(0, 1, 2)):
        return [
            EmulationEnvironment(config, policy_factory(), seed=seed).run()
            for seed in seeds
        ]

    def test_tolerance_has_higher_availability_than_no_recovery(self, config):
        tolerance_runs = self._run(lambda: tolerance_policy(0.75), config)
        no_recovery_runs = self._run(no_recovery_policy, config)
        assert summarize_runs(tolerance_runs)["availability"][0] > (
            summarize_runs(no_recovery_runs)["availability"][0] + 0.3
        )

    def test_tolerance_recovers_faster_than_periodic(self, config):
        tolerance_runs = self._run(lambda: tolerance_policy(0.75), config)
        periodic_runs = self._run(lambda: periodic_policy(15), config)
        assert summarize_runs(tolerance_runs)["time_to_recovery"][0] < (
            summarize_runs(periodic_runs)["time_to_recovery"][0]
        )

    def test_no_recovery_never_recovers(self, config):
        runs = self._run(no_recovery_policy, config)
        assert all(run.recovery_frequency == 0.0 for run in runs)

    def test_periodic_frequency_matches_period(self, config):
        runs = self._run(lambda: periodic_policy(15), config)
        frequency = summarize_runs(runs)["recovery_frequency"][0]
        assert abs(frequency - 1.0 / 15.0) < 0.03

    def test_periodic_with_infinite_period_equals_no_recovery(self):
        config = EmulationConfig(
            initial_nodes=3, horizon=150, delta_r=math.inf, node_params=NodeParameters(p_a=0.1)
        )
        periodic_runs = self._run(lambda: periodic_policy(math.inf), config)
        no_recovery_runs = self._run(no_recovery_policy, config)
        assert abs(
            summarize_runs(periodic_runs)["availability"][0]
            - summarize_runs(no_recovery_runs)["availability"][0]
        ) < 0.15


class TestTraceDataset:
    def test_generate_traces(self):
        traces = generate_traces(num_traces=3, horizon=30, base_seed=0)
        assert len(traces) == 3
        assert all(len(trace) == 30 for trace in traces)
        assert all(trace.policy == "tolerance" for trace in traces)

    def test_roundtrip_serialization(self, tmp_path):
        traces = generate_traces(num_traces=2, horizon=20, base_seed=1)
        path = tmp_path / "traces.jsonl"
        written = save_traces(traces, path)
        assert written == 2
        loaded = load_traces(path)
        assert len(loaded) == 2
        assert loaded[0].availability == pytest.approx(traces[0].availability)
        assert len(loaded[0].steps) == 20

    def test_generate_traces_validation(self):
        with pytest.raises(ValueError):
            generate_traces(num_traces=0)
