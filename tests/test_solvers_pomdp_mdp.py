"""Tests for the POMDP machinery (Theorem 1, Fig. 4) and the MDP solvers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import NodeAction, NodeParameters
from repro.solvers import (
    RecoveryPOMDP,
    belief_value_iteration,
    extract_threshold,
    incremental_pruning,
    policy_evaluation,
    policy_iteration,
    relative_value_iteration,
    value_iteration,
)


@pytest.fixture
def pomdp(observation_model):
    return RecoveryPOMDP(NodeParameters(p_a=0.1), observation_model, discount=0.9)


class TestRecoveryPOMDP:
    def test_live_transition_is_stochastic(self, pomdp):
        assert np.allclose(pomdp.transition.sum(axis=2), 1.0)

    def test_observation_matrix_is_stochastic(self, pomdp):
        assert np.allclose(pomdp.observation.sum(axis=1), 1.0)

    def test_belief_cost_matches_paper(self, pomdp):
        assert pomdp.belief_cost(0.5, NodeAction.WAIT) == pytest.approx(1.0)
        assert pomdp.belief_cost(0.5, NodeAction.RECOVER) == pytest.approx(1.0)

    def test_observation_probabilities_sum_to_one(self, pomdp):
        total = sum(
            pomdp.observation_probability(0.3, NodeAction.WAIT, o)
            for o in range(pomdp.num_observations)
        )
        assert total == pytest.approx(1.0)

    def test_belief_update_consistency(self, pomdp):
        updated = pomdp.belief_update(0.3, NodeAction.WAIT, pomdp.num_observations - 1)
        assert updated > 0.3

    def test_rejects_bad_discount(self, observation_model):
        with pytest.raises(ValueError):
            RecoveryPOMDP(NodeParameters(), observation_model, discount=1.5)


class TestBeliefValueIteration:
    def test_converges(self, pomdp):
        result = belief_value_iteration(pomdp, grid_size=51, max_iterations=500)
        assert result.residual < 1e-6

    def test_value_function_is_monotone_in_belief(self, pomdp):
        """V*(b) is non-decreasing in b (costs rise with compromise probability)."""
        result = belief_value_iteration(pomdp, grid_size=51, max_iterations=500)
        assert np.all(np.diff(result.values) >= -1e-9)

    def test_policy_has_threshold_structure(self, pomdp):
        """Theorem 1: the recovery region is an upper interval [alpha*, 1]."""
        result = belief_value_iteration(pomdp, grid_size=101, max_iterations=500)
        policy = result.policy
        first_recover = int(np.argmax(policy)) if policy.any() else len(policy)
        # After the first RECOVER grid point, the policy never switches back to WAIT.
        assert np.all(policy[first_recover:] == 1)

    def test_threshold_below_one(self, pomdp):
        result = belief_value_iteration(pomdp, grid_size=101, max_iterations=500)
        assert 0.0 < result.threshold() < 1.0

    def test_value_at_interpolates(self, pomdp):
        result = belief_value_iteration(pomdp, grid_size=51, max_iterations=300)
        assert result.value_at(0.0) <= result.value_at(1.0)

    def test_action_at_threshold(self, pomdp):
        result = belief_value_iteration(pomdp, grid_size=101, max_iterations=300)
        threshold = result.threshold()
        assert result.action_at(min(threshold + 0.05, 1.0)) is NodeAction.RECOVER

    def test_extract_threshold_never_recover(self):
        assert extract_threshold(np.linspace(0, 1, 5), np.zeros(5, dtype=int)) == 1.0


class TestIncrementalPruning:
    def test_produces_alpha_vectors(self, pomdp):
        result = incremental_pruning(pomdp, horizon=8)
        assert len(result.alpha_vectors) >= 1

    def test_value_function_is_lower_envelope(self, pomdp):
        result = incremental_pruning(pomdp, horizon=8)
        for belief in (0.0, 0.25, 0.5, 0.75, 1.0):
            value = result.value_at(belief)
            assert value <= min(a.value(belief) for a in result.alpha_vectors) + 1e-9

    def test_value_function_convex(self, pomdp):
        """Lower envelope of linear functions is concave; for minimization the
        optimal cost-to-go is concave in the belief, so midpoint >= average."""
        result = incremental_pruning(pomdp, horizon=8)
        for a, b in [(0.0, 1.0), (0.2, 0.8), (0.1, 0.5)]:
            mid = 0.5 * (a + b)
            assert result.value_at(mid) >= 0.5 * (result.value_at(a) + result.value_at(b)) - 1e-9

    def test_agrees_with_value_iteration_threshold(self, pomdp):
        """IP and belief-grid VI find approximately the same threshold (Table 2)."""
        vi = belief_value_iteration(pomdp, grid_size=101, max_iterations=500)
        ip = incremental_pruning(pomdp, horizon=40)
        assert abs(vi.threshold() - ip.threshold()) < 0.1

    def test_longer_horizon_does_not_reduce_vector_count_to_zero(self, pomdp):
        short = incremental_pruning(pomdp, horizon=3)
        long = incremental_pruning(pomdp, horizon=10)
        assert len(long.alpha_vectors) >= 1
        assert long.backups >= short.backups

    def test_action_at_extremes(self, pomdp):
        result = incremental_pruning(pomdp, horizon=15)
        assert result.action_at(0.0) is NodeAction.WAIT
        assert result.action_at(1.0) is NodeAction.RECOVER


class TestMDPSolvers:
    @pytest.fixture
    def simple_mdp(self):
        """Two-state MDP where action 1 is clearly better in state 1."""
        transition = np.array(
            [
                [[0.9, 0.1], [0.1, 0.9]],  # action 0
                [[0.9, 0.1], [0.8, 0.2]],  # action 1: escape state 1
            ]
        )
        costs = np.array([[0.0, 2.0], [0.5, 1.0]])
        return transition, costs

    def test_value_iteration_converges(self, simple_mdp):
        transition, costs = simple_mdp
        solution = value_iteration(transition, costs, discount=0.9)
        assert solution.residual < 1e-8
        assert solution.policy[1] == 1

    def test_policy_iteration_matches_value_iteration(self, simple_mdp):
        transition, costs = simple_mdp
        vi = value_iteration(transition, costs, discount=0.9)
        pi = policy_iteration(transition, costs, discount=0.9)
        assert np.array_equal(vi.policy, pi.policy)
        assert np.allclose(vi.values, pi.values, atol=1e-5)

    def test_policy_evaluation_fixed_point(self, simple_mdp):
        transition, costs = simple_mdp
        solution = value_iteration(transition, costs, discount=0.9)
        values = policy_evaluation(transition, costs, solution.policy, discount=0.9)
        assert np.allclose(values, solution.values, atol=1e-5)

    def test_relative_value_iteration_average_cost(self, simple_mdp):
        transition, costs = simple_mdp
        solution = relative_value_iteration(transition, costs)
        assert solution.average_cost is not None
        assert 0.0 <= solution.average_cost <= 2.0
        assert solution.policy[1] == 1

    def test_validates_shapes(self):
        with pytest.raises(ValueError):
            value_iteration(np.zeros((2, 2)), np.zeros((2, 2)))
        with pytest.raises(ValueError):
            value_iteration(np.ones((2, 2, 2)) / 2.0, np.zeros((3, 2)))

    def test_rejects_non_stochastic(self):
        transition = np.ones((2, 2, 2))
        with pytest.raises(ValueError):
            value_iteration(transition, np.zeros((2, 2)))

    def test_rejects_bad_discount(self, simple_mdp):
        transition, costs = simple_mdp
        with pytest.raises(ValueError):
            value_iteration(transition, costs, discount=1.0)

    def test_policy_evaluation_validates_policy(self, simple_mdp):
        transition, costs = simple_mdp
        with pytest.raises(ValueError):
            policy_evaluation(transition, costs, np.zeros(3, dtype=int))
