"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BetaBinomialObservationModel,
    NodeParameters,
    NodeTransitionModel,
)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def params() -> NodeParameters:
    """Default node parameters from Appendix E."""
    return NodeParameters(p_a=0.1, p_c1=1e-5, p_c2=1e-3, p_u=0.02, eta=2.0)


@pytest.fixture
def transition_model(params: NodeParameters) -> NodeTransitionModel:
    return NodeTransitionModel(params)


@pytest.fixture
def observation_model() -> BetaBinomialObservationModel:
    """The Beta-Binomial observation model of Appendix E."""
    return BetaBinomialObservationModel()
