"""Regression tests for the vectorized PPO rollout path.

The PPO baseline now collects its rollouts through
:class:`~repro.envs.VectorRecoveryEnv` (one policy forward pass per
timestep over all episodes) with array-level GAE.  These tests pin the
properties the refactor must preserve: determinism under a fixed seed, the
scalar reference path staying available, the GAE recursion matching its
definitional Python loop, and the policy remaining usable as a (batched)
recovery strategy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import NodeAction, NodeParameters
from repro.solvers import PPOConfig, RecoverySimulator, train_ppo_recovery
from repro.solvers.ppo import PPOPolicy, _discounted_reverse_cumsum

QUICK = dict(updates=4, rollout_episodes=4, horizon=30, hidden_size=8)


class TestDeterminism:
    def test_same_seed_trains_identical_policy(self, observation_model):
        """Determinism regression: seed -> identical weights and cost."""
        results = [
            train_ppo_recovery(
                NodeParameters(p_a=0.1), observation_model, PPOConfig(**QUICK), seed=42
            )
            for _ in range(2)
        ]
        first, second = results
        assert first.estimated_cost == second.estimated_cost
        assert first.history == second.history
        for name in ("w1", "b1", "w2", "b2", "vw1", "vb1", "vw2", "vb2"):
            np.testing.assert_array_equal(
                getattr(first.policy, name), getattr(second.policy, name)
            )

    def test_scalar_path_also_deterministic(self, observation_model):
        costs = {
            train_ppo_recovery(
                NodeParameters(p_a=0.1),
                observation_model,
                PPOConfig(**QUICK),
                seed=7,
                vectorized=False,
            ).estimated_cost
            for _ in range(2)
        }
        assert len(costs) == 1

    def test_different_seeds_differ(self, observation_model):
        a = train_ppo_recovery(
            NodeParameters(p_a=0.1), observation_model, PPOConfig(**QUICK), seed=0
        )
        b = train_ppo_recovery(
            NodeParameters(p_a=0.1), observation_model, PPOConfig(**QUICK), seed=1
        )
        assert not np.array_equal(a.policy.w1, b.policy.w1)


class TestVectorizedTraining:
    def test_both_paths_produce_reasonable_policies(self, observation_model):
        """Vectorized and scalar training both stay in the sane cost range."""
        config = PPOConfig(updates=6, rollout_episodes=4, horizon=40, hidden_size=16)
        for vectorized in (True, False):
            result = train_ppo_recovery(
                NodeParameters(p_a=0.1),
                observation_model,
                config,
                seed=0,
                vectorized=vectorized,
            )
            assert len(result.history) == config.updates
            assert np.isfinite(result.estimated_cost)
            # Always-recover costs 1 per step; a trained policy should not be
            # dramatically worse.
            assert result.estimated_cost <= 1.8

    def test_trained_policy_is_a_recovery_strategy(self, observation_model):
        result = train_ppo_recovery(
            NodeParameters(p_a=0.1), observation_model, PPOConfig(**QUICK), seed=3
        )
        simulator = RecoverySimulator(
            NodeParameters(p_a=0.1), observation_model, horizon=30
        )
        scalar = simulator.estimate_cost(result.policy, num_episodes=6, seed=5)
        batched = simulator.estimate_cost(result.policy, num_episodes=6, seed=5, batch=True)
        assert scalar == pytest.approx(batched, abs=1e-12)


class TestGAE:
    def test_discounted_reverse_cumsum_matches_reference_loop(self):
        rng = np.random.default_rng(0)
        series = rng.normal(size=(17, 5))
        discount = 0.93
        fast = _discounted_reverse_cumsum(series, discount)
        reference = np.zeros_like(series)
        carry = np.zeros(5)
        for t in range(16, -1, -1):
            carry = series[t] + discount * carry
            reference[t] = carry
        np.testing.assert_allclose(fast, reference, atol=1e-10)


class TestActionBatch:
    def test_action_batch_matches_scalar_action(self):
        policy = PPOPolicy(PPOConfig(hidden_size=8), np.random.default_rng(1))
        beliefs = np.linspace(0.0, 1.0, 23)
        clocks = np.arange(23) * 7 % 120
        batched = policy.action_batch(beliefs, clocks)
        for belief, clock, recover in zip(beliefs, clocks, batched):
            expected = policy.action(float(belief), int(clock)) is NodeAction.RECOVER
            assert bool(recover) == expected
