"""Local validation of the documentation site.

CI builds the site with ``mkdocs build --strict``; this suite approximates
the checks that matter without requiring mkdocs at test time, so stale docs
fail the ordinary test run too:

* every page listed in ``mkdocs.yml``'s nav exists;
* every relative markdown link inside ``docs/`` resolves;
* the paper-to-code map covers **every** ``bench_*.py`` script in
  ``benchmarks/`` (the acceptance bar of the docs satellite);
* every module path named in the map imports.
"""

from __future__ import annotations

import importlib
import re
from pathlib import Path

import pytest
import yaml

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"
MKDOCS = REPO / "mkdocs.yml"


def nav_pages() -> list[Path]:
    config = yaml.safe_load(MKDOCS.read_text(encoding="utf-8"))
    pages: list[Path] = []

    def walk(node):
        if isinstance(node, str):
            pages.append(DOCS / node)
        elif isinstance(node, dict):
            for value in node.values():
                walk(value)
        elif isinstance(node, list):
            for item in node:
                walk(item)

    walk(config["nav"])
    return pages


def test_mkdocs_config_is_strict_and_complete():
    config = yaml.safe_load(MKDOCS.read_text(encoding="utf-8"))
    assert config["strict"] is True
    assert config["docs_dir"] == "docs"
    pages = nav_pages()
    assert pages, "mkdocs nav must list at least one page"
    for page in pages:
        assert page.is_file(), f"nav references missing page {page.name}"
    # Every markdown file in docs/ should be reachable from the nav.
    on_disk = {p.name for p in DOCS.glob("*.md")}
    in_nav = {p.name for p in pages}
    assert on_disk == in_nav, f"pages not in nav: {sorted(on_disk - in_nav)}"


def test_internal_markdown_links_resolve():
    link = re.compile(r"\[[^\]]*\]\(([^)]+)\)")
    for page in DOCS.glob("*.md"):
        for target in link.findall(page.read_text(encoding="utf-8")):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue  # same-page anchor
            resolved = (page.parent / path).resolve()
            assert resolved.exists(), f"{page.name} links to missing {target}"


def test_paper_to_code_map_covers_every_benchmark():
    text = (DOCS / "paper_to_code.md").read_text(encoding="utf-8")
    scripts = sorted(p.name for p in (REPO / "benchmarks").glob("bench_*.py"))
    assert scripts, "no benchmark scripts found"
    missing = [name for name in scripts if name not in text]
    assert not missing, (
        f"paper_to_code.md must reference every benchmark script; "
        f"missing: {missing}"
    )


def test_paper_to_code_map_modules_import():
    text = (DOCS / "paper_to_code.md").read_text(encoding="utf-8")
    modules = sorted(set(re.findall(r"`(repro(?:\.\w+)+)`", text)))
    assert modules, "the map should name repro modules"
    for module in modules:
        importlib.import_module(module)


def test_architecture_page_documents_the_conventions():
    text = (DOCS / "architecture.md").read_text(encoding="utf-8")
    for required in (
        "repro.sim",
        "repro.envs",
        "repro.control",
        "repro.solvers",
        "repro.consensus",
        "bit-parity",
        "SeedSequence",
        "Known limitations",
        "NotImplementedError",
    ):
        assert required in text, f"architecture.md must mention {required!r}"


@pytest.mark.parametrize(
    "module,vectorized",
    [
        ("repro.sim", True),
        ("repro.envs", True),
        ("repro.control", True),
        ("repro.solvers.cmdp", False),  # pure planning: no simulation state
    ],
)
def test_layer_contracts_in_module_docstrings(module, vectorized):
    """The API reference renders module docstrings; each layer states its
    contract — and the vectorized layers additionally name their scalar
    reference and the PR 1 seeding convention."""
    doc = importlib.import_module(module).__doc__ or ""
    assert "contract" in doc.lower(), f"{module} docstring must state its contract"
    if vectorized:
        assert "SeedSequence" in doc, f"{module} must state the seeding convention"
        assert "scalar" in doc.lower(), f"{module} must name its scalar reference"
