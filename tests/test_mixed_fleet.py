"""Heterogeneous mixed-container fleets through the closed loop.

The paper's testbed (Table 6) is a *mixed* fleet: replicas run different
container images with different vulnerabilities (``p_A``), intrusion/crash
rates, recovery deadlines (``Delta_R``) and alert models.  This suite pins
the end-to-end heterogeneous path:

* :meth:`FleetScenario.mixed` expands node-class templates into per-slot
  parameters and validates cross-class observation-space compatibility
  (including the ``num_observations`` regression with different-sized
  models);
* the batch engine on a mixed fleet is **bit-exact** against independent
  scalar :class:`RecoverySimulator` runs with the matching per-node
  parameters (hypothesis property);
* a standby slot activated by the system level joins as a fresh node of
  *its own* class — belief ``p_{A,j}`` and BTR clock from the slot's own
  parameters, never node 0's;
* a mixed fleet runs through :class:`TwoLevelController` bit-exact against
  the scalar per-node reference loop under shared seeds, with per-class
  metrics agreeing across both paths;
* the per-class ``f_S`` fits and the heterogeneous/attacker-intensity
  sweeps behave as documented.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control import (
    ClosedLoopCell,
    TwoLevelController,
    attacker_intensity_sweep,
    engine_fleet_sweep,
    fit_system_models_per_class,
    mixed_closed_loop_sweep,
)
from repro.core import (
    BetaBinomialObservationModel,
    DiscreteObservationModel,
    MixedReplicationStrategy,
    NodeParameters,
    ReplicationThresholdStrategy,
    ThresholdStrategy,
)
from repro.envs import FleetVectorEnv, StrategyPolicy, VectorRecoveryEnv, rollout
from repro.sim import BatchRecoveryEngine, FleetScenario, NodeClass
from repro.solvers import RecoverySimulator

HARDENED = NodeParameters(p_a=0.04, p_c1=0.01, p_c2=0.03, eta=1.5, delta_r=20)
VULNERABLE = NodeParameters(p_a=0.3, p_c1=0.02, p_c2=0.08, eta=3.0, delta_r=8)


def _mixed_scenario(
    observation_model,
    hardened: int = 3,
    vulnerable: int = 3,
    horizon: int = 40,
    f: int | None = 1,
) -> FleetScenario:
    return FleetScenario.mixed(
        [
            NodeClass("hardened", HARDENED, observation_model, count=hardened),
            NodeClass("vulnerable", VULNERABLE, observation_model, count=vulnerable),
        ],
        horizon=horizon,
        f=f,
    )


class TestMixedScenarioConstruction:
    def test_mixed_expands_class_templates_in_order(self, observation_model):
        scenario = _mixed_scenario(observation_model, hardened=2, vulnerable=3)
        assert scenario.num_nodes == 5
        assert scenario.node_labels == (
            "hardened", "hardened", "vulnerable", "vulnerable", "vulnerable",
        )
        assert scenario.node_params[:2] == (HARDENED, HARDENED)
        assert scenario.node_params[2:] == (VULNERABLE,) * 3
        slots = scenario.class_slots()
        assert list(slots) == ["hardened", "vulnerable"]
        np.testing.assert_array_equal(slots["hardened"], [0, 1])
        np.testing.assert_array_equal(slots["vulnerable"], [2, 3, 4])
        # Per-slot derived quantities pick up each slot's own parameters.
        np.testing.assert_allclose(
            scenario.initial_beliefs(), [0.04, 0.04, 0.3, 0.3, 0.3]
        )
        np.testing.assert_allclose(scenario.cost_weights(), [1.5, 1.5, 3.0, 3.0, 3.0])
        np.testing.assert_array_equal(
            scenario.btr_deadlines(), [19, 19, 7, 7, 7]
        )

    def test_mixed_validation(self, observation_model):
        with pytest.raises(ValueError):
            FleetScenario.mixed([])
        with pytest.raises(ValueError):
            NodeClass("dup", HARDENED, observation_model, count=0)
        with pytest.raises(ValueError):
            NodeClass("", HARDENED, observation_model)
        with pytest.raises(ValueError, match="unique"):
            FleetScenario.mixed(
                [
                    NodeClass("a", HARDENED, observation_model),
                    NodeClass("a", VULNERABLE, observation_model),
                ]
            )

    def test_mixed_observation_space_mismatch_names_classes(self, observation_model):
        small = DiscreteObservationModel([0, 1], [0.5, 0.5], [0.2, 0.8])
        with pytest.raises(ValueError) as excinfo:
            FleetScenario.mixed(
                [
                    NodeClass("beta-binomial", HARDENED, observation_model),
                    NodeClass("tiny-alphabet", VULNERABLE, small),
                ]
            )
        assert "beta-binomial" in str(excinfo.value)
        assert "tiny-alphabet" in str(excinfo.value)

    def test_num_observations_mismatch_regression(self, observation_model):
        """Two different-sized models must raise — at construction *and* in
        the ``num_observations`` property itself (defense in depth)."""
        small = DiscreteObservationModel([0, 1], [0.5, 0.5], [0.2, 0.8])
        params = NodeParameters()
        with pytest.raises(ValueError):
            FleetScenario((params, params), (observation_model, small))
        # Simulate an instance that slipped past validation: the property
        # must refuse to silently report node 0's alphabet size.
        corrupted = object.__new__(FleetScenario)
        object.__setattr__(corrupted, "node_params", (params, params))
        object.__setattr__(corrupted, "observation_models", (observation_model, small))
        with pytest.raises(ValueError, match="disagree"):
            corrupted.num_observations
        # The consistent case still reports the shared size.
        scenario = _mixed_scenario(observation_model)
        assert scenario.num_observations == observation_model.num_observations

    def test_node_labels_length_validated(self, observation_model):
        params = NodeParameters()
        with pytest.raises(ValueError):
            FleetScenario(
                (params, params),
                (observation_model, observation_model),
                node_labels=("only-one",),
            )

    def test_class_slots_requires_labels(self, observation_model):
        scenario = FleetScenario.homogeneous(
            NodeParameters(), observation_model, num_nodes=3
        )
        assert scenario.node_labels is None
        with pytest.raises(ValueError):
            scenario.class_slots()

    def test_scale_attack(self, observation_model):
        scenario = _mixed_scenario(observation_model, hardened=2, vulnerable=3)
        scaled = scenario.scale_attack(2.0)
        np.testing.assert_allclose(
            scaled.initial_beliefs(), np.array([0.08, 0.08, 0.6, 0.6, 0.6])
        )
        # Everything but p_A is preserved, including the class labels.
        assert scaled.node_labels == scenario.node_labels
        assert scaled.node_params[0].p_c1 == HARDENED.p_c1
        assert scaled.node_params[2].delta_r == VULNERABLE.delta_r
        assert scaled.f == scenario.f
        # Scaling clips at probability one (warning names the clipped
        # classes, PR 9) and rejects negative intensities.
        with pytest.warns(RuntimeWarning, match="clips p_A"):
            assert scenario.scale_attack(100.0).node_params[2].p_a == 1.0
        with pytest.raises(ValueError):
            scenario.scale_attack(-0.5)


# ---------------------------------------------------------------------------
# Hypothesis property: mixed-fleet engine == N independent scalar simulators
# ---------------------------------------------------------------------------
@st.composite
def mixed_scenarios(draw):
    """A random mixed fleet: 1-3 classes, each with its own parameters,
    observation model (shared alphabet size) and count."""
    size = draw(st.integers(2, 5))
    positive = st.floats(1e-3, 1.0, allow_nan=False)
    prob = st.floats(1e-4, 0.4, allow_nan=False)

    def draw_class(index: int) -> NodeClass:
        model = DiscreteObservationModel(
            list(range(size)),
            [draw(positive) for _ in range(size)],
            [draw(positive) for _ in range(size)],
        )
        params = NodeParameters(
            p_a=draw(prob),
            p_c1=draw(prob),
            p_c2=draw(prob),
            p_u=draw(prob),
            eta=draw(st.floats(1.0, 5.0, allow_nan=False)),
            delta_r=draw(st.sampled_from([math.inf, 5.0, 9.0])),
        )
        return NodeClass(
            f"class-{index}", params, model, count=draw(st.integers(1, 2))
        )

    classes = [draw_class(i) for i in range(draw(st.integers(1, 3)))]
    return FleetScenario.mixed(classes, horizon=12, f=1)


class TestHeterogeneousEngineParity:
    @settings(max_examples=20, deadline=None)
    @given(
        scenario=mixed_scenarios(),
        threshold=st.floats(0.0, 1.0, allow_nan=False),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_mixed_fleet_bit_exact_vs_scalar_per_node_runs(
        self, scenario, threshold, seed
    ):
        """Batch engine on a mixed fleet == N independent scalar simulators,
        each with the matching per-node parameters, field for field."""
        episodes = 3
        strategy = ThresholdStrategy(threshold)
        result = BatchRecoveryEngine(scenario).run(
            strategy, num_episodes=episodes, seed=seed
        )
        children = np.random.SeedSequence(seed).spawn(
            episodes * scenario.num_nodes
        )
        for node in range(scenario.num_nodes):
            scalar = RecoverySimulator(
                scenario.node_params[node],
                scenario.observation_models[node],
                horizon=scenario.horizon,
            )
            batch_episodes = result.episode_results(node=node)
            for episode in range(episodes):
                rng = np.random.default_rng(
                    children[episode * scenario.num_nodes + node]
                )
                assert scalar.run_episode(strategy, rng) == batch_episodes[episode]


class TestStandbySlotHeterogeneousReset:
    """A fresh/standby slot must reset from *its own* ``p_A``/``Delta_R``."""

    def test_recover_resets_each_slot_to_its_own_prior(self, observation_model):
        scenario = _mixed_scenario(observation_model, hardened=2, vulnerable=2)
        env = VectorRecoveryEnv(scenario, num_envs=3)
        env.reset(seed=0)
        observation, _, _, _ = env.step(np.ones((3, 4), dtype=bool))
        np.testing.assert_allclose(
            observation.beliefs, np.broadcast_to([0.04, 0.04, 0.3, 0.3], (3, 4))
        )
        np.testing.assert_array_equal(observation.time_since_recovery, 0)

    def test_btr_deadline_forces_per_slot(self):
        # Crash-free nodes so clocks advance deterministically: the forced
        # mask must fire at each slot's own Delta_R, not node 0's.
        model = BetaBinomialObservationModel()
        slow = NodeParameters(p_a=0.05, p_c1=0.0, p_c2=0.0, delta_r=20)
        fast = NodeParameters(p_a=0.05, p_c1=0.0, p_c2=0.0, delta_r=6)
        scenario = FleetScenario.mixed(
            [
                NodeClass("slow", slow, model, count=1),
                NodeClass("fast", fast, model, count=1),
            ],
            horizon=30,
            f=1,
        )
        env = VectorRecoveryEnv(scenario, num_envs=2)
        observation = env.reset(seed=1)
        waits = np.zeros((2, 2), dtype=bool)
        # The environment executes the forced recovery on the next step, so
        # the fast slot's clock cycles with period Delta_R = 6 and the mask
        # fires exactly when its own clock hits Delta_R - 1; the slow slot
        # (Delta_R = 20) is never forced in this window, which it would be
        # if node 0's deadline were applied fleet-wide.
        for t in range(1, 14):
            observation, _, _, _ = env.step(waits)
            forced_fast = t % int(fast.delta_r) == int(fast.delta_r) - 1
            np.testing.assert_array_equal(
                observation.forced, np.broadcast_to([False, forced_fast], (2, 2))
            )

    def test_activated_standby_slot_joins_with_its_own_belief(self):
        """Closed loop: when the system level activates a standby slot of a
        different class, the slot reports its *own* prior, not node 0's."""
        model = BetaBinomialObservationModel()
        # Active class crashes fast; standby class is crash-free with a
        # clearly different prior.
        crashy = NodeParameters(p_a=0.05, p_c1=0.3, p_c2=0.3, delta_r=math.inf)
        standby = NodeParameters(p_a=0.4, p_c1=0.0, p_c2=0.0, delta_r=math.inf)
        scenario = FleetScenario.mixed(
            [
                NodeClass("crashy", crashy, model, count=2),
                NodeClass("standby", standby, model, count=3),
            ],
            horizon=25,
            f=0,
        )

        seen: list[tuple[np.ndarray, np.ndarray]] = []

        class SpyPolicy:
            def act(self, observation, rng=None):
                seen.append(
                    (observation.active.copy(), observation.beliefs.copy())
                )
                return np.zeros_like(observation.active)

        controller = TwoLevelController(
            scenario,
            num_envs=6,
            recovery_policy=SpyPolicy(),
            # Add aggressively so activations reach the standby-class slots
            # (a freed crashy slot is reclaimed first, being first free).
            replication_strategy=ReplicationThresholdStrategy(beta=5),
            initial_nodes=2,
            enforce_invariant=True,
        )
        controller.run(seed=3)

        # Additions claim the first free slot, which may be a previously
        # evicted crashy slot or a standby slot of the other class: either
        # way, the newly activated slot must report the prior of *its own*
        # class (0.05 for slots 0-1, 0.4 for slots 2-4).
        priors = scenario.initial_beliefs()
        standby_activations = 0
        for (previous_active, _), (active, beliefs) in zip(seen, seen[1:]):
            newly = active & ~previous_active
            for b, j in zip(*np.nonzero(newly)):
                assert beliefs[b, j] == pytest.approx(priors[j])
                if j >= 2:
                    standby_activations += 1
        assert standby_activations > 0, "the run must activate a standby-class slot"


class TestMixedClosedLoopParity:
    @pytest.mark.parametrize("stochastic", [False, True], ids=["threshold", "mixed"])
    def test_mixed_fleet_trace_parity_vs_scalar_reference(
        self, observation_model, stochastic
    ):
        scenario = _mixed_scenario(observation_model, horizon=30)
        replication = (
            MixedReplicationStrategy(
                ReplicationThresholdStrategy(3),
                ReplicationThresholdStrategy(5),
                kappa=0.4,
            )
            if stochastic
            else ReplicationThresholdStrategy(beta=4)
        )
        controller = TwoLevelController(
            scenario,
            num_envs=5,
            recovery_policy=ThresholdStrategy(0.7),
            replication_strategy=replication,
            initial_nodes=4,
            record_decisions=True,
        )
        batched = controller.run(seed=42)
        batched_trace = controller.last_decision_trace
        scalar = controller.run_scalar_reference(seed=42)
        scalar_trace = controller.last_decision_trace

        for t in range(scenario.horizon):
            assert np.array_equal(batched_trace.states[t], scalar_trace.states[t])
            assert np.array_equal(batched_trace.adds[t], scalar_trace.adds[t])
            assert np.array_equal(
                batched_trace.emergencies[t], scalar_trace.emergencies[t]
            )
            assert np.array_equal(
                batched_trace.evictions[t], scalar_trace.evictions[t]
            )
        assert np.array_equal(batched.additions, scalar.additions)
        assert np.array_equal(batched.evictions, scalar.evictions)
        assert np.array_equal(batched.availability, scalar.availability)
        assert np.array_equal(batched.average_nodes, scalar.average_nodes)
        assert np.allclose(batched.average_cost, scalar.average_cost)
        assert np.allclose(batched.recovery_frequency, scalar.recovery_frequency)
        # Per-class metrics agree across the two paths as well.
        for label in ("hardened", "vulnerable"):
            assert np.allclose(
                batched.class_average_cost[label],
                scalar.class_average_cost[label],
            )
            assert np.allclose(
                batched.class_recovery_frequency[label],
                scalar.class_recovery_frequency[label],
            )


class TestPerClassMetrics:
    def test_homogeneous_results_have_no_class_metrics(self, observation_model):
        scenario = FleetScenario.homogeneous(
            NodeParameters(p_a=0.1, delta_r=15),
            observation_model,
            num_nodes=4,
            horizon=20,
            f=1,
        )
        result = TwoLevelController(
            scenario, 3, ThresholdStrategy(0.7), initial_nodes=3
        ).run(seed=0)
        assert result.class_average_cost is None
        with pytest.raises(ValueError):
            result.class_summary()

    def test_vulnerable_class_recovers_more_and_costs_more(self, observation_model):
        scenario = _mixed_scenario(observation_model, horizon=60)
        result = TwoLevelController(
            scenario,
            num_envs=20,
            recovery_policy=ThresholdStrategy(0.6),
            initial_nodes=6,
        ).run(seed=5)
        summary = result.class_summary()
        assert set(summary) == {"hardened", "vulnerable"}
        assert (
            summary["vulnerable"]["recovery_frequency"][0]
            > summary["hardened"]["recovery_frequency"][0]
        )
        assert (
            summary["vulnerable"]["average_cost"][0]
            > summary["hardened"]["average_cost"][0]
        )


class TestPerClassSystemIdentification:
    def test_fit_one_kernel_per_class(self, observation_model):
        scenario = _mixed_scenario(observation_model, horizon=40)
        env = FleetVectorEnv(scenario, num_envs=30)
        rollout(env, StrategyPolicy(ThresholdStrategy(0.7)), seed=0)
        models = fit_system_models_per_class(env, epsilon_a=0.5)
        assert set(models) == {"hardened", "vulnerable"}
        for label, model in models.items():
            assert model.smax == 3  # class sub-fleet size
            assert np.allclose(model.transition.sum(axis=2), 1.0)
        # The hardened sub-fleet's kernel keeps more healthy nodes: from a
        # shared well-visited state, its expected successor state is higher.
        states = np.arange(4)
        assert (
            models["hardened"].transition[0, 2] @ states
            > models["vulnerable"].transition[0, 2] @ states
        )
        # The raw per-class pairs separate the classes too.
        pairs = env.class_state_transitions()
        assert pairs["hardened"][:, 0].mean() > pairs["vulnerable"][:, 0].mean()

    def test_per_class_fit_requires_labels(self, observation_model):
        scenario = FleetScenario.homogeneous(
            NodeParameters(p_a=0.1), observation_model, num_nodes=3, horizon=10, f=1
        )
        env = FleetVectorEnv(scenario, num_envs=4)
        rollout(env, StrategyPolicy(ThresholdStrategy(0.7)), seed=0)
        with pytest.raises(ValueError):
            fit_system_models_per_class(env)
        with pytest.raises(ValueError):
            env.class_state_transitions()
        with pytest.raises(ValueError):
            env.expected_healthy_nodes_by_class()


class TestHeterogeneousSweeps:
    def test_engine_fleet_sweep_accepts_per_node_parameters(self, observation_model):
        per_node = [HARDENED, VULNERABLE]
        table = engine_fleet_sweep(
            [2],
            {"tolerance": ThresholdStrategy(0.7)},
            node_params=per_node,
            observation_model=observation_model,
            num_episodes=10,
            horizon=15,
            seed=0,
        )
        assert (2, "tolerance") in table
        with pytest.raises(ValueError):
            engine_fleet_sweep(
                [3],
                {"tolerance": ThresholdStrategy(0.7)},
                node_params=per_node,  # wrong length for n1=3
                observation_model=observation_model,
                num_episodes=5,
                horizon=10,
            )

    def test_mixed_closed_loop_sweep(self, observation_model):
        scenarios = {
            "balanced": _mixed_scenario(observation_model, 2, 2, horizon=20),
            "mostly-vulnerable": _mixed_scenario(observation_model, 1, 3, horizon=20),
        }
        cells = [
            ClosedLoopCell("tolerance", ThresholdStrategy(0.7)),
            ClosedLoopCell(
                "no-recovery",
                ThresholdStrategy(1.0),
                enforce_invariant=False,
            ),
        ]
        table = mixed_closed_loop_sweep(
            scenarios, cells, num_envs=5, seed=0, initial_nodes=3
        )
        assert set(table) == {
            (name, cell.name) for name in scenarios for cell in cells
        }
        for result in table.values():
            assert result.class_average_cost is not None

    def test_attacker_intensity_sweep_degrades_with_intensity(
        self, observation_model
    ):
        scenario = _mixed_scenario(observation_model, horizon=40)
        cells = [ClosedLoopCell("tolerance", ThresholdStrategy(0.6))]
        table = attacker_intensity_sweep(
            scenario,
            intensities=(0.25, 1.0, 3.0),
            cells=cells,
            num_envs=20,
            seed=0,
            initial_nodes=4,
        )
        assert set(table) == {(0.25, "tolerance"), (1.0, "tolerance"), (3.0, "tolerance")}
        frequency = [
            table[(x, "tolerance")].recovery_frequency.mean()
            for x in (0.25, 1.0, 3.0)
        ]
        # A faster attacker forces strictly more recovery work.
        assert frequency[0] < frequency[1] < frequency[2]
        cost = [
            table[(x, "tolerance")].average_cost.mean() for x in (0.25, 1.0, 3.0)
        ]
        assert cost[0] < cost[2]
