"""The declarative scenario layer: YAML schema, round trips, and the CLI.

Covers the ``repro/scenario-v1`` schema of :mod:`repro.sim.scenario_io`
(round trips, validation errors), the ``python -m repro`` runner and its
``repro/result-v1`` output (including the shipped example files, which the
CI ``scenario-smoke`` step runs end to end), and the
``FleetScenario.scale_attack`` clipping warning.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import numpy as np
import pytest
import yaml

from repro.cli import main, run_scenario, validate_result
from repro.core import (
    BetaBinomialObservationModel,
    DiscreteObservationModel,
    NodeParameters,
    ThresholdStrategy,
)
from repro.sim import (
    BatchRecoveryEngine,
    BurstyAdversary,
    FleetScenario,
    NodeClass,
    StealthAdversary,
)
from repro.sim.scenario_io import (
    SCHEMA,
    scenario_from_mapping,
    scenario_to_mapping,
)

_EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples" / "scenarios").glob("*.yaml")
)


def _mixed_scenario():
    return FleetScenario.mixed(
        [
            NodeClass(
                "web",
                NodeParameters(p_a=0.1, delta_r=9.0),
                BetaBinomialObservationModel(),
                count=2,
            ),
            NodeClass(
                "db",
                NodeParameters(p_a=0.05, eta=3.0),
                BetaBinomialObservationModel(n=10, healthy_alpha=0.8),
                count=1,
            ),
        ],
        horizon=50,
        f=1,
        adversary=BurstyAdversary(),
    )


class TestYamlRoundTrip:
    def test_labelled_round_trip(self):
        scenario = _mixed_scenario()
        rebuilt = FleetScenario.from_yaml(scenario.to_yaml())
        assert rebuilt.node_params == scenario.node_params
        assert rebuilt.node_labels == scenario.node_labels
        assert rebuilt.adversary == scenario.adversary
        assert rebuilt.horizon == scenario.horizon
        assert rebuilt.f == scenario.f
        assert rebuilt.enforce_btr == scenario.enforce_btr
        for a, b in zip(scenario.observation_models, rebuilt.observation_models):
            assert np.array_equal(a.matrix(), b.matrix())

    def test_unlabelled_round_trip_with_inf_delta(self):
        scenario = FleetScenario.homogeneous(
            NodeParameters(delta_r=math.inf),
            BetaBinomialObservationModel(),
            3,
            horizon=20,
            adversary=StealthAdversary(),
        )
        rebuilt = FleetScenario.from_yaml(scenario.to_yaml())
        assert rebuilt.node_params == scenario.node_params
        assert rebuilt.node_labels is None
        assert rebuilt.adversary == scenario.adversary

    def test_discrete_observation_round_trip(self):
        model = DiscreteObservationModel([0, 1, 2], [0.7, 0.2, 0.1], [0.1, 0.3, 0.6])
        scenario = FleetScenario.single_node(NodeParameters(), model, horizon=10)
        rebuilt = FleetScenario.from_yaml(scenario.to_yaml())
        assert np.allclose(
            rebuilt.observation_models[0].matrix(),
            scenario.observation_models[0].matrix(),
        )

    def test_engine_parity_through_yaml(self):
        scenario = _mixed_scenario()
        rebuilt = FleetScenario.from_yaml(scenario.to_yaml())
        r1 = BatchRecoveryEngine(scenario).run(
            ThresholdStrategy(0.75), num_episodes=8, seed=3
        )
        r2 = BatchRecoveryEngine(rebuilt).run(
            ThresholdStrategy(0.75), num_episodes=8, seed=3
        )
        assert np.array_equal(r1.average_cost, r2.average_cost)
        assert np.array_equal(r1.num_compromises, r2.num_compromises)

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "scenario.yaml"
        scenario = _mixed_scenario()
        scenario.to_yaml(path)
        assert FleetScenario.from_yaml(str(path)).node_params == scenario.node_params


class TestSchemaValidation:
    def test_rejects_wrong_schema(self):
        document = scenario_to_mapping(_mixed_scenario())
        document["schema"] = "repro/scenario-v99"
        with pytest.raises(ValueError, match="unsupported scenario schema"):
            scenario_from_mapping(document)

    def test_rejects_missing_fleet(self):
        with pytest.raises(ValueError, match="fleet"):
            scenario_from_mapping({"schema": SCHEMA})

    def test_rejects_unknown_node_parameter(self):
        document = scenario_to_mapping(_mixed_scenario())
        document["fleet"]["classes"][0]["params"]["warp_factor"] = 9
        with pytest.raises(ValueError, match="warp_factor"):
            scenario_from_mapping(document)

    def test_rejects_unknown_observation_type(self):
        document = scenario_to_mapping(_mixed_scenario())
        document["fleet"]["classes"][0]["observations"] = {"type": "gaussian"}
        with pytest.raises(ValueError, match="unknown observation model type"):
            scenario_from_mapping(document)

    def test_rejects_unknown_adversary(self):
        document = scenario_to_mapping(_mixed_scenario())
        document["adversary"] = {"type": "quantum"}
        with pytest.raises(ValueError, match="unknown adversary type"):
            scenario_from_mapping(document)

    def test_accepts_runner_document(self):
        document = {
            "scenario": scenario_to_mapping(_mixed_scenario()),
            "run": {"mode": "engine", "episodes": 4, "seed": 0},
        }
        scenario = FleetScenario.from_yaml(document)
        assert scenario.num_nodes == 3


class TestCliRunner:
    def test_examples_exist(self):
        assert len(_EXAMPLES) >= 2
        kinds = set()
        for path in _EXAMPLES:
            scenario = FleetScenario.from_yaml(str(path))
            if scenario.adversary is not None:
                kinds.add(scenario.adversary.kind)
        # at least one scenario the per-node p_A model cannot express
        assert kinds & {"bursty", "correlated"}

    @pytest.mark.parametrize("path", _EXAMPLES, ids=lambda p: p.name)
    def test_example_runs_and_validates(self, path):
        result = run_scenario(str(path), overrides={"episodes": 4})
        assert validate_result(result) == []
        assert result["schema"] == "repro/result-v1"
        assert "availability" in result["metrics"]

    def test_cli_run_writes_valid_json(self, tmp_path, capsys):
        out = tmp_path / "result.json"
        code = main(
            [
                "run",
                str(_EXAMPLES[0]),
                "--episodes",
                "4",
                "--json",
                str(out),
                "--quiet",
            ]
        )
        assert code == 0
        document = json.loads(out.read_text())
        assert validate_result(document) == []
        assert main(["validate", str(out)]) == 0

    def test_cli_validate_rejects_bad_document(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "nope"}))
        assert main(["validate", str(bad)]) == 1
        assert "invalid" in capsys.readouterr().err

    def test_seed_reproducibility(self):
        a = run_scenario(str(_EXAMPLES[0]), overrides={"episodes": 4, "seed": 5})
        b = run_scenario(str(_EXAMPLES[0]), overrides={"episodes": 4, "seed": 5})
        assert a["metrics"] == b["metrics"]

    def test_n_jobs_parity(self):
        serial = run_scenario(
            str(_EXAMPLES[0]), overrides={"episodes": 8, "n_jobs": 1}
        )
        sharded = run_scenario(
            str(_EXAMPLES[0]), overrides={"episodes": 8, "n_jobs": 2}
        )
        assert serial["metrics"] == sharded["metrics"]

    def test_rejects_unknown_run_option(self):
        document = {
            "scenario": scenario_to_mapping(_mixed_scenario()),
            "run": {"mode": "engine", "warp": 9},
        }
        with pytest.raises(ValueError, match="warp"):
            run_scenario(document)

    def test_rejects_unknown_mode(self):
        document = {
            "scenario": scenario_to_mapping(_mixed_scenario()),
            "run": {"mode": "teleport"},
        }
        with pytest.raises(ValueError, match="unknown run mode"):
            run_scenario(document)

    def test_validate_result_catches_problems(self):
        good = run_scenario(str(_EXAMPLES[0]), overrides={"episodes": 4})
        assert validate_result(good) == []
        assert validate_result([]) != []
        broken = dict(good)
        broken["metrics"] = {}
        assert any("metrics" in p for p in validate_result(broken))
        broken = dict(good)
        broken["episodes"] = 0
        assert any("episodes" in p for p in validate_result(broken))


class TestScaleAttackWarning:
    def test_clipping_emits_runtime_warning_naming_nodes(self):
        scenario = FleetScenario.mixed(
            [
                NodeClass(
                    "web",
                    NodeParameters(p_a=0.3),
                    BetaBinomialObservationModel(),
                    count=2,
                ),
                NodeClass(
                    "db",
                    NodeParameters(p_a=0.01),
                    BetaBinomialObservationModel(),
                    count=1,
                ),
            ],
            horizon=10,
        )
        with pytest.warns(RuntimeWarning, match="web") as records:
            scaled = scenario.scale_attack(5.0)
        assert scaled.node_params[0].p_a == 1.0
        assert scaled.node_params[2].p_a == pytest.approx(0.05)
        message = str(records[0].message)
        assert "db" not in message
        assert "2 node slot" in message

    def test_unlabelled_warning_names_slots(self):
        scenario = FleetScenario.homogeneous(
            NodeParameters(p_a=0.6), BetaBinomialObservationModel(), 2, horizon=10
        )
        with pytest.warns(RuntimeWarning, match="node 0"):
            scenario.scale_attack(2.0)

    def test_no_warning_without_clipping(self):
        scenario = FleetScenario.homogeneous(
            NodeParameters(p_a=0.1), BetaBinomialObservationModel(), 2, horizon=10
        )
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            scaled = scenario.scale_attack(2.0)
        assert scaled.node_params[0].p_a == pytest.approx(0.2)


class TestCliErrorPaths:
    """Every anticipated CLI failure exits 2 with a named one-line error.

    The contract (pinned here, documented in ``repro.cli``): malformed
    documents, unknown names and unreadable files produce ``error: ...``
    on stderr and exit status 2 — never a traceback.
    """

    def _run(self, capsys, *argv):
        code = main(list(argv))
        captured = capsys.readouterr()
        assert "Traceback" not in captured.err
        assert "Traceback" not in captured.out
        return code, captured.err

    def _scenario_mapping(self):
        return scenario_to_mapping(_mixed_scenario())

    def test_malformed_yaml_is_named(self, tmp_path, capsys):
        bad = tmp_path / "broken.yaml"
        bad.write_text("schema: [unclosed\n  fleet: {", encoding="utf-8")
        code, err = self._run(capsys, "run", str(bad))
        assert code == 2
        assert err.startswith("error:")
        assert "malformed scenario YAML" in err

    def test_schema_version_mismatch_is_named(self, tmp_path, capsys):
        mapping = self._scenario_mapping()
        mapping["schema"] = "repro/scenario-v99"
        doc = tmp_path / "future.yaml"
        doc.write_text(yaml.safe_dump(mapping), encoding="utf-8")
        code, err = self._run(capsys, "run", str(doc))
        assert code == 2
        assert err.startswith("error:")
        assert SCHEMA in err  # names the supported version

    def test_unknown_adversary_type_is_named(self, tmp_path, capsys):
        mapping = self._scenario_mapping()
        mapping["adversary"] = {"type": "quantum"}
        doc = tmp_path / "adversary.yaml"
        doc.write_text(yaml.safe_dump(mapping), encoding="utf-8")
        code, err = self._run(capsys, "run", str(doc))
        assert code == 2
        assert err.startswith("error:")
        assert "quantum" in err

    def test_unknown_run_mode_is_named(self, tmp_path, capsys):
        doc = tmp_path / "mode.yaml"
        doc.write_text(
            yaml.safe_dump(
                {"scenario": self._scenario_mapping(), "run": {"mode": "warp"}}
            ),
            encoding="utf-8",
        )
        code, err = self._run(capsys, "run", str(doc))
        assert code == 2
        assert err.startswith("error:")
        assert "unknown run mode" in err

    def test_unknown_run_option_is_named(self, tmp_path, capsys):
        doc = tmp_path / "option.yaml"
        doc.write_text(
            yaml.safe_dump(
                {"scenario": self._scenario_mapping(), "run": {"turbo": True}}
            ),
            encoding="utf-8",
        )
        code, err = self._run(capsys, "run", str(doc))
        assert code == 2
        assert err.startswith("error:")
        assert "turbo" in err

    def test_missing_file_is_named(self, tmp_path, capsys):
        code, err = self._run(capsys, "run", str(tmp_path / "nope.yaml"))
        assert code == 2
        assert err.startswith("error:")

    def test_invalid_result_json_is_named(self, tmp_path, capsys):
        bad = tmp_path / "result.json"
        bad.write_text("{not json", encoding="utf-8")
        code, err = self._run(capsys, "validate", str(bad))
        assert code == 2
        assert err.startswith("error:")
