"""Tests for the emulation substrate: containers, IDS, attacker, services, nodes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.consensus import ByzantineBehavior
from repro.core import NodeParameters, NodeState, ThresholdStrategy
from repro.emulation import (
    AttackPhase,
    Attacker,
    AttackerConfig,
    BackgroundClientPopulation,
    CONTAINER_CATALOG,
    EmulatedNode,
    PHYSICAL_NODES,
    ServiceWorkload,
    SnortLikeIDS,
    collect_alert_dataset,
    container_by_replica_id,
    default_emulation_observation_model,
    fit_empirical_model,
)


class TestContainerCatalog:
    def test_ten_container_images(self):
        """Table 4 lists ten replica containers."""
        assert len(CONTAINER_CATALOG) == 10

    def test_thirteen_physical_nodes(self):
        """Table 3 lists thirteen physical servers."""
        assert len(PHYSICAL_NODES) == 13

    def test_every_container_has_kill_chain(self):
        """Table 6: every replica has at least a scan plus an exploit step."""
        for container in CONTAINER_CATALOG:
            assert len(container.intrusion_steps) >= 2
            assert "scan" in container.intrusion_steps[0].lower()

    def test_every_container_has_background_services(self):
        """Table 5: every replica runs at least one background service."""
        for container in CONTAINER_CATALOG:
            assert len(container.background_services) >= 1

    def test_intrusion_alert_rates_exceed_healthy_rates(self):
        for container in CONTAINER_CATALOG:
            assert container.alert_rate_intrusion > container.alert_rate_healthy

    def test_lookup_by_replica_id(self):
        assert container_by_replica_id(4).vulnerabilities == ("CVE-2017-7494",)
        with pytest.raises(KeyError):
            container_by_replica_id(42)

    def test_unique_replica_ids(self):
        ids = [c.replica_id for c in CONTAINER_CATALOG]
        assert len(set(ids)) == len(ids)


class TestIDS:
    def test_intrusion_raises_alert_counts(self, rng):
        ids = SnortLikeIDS(CONTAINER_CATALOG[0])
        healthy = [ids.sample_alerts(False, rng) for _ in range(300)]
        intrusion = [ids.sample_alerts(True, rng) for _ in range(300)]
        assert np.mean(intrusion) > np.mean(healthy) * 2

    def test_background_clients_increase_benign_alerts(self, rng):
        ids = SnortLikeIDS(CONTAINER_CATALOG[0])
        quiet = [ids.sample_alerts(False, rng, background_clients=0) for _ in range(300)]
        busy = [ids.sample_alerts(False, rng, background_clients=100) for _ in range(300)]
        assert np.mean(busy) > np.mean(quiet)

    def test_collect_alert_dataset_labels(self):
        samples = collect_alert_dataset(CONTAINER_CATALOG[1], num_samples=200, seed=0)
        assert len(samples) == 200
        assert any(s.intrusion_active for s in samples)
        assert any(not s.intrusion_active for s in samples)

    def test_collect_dataset_validation(self):
        with pytest.raises(ValueError):
            collect_alert_dataset(CONTAINER_CATALOG[0], num_samples=1)
        with pytest.raises(ValueError):
            collect_alert_dataset(CONTAINER_CATALOG[0], num_samples=10, intrusion_fraction=0.0)

    def test_fit_empirical_model_is_tp2_informative(self):
        """The fitted \\hat{Z} separates the intrusion and no-intrusion conditions (Fig. 11)."""
        samples = collect_alert_dataset(CONTAINER_CATALOG[0], num_samples=2000, seed=1)
        model = fit_empirical_model(samples)
        assert model.detection_divergence() > 0.5
        assert model.satisfies_assumption_d()

    def test_fit_empirical_model_requires_both_labels(self):
        samples = collect_alert_dataset(CONTAINER_CATALOG[0], num_samples=100, seed=1)
        only_healthy = [s for s in samples if not s.intrusion_active]
        with pytest.raises(ValueError):
            fit_empirical_model(only_healthy)

    def test_default_emulation_model_cached(self):
        a = default_emulation_observation_model()
        b = default_emulation_observation_model()
        assert a is b


class TestAttacker:
    def test_attack_progresses_to_compromise(self, rng):
        attacker = Attacker(AttackerConfig(start_probability=1.0, step_success_probability=1.0), seed=0)
        container = CONTAINER_CATALOG[0]
        attacker.select_targets([("n1", container)])
        for _ in range(len(container.intrusion_steps)):
            state = attacker.step_node("n1", container, True)
        assert state.phase is AttackPhase.COMPROMISED
        assert attacker.total_compromises == 1

    def test_respects_concurrency_limit(self):
        attacker = Attacker(
            AttackerConfig(start_probability=1.0, max_concurrent_attacks=1), seed=0
        )
        candidates = [(f"n{i}", CONTAINER_CATALOG[i]) for i in range(3)]
        started = attacker.select_targets(candidates)
        assert len(started) == 1

    def test_post_compromise_behavior_selected(self, rng):
        attacker = Attacker(AttackerConfig(start_probability=1.0, step_success_probability=1.0), seed=0)
        container = CONTAINER_CATALOG[0]
        attacker.select_targets([("n1", container)])
        for _ in range(len(container.intrusion_steps)):
            state = attacker.step_node("n1", container, True)
        assert state.post_compromise_behavior in (
            ByzantineBehavior.PARTICIPATE,
            ByzantineBehavior.SILENT,
            ByzantineBehavior.ARBITRARY,
        )

    def test_crash_mid_attack_aborts(self):
        attacker = Attacker(AttackerConfig(start_probability=1.0), seed=0)
        container = CONTAINER_CATALOG[0]
        attacker.select_targets([("n1", container)])
        state = attacker.step_node("n1", container, node_is_healthy=False)
        assert state.phase is AttackPhase.IDLE

    def test_forget_resets_state(self):
        attacker = Attacker(AttackerConfig(start_probability=1.0), seed=0)
        attacker.select_targets([("n1", CONTAINER_CATALOG[0])])
        attacker.forget("n1")
        assert attacker.state_of("n1").phase is AttackPhase.IDLE

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AttackerConfig(start_probability=2.0)
        with pytest.raises(ValueError):
            AttackerConfig(step_success_probability=0.0)
        with pytest.raises(ValueError):
            AttackerConfig(max_concurrent_attacks=0)
        with pytest.raises(ValueError):
            AttackerConfig(behaviors=())


class TestBackgroundServices:
    def test_population_reaches_steady_state(self):
        population = BackgroundClientPopulation(arrival_rate=20, mean_service_time=4, seed=0)
        sizes = [population.step() for _ in range(300)]
        steady = np.mean(sizes[100:])
        assert abs(steady - population.expected_steady_state()) < 20

    def test_population_validation(self):
        with pytest.raises(ValueError):
            BackgroundClientPopulation(arrival_rate=-1)
        with pytest.raises(ValueError):
            BackgroundClientPopulation(mean_service_time=0)

    def test_workload_generates_requests(self):
        workload = ServiceWorkload(requests_per_step=5.0, seed=0)
        events = workload.requests_for_step(1)
        assert all(e.operation in ("read", "write") for e in events)

    def test_workload_write_fraction(self):
        workload = ServiceWorkload(requests_per_step=20.0, write_fraction=1.0, seed=0)
        events = workload.requests_for_step(1)
        assert all(e.operation == "write" for e in events)

    def test_workload_validation(self):
        with pytest.raises(ValueError):
            ServiceWorkload(requests_per_step=-1)
        with pytest.raises(ValueError):
            ServiceWorkload(write_fraction=2.0)
        with pytest.raises(ValueError):
            ServiceWorkload(key_space=0)


class TestEmulatedNode:
    def _node(self, rng, **kwargs):
        return EmulatedNode(
            node_id="n1",
            params=NodeParameters(p_a=0.1),
            observation_model=default_emulation_observation_model(),
            strategy=ThresholdStrategy(0.75),
            rng=rng,
            **kwargs,
        )

    def test_starts_healthy(self, rng):
        node = self._node(rng)
        assert node.state is NodeState.HEALTHY
        assert node.is_alive

    def test_mark_compromised(self, rng):
        node = self._node(rng)
        node.mark_compromised()
        assert node.is_compromised
        assert node.compromises == 1

    def test_recover_restores_health_and_swaps_container(self, rng):
        node = self._node(rng)
        node.mark_compromised()
        node.recover()
        assert node.state is NodeState.HEALTHY
        assert node.recoveries == 1
        assert node.controller.belief == pytest.approx(0.1)

    def test_crashed_node_cannot_recover(self, rng):
        node = self._node(rng)
        node.state = NodeState.CRASHED
        node.recover()
        assert node.state is NodeState.CRASHED

    def test_crash_probability_respected(self):
        rng = np.random.default_rng(0)
        node = EmulatedNode(
            node_id="n1",
            params=NodeParameters(p_a=0.01, p_c1=1.0 - 1e-9),
            observation_model=default_emulation_observation_model(),
            strategy=ThresholdStrategy(0.75),
            rng=rng,
        )
        assert node.maybe_crash()
        assert node.state is NodeState.CRASHED

    def test_observe_and_decide_returns_belief_and_action(self, rng):
        node = self._node(rng)
        action, belief, observation = node.observe_and_decide(intrusion_activity=False)
        assert 0.0 <= belief <= 1.0
        assert observation >= 0

    def test_intrusion_activity_raises_belief(self, rng):
        node = self._node(rng)
        benign_beliefs = [node.observe_and_decide(False)[1] for _ in range(5)]
        node_attack = self._node(np.random.default_rng(1))
        attack_beliefs = [node_attack.observe_and_decide(True)[1] for _ in range(5)]
        assert np.mean(attack_beliefs) > np.mean(benign_beliefs)
