"""Tests for Algorithm 2 (the occupancy-measure LP) and Theorem 2."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BinomialSystemModel
from repro.solvers import (
    evaluate_replication_strategy,
    policy_stationary_distribution,
    solve_replication_lagrangian,
    solve_replication_lp,
)


@pytest.fixture
def model():
    return BinomialSystemModel(
        smax=10,
        f=2,
        per_node_failure_probability=0.1,
        regeneration_probability=0.05,
        epsilon_a=0.9,
    )


class TestAlgorithm2LP:
    def test_feasible_solution(self, model):
        solution = solve_replication_lp(model)
        assert solution.feasible

    def test_meets_availability_constraint(self, model):
        solution = solve_replication_lp(model)
        assert solution.availability >= model.epsilon_a - 1e-6

    def test_occupancy_is_a_distribution(self, model):
        solution = solve_replication_lp(model)
        assert solution.occupancy.sum() == pytest.approx(1.0, abs=1e-6)
        assert np.all(solution.occupancy >= -1e-9)

    def test_cost_not_below_minimum_required_nodes(self, model):
        """Meeting the availability constraint requires at least f + 1 nodes on average."""
        solution = solve_replication_lp(model)
        assert solution.expected_cost >= (model.f + 1) * model.epsilon_a - 1e-6

    def test_theorem_2_mixture_is_threshold_like(self, model):
        """Theorem 2: there *exists* an optimal strategy that mixes two
        threshold strategies.  The Lagrangian construction produces it, and
        its add-probability is non-increasing in the state."""
        lagrangian = solve_replication_lagrangian(model)
        probs = [lagrangian.strategy.add_probability(s) for s in range(model.num_states)]
        assert all(a >= b - 1e-9 for a, b in zip(probs, probs[1:]))

    def test_lp_is_at_least_as_good_as_threshold_mixture(self, model):
        """The exact LP optimum is a lower bound on any feasible strategy's cost."""
        lp = solve_replication_lp(model)
        lagrangian = solve_replication_lagrangian(model)
        add_probs = np.array(
            [lagrangian.strategy.add_probability(s) for s in range(model.num_states)]
        )
        mixture_cost, mixture_availability = evaluate_replication_strategy(model, add_probs)
        if mixture_availability >= model.epsilon_a - 1e-9:
            assert lp.expected_cost <= mixture_cost + 1e-6

    def test_tighter_constraint_costs_more(self):
        loose = BinomialSystemModel(smax=10, f=2, per_node_failure_probability=0.1,
                                    regeneration_probability=0.05, epsilon_a=0.6)
        tight = BinomialSystemModel(smax=10, f=2, per_node_failure_probability=0.1,
                                    regeneration_probability=0.05, epsilon_a=0.95)
        assert (
            solve_replication_lp(tight).expected_cost
            >= solve_replication_lp(loose).expected_cost - 1e-6
        )

    def test_infeasible_constraint_detected(self):
        """A failure probability so high that even smax nodes cannot stay available."""
        model = BinomialSystemModel(
            smax=3, f=2, per_node_failure_probability=0.95,
            regeneration_probability=0.001, epsilon_a=0.999,
        )
        solution = solve_replication_lp(model)
        assert not solution.feasible

    def test_scaling_with_smax(self):
        """Alg. 2 stays solvable as smax grows (the Fig. 9 experiment)."""
        for smax in (4, 16, 48):
            model = BinomialSystemModel(
                smax=smax, f=3, per_node_failure_probability=0.1,
                regeneration_probability=0.05, epsilon_a=0.9,
            )
            assert solve_replication_lp(model).feasible


class TestLagrangianRelaxation:
    def test_produces_mixture_of_thresholds(self, model):
        solution = solve_replication_lagrangian(model)
        assert solution.threshold_low <= solution.threshold_high
        assert 0.0 <= solution.kappa <= 1.0

    def test_mixture_meets_constraint(self, model):
        solution = solve_replication_lagrangian(model)
        add_probs = np.array(
            [solution.strategy.add_probability(s) for s in range(model.num_states)]
        )
        _, availability = evaluate_replication_strategy(model, add_probs)
        assert availability >= model.epsilon_a - 0.02

    def test_near_lp_optimal(self, model):
        """The Theorem 2 mixture achieves a cost close to the exact LP optimum."""
        lp = solve_replication_lp(model)
        lagrangian = solve_replication_lagrangian(model)
        add_probs = np.array(
            [lagrangian.strategy.add_probability(s) for s in range(model.num_states)]
        )
        cost, _ = evaluate_replication_strategy(model, add_probs)
        assert cost <= lp.expected_cost * 1.25 + 0.5

    def test_infeasible_raises(self):
        model = BinomialSystemModel(
            smax=3, f=2, per_node_failure_probability=0.95,
            regeneration_probability=0.001, epsilon_a=0.999,
        )
        with pytest.raises(ValueError):
            solve_replication_lagrangian(model)


def _model_from_kernel(kernel: np.ndarray, f: int = 0, epsilon_a: float = 0.5):
    from repro.core import SystemModel

    return SystemModel(np.stack([kernel, kernel]), f=f, epsilon_a=epsilon_a)


class TestStationaryDistributionEdgeCases:
    def test_absorbing_kernel_concentrates_on_absorbing_state(self):
        """Every state drains to 0, which is absorbing: pi = e_0."""
        num_states = 4
        kernel = np.zeros((num_states, num_states))
        kernel[:, 0] = 1.0
        model = _model_from_kernel(kernel)
        policy = np.zeros(num_states, dtype=int)
        distribution = policy_stationary_distribution(model, policy)
        expected = np.zeros(num_states)
        expected[0] = 1.0
        np.testing.assert_allclose(distribution, expected, atol=1e-8)

    def test_identity_kernel_returns_minimum_norm_distribution(self):
        """Degenerate chain where every distribution is stationary: the
        least-squares solve picks the minimum-norm one (uniform)."""
        num_states = 5
        model = _model_from_kernel(np.eye(num_states))
        policy = np.zeros(num_states, dtype=int)
        distribution = policy_stationary_distribution(model, policy)
        assert distribution.sum() == pytest.approx(1.0)
        np.testing.assert_allclose(distribution, np.full(num_states, 0.2), atol=1e-8)

    def test_periodic_kernel(self):
        """A deterministic 2-cycle has the uniform stationary distribution."""
        kernel = np.array([[0.0, 1.0], [1.0, 0.0]])
        model = _model_from_kernel(kernel)
        distribution = policy_stationary_distribution(
            model, np.zeros(2, dtype=int)
        )
        np.testing.assert_allclose(distribution, [0.5, 0.5], atol=1e-8)

    def test_two_absorbing_classes_still_returns_a_distribution(self):
        """Non-unichain kernel (two absorbing states): the solve returns a
        valid distribution rather than NaNs (assumption B is the caller's
        responsibility)."""
        kernel = np.array(
            [
                [1.0, 0.0, 0.0],
                [0.5, 0.0, 0.5],
                [0.0, 0.0, 1.0],
            ]
        )
        model = _model_from_kernel(kernel)
        distribution = policy_stationary_distribution(model, np.zeros(3, dtype=int))
        assert distribution.sum() == pytest.approx(1.0)
        assert np.all(distribution >= 0.0)
        assert distribution[1] == pytest.approx(0.0, abs=1e-8)

    def test_invalid_policy_shape_raises(self, model):
        with pytest.raises(ValueError):
            policy_stationary_distribution(model, np.zeros(3, dtype=int))

    def test_invalid_policy_entries_raise(self, model):
        policy = np.full(model.num_states, 7, dtype=int)
        with pytest.raises(ValueError):
            policy_stationary_distribution(model, policy)

    def test_evaluation_on_absorbing_chain(self):
        """Availability of an all-drain chain is the indicator of state 0."""
        num_states = 4
        kernel = np.zeros((num_states, num_states))
        kernel[:, 0] = 1.0
        model = _model_from_kernel(kernel, f=0, epsilon_a=0.5)
        cost, availability = evaluate_replication_strategy(
            model, np.zeros(num_states)
        )
        assert cost == pytest.approx(0.0, abs=1e-8)
        assert availability == pytest.approx(0.0, abs=1e-8)


class TestStrategyEvaluation:
    def test_stationary_distribution_sums_to_one(self, model):
        policy = np.zeros(model.num_states, dtype=int)
        distribution = policy_stationary_distribution(model, policy)
        assert distribution.sum() == pytest.approx(1.0)
        assert np.all(distribution >= 0.0)

    def test_always_add_increases_availability(self, model):
        never = np.zeros(model.num_states)
        always = np.ones(model.num_states)
        _, availability_never = evaluate_replication_strategy(model, never)
        _, availability_always = evaluate_replication_strategy(model, always)
        assert availability_always >= availability_never

    def test_always_add_costs_more(self, model):
        never = np.zeros(model.num_states)
        always = np.ones(model.num_states)
        cost_never, _ = evaluate_replication_strategy(model, never)
        cost_always, _ = evaluate_replication_strategy(model, always)
        assert cost_always >= cost_never

    def test_shape_validation(self, model):
        with pytest.raises(ValueError):
            evaluate_replication_strategy(model, np.zeros(3))
