"""Version-consistency guard: ``repro.__version__`` must match setup.cfg.

The two version strings drifted twice (PR 4 and PR 8 shipped bumps to one
but not the other); this test pins them together.
"""

import configparser
from pathlib import Path

import repro


def test_version_matches_setup_cfg():
    config = configparser.ConfigParser()
    config.read(Path(__file__).resolve().parent.parent / "setup.cfg")
    assert repro.__version__ == config["metadata"]["version"]
