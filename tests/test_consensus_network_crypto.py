"""Tests for the simulated network, signatures, USIG and the state machine."""

from __future__ import annotations

import pytest

from repro.consensus import (
    ClientRequest,
    KeyRegistry,
    KeyValueStateMachine,
    NetworkConfig,
    SimulatedNetwork,
    USIG,
    USIGVerifier,
    digest,
)


class Recorder:
    """Minimal process that records delivered messages."""

    def __init__(self, process_id: str) -> None:
        self.process_id = process_id
        self.received: list[tuple[str, object, int]] = []

    def on_message(self, sender: str, payload: object, tick: int) -> None:
        self.received.append((sender, payload, tick))


class TestSimulatedNetwork:
    def test_delivers_messages_in_order_of_delay(self):
        network = SimulatedNetwork(NetworkConfig(base_delay=1))
        a, b = Recorder("a"), Recorder("b")
        network.register(a)
        network.register(b)
        network.send("a", "b", "hello")
        network.run()
        assert b.received[0][1] == "hello"
        assert b.received[0][0] == "a"

    def test_duplicate_registration_rejected(self):
        network = SimulatedNetwork()
        network.register(Recorder("a"))
        with pytest.raises(ValueError):
            network.register(Recorder("a"))

    def test_unknown_destination_is_dropped(self):
        network = SimulatedNetwork()
        network.register(Recorder("a"))
        network.send("a", "ghost", "boo")
        assert network.pending_messages() == 0

    def test_crashed_process_receives_nothing(self):
        network = SimulatedNetwork()
        a, b = Recorder("a"), Recorder("b")
        network.register(a)
        network.register(b)
        network.crash("b")
        network.send("a", "b", "x")
        network.run()
        assert b.received == []
        assert network.messages_dropped == 1

    def test_restart_resumes_delivery(self):
        network = SimulatedNetwork()
        a, b = Recorder("a"), Recorder("b")
        network.register(a)
        network.register(b)
        network.crash("b")
        network.restart("b")
        network.send("a", "b", "x")
        network.run()
        assert len(b.received) == 1

    def test_broadcast_excludes_sender_by_default(self):
        network = SimulatedNetwork()
        procs = [Recorder(f"p{i}") for i in range(3)]
        for proc in procs:
            network.register(proc)
        network.broadcast("p0", "msg")
        network.run()
        assert procs[0].received == []
        assert len(procs[1].received) == 1
        assert len(procs[2].received) == 1

    def test_partition_delays_cross_group_messages(self):
        network = SimulatedNetwork()
        a, b = Recorder("a"), Recorder("b")
        network.register(a)
        network.register(b)
        network.partition([["a"], ["b"]])
        network.send("a", "b", "x")
        network.run(max_ticks=20)
        assert b.received == []
        network.heal_partition()
        network.run(max_ticks=20)
        assert len(b.received) == 1

    def test_reliable_links_retransmit_losses(self):
        network = SimulatedNetwork(
            NetworkConfig(loss_probability=0.5, reliable=True), seed=0
        )
        a, b = Recorder("a"), Recorder("b")
        network.register(a)
        network.register(b)
        for _ in range(50):
            network.send("a", "b", "x")
        network.run(max_ticks=500)
        assert len(b.received) == 50

    def test_unreliable_links_drop_messages(self):
        network = SimulatedNetwork(
            NetworkConfig(loss_probability=0.5, reliable=False), seed=0
        )
        a, b = Recorder("a"), Recorder("b")
        network.register(a)
        network.register(b)
        for _ in range(100):
            network.send("a", "b", "x")
        network.run(max_ticks=500)
        assert len(b.received) < 100
        assert network.messages_dropped > 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            NetworkConfig(base_delay=-1)
        with pytest.raises(ValueError):
            NetworkConfig(loss_probability=1.0)


class TestCrypto:
    def test_sign_and_verify(self):
        registry = KeyRegistry()
        key = registry.create("client-1")
        signature = key.sign({"op": "write"})
        assert registry.verify({"op": "write"}, signature)

    def test_tampered_payload_rejected(self):
        registry = KeyRegistry()
        key = registry.create("client-1")
        signature = key.sign({"op": "write"})
        assert not registry.verify({"op": "delete"}, signature)

    def test_cannot_forge_other_principals_signature(self):
        """Proposition 1a: the attacker cannot forge signatures."""
        registry = KeyRegistry()
        registry.create("honest")
        attacker_key = registry.create("attacker")
        forged = attacker_key.sign({"op": "write"})
        forged_signature = type(forged)(signer="honest", tag=forged.tag)
        assert not registry.verify({"op": "write"}, forged_signature)

    def test_unknown_signer_rejected(self):
        registry = KeyRegistry()
        other = KeyRegistry().create("ghost")
        signature = other.sign("x")
        assert not registry.verify("x", signature)

    def test_duplicate_key_creation_rejected(self):
        registry = KeyRegistry()
        registry.create("a")
        with pytest.raises(ValueError):
            registry.create("a")

    def test_digest_deterministic(self):
        assert digest({"a": 1, "b": 2}) == digest({"b": 2, "a": 1})
        assert digest({"a": 1}) != digest({"a": 2})


class TestUSIG:
    def test_counter_is_monotonic(self):
        registry = KeyRegistry()
        usig = USIG("replica-0", registry)
        ui1 = usig.create_ui("m1")
        ui2 = usig.create_ui("m2")
        assert ui2.counter == ui1.counter + 1

    def test_verifier_accepts_valid_ui(self):
        registry = KeyRegistry()
        usig = USIG("replica-0", registry)
        verifier = USIGVerifier(registry)
        ui = usig.create_ui("message")
        assert verifier.verify("message", ui)

    def test_verifier_rejects_wrong_message(self):
        registry = KeyRegistry()
        usig = USIG("replica-0", registry)
        verifier = USIGVerifier(registry)
        ui = usig.create_ui("message")
        assert not verifier.verify("different", ui)

    def test_fifo_order_enforced(self):
        """No gaps and no reuse: the anti-equivocation property of MinBFT."""
        registry = KeyRegistry()
        usig = USIG("replica-0", registry)
        verifier = USIGVerifier(registry)
        ui1 = usig.create_ui("m1")
        ui2 = usig.create_ui("m2")
        ui3 = usig.create_ui("m3")
        assert verifier.verify("m1", ui1)
        # Skipping ui2 is rejected when order is enforced.
        assert not verifier.verify("m3", ui3)
        assert verifier.verify("m2", ui2)

    def test_order_not_enforced_mode(self):
        registry = KeyRegistry()
        usig = USIG("replica-0", registry)
        verifier = USIGVerifier(registry)
        usig.create_ui("m1")
        ui2 = usig.create_ui("m2")
        assert verifier.verify("m2", ui2, enforce_order=False)

    def test_cross_replica_ui_rejected(self):
        registry = KeyRegistry()
        usig_a = USIG("replica-a", registry)
        verifier = USIGVerifier(registry)
        ui = usig_a.create_ui("m")
        tampered = type(ui)(
            replica_id="replica-b",
            counter=ui.counter,
            message_digest=ui.message_digest,
            signature=ui.signature,
        )
        assert not verifier.verify("m", tampered)


class TestStateMachine:
    def _request(self, request_id: int, operation: str, key: str, value=None) -> ClientRequest:
        return ClientRequest(
            client_id="c", request_id=request_id, operation=operation, key=key, value=value
        )

    def test_write_then_read(self):
        machine = KeyValueStateMachine()
        machine.apply(self._request(1, "write", "x", 10), sequence=1)
        result = machine.apply(self._request(2, "read", "x"), sequence=2)
        assert result.value == 10

    def test_duplicate_request_is_idempotent(self):
        machine = KeyValueStateMachine()
        request = self._request(1, "write", "x", 10)
        machine.apply(request, 1)
        machine.apply(request, 2)
        assert machine.executed_requests() == (("c", 1),)

    def test_unknown_operation_fails(self):
        machine = KeyValueStateMachine()
        result = machine.apply(self._request(1, "delete", "x"), 1)
        assert not result.success

    def test_state_digest_reflects_content(self):
        a, b = KeyValueStateMachine(), KeyValueStateMachine()
        a.apply(self._request(1, "write", "x", 1), 1)
        b.apply(self._request(1, "write", "x", 1), 1)
        assert a.state_digest() == b.state_digest()
        b.apply(self._request(2, "write", "x", 2), 2)
        assert a.state_digest() != b.state_digest()

    def test_snapshot_restore(self):
        a = KeyValueStateMachine()
        a.apply(self._request(1, "write", "x", 1), 1)
        snapshot = a.snapshot()
        b = KeyValueStateMachine()
        b.restore(snapshot)
        assert b.read("x") == 1
        assert b.last_sequence == 1
        assert b.state_digest() == a.state_digest()

    def test_restore_legacy_snapshot_without_history_digest(self):
        """Snapshots from older producers recompute the rolling history digest."""
        a = KeyValueStateMachine()
        for i in range(1, 4):
            a.apply(self._request(i, "write", "x", i), i)
        legacy = a.snapshot()
        legacy.pop("history_digest")
        b = KeyValueStateMachine()
        b.restore(legacy)
        assert b.state_digest() == a.state_digest()

    def test_restored_machine_digest_tracks_further_execution(self):
        """Executing on a restored machine matches executing from scratch."""
        a = KeyValueStateMachine()
        a.apply(self._request(1, "write", "x", 1), 1)
        b = KeyValueStateMachine()
        b.restore(a.snapshot())
        a.apply(self._request(2, "write", "y", 2), 2)
        b.apply(self._request(2, "write", "y", 2), 2)
        assert b.state_digest() == a.state_digest()

    def test_duplicate_apply_reports_duplicate_flag(self):
        machine = KeyValueStateMachine()
        request = self._request(1, "write", "x", 10)
        first = machine.apply(request, 1)
        second = machine.apply(request, 2)
        assert not first.duplicate
        assert second.duplicate


class TestPartitionTiming:
    def test_blocked_head_does_not_defer_deliverable_messages(self):
        """Regression: a partitioned envelope at the queue head must not delay
        same-tick deliverable messages behind it (the old drain re-queued the
        blocked envelope and stopped, deferring everything else a tick)."""
        network = SimulatedNetwork(NetworkConfig(base_delay=1))
        a, b, c = Recorder("a"), Recorder("b"), Recorder("c")
        for process in (a, b, c):
            network.register(process)
        network.partition([["a"], ["b", "c"]])
        # The blocked a->b envelope is queued first (lower heap tiebreak) and
        # shares the delivery tick with the deliverable c->b envelope.
        network.send("a", "b", "blocked")
        network.send("c", "b", "deliverable")
        delivered = network.step()
        assert delivered == 1
        assert b.received == [("c", "deliverable", 1)]
        # The partitioned message stays queued and arrives once healed.
        network.heal_partition()
        network.run(max_ticks=5)
        assert b.received[1][:2] == ("a", "blocked")

    def test_partitioned_envelope_does_not_spin_the_drain(self):
        network = SimulatedNetwork(NetworkConfig(base_delay=1))
        a, b = Recorder("a"), Recorder("b")
        network.register(a)
        network.register(b)
        network.partition([["a"], ["b"]])
        network.send("a", "b", "x")
        for _ in range(10):
            network.step()
        assert b.received == []
        assert network.pending_messages() == 1


class TestMessageBatching:
    def test_batched_payloads_delivered_individually_in_order(self):
        network = SimulatedNetwork(NetworkConfig(base_delay=1, batch_messages=True))
        a, b = Recorder("a"), Recorder("b")
        network.register(a)
        network.register(b)
        for i in range(5):
            network.send("a", "b", f"m{i}")
        assert network.pending_messages() == 5
        network.run(max_ticks=10)
        assert [payload for _, payload, _ in b.received] == [f"m{i}" for i in range(5)]
        assert network.messages_delivered == 5

    def test_batching_matches_unbatched_delivery_set(self):
        def run(batch: bool) -> list[tuple[str, object]]:
            network = SimulatedNetwork(
                NetworkConfig(base_delay=1, batch_messages=batch), seed=3
            )
            recorders = [Recorder(f"p{i}") for i in range(3)]
            for recorder in recorders:
                network.register(recorder)
            for i in range(4):
                network.send("p0", "p1", f"a{i}")
                network.send("p0", "p2", f"b{i}")
                network.send("p1", "p2", f"c{i}")
            network.run(max_ticks=10)
            return sorted(
                (recorder.process_id, payload)
                for recorder in recorders
                for _, payload, _ in recorder.received
            )

        assert run(True) == run(False)

    def test_batched_loss_drops_whole_batch(self):
        network = SimulatedNetwork(
            NetworkConfig(
                base_delay=1, loss_probability=0.5, reliable=False, batch_messages=True
            ),
            seed=0,
        )
        a, b = Recorder("a"), Recorder("b")
        network.register(a)
        network.register(b)
        for tick in range(40):
            network.send("a", "b", tick)
            network.step()
        network.run(max_ticks=10)
        assert network.messages_dropped > 0
        assert network.messages_delivered + network.messages_dropped == 40


class TestUSIGRekeying:
    def test_rotate_revokes_old_signatures(self):
        registry = KeyRegistry()
        usig = USIG("replica-0", registry)
        verifier = USIGVerifier(registry)
        ui = usig.create_ui("msg")
        assert verifier.verify("msg", ui, enforce_order=False)
        fresh = USIG("replica-0", registry, fresh_key=True)
        assert not verifier.verify("msg", ui, enforce_order=False)
        new_ui = fresh.create_ui("msg2")
        assert verifier.verify("msg2", new_ui, enforce_order=False)

    def test_fresh_key_resets_counter(self):
        registry = KeyRegistry()
        usig = USIG("replica-0", registry)
        for _ in range(5):
            usig.create_ui("m")
        fresh = USIG("replica-0", registry, fresh_key=True)
        assert fresh.counter == 0
        assert fresh.create_ui("m").counter == 1
