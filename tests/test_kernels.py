"""Tests for the selectable kernel backends (``repro.sim.kernels``, PR 7).

Covers the backend registry and selection precedence, bit-exactness of the
fused backend against the reference backend (property-based, including the
degenerate-observation fallback and the belief trellis), the rank-table
machinery behind the fused run loop, the numba backend's versioned
tolerance tier (run as pure Python so the contract is testable without the
optional dependency), and the observability satellites (per-phase profiles,
workspace allocation in ``begin``, the belief-dynamics memo).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.sim.kernels.fused as fused_module
from repro.core import (
    BetaBinomialObservationModel,
    DiscreteObservationModel,
    MultiThresholdStrategy,
    NodeParameters,
    PeriodicStrategy,
    ThresholdStrategy,
)
from repro.sim import (
    BatchMultiThreshold,
    BatchRecoveryEngine,
    CachedBeliefDynamics,
    EngineProfile,
    FleetScenario,
    available_backends,
    resolve_backend,
)
from repro.sim.kernels import (
    BACKENDS,
    DEFAULT_BACKEND,
    ENV_VAR,
    HAVE_NUMBA,
    NUMBA_TOLERANCE_TIER,
    FusedKernel,
    NumbaKernel,
)

_OBSERVATION_MODEL = BetaBinomialObservationModel()

#: Small observation alphabet (|O| = 3 <= _MAX_TRELLIS_AUTO_OBS): the fused
#: backend turns the belief trellis on automatically for this model.
_SMALL_MODEL = DiscreteObservationModel(
    observations=[0, 1, 2],
    healthy_pmf=[0.7, 0.2, 0.1],
    compromised_pmf=[0.1, 0.3, 0.6],
)

#: A zero likelihood entry under both live states: Assumption D fails, so
#: the engine must keep the degenerate-observation fallback branch.
_DEGENERATE_MODEL = DiscreteObservationModel(
    observations=[0, 1, 2],
    healthy_pmf=[1.0, 0.0, 0.0],
    compromised_pmf=[0.0, 0.0, 1.0],
)


def _single_node(model=_OBSERVATION_MODEL, horizon=40, **params):
    params.setdefault("p_a", 0.1)
    params.setdefault("delta_r", 8)
    return FleetScenario.single_node(NodeParameters(**params), model, horizon=horizon)


def _assert_results_equal(a, b):
    for name in (
        "average_cost",
        "time_to_recovery",
        "recovery_frequency",
        "num_recoveries",
        "num_compromises",
    ):
        assert np.array_equal(getattr(a, name), getattr(b, name)), name
    assert a.steps == b.steps
    if a.availability is None:
        assert b.availability is None
    else:
        assert np.array_equal(a.availability, b.availability)


def _compare_backends(scenario, strategy, num_episodes=32, seed=3, trellis=None):
    reference = BatchRecoveryEngine(scenario, backend="reference")
    fused = BatchRecoveryEngine(scenario, backend="fused")
    ref = reference.run(strategy, num_episodes=num_episodes, seed=seed)
    out = fused.run(strategy, num_episodes=num_episodes, seed=seed, trellis=trellis)
    _assert_results_equal(ref, out)
    return ref


class TestBackendSelection:
    def test_registry_and_default(self):
        assert set(BACKENDS) == {"reference", "fused", "numba"}
        assert DEFAULT_BACKEND == "fused"
        names = available_backends()
        assert "reference" in names and "fused" in names
        assert ("numba" in names) == HAVE_NUMBA

    def test_explicit_argument(self):
        engine = BatchRecoveryEngine(_single_node(), backend="reference")
        assert engine.backend == "reference"
        assert type(engine._kernel).__name__ == "ReferenceKernel"

    def test_environment_variable(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "reference")
        assert resolve_backend() == "reference"
        assert BatchRecoveryEngine(_single_node()).backend == "reference"
        # An explicit argument beats the environment variable.
        assert BatchRecoveryEngine(_single_node(), backend="fused").backend == "fused"

    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert resolve_backend() == DEFAULT_BACKEND

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown engine backend"):
            resolve_backend("fortran")

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba installed: no fallback to test")
    def test_numba_fallback_warns(self):
        with pytest.warns(RuntimeWarning, match="numba is not installed"):
            engine = BatchRecoveryEngine(_single_node(), backend="numba")
        assert engine.backend == "fused"

    def test_case_and_whitespace_insensitive(self):
        assert resolve_backend("  Reference ") == "reference"


class TestFusedBitExactness:
    """The fused backend must reproduce the reference backend bit for bit."""

    @given(
        p_a=st.floats(min_value=0.01, max_value=0.5),
        p_c1=st.floats(min_value=0.01, max_value=0.5),
        p_u=st.floats(min_value=0.0, max_value=0.5),
        degenerate=st.booleans(),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_update_beliefs_equals_batch_posterior(self, p_a, p_c1, p_u, degenerate, seed):
        """The fused-table kernel == ``_batch_two_state_posterior`` bitwise,
        for random node models, beliefs, observations and recover masks —
        including the degenerate-observation fallback branch."""
        from repro.core.belief import _batch_two_state_posterior
        from repro.core.node_model import NodeTransitionModel

        model = _DEGENERATE_MODEL if degenerate else _SMALL_MODEL
        scenario = _single_node(model, p_a=p_a, p_c1=p_c1, p_u=p_u)
        engine = BatchRecoveryEngine(scenario, backend="fused")
        kernel = engine._kernel
        rng = np.random.default_rng(seed)
        batch = 17
        beliefs = rng.random(batch)
        recover = rng.random(batch) < 0.4
        observations = rng.integers(0, model.num_observations, size=batch)
        pmf = engine._observation_pmf[0]
        transition = NodeTransitionModel(scenario.node_params[0])
        expected = _batch_two_state_posterior(
            beliefs,
            recover,
            pmf[0][observations],
            pmf[1][observations],
            transition.matrix(0),
            transition.matrix(1),
        )
        updated = kernel.update_beliefs(
            recover[:, None], observations[:, None], beliefs[:, None]
        )
        assert np.array_equal(updated[:, 0], expected)

    @given(
        p_a=st.floats(min_value=0.01, max_value=0.5),
        p_c1=st.floats(min_value=0.01, max_value=0.5),
        p_u=st.floats(min_value=0.0, max_value=0.5),
        alpha=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_threshold_parity_random_parameters(self, p_a, p_c1, p_u, alpha, seed):
        scenario = _single_node(p_a=p_a, p_c1=p_c1, p_u=p_u, horizon=25)
        _compare_backends(scenario, ThresholdStrategy(alpha), num_episodes=20, seed=seed)

    @given(
        alpha=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=15, deadline=None)
    def test_degenerate_observation_fallback_parity(self, alpha, seed):
        scenario = _single_node(_DEGENERATE_MODEL, p_u=0.0, horizon=25)
        engine = BatchRecoveryEngine(scenario, backend="fused")
        assert not engine._regular_observations
        _compare_backends(scenario, ThresholdStrategy(alpha), num_episodes=20, seed=seed)

    @pytest.mark.parametrize(
        "strategy",
        [
            ThresholdStrategy(0.6),
            MultiThresholdStrategy.from_vector([0.2, 0.5, 0.9], delta_r=8.0),
            PeriodicStrategy(5),
        ],
        ids=["threshold", "multi-threshold", "periodic"],
    )
    def test_strategy_classes_parity(self, strategy):
        _compare_backends(_single_node(), strategy, num_episodes=48, seed=11)

    def test_per_episode_thresholds_parity(self):
        """2-D BatchMultiThreshold is trellis-ineligible but still bit-exact."""
        rng = np.random.default_rng(5)
        strategy = BatchMultiThreshold(rng.uniform(0.2, 0.9, size=(48, 3)))
        _compare_backends(_single_node(), strategy, num_episodes=48, seed=11)

    @pytest.mark.parametrize("num_nodes", [2, 4, 6])
    def test_multi_node_parity(self, num_nodes):
        """Covers both the rank path (N <= 4) and the raw path (N > 4)."""
        assert fused_module._MAX_RANK_NODES == 4
        scenario = FleetScenario.homogeneous(
            NodeParameters(p_a=0.15, delta_r=10),
            _OBSERVATION_MODEL,
            num_nodes=num_nodes,
            horizon=30,
            f=1,
        )
        ref = _compare_backends(scenario, ThresholdStrategy(0.5), num_episodes=24, seed=2)
        assert ref.availability is not None


class TestBeliefTrellis:
    def test_trellis_on_off_parity(self):
        """Forced on, forced off and auto all agree with the reference path."""
        scenario = _single_node(_SMALL_MODEL, horizon=40)
        strategy = ThresholdStrategy(0.55)
        for trellis in (True, False, None):
            _compare_backends(scenario, strategy, num_episodes=64, seed=9, trellis=trellis)

    def test_trellis_cap_materializes(self, monkeypatch):
        """Hitting the node cap abandons the trellis mid-run, not the results."""
        monkeypatch.setattr(fused_module, "_MAX_TRELLIS_NODES", 4)
        scenario = _single_node(_SMALL_MODEL, horizon=40)
        _compare_backends(scenario, ThresholdStrategy(0.55), num_episodes=64, seed=9, trellis=True)

    def test_trellis_profile_label(self):
        scenario = _single_node(_SMALL_MODEL, horizon=20)
        engine = BatchRecoveryEngine(scenario, backend="fused")
        result = engine.run(ThresholdStrategy(0.5), num_episodes=32, seed=0, profile=True)
        assert result.profile.backend == "fused+trellis"


class TestRankTables:
    def test_ranks_into_matches_searchsorted(self):
        rng = np.random.default_rng(0)
        merged = np.unique(rng.random(37))
        bucket = FusedKernel._bucket_grid(merged)
        assert bucket is not None
        u = rng.random((50, 8))
        out = np.empty_like(u, dtype=np.int64)
        FusedKernel._ranks_into(u, merged, bucket, out)
        expected = np.searchsorted(merged, u.ravel(), side="right").reshape(u.shape)
        assert np.array_equal(out, expected)
        # Values of the merged set themselves rank as #{merged <= u}.
        out2 = np.empty(len(merged), dtype=np.int64)
        FusedKernel._ranks_into(merged, merged, bucket, out2)
        assert np.array_equal(out2, np.arange(1, len(merged) + 1))

    def test_bucket_grid_dense_set_falls_back(self):
        # Eight values inside one 1/65536 bucket: occupancy > 4 at the cap,
        # so the grid is abandoned and _ranks_into uses searchsorted.
        merged = 0.5 + np.arange(8) * 1e-9
        assert FusedKernel._bucket_grid(merged) is None
        u = np.array([0.4999, 0.5 + 3.5e-9, 0.6])
        out = np.empty(3, dtype=np.int64)
        FusedKernel._ranks_into(u, merged, None, out)
        assert np.array_equal(out, np.searchsorted(merged, u, side="right"))

    def test_rank_cache_memoizes_by_buffer_identity(self):
        engine = BatchRecoveryEngine(_single_node(), backend="fused")
        kernel = engine._kernel
        uniforms = engine.draw_uniforms(0, 16)
        first = kernel._uniform_ranks(uniforms)
        assert kernel._uniform_ranks(uniforms) is first
        # The entry pins the buffer, so the address key cannot be recycled.
        key = uniforms.__array_interface__["data"][0]
        assert kernel._rank_cache[key][0] is uniforms
        # A different buffer gets its own entry; the cache stays bounded.
        for seed in range(1, 6):
            kernel._uniform_ranks(engine.draw_uniforms(seed, 16))
        assert len(kernel._rank_cache) <= 4

    def test_uniform_ranks_values(self):
        engine = BatchRecoveryEngine(_single_node(), backend="fused")
        kernel = engine._kernel
        uniforms = engine.draw_uniforms(1, 4)
        num_episodes, num_nodes, width = uniforms.shape
        flat = kernel._uniform_ranks(uniforms)
        ranks = flat.reshape(width, 2, num_nodes, num_episodes)
        ut = uniforms[:, 0, :].T
        for row, merged in ((0, kernel._t_merged[0]), (1, kernel._obs_merged[0])):
            expected = np.searchsorted(merged, ut.ravel(), side="right")
            assert np.array_equal(ranks[:, row, 0], expected.reshape(ut.shape))


class TestNumbaToleranceTier:
    """The numba backend's semantics, run as pure Python (force_python)."""

    def _run(self, scenario, strategy, num_episodes=64, seed=4):
        engine = BatchRecoveryEngine(scenario, backend="fused")
        kernel = NumbaKernel(engine, force_python=True)
        strategies = engine._normalize_strategies(strategy)
        uniforms = engine.draw_uniforms(seed, num_episodes)
        return kernel, kernel.simulate(strategies, uniforms)

    def test_tier_is_versioned(self):
        assert NUMBA_TOLERANCE_TIER["version"] == 1
        assert NUMBA_TOLERANCE_TIER["determinism"] == "bitwise"

    def test_statistics_within_tolerance(self):
        scenario = _single_node(horizon=60)
        strategy = ThresholdStrategy(0.6)
        _, numba_result = self._run(scenario, strategy)
        reference = BatchRecoveryEngine(scenario, backend="reference").run(
            strategy, num_episodes=64, seed=4
        )
        for name in ("average_cost", "time_to_recovery", "recovery_frequency"):
            np.testing.assert_allclose(
                getattr(numba_result, name).mean(),
                getattr(reference, name).mean(),
                atol=NUMBA_TOLERANCE_TIER["stat_atol"],
                rtol=NUMBA_TOLERANCE_TIER["stat_rtol"],
            )

    def test_same_seed_determinism_is_bitwise(self):
        scenario = _single_node(horizon=40)
        strategy = ThresholdStrategy(0.6)
        _, first = self._run(scenario, strategy)
        _, second = self._run(scenario, strategy)
        _assert_results_equal(first, second)

    def test_inexpressible_strategy_uses_fused_path(self):
        """A per-episode threshold matrix cannot enter the JIT loop."""
        scenario = _single_node(horizon=30)
        rng = np.random.default_rng(8)
        strategy = BatchMultiThreshold(rng.uniform(0.2, 0.9, size=(32, 2)))
        engine = BatchRecoveryEngine(scenario, backend="fused")
        kernel = NumbaKernel(engine, force_python=True)
        result = kernel.simulate(
            engine._normalize_strategies(strategy), engine.draw_uniforms(1, 32)
        )
        reference = BatchRecoveryEngine(scenario, backend="reference").run(
            strategy, num_episodes=32, seed=1
        )
        _assert_results_equal(reference, result)  # fused fallback: bit-exact

    def test_profile_records_jit_loop_phase(self):
        scenario = _single_node(horizon=20)
        engine = BatchRecoveryEngine(scenario, backend="fused")
        kernel = NumbaKernel(engine, force_python=True)
        profile = EngineProfile()
        kernel.simulate(
            engine._normalize_strategies(ThresholdStrategy(0.6)),
            engine.draw_uniforms(0, 16),
            profile=profile,
        )
        assert profile.backend == "numba(python)"
        assert profile.nanos["jit_loop"] > 0
        assert profile.steps == 20


class TestObservability:
    def test_run_profile_collects_phases(self):
        engine = BatchRecoveryEngine(_single_node(), backend="fused")
        result = engine.run(ThresholdStrategy(0.6), num_episodes=32, seed=0, profile=True)
        profile = result.profile
        assert profile is not None
        assert profile.steps == 40
        assert profile.backend.startswith("fused")
        for phase in ("strategy", "transition_sample", "observation_draw", "belief_update"):
            assert profile.nanos[phase] > 0
        assert profile.total_ns == sum(ns for _, ns in profile.nanos.items())
        assert [row[0] for row in profile.rows()] == sorted(
            (n for n, ns in profile.nanos.items() if ns),
            key=lambda n: -profile.nanos[n],
        )

    def test_unprofiled_run_has_no_profile(self):
        engine = BatchRecoveryEngine(_single_node(), backend="fused")
        result = engine.run(ThresholdStrategy(0.6), num_episodes=8, seed=0)
        assert result.profile is None

    def test_begin_allocates_belief_workspace(self):
        engine = BatchRecoveryEngine(_single_node(), backend="fused")
        sim = engine.begin(num_episodes=12, seed=0)
        workspace = sim.belief_workspace
        assert isinstance(workspace, dict) and workspace
        for array in workspace.values():
            assert array.shape[-1] == 12 or array.shape[0] == 12

    def test_stepwise_profile(self):
        engine = BatchRecoveryEngine(_single_node(), backend="fused")
        sim = engine.begin(num_episodes=8, seed=0, profile=True)
        engine.step(sim, np.zeros((8, 1), dtype=bool))
        assert sim.profile is not None
        assert sim.profile.nanos["belief_update"] > 0

    def test_uniforms_memoized_per_seed(self):
        engine = BatchRecoveryEngine(_single_node(), backend="fused")
        first = engine.draw_uniforms(0, 16)
        assert engine.draw_uniforms(0, 16) is first
        assert not first.flags.writeable
        assert engine.draw_uniforms(1, 16) is not first


class TestCachedBeliefDynamics:
    def test_memoization_counters(self):
        cache = CachedBeliefDynamics()
        calls = []

        def compute():
            calls.append(1)
            return 0.25

        key = (0.5, 0, 3)
        assert cache.get(key, compute) == 0.25
        assert cache.get(key, compute) == 0.25
        assert len(calls) == 1
        assert cache.hits == 1 and cache.misses == 1
        assert len(cache) == 1
        cache.clear()
        assert cache.hits == 0 and cache.misses == 0 and len(cache) == 0
