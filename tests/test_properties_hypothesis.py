"""Property-based tests (hypothesis) for the core invariants.

These tests check the structural properties the paper's proofs rely on, over
randomly generated parameters and inputs:

* transition kernels are stochastic for every admissible parameter set;
* belief updates always produce valid beliefs and are monotone in the
  observation (the MLR/TP-2 machinery behind Theorem 1);
* threshold strategies induce monotone (in belief) action rules;
* the metrics collector's outputs always lie in their admissible ranges;
* the key-value state machine is deterministic (safety across replicas);
* reliability curves are monotone in time and in the number of nodes.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consensus import ClientRequest, KeyValueStateMachine
from repro.core import (
    BetaBinomialObservationModel,
    MetricsCollector,
    NodeAction,
    NodeParameters,
    NodeTransitionModel,
    ThresholdStrategy,
    healthy_nodes_transition_matrix,
    mean_time_to_failure,
    node_cost,
    reliability_function,
    update_compromise_belief,
)

_OBSERVATION_MODEL = BetaBinomialObservationModel()

probabilities = st.floats(min_value=1e-6, max_value=0.99, allow_nan=False)
beliefs = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@st.composite
def node_parameters(draw):
    return NodeParameters(
        p_a=draw(probabilities),
        p_c1=draw(probabilities),
        p_c2=draw(probabilities),
        p_u=draw(probabilities),
        eta=draw(st.floats(min_value=1.0, max_value=10.0)),
    )


class TestTransitionKernelProperties:
    @given(params=node_parameters())
    @settings(max_examples=50, deadline=None)
    def test_rows_always_stochastic(self, params):
        model = NodeTransitionModel(params)
        assert model.is_stochastic()

    @given(params=node_parameters())
    @settings(max_examples=50, deadline=None)
    def test_all_probabilities_in_unit_interval(self, params):
        matrices = NodeTransitionModel(params).matrices()
        assert np.all(matrices >= 0.0)
        assert np.all(matrices <= 1.0)

    @given(params=node_parameters())
    @settings(max_examples=50, deadline=None)
    def test_recovery_never_hurts(self, params):
        """P[healthy next | compromised, R] >= P[healthy next | compromised, W]."""
        model = NodeTransitionModel(params)
        from repro.core import NodeState

        recover = model.probability(NodeState.HEALTHY, NodeState.COMPROMISED, NodeAction.RECOVER)
        wait = model.probability(NodeState.HEALTHY, NodeState.COMPROMISED, NodeAction.WAIT)
        # Holds whenever 1 - p_a >= p_u, i.e. assumption B of Theorem 1.
        if params.p_a + params.p_u <= 1.0:
            assert recover >= wait - 1e-12


class TestBeliefProperties:
    @given(belief=beliefs, observation=st.integers(min_value=0, max_value=9))
    @settings(max_examples=100, deadline=None)
    def test_update_stays_in_unit_interval(self, belief, observation):
        params = NodeParameters(p_a=0.1)
        model = NodeTransitionModel(params)
        for action in (NodeAction.WAIT, NodeAction.RECOVER):
            updated = update_compromise_belief(
                belief, action, observation, model, _OBSERVATION_MODEL
            )
            assert 0.0 <= updated <= 1.0

    @given(belief=st.floats(min_value=0.01, max_value=0.99))
    @settings(max_examples=50, deadline=None)
    def test_update_monotone_in_observation(self, belief):
        """Higher alert counts never decrease the posterior (TP-2 / MLR property)."""
        params = NodeParameters(p_a=0.1)
        model = NodeTransitionModel(params)
        posteriors = [
            update_compromise_belief(belief, NodeAction.WAIT, o, model, _OBSERVATION_MODEL)
            for o in range(10)
        ]
        assert all(b <= a + 1e-9 for b, a in zip(posteriors, posteriors[1:]))

    @given(
        belief_low=st.floats(min_value=0.0, max_value=1.0),
        belief_high=st.floats(min_value=0.0, max_value=1.0),
        observation=st.integers(min_value=0, max_value=9),
    )
    @settings(max_examples=100, deadline=None)
    def test_update_monotone_in_prior(self, belief_low, belief_high, observation):
        """A larger prior belief never yields a smaller posterior."""
        if belief_low > belief_high:
            belief_low, belief_high = belief_high, belief_low
        params = NodeParameters(p_a=0.1)
        model = NodeTransitionModel(params)
        post_low = update_compromise_belief(
            belief_low, NodeAction.WAIT, observation, model, _OBSERVATION_MODEL
        )
        post_high = update_compromise_belief(
            belief_high, NodeAction.WAIT, observation, model, _OBSERVATION_MODEL
        )
        assert post_high >= post_low - 1e-9


class TestStrategyProperties:
    @given(alpha=beliefs, low=beliefs, high=beliefs)
    @settings(max_examples=100, deadline=None)
    def test_threshold_strategy_monotone_in_belief(self, alpha, low, high):
        """If the strategy recovers at a belief, it recovers at any larger belief."""
        if low > high:
            low, high = high, low
        strategy = ThresholdStrategy(alpha)
        if strategy.action(low) is NodeAction.RECOVER:
            assert strategy.action(high) is NodeAction.RECOVER

    @given(belief=beliefs, eta=st.floats(min_value=1.0, max_value=10.0))
    @settings(max_examples=100, deadline=None)
    def test_node_cost_non_negative(self, belief, eta):
        from repro.core import NodeState, expected_node_cost

        for action in (NodeAction.WAIT, NodeAction.RECOVER):
            assert expected_node_cost(belief, action, eta) >= 0.0
            for state in (NodeState.HEALTHY, NodeState.COMPROMISED, NodeState.CRASHED):
                assert node_cost(state, action, eta) >= 0.0


class TestMetricsProperties:
    @given(
        census=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10),
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=2),
            ),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_metrics_always_in_range(self, census):
        collector = MetricsCollector(f=1)
        for healthy, compromised, crashed, recoveries in census:
            collector.record_step(healthy, compromised, crashed, recoveries)
        metrics = collector.finalize()
        assert 0.0 <= metrics.availability <= 1.0
        assert 0.0 <= metrics.recovery_frequency <= 1.0
        assert metrics.time_to_recovery >= 0.0
        assert metrics.average_nodes >= 0.0


class TestStateMachineProperties:
    @given(
        operations=st.lists(
            st.tuples(
                st.sampled_from(["read", "write"]),
                st.sampled_from(["a", "b", "c"]),
                st.integers(min_value=0, max_value=100),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_replicas_applying_same_sequence_agree(self, operations):
        """Determinism: two replicas applying the same request sequence end in
        the same state (the mechanism behind the Safety property)."""
        replica_a, replica_b = KeyValueStateMachine(), KeyValueStateMachine()
        for index, (operation, key, value) in enumerate(operations, start=1):
            request = ClientRequest(
                client_id="c",
                request_id=index,
                operation=operation,
                key=key,
                value=value if operation == "write" else None,
            )
            replica_a.apply(request, index)
            replica_b.apply(request, index)
        assert replica_a.state_digest() == replica_b.state_digest()
        assert replica_a.executed_requests() == replica_b.executed_requests()


class TestReliabilityProperties:
    @given(
        num_nodes=st.integers(min_value=2, max_value=20),
        p_fail=st.floats(min_value=0.01, max_value=0.9),
    )
    @settings(max_examples=40, deadline=None)
    def test_reliability_curve_monotone(self, num_nodes, p_fail):
        matrix = healthy_nodes_transition_matrix(num_nodes, p_fail)
        threshold = min(1, num_nodes - 1)
        curve = reliability_function(matrix, threshold, num_nodes, horizon=30)
        assert np.all(np.diff(curve) <= 1e-9)
        assert np.all((curve >= -1e-9) & (curve <= 1.0 + 1e-9))

    @given(
        num_nodes=st.integers(min_value=3, max_value=15),
        p_fail=st.floats(min_value=0.01, max_value=0.5),
    )
    @settings(max_examples=40, deadline=None)
    def test_mttf_positive_and_decreasing_in_failure_rate(self, num_nodes, p_fail):
        matrix_low = healthy_nodes_transition_matrix(num_nodes, p_fail / 2.0)
        matrix_high = healthy_nodes_transition_matrix(num_nodes, p_fail)
        mttf_low = mean_time_to_failure(matrix_low, 1, num_nodes)
        mttf_high = mean_time_to_failure(matrix_high, 1, num_nodes)
        assert mttf_low >= mttf_high > 0.0
