"""The decision service: bit-parity, cohort fusing, protocol and server.

The serving contract (:mod:`repro.serve`) this suite pins down:

* **bit-parity** — every session's per-tick decisions and final result are
  identical to a direct ``TwoLevelController.run(seed=seed)`` on the same
  ``SeedSequence`` tree, with the fleets fused into shared engine batches
  (asserted field for field, event for event — not statistically);
* **fusing semantics** — one fused engine call per tick regardless of how
  many compatible sessions are connected; ``coalesce=False`` (the
  benchmark's serial-dispatch baseline) dispatches per fleet and stays
  bit-identical too; sessions registering after the first tick open a new
  cohort; closed sessions ghost-step inside a sealed cohort without
  perturbing the others;
* **decision-v1 protocol** — request validation, named error responses
  (never tracebacks), sparse event encoding;
* **socket path** — register/tick/result/close/stats/shutdown over NDJSON
  through :class:`ServiceClient` against a live :class:`DecisionServer`,
  including the ``python -m repro serve`` subcommand end to end.
"""

from __future__ import annotations

import json
import subprocess
import sys
import threading

import numpy as np
import pytest

from repro.control import TwoLevelController
from repro.core import (
    BetaBinomialObservationModel,
    NodeParameters,
    ReplicationThresholdStrategy,
    ThresholdStrategy,
)
from repro.serve import (
    DECISION_SCHEMA,
    DecisionServer,
    DecisionService,
    ServiceClient,
    ServiceError,
    encode_event,
)
from repro.serve.protocol import validate_request
from repro.sim import BurstyAdversary, FleetScenario, NodeClass
from repro.sim.kernels import PHASES, EngineProfile
from repro.sim.scenario_io import scenario_to_mapping

PARAMS = NodeParameters(p_a=0.1, p_c1=1e-5, p_c2=1e-3, p_u=0.02, eta=2.0)

#: The per-episode result fields compared bit for bit.
RESULT_FIELDS = (
    "availability",
    "average_nodes",
    "average_cost",
    "recovery_frequency",
    "additions",
    "emergency_additions",
    "evictions",
)


def _scenario(num_nodes=6, horizon=20, adversary=None):
    return FleetScenario.homogeneous(
        PARAMS,
        BetaBinomialObservationModel(),
        num_nodes=num_nodes,
        horizon=horizon,
        f=1,
        adversary=adversary,
    )


def _mixed_scenario(horizon=18):
    classes = [
        NodeClass(
            name="web",
            params=PARAMS,
            observation_model=BetaBinomialObservationModel(),
            count=3,
        ),
        NodeClass(
            name="db",
            params=NodeParameters(p_a=0.2, p_u=0.05, eta=3.0),
            observation_model=BetaBinomialObservationModel(compromised_alpha=1.5),
            count=3,
        ),
    ]
    return FleetScenario.mixed(classes, horizon=horizon, f=1)


def _controller(scenario, num_envs, beta=1, threshold=0.75):
    return TwoLevelController(
        scenario,
        num_envs=num_envs,
        recovery_policy=ThresholdStrategy(threshold),
        replication_strategy=ReplicationThresholdStrategy(beta),
    )


def _assert_results_equal(service_result, direct_result):
    for field in RESULT_FIELDS:
        np.testing.assert_array_equal(
            getattr(service_result, field),
            getattr(direct_result, field),
            err_msg=field,
        )


def _assert_events_equal(service_events, direct_events):
    assert len(service_events) == len(direct_events)
    for ours, theirs in zip(service_events, direct_events):
        assert ours.t == theirs.t
        np.testing.assert_array_equal(ours.executed_recoveries, theirs.executed_recoveries)
        np.testing.assert_array_equal(ours.crashed, theirs.crashed)
        np.testing.assert_array_equal(ours.failed, theirs.failed)
        np.testing.assert_array_equal(ours.activated, theirs.activated)
        np.testing.assert_array_equal(ours.active, theirs.active)
        np.testing.assert_array_equal(ours.available, theirs.available)
        np.testing.assert_array_equal(ours.decision.state, theirs.decision.state)
        np.testing.assert_array_equal(ours.decision.add_node, theirs.decision.add_node)
        np.testing.assert_array_equal(
            ours.decision.emergency_add, theirs.decision.emergency_add
        )


def _direct_run(scenario, num_envs, seed, beta=1, threshold=0.75):
    events = []
    controller = _controller(scenario, num_envs, beta=beta, threshold=threshold)
    result = controller.run(seed=seed, on_step=events.append)
    return result, events


class TestFusedParity:
    def test_fused_sessions_replay_direct_runs_bit_for_bit(self):
        scenario = _scenario()
        service = DecisionService()
        specs = [(4, 7, 1), (3, 11, 2), (2, 0, 1)]  # (episodes, seed, beta)
        sessions = [
            service.register_controller(_controller(scenario, b, beta=beta), seed=seed)
            for b, seed, beta in specs
        ]
        # Interleaved pacing: one session races ahead, the others catch up.
        events = {sessions[0]: service.tick(sessions[0], count=scenario.horizon)}
        for sid in sessions[1:]:
            events[sid] = service.tick(sid, count=scenario.horizon)
        # ONE fused engine call per tick for the whole cohort.
        assert service.engine_calls == scenario.horizon
        assert service.stats()["cohorts"] == 1
        for sid, (b, seed, beta) in zip(sessions, specs):
            direct_result, direct_events = _direct_run(scenario, b, seed, beta=beta)
            _assert_events_equal(events[sid], direct_events)
            _assert_results_equal(service.result(sid), direct_result)

    def test_serial_dispatch_is_also_bit_identical(self):
        scenario = _scenario(horizon=15)
        service = DecisionService(coalesce=False)
        s1 = service.register_controller(_controller(scenario, 3), seed=5)
        s2 = service.register_controller(_controller(scenario, 3), seed=6)
        service.tick(s1, count=scenario.horizon)
        service.tick(s2, count=scenario.horizon)
        # Per-fleet dispatch: one engine call per tick per session.
        assert service.engine_calls == 2 * scenario.horizon
        assert service.stats()["cohorts"] == 2
        for sid, seed in ((s1, 5), (s2, 6)):
            direct_result, _ = _direct_run(scenario, 3, seed)
            _assert_results_equal(service.result(sid), direct_result)

    def test_dynamic_adversary_cohort_is_bit_identical(self):
        scenario = _scenario(
            num_nodes=5, horizon=15, adversary=BurstyAdversary()
        )
        service = DecisionService()
        s1 = service.register_controller(_controller(scenario, 4), seed=2)
        s2 = service.register_controller(_controller(scenario, 2), seed=9)
        service.tick(s1, count=scenario.horizon)
        service.tick(s2, count=scenario.horizon)
        assert service.engine_calls == scenario.horizon
        for sid, (b, seed) in ((s1, (4, 2)), (s2, (2, 9))):
            direct_result, _ = _direct_run(scenario, b, seed)
            _assert_results_equal(service.result(sid), direct_result)

    def test_mixed_fleet_cohort_keeps_per_class_metrics_exact(self):
        scenario = _mixed_scenario()
        service = DecisionService()
        sid = service.register_controller(_controller(scenario, 5), seed=4)
        service.tick(sid, count=scenario.horizon)
        result = service.result(sid)
        direct = _controller(scenario, 5).run(seed=4)
        _assert_results_equal(result, direct)
        for label in direct.class_average_cost:
            np.testing.assert_array_equal(
                result.class_average_cost[label], direct.class_average_cost[label]
            )
            np.testing.assert_array_equal(
                result.class_recovery_frequency[label],
                direct.class_recovery_frequency[label],
            )

    def test_registration_after_first_tick_opens_a_new_cohort(self):
        scenario = _scenario(horizon=12)
        service = DecisionService()
        s1 = service.register_controller(_controller(scenario, 2), seed=1)
        service.tick(s1)  # seals the first cohort
        s2 = service.register_controller(_controller(scenario, 2), seed=2)
        assert service.stats()["cohorts"] == 2
        service.tick(s1, count=scenario.horizon - 1)
        service.tick(s2, count=scenario.horizon)
        for sid, seed in ((s1, 1), (s2, 2)):
            direct_result, _ = _direct_run(scenario, 2, seed)
            _assert_results_equal(service.result(sid), direct_result)

    def test_closing_a_session_ghost_steps_without_perturbing_the_rest(self):
        scenario = _scenario(horizon=16)
        service = DecisionService()
        s1 = service.register_controller(_controller(scenario, 3), seed=3)
        s2 = service.register_controller(_controller(scenario, 3), seed=8)
        service.tick(s1, count=4)
        service.close(s1)
        service.tick(s2, count=scenario.horizon)
        direct_result, _ = _direct_run(scenario, 3, 8)
        _assert_results_equal(service.result(s2), direct_result)
        with pytest.raises(ServiceError) as excinfo:
            service.tick(s1)
        assert excinfo.value.name == "unknown-session"


class TestProfileUnderBatching:
    """``EngineProfile`` accounting stays truthful across cohort fusing."""

    def test_fused_cohort_shares_one_profile_with_one_step_per_tick(self):
        scenario = _scenario(horizon=12)
        service = DecisionService(profile=True)
        s1 = service.register_controller(_controller(scenario, 3), seed=1)
        s2 = service.register_controller(_controller(scenario, 2), seed=2)
        service.tick(s1, count=scenario.horizon)
        service.tick(s2, count=scenario.horizon)
        p1 = service.result(s1).profile
        p2 = service.result(s2).profile
        # One fused engine call per tick → the cohort accounts each tick
        # exactly once, and every member sees the same shared profile.
        assert p1 is p2
        assert p1.steps == scenario.horizon
        assert p1.total_ns > 0
        assert set(PHASES) <= set(p1.nanos)
        assert all(isinstance(ns, int) for ns in p1.nanos.values())

    def test_serial_profiles_merge_to_exact_sums(self):
        scenario = _scenario(horizon=10)
        service = DecisionService(coalesce=False, profile=True)
        sessions = [
            service.register_controller(_controller(scenario, 2), seed=seed)
            for seed in (3, 4, 5)
        ]
        profiles = []
        for sid in sessions:
            service.tick(sid, count=scenario.horizon)
            profiles.append(service.result(sid).profile)
        # Per-fleet dispatch: distinct profiles, one step per tick each.
        assert len({id(p) for p in profiles}) == len(profiles)
        assert all(p.steps == scenario.horizon for p in profiles)
        merged = EngineProfile.merge(*profiles)
        assert merged.steps == len(profiles) * scenario.horizon
        phases = set().union(*(p.nanos for p in profiles))
        for phase in phases:
            assert merged.nanos[phase] == sum(p.nanos.get(phase, 0) for p in profiles)
        assert merged.total_ns == sum(p.total_ns for p in profiles)
        assert merged.backend == profiles[0].backend

    def test_profile_phase_set_matches_direct_run(self):
        scenario = _scenario(horizon=8)
        service = DecisionService(profile=True)
        sid = service.register_controller(_controller(scenario, 3), seed=9)
        service.tick(sid, count=scenario.horizon)
        fused = service.result(sid).profile
        direct = _controller(scenario, 3).run(seed=9, profile=True).profile
        assert set(fused.nanos) == set(direct.nanos)
        assert fused.steps == direct.steps == scenario.horizon
        assert fused.backend == direct.backend

    def test_unprofiled_service_attaches_no_profile(self):
        scenario = _scenario(horizon=6)
        service = DecisionService()
        sid = service.register_controller(_controller(scenario, 2), seed=0)
        service.tick(sid, count=scenario.horizon)
        assert service.result(sid).profile is None


class TestServiceErrors:
    def test_tick_past_horizon_is_a_named_error(self):
        scenario = _scenario(horizon=8)
        service = DecisionService()
        sid = service.register_controller(_controller(scenario, 2), seed=0)
        service.tick(sid, count=scenario.horizon)
        with pytest.raises(ServiceError) as excinfo:
            service.tick(sid)
        assert excinfo.value.name == "session-done"

    def test_result_before_horizon_is_a_named_error(self):
        scenario = _scenario(horizon=8)
        service = DecisionService()
        sid = service.register_controller(_controller(scenario, 2), seed=0)
        service.tick(sid, count=3)
        with pytest.raises(ServiceError) as excinfo:
            service.result(sid)
        assert excinfo.value.name == "session-not-done"

    def test_unknown_session_and_bad_count(self):
        service = DecisionService()
        with pytest.raises(ServiceError) as excinfo:
            service.tick("s999")
        assert excinfo.value.name == "unknown-session"
        scenario = _scenario(horizon=8)
        sid = service.register_controller(_controller(scenario, 2), seed=0)
        with pytest.raises(ServiceError) as excinfo:
            service.tick(sid, count=0)
        assert excinfo.value.name == "bad-request"

    def test_register_document_rejects_bad_documents_by_name(self):
        service = DecisionService()
        with pytest.raises(ServiceError) as excinfo:
            service.register_document({"schema": "repro/scenario-v9"})
        assert excinfo.value.name == "invalid-scenario"
        document = scenario_to_mapping(_scenario())
        with pytest.raises(ServiceError) as excinfo:
            service.register_document(document, overrides={"episodes": 5, "mode": "engine"})
        assert excinfo.value.name == "bad-request"
        with pytest.raises(ServiceError) as excinfo:
            service.register_document(
                document, overrides={"replication": {"type": "ppo"}}
            )
        assert excinfo.value.name == "bad-request"


class TestRegisterDocument:
    def test_document_session_matches_direct_run(self):
        scenario = _scenario(horizon=14)
        service = DecisionService()
        payload = service.register_document(
            scenario_to_mapping(scenario),
            overrides={"episodes": 4, "seed": 3, "beta": 2},
        )
        assert payload["episodes"] == 4 and payload["horizon"] == 14
        sid = payload["session"]
        service.tick(sid, count=14)
        direct_result, _ = _direct_run(scenario, 4, 3, beta=2)
        _assert_results_equal(service.result(sid), direct_result)

    def test_yaml_text_documents_register_too(self):
        yaml = pytest.importorskip("yaml")
        scenario = _scenario(horizon=10)
        text = yaml.safe_dump(
            {**scenario_to_mapping(scenario), "run": {"episodes": 3, "seed": 1}}
        )
        service = DecisionService()
        payload = service.register_document(text)
        assert payload["episodes"] == 3 and payload["seed"] == 1

    def test_lp_replication_solves_through_the_policy_cache(self):
        from repro.control import PolicySolveCache

        scenario = _scenario(num_nodes=5, horizon=12)
        cache = PolicySolveCache()
        service = DecisionService(policy_cache=cache)
        document = scenario_to_mapping(scenario)
        overrides = {
            "episodes": 3,
            "seed": 2,
            "replication": {"type": "lp", "fit_episodes": 8},
        }
        service.register_document(document, overrides=overrides)
        assert cache.misses == 1 and cache.hits == 0
        # The same fitted kernel registers again as a cache hit.
        service.register_document(document, overrides=overrides)
        assert cache.misses == 1 and cache.hits == 1
        assert service.stats()["policy_cache"]["hits"] == 1


class TestProtocol:
    def test_validate_request_names_failures(self):
        with pytest.raises(ServiceError) as excinfo:
            validate_request(["not", "a", "mapping"])
        assert excinfo.value.name == "bad-request"
        with pytest.raises(ServiceError) as excinfo:
            validate_request({"schema": "repro/decision-v2", "op": "tick"})
        assert excinfo.value.name == "schema-mismatch"
        with pytest.raises(ServiceError) as excinfo:
            validate_request({"op": "dance"})
        assert excinfo.value.name == "unknown-op"
        assert validate_request({"op": "stats"})["op"] == "stats"

    def test_encode_event_is_sparse_and_json_safe(self):
        scenario = _scenario(horizon=6)
        service = DecisionService()
        sid = service.register_controller(_controller(scenario, 3), seed=0)
        (event,) = service.tick(sid)
        payload = encode_event(event)
        json.dumps(payload)  # JSON-serializable end to end
        assert payload["t"] == 0
        assert len(payload["recoveries"]) == 3
        assert all(isinstance(row, list) for row in payload["recoveries"])
        assert payload["node_counts"] == [int(n) for n in event.active.sum(axis=1)]


class TestSocketServer:
    @pytest.fixture()
    def server(self):
        server = DecisionServer(("127.0.0.1", 0))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    def test_full_session_over_the_wire_matches_direct_run(self, server):
        scenario = _scenario(horizon=12)
        port = server.server_address[1]
        with ServiceClient("127.0.0.1", port) as client:
            reg = client.register(scenario_to_mapping(scenario), episodes=4, seed=3)
            assert reg["schema"] == DECISION_SCHEMA and reg["horizon"] == 12
            session = reg["session"]
            events = client.tick(session, count=12)
            assert [e["t"] for e in events] == list(range(12))
            result = client.result(session)
            stats = client.stats()
            client.close_session(session)
        direct = _controller(scenario, 4).run(seed=3)
        assert result["episodes"]["availability"] == [
            float(v) for v in direct.availability
        ]
        assert result["episodes"]["evictions"] == [int(v) for v in direct.evictions]
        assert result["metrics"]["availability"]["mean"] == pytest.approx(
            float(direct.availability.mean())
        )
        assert stats["engine_calls"] == 12

    def test_yaml_text_registers_over_the_wire(self, server):
        scenario = _scenario(horizon=8)
        yaml_text = scenario.to_yaml()
        assert isinstance(yaml_text, str)
        port = server.server_address[1]
        with ServiceClient("127.0.0.1", port) as client:
            reg = client.register(yaml_text, episodes=3, seed=4)
            session = reg["session"]
            assert reg["horizon"] == 8 and reg["episodes"] == 3
            client.tick(session, count=8)
            result = client.result(session)
        direct = _controller(scenario, 3).run(seed=4)
        assert result["episodes"]["availability"] == [
            float(v) for v in direct.availability
        ]

    def test_wire_errors_are_named_not_tracebacks(self, server):
        port = server.server_address[1]
        with ServiceClient("127.0.0.1", port) as client:
            for payload, name in (
                ({"op": "tick", "session": "s404"}, "unknown-session"),
                ({"op": "tick"}, "bad-request"),
                ({"op": "dance"}, "unknown-op"),
                ({"op": "register"}, "bad-request"),
                (
                    {"op": "register", "scenario": {"schema": "nope"}},
                    "invalid-scenario",
                ),
                ({"op": "tick", "schema": "repro/decision-v2"}, "schema-mismatch"),
            ):
                with pytest.raises(ServiceError) as excinfo:
                    client.request(payload)
                assert excinfo.value.name == name

    def test_two_connections_fuse_into_one_cohort(self, server):
        scenario = _scenario(horizon=10)
        document = scenario_to_mapping(scenario)
        port = server.server_address[1]
        with ServiceClient("127.0.0.1", port) as one, ServiceClient(
            "127.0.0.1", port
        ) as two:
            a = one.register(document, episodes=3, seed=1)["session"]
            b = two.register(document, episodes=2, seed=2)["session"]
            one.tick(a, count=10)
            two.tick(b, count=10)
            stats = one.stats()
        assert stats["cohorts"] == 1
        assert stats["engine_calls"] == 10

    def test_shutdown_request_stops_the_server(self):
        server = DecisionServer(("127.0.0.1", 0))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        with ServiceClient("127.0.0.1", server.server_address[1]) as client:
            client.shutdown()
        thread.join(timeout=5)
        assert not thread.is_alive()
        server.server_close()


class TestServeSubcommand:
    def test_python_m_repro_serve_round_trip(self, tmp_path):
        scenario = _scenario(horizon=8)
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env={**__import__("os").environ, "PYTHONPATH": "src"},
            cwd="/root/repo",
        )
        try:
            announcement = json.loads(process.stdout.readline())
            assert announcement["event"] == "listening"
            with ServiceClient(announcement["host"], announcement["port"]) as client:
                reg = client.register(
                    scenario_to_mapping(scenario), episodes=2, seed=0
                )
                events = client.tick(reg["session"], count=8)
                assert len(events) == 8
                client.shutdown()
            assert process.wait(timeout=15) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=5)
