"""Tests for the node transition model (Eq. 2, Fig. 3, Fig. 5)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import (
    NODE_ACTIONS,
    NODE_STATES,
    NodeAction,
    NodeParameters,
    NodeState,
    NodeTransitionModel,
    expected_time_to_failure,
    failure_probability_curve,
    geometric_failure_pmf,
)
from repro.core.node_model import states_from_symbols


class TestNodeState:
    def test_values_match_paper_convention(self):
        assert NodeState.HEALTHY == 0
        assert NodeState.COMPROMISED == 1

    def test_symbols(self):
        assert NodeState.HEALTHY.symbol == "H"
        assert NodeState.COMPROMISED.symbol == "C"
        assert NodeState.CRASHED.symbol == "0"

    def test_is_failed(self):
        assert not NodeState.HEALTHY.is_failed
        assert NodeState.COMPROMISED.is_failed
        assert NodeState.CRASHED.is_failed

    def test_states_from_symbols(self):
        assert states_from_symbols("HC0") == [
            NodeState.HEALTHY,
            NodeState.COMPROMISED,
            NodeState.CRASHED,
        ]

    def test_states_from_symbols_rejects_unknown(self):
        with pytest.raises(ValueError):
            states_from_symbols("X")


class TestNodeAction:
    def test_values(self):
        assert NodeAction.WAIT == 0
        assert NodeAction.RECOVER == 1

    def test_symbols(self):
        assert NodeAction.WAIT.symbol == "W"
        assert NodeAction.RECOVER.symbol == "R"


class TestNodeParameters:
    def test_defaults_are_valid(self):
        params = NodeParameters()
        assert params.satisfies_theorem_1_assumptions()

    def test_rejects_invalid_probability(self):
        with pytest.raises(ValueError):
            NodeParameters(p_a=1.5)

    def test_rejects_eta_below_one(self):
        with pytest.raises(ValueError):
            NodeParameters(eta=0.5)

    def test_rejects_bad_delta_r(self):
        with pytest.raises(ValueError):
            NodeParameters(delta_r=0.5)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            NodeParameters(k=0)

    def test_assumption_a_requires_interior_probabilities(self):
        params = NodeParameters(p_a=0.0)
        assert not params.satisfies_assumption_a()

    def test_assumption_b(self):
        assert NodeParameters(p_a=0.5, p_u=0.4).satisfies_assumption_b()
        assert not NodeParameters(p_a=0.9, p_u=0.2).satisfies_assumption_b()

    def test_assumption_c_holds_for_paper_parameters(self):
        params = NodeParameters(p_a=0.1, p_c1=1e-5, p_c2=1e-3, p_u=0.02)
        assert params.satisfies_assumption_c()

    def test_with_updates(self):
        params = NodeParameters()
        updated = params.with_updates(p_a=0.25)
        assert updated.p_a == 0.25
        assert params.p_a == 0.1

    def test_infinite_delta_r_allowed(self):
        assert NodeParameters(delta_r=math.inf).delta_r == math.inf


class TestNodeTransitionModel:
    def test_rows_are_stochastic(self, transition_model):
        assert transition_model.is_stochastic()

    def test_crashed_is_absorbing(self, transition_model):
        for action in NODE_ACTIONS:
            assert transition_model.probability(NodeState.CRASHED, NodeState.CRASHED, action) == 1.0

    def test_equation_2b_crash_from_healthy(self, params, transition_model):
        for action in NODE_ACTIONS:
            assert transition_model.probability(
                NodeState.CRASHED, NodeState.HEALTHY, action
            ) == pytest.approx(params.p_c1)

    def test_equation_2c_crash_from_compromised(self, params, transition_model):
        for action in NODE_ACTIONS:
            assert transition_model.probability(
                NodeState.CRASHED, NodeState.COMPROMISED, action
            ) == pytest.approx(params.p_c2)

    def test_equation_2d_2e_stay_healthy(self, params, transition_model):
        expected = (1 - params.p_a) * (1 - params.p_c1)
        for action in NODE_ACTIONS:
            assert transition_model.probability(
                NodeState.HEALTHY, NodeState.HEALTHY, action
            ) == pytest.approx(expected)

    def test_equation_2f_recovery_restores_health(self, params, transition_model):
        expected = (1 - params.p_a) * (1 - params.p_c2)
        assert transition_model.probability(
            NodeState.HEALTHY, NodeState.COMPROMISED, NodeAction.RECOVER
        ) == pytest.approx(expected)

    def test_equation_2g_update_restores_health(self, params, transition_model):
        expected = (1 - params.p_c2) * params.p_u
        assert transition_model.probability(
            NodeState.HEALTHY, NodeState.COMPROMISED, NodeAction.WAIT
        ) == pytest.approx(expected)

    def test_equation_2h_compromise_from_healthy(self, params, transition_model):
        expected = (1 - params.p_c1) * params.p_a
        for action in NODE_ACTIONS:
            assert transition_model.probability(
                NodeState.COMPROMISED, NodeState.HEALTHY, action
            ) == pytest.approx(expected)

    def test_equation_2i_recompromise_after_recovery(self, params, transition_model):
        expected = (1 - params.p_c2) * params.p_a
        assert transition_model.probability(
            NodeState.COMPROMISED, NodeState.COMPROMISED, NodeAction.RECOVER
        ) == pytest.approx(expected)

    def test_equation_2j_stay_compromised_while_waiting(self, params, transition_model):
        expected = (1 - params.p_c2) * (1 - params.p_u)
        assert transition_model.probability(
            NodeState.COMPROMISED, NodeState.COMPROMISED, NodeAction.WAIT
        ) == pytest.approx(expected)

    def test_recovery_more_likely_to_restore_than_waiting(self, transition_model):
        recover = transition_model.probability(
            NodeState.HEALTHY, NodeState.COMPROMISED, NodeAction.RECOVER
        )
        wait = transition_model.probability(
            NodeState.HEALTHY, NodeState.COMPROMISED, NodeAction.WAIT
        )
        assert recover > wait

    def test_matrix_shape(self, transition_model):
        assert transition_model.matrices().shape == (2, 3, 3)
        assert transition_model.matrix(NodeAction.WAIT).shape == (3, 3)

    def test_step_returns_valid_state(self, transition_model, rng):
        state = transition_model.step(NodeState.HEALTHY, NodeAction.WAIT, rng)
        assert state in NODE_STATES

    def test_sample_trajectory_length(self, transition_model, rng):
        trajectory = transition_model.sample_trajectory(10, rng=rng)
        assert len(trajectory) == 11
        assert trajectory[0] is NodeState.HEALTHY

    def test_sample_trajectory_requires_enough_actions(self, transition_model, rng):
        with pytest.raises(ValueError):
            transition_model.sample_trajectory(5, actions=[NodeAction.WAIT], rng=rng)

    def test_crash_trajectory_stays_crashed(self, rng):
        params = NodeParameters(p_a=0.01, p_c1=0.99, p_c2=0.99)
        model = NodeTransitionModel(params)
        trajectory = model.sample_trajectory(20, initial_state=NodeState.CRASHED, rng=rng)
        assert all(state is NodeState.CRASHED for state in trajectory)


class TestFailureCurves:
    def test_failure_probability_is_monotone(self, params):
        curve = failure_probability_curve(params, 50)
        assert np.all(np.diff(curve) >= -1e-12)

    def test_failure_probability_bounded(self, params):
        curve = failure_probability_curve(params, 50)
        assert np.all(curve >= 0.0)
        assert np.all(curve <= 1.0)

    def test_larger_attack_probability_fails_faster(self):
        """Reproduces the ordering of the Fig. 5 curves."""
        slow = failure_probability_curve(NodeParameters(p_a=0.01, p_u=0.0), 50)
        fast = failure_probability_curve(NodeParameters(p_a=0.1, p_u=0.0), 50)
        assert np.all(fast >= slow - 1e-12)
        assert fast[10] > slow[10]

    def test_failure_probability_requires_positive_horizon(self, params):
        with pytest.raises(ValueError):
            failure_probability_curve(params, 0)

    def test_geometric_pmf_sums_close_to_one(self, params):
        pmf = geometric_failure_pmf(params, 2000)
        assert pmf.sum() == pytest.approx(1.0, abs=1e-6)

    def test_geometric_pmf_matches_expected_time(self):
        params = NodeParameters(p_a=0.1, p_c1=1e-5)
        pmf = geometric_failure_pmf(params, 5000)
        expected = expected_time_to_failure(params)
        mean = float(np.sum(np.arange(1, 5001) * pmf))
        assert mean == pytest.approx(expected, rel=1e-3)

    def test_expected_time_to_failure_decreases_with_attack_rate(self):
        assert expected_time_to_failure(NodeParameters(p_a=0.1)) < expected_time_to_failure(
            NodeParameters(p_a=0.01)
        )
