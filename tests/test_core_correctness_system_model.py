"""Tests for the Proposition 1 auditor and the global system model (Eq. 8)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BinomialSystemModel,
    CorrectnessAuditor,
    EmpiricalSystemModel,
    check_safety,
    check_validity,
    system_model_from_node_beliefs,
    tolerance_threshold,
)


class TestToleranceThreshold:
    def test_hybrid_model_threshold(self):
        """f = (N - 1 - k) / 2 for the hybrid failure model (Prop. 1)."""
        assert tolerance_threshold(4, k=1) == 1
        assert tolerance_threshold(6, k=1) == 2
        assert tolerance_threshold(10, k=1) == 4

    def test_small_systems(self):
        assert tolerance_threshold(1, k=1) == 0
        assert tolerance_threshold(2, k=1) == 0

    def test_validates(self):
        with pytest.raises(ValueError):
            tolerance_threshold(0)
        with pytest.raises(ValueError):
            tolerance_threshold(4, k=-1)


class TestCorrectnessAuditor:
    def test_all_invariants_hold(self):
        auditor = CorrectnessAuditor(f=1, k=1)
        assert auditor.audit_step(1, num_nodes=4, num_compromised=1, num_crashed=0, num_recovering=1)
        assert auditor.all_invariants_held()
        assert auditor.availability == 1.0

    def test_parallel_recovery_violation(self):
        auditor = CorrectnessAuditor(f=1, k=1)
        assert not auditor.audit_step(1, 4, 0, 0, num_recovering=2)
        assert auditor.violation_counts()["parallel-recoveries"] == 1

    def test_replication_factor_violation(self):
        auditor = CorrectnessAuditor(f=1, k=1)
        assert not auditor.audit_step(1, num_nodes=3, num_compromised=0, num_crashed=0, num_recovering=0)
        assert "replication-factor" in auditor.violation_counts()

    def test_failure_bound_violation_reduces_availability(self):
        auditor = CorrectnessAuditor(f=1, k=1)
        auditor.audit_step(1, 4, 2, 0, 0)
        auditor.audit_step(2, 4, 0, 0, 0)
        assert auditor.availability == pytest.approx(0.5)

    def test_negative_counts_rejected(self):
        auditor = CorrectnessAuditor(f=1)
        with pytest.raises(ValueError):
            auditor.audit_step(1, -1, 0, 0, 0)


class TestSafetyValidity:
    def test_identical_sequences_are_safe(self):
        assert check_safety([[("c", 1), ("c", 2)], [("c", 1), ("c", 2)]])

    def test_prefix_sequences_are_safe(self):
        assert check_safety([[("c", 1)], [("c", 1), ("c", 2)]])

    def test_divergent_sequences_violate_safety(self):
        assert not check_safety([[("c", 1), ("c", 2)], [("c", 2), ("c", 1)]])

    def test_single_replica_is_safe(self):
        assert check_safety([[("c", 1)]])

    def test_validity(self):
        assert check_validity([("c", 1)], [("c", 1), ("c", 2)])
        assert not check_validity([("x", 9)], [("c", 1)])


class TestBinomialSystemModel:
    def test_transition_shape_and_stochasticity(self):
        model = BinomialSystemModel(smax=8, f=2)
        assert model.transition.shape == (2, 9, 9)
        assert np.allclose(model.transition.sum(axis=2), 1.0)

    def test_assumption_b_positive_probabilities(self):
        model = BinomialSystemModel(smax=6, f=1)
        assert model.satisfies_assumption_b()

    def test_assumption_c_monotone_tails(self):
        model = BinomialSystemModel(smax=6, f=1, per_node_failure_probability=0.1)
        assert model.satisfies_assumption_c()

    def test_add_action_shifts_mass_upward(self):
        model = BinomialSystemModel(smax=8, f=2, per_node_failure_probability=0.1)
        expected_no_add = float(model.transition[0, 4] @ model.states)
        expected_add = float(model.transition[1, 4] @ model.states)
        assert expected_add > expected_no_add

    def test_availability_indicator(self):
        model = BinomialSystemModel(smax=8, f=2)
        assert model.availability_indicator(3) == 1.0
        assert model.availability_indicator(2) == 0.0

    def test_cost_is_state(self):
        model = BinomialSystemModel(smax=8, f=2)
        assert model.cost(5) == 5.0

    def test_step_sampling(self, rng):
        model = BinomialSystemModel(smax=8, f=2)
        next_state = model.step(4, 1, rng)
        assert 0 <= next_state <= 8

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            BinomialSystemModel(smax=0, f=1)
        with pytest.raises(ValueError):
            BinomialSystemModel(smax=5, f=1, per_node_failure_probability=1.5)
        with pytest.raises(ValueError):
            BinomialSystemModel(smax=5, f=1, epsilon_a=0.0)


class TestEmpiricalSystemModel:
    def test_fits_observed_transitions(self):
        transitions = [(3, 0, 3), (3, 0, 2), (2, 1, 3), (3, 1, 4)] * 5
        model = EmpiricalSystemModel(transitions, smax=5, f=1)
        assert model.num_observed_transitions == 20
        assert np.allclose(model.transition.sum(axis=2), 1.0)

    def test_requires_transitions(self):
        with pytest.raises(ValueError):
            EmpiricalSystemModel([], smax=5, f=1)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            EmpiricalSystemModel([(9, 0, 3)], smax=5, f=1)
        with pytest.raises(ValueError):
            EmpiricalSystemModel([(3, 7, 3)], smax=5, f=1)


class TestModelFromBeliefs:
    def test_builds_model(self):
        model = system_model_from_node_beliefs([0.1, 0.2, 0.05], smax=10, f=2)
        assert model.smax == 10
        assert model.satisfies_assumption_b()

    def test_high_beliefs_increase_failure_probability(self):
        low = system_model_from_node_beliefs([0.01] * 4, smax=10, f=2)
        high = system_model_from_node_beliefs([0.5] * 4, smax=10, f=2)
        assert high.per_node_failure_probability > low.per_node_failure_probability

    def test_requires_beliefs(self):
        with pytest.raises(ValueError):
            system_model_from_node_beliefs([], smax=10, f=2)
