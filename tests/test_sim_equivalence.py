"""Scalar-vs-vectorized equivalence suite for the batch engine (repro.sim).

The batch engine claims *bit-exact* parity with the scalar
:class:`~repro.solvers.evaluation.RecoverySimulator` under a shared seed.
This suite enforces that claim for every strategy class, for heterogeneous
multi-node fleets, and for the population objective used by Algorithm 1,
plus Hypothesis property tests for the batched belief recursion.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BeliefPeriodicStrategy,
    BetaBinomialObservationModel,
    DiscreteObservationModel,
    MultiThresholdStrategy,
    NodeAction,
    NodeParameters,
    NodeTransitionModel,
    NoRecoveryStrategy,
    PeriodicStrategy,
    ThresholdStrategy,
    batch_update_compromise_belief,
    update_compromise_belief,
)
from repro.sim import (
    BatchMultiThreshold,
    BatchRecoveryEngine,
    FleetScenario,
    LoopedBatchStrategy,
    as_batch_strategy,
)
from repro.solvers import RecoverySimulator, solve_recovery_problem
from repro.solvers.optimizers import CrossEntropyMethod, RandomSearch

HORIZON = 60
EPISODES = 25

STRATEGY_CASES = {
    "threshold": ThresholdStrategy(0.6),
    "threshold-always": ThresholdStrategy(0.0),
    "multi-threshold": MultiThresholdStrategy.from_vector([0.2, 0.5, 0.9], delta_r=8.0),
    "periodic": PeriodicStrategy(5),
    "belief-periodic": BeliefPeriodicStrategy(9, alpha=0.8),
    "no-recovery": NoRecoveryStrategy(),
}


@pytest.fixture
def simulator(observation_model):
    return RecoverySimulator(
        NodeParameters(p_a=0.1, delta_r=8), observation_model, horizon=HORIZON
    )


class TestExactEpisodeParity:
    @pytest.mark.parametrize("strategy", STRATEGY_CASES.values(), ids=STRATEGY_CASES.keys())
    def test_batch_reproduces_scalar_episodes_exactly(self, simulator, strategy):
        """Same seed -> identical RecoveryEpisodeResult list, field for field."""
        scalar = simulator.evaluate(strategy, num_episodes=EPISODES, seed=7)
        batch = simulator.evaluate(strategy, num_episodes=EPISODES, seed=7, batch=True)
        assert scalar == batch

    @pytest.mark.parametrize("seed", [0, 1, 123456789])
    def test_parity_across_seeds(self, simulator, seed):
        strategy = ThresholdStrategy(0.55)
        scalar = simulator.evaluate(strategy, num_episodes=10, seed=seed)
        batch = simulator.evaluate(strategy, num_episodes=10, seed=seed, batch=True)
        assert scalar == batch

    def test_estimate_cost_parity(self, simulator):
        strategy = MultiThresholdStrategy.from_vector([0.4, 0.6, 0.8], delta_r=8.0)
        scalar = simulator.estimate_cost(strategy, num_episodes=EPISODES, seed=3)
        batch = simulator.estimate_cost(strategy, num_episodes=EPISODES, seed=3, batch=True)
        assert scalar == batch

    def test_parity_without_btr_enforcement(self, observation_model):
        simulator = RecoverySimulator(
            NodeParameters(p_a=0.15, delta_r=6),
            observation_model,
            horizon=HORIZON,
            enforce_btr=False,
        )
        strategy = ThresholdStrategy(0.7)
        assert simulator.evaluate(strategy, 10, seed=5) == simulator.evaluate(
            strategy, 10, seed=5, batch=True
        )

    def test_looped_fallback_matches_native_batching(self, simulator):
        """Arbitrary scalar strategies run through the element-wise fallback."""
        strategy = ThresholdStrategy(0.6)
        engine = simulator._batch_engine()
        native = engine.run(strategy, num_episodes=12, seed=2)
        looped = engine.run(LoopedBatchStrategy(strategy), num_episodes=12, seed=2)
        assert np.array_equal(native.average_cost, looped.average_cost)
        assert np.array_equal(native.num_recoveries, looped.num_recoveries)

    def test_as_batch_strategy_prefers_native_action_batch(self):
        strategy = ThresholdStrategy(0.5)
        assert as_batch_strategy(strategy) is strategy

        class ScalarOnly:
            def action(self, belief, time_since_recovery):
                return NodeAction.WAIT

        assert isinstance(as_batch_strategy(ScalarOnly()), LoopedBatchStrategy)


class TestFleetParity:
    def test_heterogeneous_fleet_matches_per_node_scalar_runs(self):
        """Every (episode, node) stream equals a scalar run on its own child seed."""
        params = (
            NodeParameters(p_a=0.05, delta_r=10, eta=1.5),
            NodeParameters(p_a=0.2, delta_r=math.inf, eta=3.0),
        )
        models = (
            BetaBinomialObservationModel(),
            DiscreteObservationModel(
                list(range(10)), np.linspace(10, 1, 10), np.linspace(1, 10, 10)
            ),
        )
        strategies = [ThresholdStrategy(0.5), PeriodicStrategy(6)]
        scenario = FleetScenario(params, models, horizon=40, f=1)
        result = BatchRecoveryEngine(scenario).run(strategies, num_episodes=15, seed=11)

        children = np.random.SeedSequence(11).spawn(15 * 2)
        for node, (node_params, model, strategy) in enumerate(
            zip(params, models, strategies)
        ):
            scalar_sim = RecoverySimulator(node_params, model, horizon=40)
            batch_episodes = result.episode_results(node=node)
            for episode in range(15):
                rng = np.random.default_rng(children[episode * 2 + node])
                assert scalar_sim.run_episode(strategy, rng) == batch_episodes[episode]

    def test_availability_tracked_iff_f_given(self, observation_model):
        params = NodeParameters(p_a=0.1)
        with_f = FleetScenario.homogeneous(params, observation_model, 3, horizon=20, f=1)
        without_f = FleetScenario.homogeneous(params, observation_model, 3, horizon=20)
        strategy = ThresholdStrategy(0.5)
        tracked = BatchRecoveryEngine(with_f).run(strategy, 5, seed=0)
        untracked = BatchRecoveryEngine(without_f).run(strategy, 5, seed=0)
        assert tracked.availability is not None
        assert tracked.availability.shape == (5,)
        assert np.all((tracked.availability >= 0) & (tracked.availability <= 1))
        assert untracked.availability is None
        # The availability side-channel must not perturb the simulation.
        assert np.array_equal(tracked.average_cost, untracked.average_cost)

    def test_scenario_validation(self, observation_model):
        params = NodeParameters()
        with pytest.raises(ValueError):
            FleetScenario((), (), horizon=10)
        with pytest.raises(ValueError):
            FleetScenario((params,), (observation_model, observation_model))
        with pytest.raises(ValueError):
            FleetScenario.homogeneous(params, observation_model, 2, horizon=0)
        mismatched = DiscreteObservationModel([0, 1], [0.5, 0.5], [0.2, 0.8])
        with pytest.raises(ValueError):
            FleetScenario((params, params), (observation_model, mismatched))


class TestPopulationObjective:
    def test_population_rows_equal_individual_estimates(self, simulator):
        """One K x M batch with CRN == K separate batch estimates == K scalar ones."""
        engine = simulator._batch_engine()
        thetas = np.array([[0.2, 0.5, 0.7], [0.9, 0.9, 0.9], [0.0, 0.3, 0.6]])
        population_costs = engine.run_threshold_population(thetas, num_episodes=8, seed=13)
        for row, theta in zip(population_costs, thetas):
            strategy = MultiThresholdStrategy.from_vector(theta, delta_r=8.0)
            assert float(row) == simulator.estimate_cost(strategy, 8, seed=13)
            assert float(row) == simulator.estimate_cost(strategy, 8, seed=13, batch=True)

    @pytest.mark.parametrize(
        "optimizer",
        [CrossEntropyMethod(population_size=12, iterations=3), RandomSearch(iterations=10)],
        ids=["cem", "random"],
    )
    def test_solver_output_independent_of_batching(self, observation_model, optimizer):
        """Algorithm 1 returns identical thresholds with and without the engine."""
        params = NodeParameters(p_a=0.1, delta_r=5)
        kwargs = dict(
            horizon=30,
            episodes_per_evaluation=3,
            final_evaluation_episodes=4,
            seed=17,
        )
        scalar = solve_recovery_problem(
            params, observation_model, optimizer, batch=False, **kwargs
        )
        batched = solve_recovery_problem(
            params, observation_model, optimizer, batch=True, **kwargs
        )
        assert scalar.strategy.thresholds == batched.strategy.thresholds
        assert scalar.estimated_cost == batched.estimated_cost
        assert scalar.optimizer_result.history == batched.optimizer_result.history

    def test_population_requires_positive_episode_count(self, simulator):
        engine = simulator._batch_engine()
        with pytest.raises(ValueError):
            engine.run_threshold_population(np.array([[0.5]]), num_episodes=0)

    def test_batch_multi_threshold_validates_shapes(self):
        with pytest.raises(ValueError):
            BatchMultiThreshold(np.empty((3, 0)))
        with pytest.raises(ValueError):
            BatchMultiThreshold(np.array([0.5, 1.5]))
        per_episode = BatchMultiThreshold(np.array([[0.1], [0.9]]))
        with pytest.raises(ValueError):
            per_episode.action_batch(np.zeros(3), np.zeros(3, dtype=int))


# ---------------------------------------------------------------------------
# Hypothesis property tests for the batched belief recursion
# ---------------------------------------------------------------------------
@st.composite
def node_parameters(draw):
    prob = st.floats(1e-6, 0.5, allow_nan=False)
    return NodeParameters(
        p_a=draw(prob), p_c1=draw(prob), p_c2=draw(prob), p_u=draw(prob)
    )


@st.composite
def observation_models(draw):
    size = draw(st.integers(2, 6))
    positive = st.floats(1e-6, 1.0, allow_nan=False)
    healthy = [draw(positive) for _ in range(size)]
    compromised = [draw(positive) for _ in range(size)]
    return DiscreteObservationModel(list(range(size)), healthy, compromised)


class TestBatchBeliefProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        params=node_parameters(),
        model=observation_models(),
        beliefs=st.lists(st.floats(0.0, 1.0, allow_nan=False), min_size=1, max_size=8),
        data=st.data(),
    )
    def test_batched_beliefs_stay_in_unit_interval_and_match_scalar(
        self, params, model, beliefs, data
    ):
        """Batched posterior lies in [0, 1] and agrees with the scalar update."""
        transition_model = NodeTransitionModel(params)
        size = len(beliefs)
        actions = data.draw(
            st.lists(st.sampled_from([0, 1]), min_size=size, max_size=size)
        )
        observations = data.draw(
            st.lists(
                st.integers(0, model.num_observations - 1), min_size=size, max_size=size
            )
        )
        batched = batch_update_compromise_belief(
            np.array(beliefs), np.array(actions), np.array(observations),
            transition_model, model,
        )
        assert np.all(batched >= 0.0) and np.all(batched <= 1.0)
        for index in range(size):
            scalar = update_compromise_belief(
                beliefs[index],
                NodeAction(actions[index]),
                observations[index],
                transition_model,
                model,
            )
            assert batched[index] == pytest.approx(scalar, abs=1e-10)

    @settings(max_examples=30, deadline=None)
    @given(
        params=node_parameters(),
        beliefs=st.lists(st.floats(0.0, 1.0, allow_nan=False), min_size=1, max_size=8),
        data=st.data(),
    )
    def test_degenerate_observation_falls_back_to_renormalized_prior(
        self, params, beliefs, data
    ):
        """An all-states-impossible observation triggers the shared fallback."""
        # Observation 2 has zero probability in both live states.
        model = DiscreteObservationModel(
            [0, 1, 2], [0.6, 0.4, 0.0], [0.3, 0.7, 0.0], crashed_pmf=[0.5, 0.5, 0.0]
        )
        transition_model = NodeTransitionModel(params)
        size = len(beliefs)
        actions = data.draw(
            st.lists(st.sampled_from([0, 1]), min_size=size, max_size=size)
        )
        observations = np.full(size, 2)
        batched = batch_update_compromise_belief(
            np.array(beliefs), np.array(actions), observations, transition_model, model
        )
        for index in range(size):
            scalar = update_compromise_belief(
                beliefs[index], NodeAction(actions[index]), 2, transition_model, model
            )
            assert batched[index] == pytest.approx(scalar, abs=1e-10)
            prior = np.array([1.0 - beliefs[index], beliefs[index], 0.0]) @ (
                transition_model.matrix(NodeAction(actions[index]))
            )
            live = prior[0] + prior[1]
            assert scalar == pytest.approx(prior[1] / live, abs=1e-10)

    def test_batch_update_validates_inputs(self, transition_model, observation_model):
        with pytest.raises(ValueError):
            batch_update_compromise_belief(
                np.array([1.5]), np.array([0]), np.array([0]),
                transition_model, observation_model,
            )
        with pytest.raises(ValueError):
            batch_update_compromise_belief(
                np.array([0.5]), np.array([0]), np.array([99]),
                transition_model, observation_model,
            )
        with pytest.raises(ValueError):
            batch_update_compromise_belief(
                np.array([0.5]), np.array([2]), np.array([0]),
                transition_model, observation_model,
            )
