"""Golden-file regression net over the scenario zoo.

Every ``examples/scenarios/*.yaml`` is executed at a pinned seed with a
small, fixed episode budget and compared numerically against a committed
``repro/result-v1`` golden under ``tests/goldens/``.  The suite pins the
*numbers*, not just the shape: any change to the engine, the adversary
processes, the belief kernels or the controller stack that shifts a
metric shows up as a diff here.

Regenerating after an intentional behaviour change::

    REPRO_REGEN_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_scenario_goldens.py

which rewrites every golden in place (and fails the run so the refreshed
files are reviewed and committed deliberately, never silently).

Floats are compared with a tight relative tolerance rather than exact
equality so goldens survive benign cross-platform libm differences while
still catching real behaviour changes.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path

import pytest

from repro.cli import RESULT_SCHEMA, run_scenario, validate_result

REPO_ROOT = Path(__file__).resolve().parent.parent
SCENARIO_DIR = REPO_ROOT / "examples" / "scenarios"
GOLDEN_DIR = Path(__file__).resolve().parent / "goldens"

#: The pinned run-section overrides every golden is generated with.  Small
#: enough to keep the whole suite around a second; fixed so the stream of
#: SeedSequence children (and therefore every metric) is reproducible.
GOLDEN_OVERRIDES = {"episodes": 20, "seed": 0, "n_jobs": 1}

#: Relative tolerance for float comparison.  Tight enough that any real
#: behaviour change (different decisions, different event counts) trips
#: it; loose enough to absorb non-associative float summation differences
#: across BLAS/libm builds.
REL_TOL = 1e-9
ABS_TOL = 1e-12

SCENARIOS = sorted(SCENARIO_DIR.glob("*.yaml"))

REGEN = os.environ.get("REPRO_REGEN_GOLDENS") == "1"


def _golden_path(scenario_path: Path) -> Path:
    return GOLDEN_DIR / f"{scenario_path.stem}.json"


def _diff(expected, actual, path: str, problems: list[str]) -> None:
    """Recursively collect mismatches between golden and fresh result."""
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(set(expected) | set(actual)):
            where = f"{path}.{key}" if path else str(key)
            if key not in expected:
                problems.append(f"{where}: unexpected new key")
            elif key not in actual:
                problems.append(f"{where}: missing from fresh result")
            else:
                _diff(expected[key], actual[key], where, problems)
        return
    if isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            problems.append(
                f"{path}: length {len(actual)} != golden {len(expected)}"
            )
            return
        for index, (e, a) in enumerate(zip(expected, actual)):
            _diff(e, a, f"{path}[{index}]", problems)
        return
    if isinstance(expected, bool) or isinstance(actual, bool):
        if expected is not actual:
            problems.append(f"{path}: {actual!r} != golden {expected!r}")
        return
    if isinstance(expected, (int, float)) and isinstance(actual, (int, float)):
        if not math.isclose(expected, actual, rel_tol=REL_TOL, abs_tol=ABS_TOL):
            problems.append(f"{path}: {actual!r} != golden {expected!r}")
        return
    if expected != actual:
        problems.append(f"{path}: {actual!r} != golden {expected!r}")


def test_scenario_zoo_is_nonempty():
    assert SCENARIOS, f"no example scenarios found under {SCENARIO_DIR}"


def test_every_scenario_has_a_golden():
    missing = [p.name for p in SCENARIOS if not _golden_path(p).exists()]
    assert not missing, (
        f"scenarios without goldens: {missing}; generate with "
        "REPRO_REGEN_GOLDENS=1"
    )


def test_no_orphaned_goldens():
    stems = {p.stem for p in SCENARIOS}
    orphans = [p.name for p in GOLDEN_DIR.glob("*.json") if p.stem not in stems]
    assert not orphans, f"goldens without a matching scenario: {orphans}"


@pytest.mark.parametrize("scenario_path", SCENARIOS, ids=lambda p: p.stem)
def test_scenario_matches_golden(scenario_path: Path):
    result = run_scenario(scenario_path, overrides=GOLDEN_OVERRIDES)
    assert result["schema"] == RESULT_SCHEMA
    assert validate_result(result) == []

    golden_path = _golden_path(scenario_path)
    if REGEN:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        golden_path.write_text(
            json.dumps(result, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        pytest.fail(
            f"regenerated {golden_path.relative_to(REPO_ROOT)}; review and "
            "commit it, then rerun without REPRO_REGEN_GOLDENS"
        )

    if not golden_path.exists():
        pytest.fail(
            f"missing golden {golden_path.relative_to(REPO_ROOT)}; generate "
            "with REPRO_REGEN_GOLDENS=1"
        )
    golden = json.loads(golden_path.read_text(encoding="utf-8"))

    # The golden pins the exact run configuration it was made with — a
    # drifted override set would silently compare different experiments.
    assert golden["episodes"] == GOLDEN_OVERRIDES["episodes"]
    assert golden["seed"] == GOLDEN_OVERRIDES["seed"]

    problems: list[str] = []
    _diff(golden, result, "", problems)
    assert not problems, (
        "result drifted from golden "
        f"{golden_path.relative_to(REPO_ROOT)}:\n  " + "\n  ".join(problems)
    )


def test_goldens_are_valid_result_documents():
    for scenario_path in SCENARIOS:
        golden_path = _golden_path(scenario_path)
        if not golden_path.exists():
            pytest.skip("goldens not generated yet")
        golden = json.loads(golden_path.read_text(encoding="utf-8"))
        assert validate_result(golden) == [], golden_path.name
