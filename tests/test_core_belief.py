"""Tests for belief computation (Eq. 4, Appendix A)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BeliefFilter,
    BeliefState,
    NodeAction,
    NodeParameters,
    NodeTransitionModel,
    belief_transition_distribution,
    update_compromise_belief,
)


class TestBeliefState:
    def test_must_sum_to_one(self):
        with pytest.raises(ValueError):
            BeliefState(0.5, 0.5, 0.5)

    def test_initial_belief(self):
        belief = BeliefState.initial(0.1)
        assert belief.compromised == pytest.approx(0.1)
        assert belief.healthy == pytest.approx(0.9)
        assert belief.crashed == 0.0

    def test_from_vector_normalizes(self):
        belief = BeliefState.from_vector(np.array([2.0, 1.0, 1.0]))
        assert belief.healthy == pytest.approx(0.5)

    def test_compromise_probability(self):
        belief = BeliefState(0.6, 0.3, 0.1)
        assert belief.compromise_probability == pytest.approx(0.3)
        assert belief.failure_probability == pytest.approx(0.4)

    def test_live_compromise_probability(self):
        belief = BeliefState(0.6, 0.3, 0.1)
        assert belief.live_compromise_probability == pytest.approx(0.3 / 0.9)

    def test_as_vector_roundtrip(self):
        belief = BeliefState(0.6, 0.3, 0.1)
        again = BeliefState.from_vector(belief.as_vector())
        assert again.healthy == pytest.approx(belief.healthy)


class TestBeliefFilter:
    def test_high_alerts_increase_belief(self, transition_model, observation_model):
        filt = BeliefFilter(transition_model, observation_model)
        prior = BeliefState.initial(0.1)
        posterior = filt.update(prior, NodeAction.WAIT, 9)
        assert posterior.compromised > prior.compromised

    def test_low_alerts_decrease_belief(self, transition_model, observation_model):
        filt = BeliefFilter(transition_model, observation_model)
        prior = BeliefState(0.5, 0.5, 0.0)
        posterior = filt.update(prior, NodeAction.WAIT, 0)
        assert posterior.compromised < prior.compromised

    def test_predict_moves_mass_toward_compromise(self, transition_model, observation_model):
        filt = BeliefFilter(transition_model, observation_model)
        prior = BeliefState.initial(0.0 + 1e-9)
        predicted = filt.predict(prior, NodeAction.WAIT)
        assert predicted.compromised > 0.0

    def test_run_produces_one_belief_per_observation(self, transition_model, observation_model):
        filt = BeliefFilter(transition_model, observation_model)
        beliefs = filt.run(
            BeliefState.initial(0.1),
            [NodeAction.WAIT, NodeAction.WAIT, NodeAction.RECOVER],
            [3, 8, 1],
        )
        assert len(beliefs) == 4

    def test_run_requires_matching_lengths(self, transition_model, observation_model):
        filt = BeliefFilter(transition_model, observation_model)
        with pytest.raises(ValueError):
            filt.run(BeliefState.initial(0.1), [NodeAction.WAIT], [1, 2])


class TestScalarBeliefUpdate:
    def test_stays_in_unit_interval(self, transition_model, observation_model, rng):
        belief = 0.1
        for _ in range(200):
            observation = int(rng.integers(0, 10))
            action = NodeAction.WAIT if rng.random() < 0.9 else NodeAction.RECOVER
            belief = update_compromise_belief(
                belief, action, observation, transition_model, observation_model
            )
            assert 0.0 <= belief <= 1.0

    def test_rejects_invalid_belief(self, transition_model, observation_model):
        with pytest.raises(ValueError):
            update_compromise_belief(1.5, NodeAction.WAIT, 0, transition_model, observation_model)

    def test_high_observation_raises_belief(self, transition_model, observation_model):
        low = update_compromise_belief(0.2, NodeAction.WAIT, 0, transition_model, observation_model)
        high = update_compromise_belief(0.2, NodeAction.WAIT, 9, transition_model, observation_model)
        assert high > low

    def test_recovery_lowers_posterior_compared_with_waiting(
        self, transition_model, observation_model
    ):
        after_wait = update_compromise_belief(
            0.9, NodeAction.WAIT, 5, transition_model, observation_model
        )
        after_recover = update_compromise_belief(
            0.9, NodeAction.RECOVER, 5, transition_model, observation_model
        )
        assert after_recover < after_wait

    def test_repeated_intrusion_evidence_converges_up(self, transition_model, observation_model):
        belief = 0.05
        for _ in range(20):
            belief = update_compromise_belief(
                belief, NodeAction.WAIT, 9, transition_model, observation_model
            )
        assert belief > 0.9

    def test_repeated_benign_evidence_converges_down(self, transition_model, observation_model):
        belief = 0.9
        for _ in range(50):
            belief = update_compromise_belief(
                belief, NodeAction.WAIT, 0, transition_model, observation_model
            )
        assert belief < 0.2

    def test_bayes_rule_against_manual_computation(self):
        """Two-state analytic check of the Appendix A recursion."""
        params = NodeParameters(p_a=0.2, p_c1=1e-9, p_c2=1e-9, p_u=0.0 + 1e-9)
        model = NodeTransitionModel(params)
        from repro.core import DiscreteObservationModel

        obs = DiscreteObservationModel([0, 1], [0.9, 0.1], [0.2, 0.8])
        belief = 0.3
        # Manual prediction: P[C'] = b*(1-pu)(1-pc2) + (1-b)*pa*(1-pc1)
        predicted_c = 0.3 * (1 - 1e-9) * (1 - 1e-9) + 0.7 * 0.2 * (1 - 1e-9)
        predicted_h = 1.0 - predicted_c - (0.3 * 1e-9 + 0.7 * 1e-9)
        post = predicted_c * 0.8 / (predicted_c * 0.8 + predicted_h * 0.1)
        computed = update_compromise_belief(belief, NodeAction.WAIT, 1, model, obs)
        assert computed == pytest.approx(post, rel=1e-4)


class TestBeliefTransitionDistribution:
    def test_probabilities_sum_to_one(self, transition_model, observation_model):
        entries = belief_transition_distribution(
            0.3, NodeAction.WAIT, transition_model, observation_model
        )
        assert sum(p for p, _ in entries) == pytest.approx(1.0)

    def test_next_beliefs_valid(self, transition_model, observation_model):
        entries = belief_transition_distribution(
            0.3, NodeAction.WAIT, transition_model, observation_model
        )
        for _, next_belief in entries:
            assert 0.0 <= next_belief <= 1.0

    def test_expected_next_belief_larger_when_waiting(self, transition_model, observation_model):
        """E[B' | W] >= E[B' | R], the key inequality in the Cor. 1 proof."""
        wait_entries = belief_transition_distribution(
            0.8, NodeAction.WAIT, transition_model, observation_model
        )
        recover_entries = belief_transition_distribution(
            0.8, NodeAction.RECOVER, transition_model, observation_model
        )
        wait_mean = sum(p * b for p, b in wait_entries)
        recover_mean = sum(p * b for p, b in recover_entries)
        assert wait_mean >= recover_mean
