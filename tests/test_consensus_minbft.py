"""Tests for the reconfigurable MinBFT protocol (Appendix G, Fig. 17)."""

from __future__ import annotations

import pytest

from repro.consensus import (
    ByzantineBehavior,
    MinBFTClient,
    MinBFTCluster,
    MinBFTConfig,
    NetworkConfig,
)
from repro.core import check_safety


@pytest.fixture
def cluster():
    return MinBFTCluster(num_replicas=4, seed=0)


@pytest.fixture
def client(cluster):
    return MinBFTClient("client-0", cluster)


class TestNormalCase:
    def test_write_completes_with_quorum(self, cluster, client):
        result = client.write_and_wait("x", 1)
        assert result is not None
        assert result.result == 1

    def test_read_returns_written_value(self, cluster, client):
        client.write_and_wait("x", 42)
        result = client.read_and_wait("x")
        assert result is not None
        assert result.result == 42

    def test_all_replicas_execute_same_sequence(self, cluster, client):
        for i in range(5):
            client.write_and_wait(f"k{i}", i)
        cluster.run(ticks=30)
        sequences = list(cluster.executed_sequences().values())
        assert check_safety(sequences)
        assert all(len(seq) == 5 for seq in sequences)

    def test_state_digests_agree(self, cluster, client):
        for i in range(4):
            client.write_and_wait("x", i)
        cluster.run(ticks=30)
        digests = set(cluster.state_digests().values())
        assert len(digests) == 1

    def test_tolerance_threshold_hybrid_model(self):
        """MinBFT tolerates f = (N - 1 - k) / 2 failures."""
        assert MinBFTCluster(num_replicas=4).f == 1
        assert MinBFTCluster(num_replicas=6).f == 2
        assert MinBFTCluster(num_replicas=7).f == 2  # k = 1
        assert MinBFTCluster(num_replicas=10).f == 4

    def test_requires_two_replicas(self):
        with pytest.raises(ValueError):
            MinBFTCluster(num_replicas=1)

    def test_unsigned_request_is_ignored(self, cluster):
        from repro.consensus import ClientRequest

        # Requests with signatures that do not verify are dropped (validity);
        # unsigned requests are accepted only if signature is None is allowed —
        # here we inject a forged signature and expect no execution.
        from repro.consensus.crypto import Signature

        forged = ClientRequest(
            client_id="client-x", request_id=2, operation="write", key="x", value=1,
            signature=Signature(signer="client-x", tag="not-a-real-tag"),
        )
        leader = cluster.current_leader()
        cluster.network.send("client-x", leader, forged)
        cluster.run(ticks=30)
        assert all(
            replica.executed_sequence == 0 for replica in cluster.replicas.values()
        )

    def test_throughput_positive_under_load(self):
        from repro.consensus import ClientWorkload

        cluster = MinBFTCluster(num_replicas=4, seed=1)
        workload = ClientWorkload(cluster, num_clients=2)
        stats = workload.run(total_ticks=150)
        assert stats["completed_requests"] > 0
        assert stats["throughput_rps"] > 0


class TestByzantineFaults:
    def test_silent_replica_does_not_block_progress(self, cluster, client):
        cluster.compromise("replica-2", ByzantineBehavior.SILENT)
        result = client.write_and_wait("x", 5)
        assert result is not None and result.result == 5

    def test_arbitrary_replica_does_not_corrupt_state(self, cluster, client):
        cluster.compromise("replica-3", ByzantineBehavior.ARBITRARY)
        for i in range(4):
            client.write_and_wait("x", i)
        cluster.run(ticks=30)
        correct = [
            replica
            for replica_id, replica in cluster.replicas.items()
            if replica_id != "replica-3"
        ]
        digests = {replica.state_machine.state_digest() for replica in correct}
        assert len(digests) == 1
        assert correct[0].state_machine.read("x") == 3

    def test_crashed_replica_tolerated(self, cluster, client):
        cluster.crash("replica-1")
        result = client.write_and_wait("x", 7)
        assert result is not None and result.result == 7

    def test_recovery_restores_replica_state(self, cluster, client):
        cluster.compromise("replica-2", ByzantineBehavior.SILENT)
        for i in range(3):
            client.write_and_wait("x", i)
        cluster.recover_replica("replica-2")
        cluster.run(ticks=30)
        recovered = cluster.replicas["replica-2"]
        healthy = cluster.replicas["replica-0"]
        assert recovered.state_machine.state_digest() == healthy.state_machine.state_digest()

    def test_too_many_byzantine_replicas_break_progress(self):
        """With more than f compromised (silent) replicas, requests cannot complete."""
        cluster = MinBFTCluster(num_replicas=4, seed=2)
        client = MinBFTClient("client-0", cluster)
        cluster.compromise("replica-1", ByzantineBehavior.SILENT)
        cluster.compromise("replica-2", ByzantineBehavior.SILENT)
        cluster.compromise("replica-3", ByzantineBehavior.SILENT)
        result = client.write_and_wait("x", 1, max_ticks=80)
        assert result is None


class TestViewChange:
    def test_crashed_leader_is_replaced(self):
        config = MinBFTConfig(view_change_timeout=10)
        cluster = MinBFTCluster(num_replicas=4, config=config, seed=3)
        client = MinBFTClient("client-0", cluster)
        leader = cluster.current_leader()
        cluster.crash(leader)
        result = client.write_and_wait("x", 123, max_ticks=400)
        assert result is not None
        assert result.result == 123
        assert cluster.current_leader() != leader

    def test_silent_leader_triggers_view_change(self):
        config = MinBFTConfig(view_change_timeout=10)
        cluster = MinBFTCluster(num_replicas=4, config=config, seed=4)
        client = MinBFTClient("client-0", cluster)
        leader = cluster.current_leader()
        cluster.compromise(leader, ByzantineBehavior.SILENT)
        result = client.write_and_wait("x", 9, max_ticks=400)
        assert result is not None and result.result == 9

    def test_view_number_increases_after_view_change(self):
        config = MinBFTConfig(view_change_timeout=10)
        cluster = MinBFTCluster(num_replicas=4, config=config, seed=5)
        client = MinBFTClient("client-0", cluster)
        initial_views = {r.view for r in cluster.replicas.values()}
        leader = cluster.current_leader()
        cluster.crash(leader)
        client.write_and_wait("x", 1, max_ticks=400)
        surviving_views = {
            r.view for rid, r in cluster.replicas.items() if rid != leader
        }
        assert max(surviving_views) > max(initial_views)


class TestReconfiguration:
    def test_join_adds_replica_and_preserves_service(self, cluster, client):
        client.write_and_wait("x", 1)
        new_id = cluster.add_replica()
        assert new_id in cluster.membership
        assert len(cluster.membership) == 5
        result = client.write_and_wait("y", 2)
        assert result is not None and result.result == 2

    def test_joined_replica_receives_state_transfer(self, cluster, client):
        for i in range(3):
            client.write_and_wait("x", i)
        new_id = cluster.add_replica()
        cluster.run(ticks=30)
        assert cluster.replicas[new_id].state_machine.read("x") == 2

    def test_evict_removes_replica_and_preserves_service(self, cluster, client):
        client.write_and_wait("x", 1)
        cluster.evict_replica("replica-3")
        assert "replica-3" not in cluster.membership
        result = client.write_and_wait("y", 2)
        assert result is not None and result.result == 2

    def test_evicting_unknown_replica_is_noop(self, cluster):
        before = list(cluster.membership)
        cluster.evict_replica("replica-99")
        assert cluster.membership == before

    def test_join_then_evict_round_trip(self, cluster, client):
        new_id = cluster.add_replica()
        cluster.evict_replica(new_id)
        assert len(cluster.membership) == 4
        result = client.write_and_wait("z", 3)
        assert result is not None and result.result == 3

    def test_checkpointing_garbage_collects_logs(self):
        config = MinBFTConfig(checkpoint_interval=3)
        cluster = MinBFTCluster(num_replicas=4, config=config, seed=6)
        client = MinBFTClient("client-0", cluster)
        for i in range(8):
            client.write_and_wait("x", i)
        cluster.run(ticks=50)
        for replica in cluster.replicas.values():
            assert replica.last_checkpoint_sequence >= 3
            assert all(seq > replica.last_checkpoint_sequence - 1 for seq in replica.prepare_log) or \
                len(replica.prepare_log) < 8


class TestLossyNetwork:
    def test_progress_with_packet_loss(self):
        """Liveness with NETEM-style loss and reliable retransmission (Prop. 1b)."""
        cluster = MinBFTCluster(
            num_replicas=4,
            network_config=NetworkConfig(loss_probability=0.05, reliable=True),
            seed=7,
        )
        client = MinBFTClient("client-0", cluster)
        result = client.write_and_wait("x", 11, max_ticks=400)
        assert result is not None and result.result == 11


class TestCommitQuorumKeying:
    """Regression: commit votes are keyed by (sequence, digest) so a corrupted
    COMMIT arriving before its PREPARE cannot count toward the honest quorum."""

    def test_corrupted_commit_before_prepare_does_not_reach_quorum(self):
        from repro.consensus import Commit
        from repro.consensus.minbft import _request_digest

        cluster = MinBFTCluster(num_replicas=4, seed=11)
        client = MinBFTClient("client-0", cluster)
        leader = cluster.replicas["replica-0"]
        byzantine = cluster.replicas["replica-1"]
        target = cluster.replicas["replica-2"]
        assert leader.is_leader

        # The leader prepares a request; pick the Prepare off its log without
        # stepping the network, so delivery order can be forced by hand.
        request = client._build_request("write", "x", 1)
        leader._handle_request(request, tick=0)
        prepare = leader.prepare_log[1]

        # A Byzantine replica's COMMIT for a corrupted digest, certified by
        # its own (real) USIG, delivered to the target BEFORE the Prepare —
        # the digest cross-check against the prepare log cannot run yet.
        bad_digest = "ff" * 32
        content = {"view": 0, "sequence": 1, "digest": bad_digest}
        corrupted = Commit(
            view=0,
            sequence=1,
            request_digest=bad_digest,
            replica_id="replica-1",
            prepare_ui=prepare.ui,
            ui=byzantine.usig.create_ui(content),
        )
        target.on_message("replica-1", corrupted, 0)
        target.on_message("replica-0", prepare, 0)

        # The target's own COMMIT is its only vote for the honest digest
        # (quorum is f + 1 = 2): the corrupted vote must not fill the gap.
        honest_votes = target.commit_votes[(1, _request_digest(request))]
        assert honest_votes == {"replica-2"}
        assert target.executed_sequence == 0
        assert target.state_machine.executed_requests() == ()


class TestRecoveryClearsProtocolState:
    """Regression: recover_replica must clear stale quorums; duplicate
    execution across the recovery is detected by the safety audit."""

    def test_no_duplicate_execution_with_traffic_during_recovery(self):
        from repro.consensus import audit_safety

        cluster = MinBFTCluster(num_replicas=4, seed=12)
        client = MinBFTClient("client-0", cluster)
        for i in range(3):
            client.write_and_wait("x", i)
        cluster.run(ticks=20)
        # Submit a request and recover replica-2 while its PREPARE/COMMITs
        # are still in flight: pre-fix, the stale prepare log and commit
        # votes re-execute sequences 1..3 on the fresh state machine before
        # state transfer completes.
        client.write("x", 99)
        cluster.recover_replica("replica-2")
        cluster.run(ticks=60)
        audit = audit_safety(cluster)
        assert audit.no_duplicates, audit.duplicated
        assert audit.consistent
        recovered = cluster.replicas["replica-2"]
        identifiers = [entry[0] for entry in recovered.execution_log]
        assert len(identifiers) == len(set(identifiers))

    def test_recovery_rekeys_usig(self):
        cluster = MinBFTCluster(num_replicas=4, seed=13)
        client = MinBFTClient("client-0", cluster)
        client.write_and_wait("x", 1)
        stale_ui = cluster.replicas["replica-2"].usig.create_ui("stale")
        cluster.recover_replica("replica-2")
        verifier = cluster.replicas["replica-0"].verifier
        assert not verifier.verify("stale", stale_ui, enforce_order=False)

    def test_recovered_replica_does_not_regress_sequencing(self):
        """A recovered replica that missed state transfer must not restart
        sequencing below the cluster's watermark (it would execute a
        divergent history on its fresh state machine)."""
        cluster = MinBFTCluster(num_replicas=4, seed=14)
        client = MinBFTClient("client-0", cluster)
        for i in range(4):
            client.write_and_wait("x", i)
        cluster.run(ticks=20)
        watermark = max(r.executed_sequence for r in cluster.replicas.values())
        cluster.recover_replica("replica-1")
        recovered = cluster.replicas["replica-1"]
        assert recovered.known_sequence >= watermark
        # A fresh proposal from the recovered replica (were it leader) would
        # start above the watermark, never at 1.
        assert max(recovered.executed_sequence, recovered.known_sequence) >= watermark


class TestLeaderEviction:
    """Regression: evicting the leader must produce a real NEW-VIEW from the
    designated successor, not a silent membership prune."""

    def test_evicting_leader_advances_view(self, cluster, client):
        client.write_and_wait("x", 1)
        leader = cluster.current_leader()
        views_before = {
            rid: r.view for rid, r in cluster.replicas.items() if rid != leader
        }
        cluster.evict_replica(leader)
        assert leader not in cluster.membership
        for rid, replica in cluster.replicas.items():
            assert replica.view > views_before[rid], (
                f"{rid} never adopted the NEW-VIEW after leader eviction"
            )
            assert leader not in replica.membership

    def test_service_continues_after_leader_eviction(self, cluster, client):
        client.write_and_wait("x", 1)
        leader = cluster.current_leader()
        cluster.evict_replica(leader)
        result = client.write_and_wait("y", 2, max_ticks=400)
        assert result is not None and result.result == 2

    def test_successor_is_new_leader(self, cluster, client):
        client.write_and_wait("x", 1)
        leader = cluster.current_leader()
        cluster.evict_replica(leader)
        new_leader = cluster.current_leader()
        assert new_leader != leader
        assert new_leader in cluster.membership
