"""Background services and client populations (Section VIII-A).

To make the IDS alert streams realistic, every replica in the paper's
testbed runs a set of background services (Table 5) consumed by a population
of background clients that "arrive with a Poisson rate lambda = 20 and have
exponentially distributed service times with mean mu = 4 time-steps".  The
service-request workload from the replicated-service clients rides on top.

This module models that load:

* :class:`BackgroundClientPopulation` -- an M/M/inf-style population whose
  size modulates the benign IDS alert rate and the service request volume;
* :class:`ServiceWorkload` -- the Poisson stream of read/write requests sent
  to the replicated service by the paying clients.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BackgroundClientPopulation", "ServiceRequestEvent", "ServiceWorkload"]


class BackgroundClientPopulation:
    """Poisson-arrival background clients with exponential service times.

    At every time-step ``Poisson(arrival_rate)`` new clients arrive, and each
    active client departs with probability ``1 / mean_service_time`` (the
    discrete-time analogue of exponential service times with that mean).
    """

    def __init__(
        self,
        arrival_rate: float = 20.0,
        mean_service_time: float = 4.0,
        seed: int | None = None,
    ) -> None:
        if arrival_rate < 0.0:
            raise ValueError("arrival_rate must be non-negative")
        if mean_service_time <= 0.0:
            raise ValueError("mean_service_time must be positive")
        self.arrival_rate = arrival_rate
        self.mean_service_time = mean_service_time
        self._rng = np.random.default_rng(seed)
        self.active_clients = 0
        self.total_arrivals = 0

    def step(self) -> int:
        """Advance one time-step; returns the active client count."""
        arrivals = int(self._rng.poisson(self.arrival_rate))
        self.total_arrivals += arrivals
        departure_probability = min(1.0 / self.mean_service_time, 1.0)
        departures = int(self._rng.binomial(self.active_clients, departure_probability))
        self.active_clients = max(self.active_clients + arrivals - departures, 0)
        return self.active_clients

    def expected_steady_state(self) -> float:
        """Expected active clients in steady state (Little's law)."""
        return self.arrival_rate * self.mean_service_time


@dataclass(frozen=True)
class ServiceRequestEvent:
    """One request of the replicated service workload."""

    time_step: int
    operation: str
    key: str
    value: object | None


class ServiceWorkload:
    """Poisson read/write request stream for the replicated service."""

    def __init__(
        self,
        requests_per_step: float = 5.0,
        write_fraction: float = 0.5,
        key_space: int = 16,
        seed: int | None = None,
    ) -> None:
        if requests_per_step < 0.0:
            raise ValueError("requests_per_step must be non-negative")
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError("write_fraction must lie in [0, 1]")
        if key_space < 1:
            raise ValueError("key_space must be >= 1")
        self.requests_per_step = requests_per_step
        self.write_fraction = write_fraction
        self.key_space = key_space
        self._rng = np.random.default_rng(seed)
        self._counter = 0

    def requests_for_step(self, time_step: int) -> list[ServiceRequestEvent]:
        """Sample the requests issued during one time-step."""
        count = int(self._rng.poisson(self.requests_per_step))
        events: list[ServiceRequestEvent] = []
        for _ in range(count):
            self._counter += 1
            is_write = self._rng.random() < self.write_fraction
            key = f"key-{int(self._rng.integers(self.key_space))}"
            events.append(
                ServiceRequestEvent(
                    time_step=time_step,
                    operation="write" if is_write else "read",
                    key=key,
                    value=self._counter if is_write else None,
                )
            )
        return events
