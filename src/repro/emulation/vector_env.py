"""Vectorized environment adapter over the emulation testbed.

:class:`EmulationVectorEnv` exposes ``B`` independent
:class:`~repro.emulation.environment.EmulationEnvironment` episodes through
the same batched ``step``/``reset`` interface as the simulation backends in
:mod:`repro.envs`, so any vector policy — a threshold strategy, a trained
PPO policy, an :class:`~repro.emulation.environment.EvaluationPolicy`'s
recovery strategy — runs unmodified against the Section VIII testbed.

The adapter drives the environment's observe/apply phase split: at every
step the external policy sees the beliefs produced by the *current* step's
IDS observations (exactly what the built-in node controllers act on), its
recover mask is applied with the BTR constraint enforced per node, and the
next observe phase then advances the attacker, crashes and background
workload.  Node churn is mapped onto a fixed bank of ``smax`` slots: the
``active`` mask of the observation marks slots holding a live, reporting
node; newly added nodes claim free slots and evicted/crashed nodes release
theirs.  Decisions for inactive slots are ignored.

Unlike the simulation backends the testbed episodes advance one instance at
a time (the emulation is inherently object-oriented), so this adapter
trades none of the emulation's fidelity for speed — its value is the shared
interface, which lets the same evaluation code score a policy in simulation
and against the testbed.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.metrics import EpisodeMetrics
from ..core.node_model import NodeAction, NodeState
from ..core.observation import ObservationModel
from ..envs.base import VectorObservation
from .environment import (
    EmulationConfig,
    EmulationEnvironment,
    EvaluationPolicy,
    ObservationPhase,
    tolerance_policy,
)

__all__ = ["EmulationVectorEnv"]


class EmulationVectorEnv:
    """Batched step/reset interface over ``B`` emulation testbed episodes.

    Args:
        config: Testbed configuration shared by all episodes.
        policy: The :class:`EvaluationPolicy` supplying everything *except*
            the per-node recovery decisions (replication strategy, invariant
            enforcement, BTR/recovery-limit flags); recovery decisions come
            from the caller through :meth:`step`.  Defaults to the TOLERANCE
            policy.
        num_envs: Number of independent episodes ``B``.
        observation_model: Optional forced detection model (as in
            :class:`EmulationEnvironment`).
        seed: Base seed; per-episode seeds are derived from its
            ``SeedSequence``.
    """

    def __init__(
        self,
        config: EmulationConfig,
        policy: EvaluationPolicy | None = None,
        num_envs: int = 1,
        observation_model: ObservationModel | None = None,
        seed: int | None = None,
    ) -> None:
        if num_envs < 1:
            raise ValueError("num_envs must be >= 1")
        self.config = config
        self.policy = policy if policy is not None else tolerance_policy()
        self._num_envs = num_envs
        self._eta = config.node_params.eta
        self.envs = [
            EmulationEnvironment(
                config,
                self.policy,
                observation_model=observation_model,
                seed=instance_seed,
            )
            for instance_seed in self._instance_seeds(seed)
        ]
        self._slots: list[list[str | None]] = []
        self._phases: list[ObservationPhase | None] = [None] * num_envs
        self._t = 0
        self._started = False

    def _instance_seeds(self, seed: int | None) -> list[int | None]:
        if seed is None:
            return [None] * self._num_envs
        return [
            int(s) for s in np.random.SeedSequence(seed).generate_state(self._num_envs)
        ]

    # -- interface properties ---------------------------------------------------
    @property
    def num_envs(self) -> int:
        return self._num_envs

    @property
    def num_nodes(self) -> int:
        """Slot capacity: the physical cluster bound ``smax``."""
        return self.config.max_nodes

    @property
    def horizon(self) -> int:
        return self.config.horizon

    @property
    def done(self) -> bool:
        return self._started and self._t >= self.horizon

    # -- step/reset -------------------------------------------------------------
    def reset(self, seed: int | None = None) -> VectorObservation:
        """Reset every episode and run its first observe phase.

        ``seed`` re-derives all per-episode seeds; ``None`` replays each
        episode's previous seed (see :meth:`EmulationEnvironment.reset`).
        """
        if seed is not None:
            for env, instance_seed in zip(self.envs, self._instance_seeds(seed)):
                env.reset(instance_seed)
        else:
            for env in self.envs:
                env.reset()
        self._slots = [[None] * self.num_nodes for _ in range(self._num_envs)]
        for b, env in enumerate(self.envs):
            self._reconcile_slots(b, env)
            self._phases[b] = env.observe_phase()
        self._t = 0
        self._started = True
        return self._observation()

    def step(
        self, recover: np.ndarray
    ) -> tuple[VectorObservation, np.ndarray, bool, dict[str, Any]]:
        if not self._started:
            raise RuntimeError("reset() must be called before stepping the environment")
        if self._t >= self.horizon:
            raise RuntimeError(
                "the episode batch is done (horizon reached); call reset() first"
            )
        shape = (self._num_envs, self.num_nodes)
        recover = np.asarray(recover, dtype=bool)
        if recover.shape != shape:
            recover = np.broadcast_to(recover, shape)

        costs = np.zeros(shape)
        records = []
        self._t += 1
        last_step = self._t >= self.horizon
        for b, env in enumerate(self.envs):
            phase = self._phases[b]
            actions: dict[str, NodeAction] = {}
            acting_slots: dict[str, int] = {}
            for j, node_id in enumerate(self._slots[b]):
                if node_id is None or node_id not in phase.beliefs:
                    continue
                actions[node_id] = (
                    NodeAction.RECOVER if recover[b, j] else NodeAction.WAIT
                )
                acting_slots[node_id] = j
            records.append(env.apply_phase(phase, actions))
            # Eq. 5 step cost from the action actually executed (the
            # k-parallel-recovery limit may defer a requested recovery) and
            # the ground-truth state: recoveries cost 1, waiting on a
            # compromised replica costs eta.
            for node_id, j in acting_slots.items():
                node = env.nodes.get(node_id)
                if node is None:
                    continue
                if node.controller.last_action is NodeAction.RECOVER:
                    costs[b, j] = 1.0
                elif node.state is NodeState.COMPROMISED:
                    costs[b, j] = self._eta
            self._reconcile_slots(b, env)
            # On the final step no further observe phase runs (it would
            # advance the dynamics past the horizon); clearing the phase
            # makes the terminal observation report every slot inactive
            # instead of mixing stale beliefs with post-apply clocks.
            self._phases[b] = None if last_step else env.observe_phase()
        observation = self._observation()
        info = {
            "t": self._t,
            "records": records,
            "num_nodes": np.array([len(env.nodes) for env in self.envs]),
            "system_state": np.array([record.system_state for record in records]),
        }
        return observation, costs, last_step, info

    def episode_metrics(self) -> list[EpisodeMetrics]:
        """Per-episode Table 7 metrics (``T^(A)``, ``T^(R)``, ``F^(R)``, ``J``)."""
        return [env.metrics.finalize() for env in self.envs]

    # -- internals ---------------------------------------------------------------
    def _reconcile_slots(self, b: int, env: EmulationEnvironment) -> None:
        """Sync slot bank ``b`` with the environment's current node set."""
        slots = self._slots[b]
        current = set(env.nodes)
        assigned = set()
        for j, node_id in enumerate(slots):
            if node_id is not None and node_id not in current:
                slots[j] = None
            elif node_id is not None:
                assigned.add(node_id)
        free = iter(j for j, node_id in enumerate(slots) if node_id is None)
        for node_id in env.nodes:
            if node_id not in assigned:
                slots[next(free)] = node_id

    def _observation(self) -> VectorObservation:
        shape = (self._num_envs, self.num_nodes)
        beliefs = np.zeros(shape)
        time_since_recovery = np.zeros(shape, dtype=np.int64)
        forced = np.zeros(shape, dtype=bool)
        active = np.zeros(shape, dtype=bool)
        for b, env in enumerate(self.envs):
            phase = self._phases[b]
            if phase is None:
                continue
            for j, node_id in enumerate(self._slots[b]):
                if node_id is None or node_id not in phase.beliefs:
                    continue
                controller = env.nodes[node_id].controller
                beliefs[b, j] = phase.beliefs[node_id]
                time_since_recovery[b, j] = controller.time_since_recovery
                forced[b, j] = controller.btr_deadline_reached()
                active[b, j] = True
        return VectorObservation(
            beliefs=beliefs,
            time_since_recovery=time_since_recovery,
            forced=forced,
            active=active,
        )
