"""Intrusion trace dataset generation and (de)serialization.

The paper publishes a dataset of 6 400 intrusion traces collected on the
testbed.  A *trace* is a time series of per-step records — node states,
IDS observations, controller beliefs, and actions — for one evaluation
episode.  This module generates an equivalent synthetic dataset from the
emulation environment, so that downstream users (e.g. for training intrusion
detection models or offline RL) have the same artifact to work with, and
provides simple JSON-lines persistence.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable

from .environment import EmulationConfig, EmulationEnvironment, EvaluationPolicy, tolerance_policy

__all__ = ["IntrusionTrace", "generate_traces", "save_traces", "load_traces"]


@dataclass(frozen=True)
class IntrusionTrace:
    """One episode trace.

    Attributes:
        trace_id: Index of the trace within its dataset.
        seed: Seed used for the episode.
        policy: Name of the control policy used.
        steps: Per-step records (time step, node census, observations, beliefs).
        availability: Episode availability ``T^(A)``.
        time_to_recovery: Episode ``T^(R)``.
        recovery_frequency: Episode ``F^(R)``.
    """

    trace_id: int
    seed: int
    policy: str
    steps: tuple[dict, ...]
    availability: float
    time_to_recovery: float
    recovery_frequency: float

    def __len__(self) -> int:
        return len(self.steps)


def generate_traces(
    num_traces: int = 10,
    config: EmulationConfig | None = None,
    policy: EvaluationPolicy | None = None,
    horizon: int = 100,
    base_seed: int = 0,
) -> list[IntrusionTrace]:
    """Generate a dataset of intrusion traces from the emulation environment."""
    if num_traces < 1:
        raise ValueError("num_traces must be >= 1")
    config = config if config is not None else EmulationConfig(horizon=horizon)
    policy = policy if policy is not None else tolerance_policy()
    traces: list[IntrusionTrace] = []
    for index in range(num_traces):
        seed = base_seed + index
        environment = EmulationEnvironment(config, policy, seed=seed)
        metrics = environment.run(horizon)
        steps = tuple(
            {
                "time_step": record.time_step,
                "num_nodes": record.num_nodes,
                "healthy": record.healthy,
                "compromised": record.compromised,
                "recoveries": record.recoveries,
                "added_node": record.added_node,
                "evicted": record.evicted,
                "beliefs": record.beliefs,
                "observations": record.observations,
                "system_state": record.system_state,
            }
            for record in environment.trace
        )
        traces.append(
            IntrusionTrace(
                trace_id=index,
                seed=seed,
                policy=policy.name,
                steps=steps,
                availability=metrics.availability,
                time_to_recovery=metrics.time_to_recovery,
                recovery_frequency=metrics.recovery_frequency,
            )
        )
    return traces


def save_traces(traces: Iterable[IntrusionTrace], path: str | Path) -> int:
    """Persist traces as JSON lines; returns the number of traces written."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for trace in traces:
            handle.write(json.dumps(asdict(trace)) + "\n")
            count += 1
    return count


def load_traces(path: str | Path) -> list[IntrusionTrace]:
    """Load a JSON-lines trace dataset written by :func:`save_traces`."""
    path = Path(path)
    traces: list[IntrusionTrace] = []
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            raw = json.loads(line)
            traces.append(
                IntrusionTrace(
                    trace_id=int(raw["trace_id"]),
                    seed=int(raw["seed"]),
                    policy=str(raw["policy"]),
                    steps=tuple(raw["steps"]),
                    availability=float(raw["availability"]),
                    time_to_recovery=float(raw["time_to_recovery"]),
                    recovery_frequency=float(raw["recovery_frequency"]),
                )
            )
    return traces
