"""Emulation substrate: the evaluation testbed of Section VIII.

* :mod:`~repro.emulation.containers` — the physical nodes, container images,
  vulnerabilities and kill chains of Tables 3-6.
* :mod:`~repro.emulation.ids` — the synthetic Snort-like IDS and the
  empirical-model fitting procedure of Figure 11.
* :mod:`~repro.emulation.attacker` — multi-step intrusions with Byzantine
  post-compromise behaviour.
* :mod:`~repro.emulation.services` — background clients and the service
  request workload.
* :mod:`~repro.emulation.node` / :mod:`~repro.emulation.environment` — the
  emulated nodes and the full evaluation environment producing Table 7 /
  Figure 12.
* :mod:`~repro.emulation.traces` — the intrusion-trace dataset generator.
"""

from .attacker import AttackPhase, AttackState, Attacker, AttackerConfig
from .containers import (
    CONTAINER_CATALOG,
    PHYSICAL_NODES,
    ContainerImage,
    PhysicalNode,
    container_by_replica_id,
)
from .environment import (
    EmulationConfig,
    EmulationEnvironment,
    EvaluationPolicy,
    default_emulation_observation_model,
    no_recovery_policy,
    periodic_adaptive_policy,
    periodic_policy,
    tolerance_policy,
)
from .ids import AlertSample, SnortLikeIDS, collect_alert_dataset, fit_empirical_model
from .node import EmulatedNode
from .services import BackgroundClientPopulation, ServiceRequestEvent, ServiceWorkload
from .traces import IntrusionTrace, generate_traces, load_traces, save_traces
from .vector_env import EmulationVectorEnv

__all__ = [
    "AlertSample",
    "AttackPhase",
    "AttackState",
    "Attacker",
    "AttackerConfig",
    "BackgroundClientPopulation",
    "CONTAINER_CATALOG",
    "ContainerImage",
    "EmulatedNode",
    "EmulationConfig",
    "EmulationEnvironment",
    "EmulationVectorEnv",
    "EvaluationPolicy",
    "IntrusionTrace",
    "PHYSICAL_NODES",
    "PhysicalNode",
    "ServiceRequestEvent",
    "ServiceWorkload",
    "SnortLikeIDS",
    "collect_alert_dataset",
    "container_by_replica_id",
    "default_emulation_observation_model",
    "fit_empirical_model",
    "generate_traces",
    "load_traces",
    "no_recovery_policy",
    "periodic_adaptive_policy",
    "periodic_policy",
    "save_traces",
    "tolerance_policy",
]
