"""Synthetic IDS: priority-weighted alert generation and empirical models.

The paper's testbed runs the Snort IDS on every node and feeds the node
controller with ``o_t``, the number of alerts during the last 60-second
interval weighted by priority.  Offline, 25 000 labelled samples per
intrusion type are used to fit the empirical observation model
``\\hat{Z}_i`` (Figure 11), which the controllers then use for belief
updates.

This module substitutes Snort with a stochastic alert generator whose output
has the same two key properties:

* the healthy-state distribution is driven by the container's background
  services (benign traffic, false positives) and is concentrated at low
  alert counts;
* during an intrusion the weighted alert count shifts to markedly higher
  values, with heavier tails for noisy intrusions (brute-force kill chains)
  than for single CVE exploits — the TP-2 / monotone-likelihood-ratio
  property that Theorem 1's assumption (E) needs.

Alert counts are negative-binomially distributed (an over-dispersed Poisson),
which matches the long right tails visible in Fig. 11.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.observation import EmpiricalObservationModel
from .containers import ContainerImage

__all__ = ["AlertSample", "SnortLikeIDS", "fit_empirical_model", "collect_alert_dataset"]


@dataclass(frozen=True)
class AlertSample:
    """One IDS measurement interval."""

    weighted_alerts: int
    intrusion_active: bool
    container_name: str


def _negative_binomial(rng: np.random.Generator, mean: float, dispersion: float) -> int:
    """Sample an over-dispersed count with the given mean."""
    if mean <= 0.0:
        return 0
    # Parameterize by mean and dispersion r: p = r / (r + mean).
    r = max(dispersion, 1e-6)
    p = r / (r + mean)
    return int(rng.negative_binomial(r, p))


class SnortLikeIDS:
    """Per-node IDS alert generator.

    Args:
        container: The container image whose services shape the alert rates.
        background_load: Multiplier applied to the healthy alert rate; the
            environment modulates it with the Poisson background-client
            population of Section VIII-A.
        healthy_dispersion / intrusion_dispersion: Negative-binomial
            dispersion parameters (smaller = heavier tail).
    """

    def __init__(
        self,
        container: ContainerImage,
        background_load: float = 1.0,
        healthy_dispersion: float = 4.0,
        intrusion_dispersion: float = 2.0,
    ) -> None:
        self.container = container
        self.background_load = background_load
        self.healthy_dispersion = healthy_dispersion
        self.intrusion_dispersion = intrusion_dispersion

    def sample_alerts(
        self,
        intrusion_active: bool,
        rng: np.random.Generator,
        background_clients: int | None = None,
    ) -> int:
        """Weighted alert count for one 60-second measurement interval."""
        load = self.background_load
        if background_clients is not None:
            # Each background client adds a small amount of benign alert noise.
            load *= 1.0 + 0.02 * background_clients
        healthy_mean = self.container.alert_rate_healthy * load
        count = _negative_binomial(rng, healthy_mean, self.healthy_dispersion)
        if intrusion_active:
            count += _negative_binomial(
                rng, self.container.alert_rate_intrusion, self.intrusion_dispersion
            )
        return count

    def sample_interval(
        self,
        intrusion_active: bool,
        rng: np.random.Generator,
        background_clients: int | None = None,
    ) -> AlertSample:
        return AlertSample(
            weighted_alerts=self.sample_alerts(intrusion_active, rng, background_clients),
            intrusion_active=intrusion_active,
            container_name=self.container.name,
        )


def collect_alert_dataset(
    container: ContainerImage,
    num_samples: int = 2000,
    intrusion_fraction: float = 0.5,
    seed: int | None = None,
) -> list[AlertSample]:
    """Collect a labelled alert dataset for one container (the Fig. 11 procedure).

    Half of the samples (by default) are collected while an intrusion is in
    progress, the rest under benign load only.
    """
    if num_samples < 2:
        raise ValueError("num_samples must be >= 2")
    if not 0.0 < intrusion_fraction < 1.0:
        raise ValueError("intrusion_fraction must lie in (0, 1)")
    rng = np.random.default_rng(seed)
    ids = SnortLikeIDS(container)
    samples: list[AlertSample] = []
    num_intrusion = int(num_samples * intrusion_fraction)
    for index in range(num_samples):
        intrusion = index < num_intrusion
        samples.append(ids.sample_interval(intrusion, rng))
    rng.shuffle(samples)  # type: ignore[arg-type]
    return samples


def fit_empirical_model(
    samples: list[AlertSample],
    num_observations: int | None = None,
    bucket_size: int = 20,
) -> EmpiricalObservationModel:
    """Fit ``\\hat{Z}`` from labelled alert samples via maximum likelihood.

    Raw alert counts are bucketed (default: 20 alerts per bucket) so that the
    observation alphabet stays small enough for the POMDP solvers while
    preserving the separation between the healthy and intrusion distributions.
    """
    if not samples:
        raise ValueError("at least one sample is required")
    if bucket_size < 1:
        raise ValueError("bucket_size must be >= 1")
    healthy = [s.weighted_alerts // bucket_size for s in samples if not s.intrusion_active]
    intrusion = [s.weighted_alerts // bucket_size for s in samples if s.intrusion_active]
    if not healthy or not intrusion:
        raise ValueError("samples must cover both the healthy and the intrusion condition")
    return EmpiricalObservationModel(
        healthy_samples=healthy,
        compromised_samples=intrusion,
        num_observations=num_observations,
    )
