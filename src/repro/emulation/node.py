"""Emulated TOLERANCE node: application domain + privileged domain.

Each node of the emulation bundles

* the ground-truth replica state (healthy / compromised / crashed) that only
  the environment knows;
* the container image currently running in the application domain (replaced
  on every recovery, which implements software diversification);
* the node's IDS (:class:`~repro.emulation.ids.SnortLikeIDS`) living in the
  privileged domain; and
* the node controller (:class:`~repro.core.node_controller.NodeController`)
  that consumes IDS observations and issues recovery decisions.

The environment owns the hidden-state dynamics (crashes, compromises via the
attacker); the node exposes ``recover``/``crash`` transitions and the
``observe_and_decide`` control step.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..core.node_controller import NodeController
from ..core.node_model import NodeAction, NodeParameters, NodeState
from ..core.observation import ObservationModel
from ..core.strategies import RecoveryStrategy
from .containers import CONTAINER_CATALOG, ContainerImage
from .ids import SnortLikeIDS

__all__ = ["EmulatedNode"]


class EmulatedNode:
    """One emulated node: ground truth + IDS + local controller."""

    def __init__(
        self,
        node_id: str,
        params: NodeParameters,
        observation_model: ObservationModel,
        strategy: RecoveryStrategy,
        container: ContainerImage | None = None,
        alert_bucket_size: int = 20,
        enforce_btr: bool = True,
        observation_models_by_container: Mapping[int, ObservationModel] | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.node_id = node_id
        self.params = params
        self.alert_bucket_size = alert_bucket_size
        self._rng = rng if rng is not None else np.random.default_rng()
        self.container: ContainerImage = (
            container
            if container is not None
            else CONTAINER_CATALOG[int(self._rng.integers(len(CONTAINER_CATALOG)))]
        )
        self.ids = SnortLikeIDS(self.container)
        self._default_observation_model = observation_model
        self._observation_models_by_container = (
            dict(observation_models_by_container)
            if observation_models_by_container is not None
            else {}
        )
        self.controller = NodeController(
            node_id=node_id,
            params=params,
            observation_model=self._model_for(self.container),
            strategy=strategy,
            enforce_btr=enforce_btr,
        )
        self.state = NodeState.HEALTHY
        self.recoveries = 0
        self.crashes = 0
        self.compromises = 0

    def _model_for(self, container: ContainerImage) -> ObservationModel:
        """Per-container detection model ``\\hat{Z}_i`` (Fig. 11), if available."""
        return self._observation_models_by_container.get(
            container.replica_id, self._default_observation_model
        )

    # -- ground-truth transitions ----------------------------------------------------
    @property
    def is_alive(self) -> bool:
        return self.state is not NodeState.CRASHED

    @property
    def is_compromised(self) -> bool:
        return self.state is NodeState.COMPROMISED

    def mark_compromised(self) -> None:
        if self.state is NodeState.HEALTHY:
            self.state = NodeState.COMPROMISED
            self.compromises += 1

    def maybe_crash(self) -> bool:
        """Sample the crash transition for this step (Eq. 2b-2c)."""
        if self.state is NodeState.CRASHED:
            return False
        crash_probability = (
            self.params.p_c1 if self.state is NodeState.HEALTHY else self.params.p_c2
        )
        if self._rng.random() < crash_probability:
            self.state = NodeState.CRASHED
            self.crashes += 1
            return True
        return False

    def recover(self) -> None:
        """Recover the replica: new randomly-drawn container, healthy state."""
        if self.state is NodeState.CRASHED:
            return
        self.state = NodeState.HEALTHY
        self.container = CONTAINER_CATALOG[int(self._rng.integers(len(CONTAINER_CATALOG)))]
        self.ids = SnortLikeIDS(self.container)
        self.controller.observation_model = self._model_for(self.container)
        self.recoveries += 1
        self.controller.notify_recovered()

    # -- control step ----------------------------------------------------------------
    def sample_observation(
        self, intrusion_activity: bool, background_clients: int | None = None
    ) -> int:
        """Raw weighted alert count for the current interval (bucketed for the model)."""
        raw = self.ids.sample_alerts(intrusion_activity, self._rng, background_clients)
        return raw // self.alert_bucket_size

    def observe(
        self, intrusion_activity: bool, background_clients: int | None = None
    ) -> tuple[float, int]:
        """Sample an IDS observation and update the controller belief.

        The raw bucketed alert count is clipped into the controller's model
        support before the belief update.  Returns the reported belief and
        the (clipped) observation the controller consumed.  This is the
        observation half of the control step; the decision half is
        :meth:`NodeController.decide` (or an externally supplied action).
        """
        observation = self.sample_observation(intrusion_activity, background_clients)
        clipped = int(
            np.clip(observation, 0, int(self.controller.observation_model.observations[-1]))
        )
        belief = self.controller.observe(clipped)
        return belief, clipped

    def observe_and_decide(
        self, intrusion_activity: bool, background_clients: int | None = None
    ) -> tuple[NodeAction, float, int]:
        """One privileged-domain control step.

        Returns the controller's requested action, its reported belief, and
        the bucketed observation it consumed.  The environment is responsible
        for actually executing the recovery (so that the ``k`` parallel
        recovery limit can be enforced globally).
        """
        belief, clipped = self.observe(intrusion_activity, background_clients)
        action = self.controller.decide()
        if action is NodeAction.RECOVER:
            # The decision is recorded; the actual recovery (and the
            # controller's notify_recovered) happens when the environment
            # grants one of the k recovery slots.
            self.controller.last_action = NodeAction.RECOVER
        else:
            self.controller.time_since_recovery += 1
        return action, belief, clipped
