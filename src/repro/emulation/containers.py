"""Catalog of service-replica containers, vulnerabilities and intrusion steps.

This module encodes Tables 3-6 of the paper:

* Table 3 -- the 13 physical nodes of the testbed (:data:`PHYSICAL_NODES`);
* Table 4 -- the 10 container images running the service replicas, each with
  its operating system and vulnerabilities (:data:`CONTAINER_CATALOG`);
* Table 5 -- the background services per replica;
* Table 6 -- the intrusion steps the attacker uses against each replica.

The emulation samples a random container for every (re)started replica,
which reproduces the software-diversification argument of Section IV: the
compromise probability of a node is tied to its container's vulnerability,
and containers are re-randomized on every recovery.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "PhysicalNode",
    "ContainerImage",
    "PHYSICAL_NODES",
    "CONTAINER_CATALOG",
    "container_by_replica_id",
]


@dataclass(frozen=True)
class PhysicalNode:
    """One physical server of the testbed (Table 3)."""

    server_id: int
    model: str
    processors: str
    ram_gb: int


PHYSICAL_NODES: tuple[PhysicalNode, ...] = tuple(
    [
        PhysicalNode(i, "R715 2U", "two 12-core AMD OPTERON", 64)
        for i in range(1, 10)
    ]
    + [
        PhysicalNode(10, "R630 2U", "two 12-core INTEL XEON E5-2680", 256),
        PhysicalNode(11, "R740 2U", "one 20-core INTEL XEON GOLD 5218R", 32),
        PhysicalNode(12, "SUPERMICRO 7049", "two TESLA P100, one 16-core INTEL XEON", 126),
        PhysicalNode(13, "SUPERMICRO 7049", "four RTX 8000, one 24-core INTEL XEON", 768),
    ]
)


@dataclass(frozen=True)
class ContainerImage:
    """One replica container (Tables 4-6).

    Attributes:
        replica_id: Index in Table 4 (1-10).
        operating_system: Base OS of the image.
        vulnerabilities: Vulnerabilities the attacker can exploit.
        background_services: Services generating benign IDS alerts (Table 5).
        intrusion_steps: The attacker's kill chain against this image (Table 6).
        alert_rate_healthy: Mean weighted-alert rate under benign load; used by
            the synthetic IDS to shape the healthy-state alert distribution.
        alert_rate_intrusion: Mean weighted-alert rate while the intrusion
            steps execute; brute-force intrusions are noisier than single
            CVE exploits, matching the spread of Fig. 11.
    """

    replica_id: int
    operating_system: str
    vulnerabilities: tuple[str, ...]
    background_services: tuple[str, ...]
    intrusion_steps: tuple[str, ...]
    alert_rate_healthy: float
    alert_rate_intrusion: float

    @property
    def name(self) -> str:
        return f"replica-image-{self.replica_id}"

    @property
    def primary_vulnerability(self) -> str:
        return self.vulnerabilities[0]


CONTAINER_CATALOG: tuple[ContainerImage, ...] = (
    ContainerImage(
        replica_id=1,
        operating_system="UBUNTU 14",
        vulnerabilities=("FTP weak password",),
        background_services=("FTP", "SSH", "MONGODB", "HTTP", "TEAMSPEAK"),
        intrusion_steps=("TCP SYN scan", "FTP brute force"),
        alert_rate_healthy=40.0,
        alert_rate_intrusion=420.0,
    ),
    ContainerImage(
        replica_id=2,
        operating_system="UBUNTU 20",
        vulnerabilities=("SSH weak password",),
        background_services=("SSH", "DNS", "HTTP"),
        intrusion_steps=("TCP SYN scan", "SSH brute force"),
        alert_rate_healthy=30.0,
        alert_rate_intrusion=380.0,
    ),
    ContainerImage(
        replica_id=3,
        operating_system="UBUNTU 20",
        vulnerabilities=("TELNET weak password",),
        background_services=("SSH", "TELNET", "HTTP"),
        intrusion_steps=("TCP SYN scan", "TELNET brute force"),
        alert_rate_healthy=30.0,
        alert_rate_intrusion=360.0,
    ),
    ContainerImage(
        replica_id=4,
        operating_system="DEBIAN 10.2",
        vulnerabilities=("CVE-2017-7494",),
        background_services=("SSH", "SAMBA", "NTP"),
        intrusion_steps=("ICMP scan", "exploit of CVE-2017-7494"),
        alert_rate_healthy=25.0,
        alert_rate_intrusion=180.0,
    ),
    ContainerImage(
        replica_id=5,
        operating_system="UBUNTU 20",
        vulnerabilities=("CVE-2014-6271",),
        background_services=("SSH",),
        intrusion_steps=("ICMP scan", "exploit of CVE-2014-6271"),
        alert_rate_healthy=20.0,
        alert_rate_intrusion=160.0,
    ),
    ContainerImage(
        replica_id=6,
        operating_system="DEBIAN 10.2",
        vulnerabilities=("CWE-89 on DVWA",),
        background_services=("DVWA", "IRC", "SSH"),
        intrusion_steps=("ICMP scan", "exploit of CWE-89 on DVWA"),
        alert_rate_healthy=35.0,
        alert_rate_intrusion=200.0,
    ),
    ContainerImage(
        replica_id=7,
        operating_system="DEBIAN 10.2",
        vulnerabilities=("CVE-2015-3306",),
        background_services=("SSH",),
        intrusion_steps=("ICMP scan", "exploit of CVE-2015-3306"),
        alert_rate_healthy=20.0,
        alert_rate_intrusion=150.0,
    ),
    ContainerImage(
        replica_id=8,
        operating_system="DEBIAN 10.2",
        vulnerabilities=("CVE-2016-10033",),
        background_services=("SSH",),
        intrusion_steps=("ICMP scan", "exploit of CVE-2016-10033"),
        alert_rate_healthy=20.0,
        alert_rate_intrusion=155.0,
    ),
    ContainerImage(
        replica_id=9,
        operating_system="DEBIAN 10.2",
        vulnerabilities=("CVE-2010-0426", "SSH weak password"),
        background_services=("TEAMSPEAK", "HTTP", "SSH"),
        intrusion_steps=("ICMP scan", "SSH brute force", "exploit of CVE-2010-0426"),
        alert_rate_healthy=30.0,
        alert_rate_intrusion=300.0,
    ),
    ContainerImage(
        replica_id=10,
        operating_system="DEBIAN 10.2",
        vulnerabilities=("CVE-2015-5602", "SSH weak password"),
        background_services=("SSH",),
        intrusion_steps=("ICMP scan", "SSH brute force", "exploit of CVE-2015-5602"),
        alert_rate_healthy=25.0,
        alert_rate_intrusion=290.0,
    ),
)


def container_by_replica_id(replica_id: int) -> ContainerImage:
    """Look up a Table 4 container image by its id (1-10)."""
    for image in CONTAINER_CATALOG:
        if image.replica_id == replica_id:
            return image
    raise KeyError(f"no container with replica id {replica_id}")
