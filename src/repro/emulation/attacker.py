"""Attacker model: multi-step intrusions against service replicas.

Section VIII-A describes the attacker: it can reach the gateways, selects a
replica, and executes the intrusion steps of Table 6 (reconnaissance
followed by a brute-force attack or a CVE exploit).  Once a replica is
compromised the attacker randomly chooses between (a) participating in the
consensus protocol, (b) not participating, and (c) participating with
randomly selected messages.

The :class:`Attacker` below drives that behaviour in the emulation: each
healthy replica is attacked with a per-step start probability; an attack
then progresses through the container's kill chain (one step per time-step),
raising IDS alert levels while in progress, and compromises the replica when
the final step succeeds.  The resulting time-to-compromise is geometric-ish
with additional kill-chain delay, consistent with the node model (Fig. 5)
where ``p_A`` aggregates the per-step compromise probability.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..consensus.minbft import ByzantineBehavior
from ..sim.adversary import AdversaryProcess
from .containers import ContainerImage

__all__ = ["AttackPhase", "AttackState", "Attacker", "AttackerConfig"]


class AttackPhase(enum.Enum):
    """Progress of an intrusion against one replica."""

    IDLE = "idle"
    IN_PROGRESS = "in-progress"
    COMPROMISED = "compromised"


@dataclass
class AttackState:
    """Attacker progress against a single replica."""

    phase: AttackPhase = AttackPhase.IDLE
    current_step: int = 0
    kill_chain: tuple[str, ...] = ()
    post_compromise_behavior: ByzantineBehavior = ByzantineBehavior.NONE

    @property
    def intrusion_activity(self) -> bool:
        """Whether attacker traffic is hitting the replica (raises IDS alerts)."""
        return self.phase is not AttackPhase.IDLE


@dataclass(frozen=True)
class AttackerConfig:
    """Attacker parameters.

    Attributes:
        start_probability: Probability per time-step that the attacker starts
            a new intrusion (against a randomly selected healthy replica).
            The rate is system-wide — the paper's attacker executes one kill
            chain at a time against a chosen replica — so the intrusion
            intensity does not scale with the replication factor.
        step_success_probability: Probability that the current kill-chain step
            succeeds in a given time-step (brute-force steps may take several
            intervals).
        max_concurrent_attacks: Maximum number of replicas the attacker works
            on simultaneously.  The paper's attacker compromises replicas one
            kill chain at a time (Table 6); ``1`` reproduces that behaviour,
            larger values model coordinated attackers.
        behaviors: The post-compromise behaviours to choose among, matching
            Section VIII-A options (a)-(c).
        adversary: Optional :class:`~repro.sim.adversary.AdversaryProcess`
            modulating the attacker over time — the emulation-side half of
            the PR-9 adversary seam.  Each time-step the process scales
            ``start_probability`` by its compromise-pressure multiplier
            (bursty/correlated campaigns wax and wane) and a stealth
            adversary's alert suppression hides in-progress intrusion
            traffic from the IDS.  ``None`` (the default) keeps the
            time-homogeneous attacker above bit-identical to the pre-seam
            behaviour.
    """

    start_probability: float = 0.2
    step_success_probability: float = 0.7
    max_concurrent_attacks: int = 1
    behaviors: tuple[ByzantineBehavior, ...] = (
        ByzantineBehavior.PARTICIPATE,
        ByzantineBehavior.SILENT,
        ByzantineBehavior.ARBITRARY,
    )
    adversary: AdversaryProcess | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.start_probability <= 1.0:
            raise ValueError("start_probability must be a probability")
        if not 0.0 < self.step_success_probability <= 1.0:
            raise ValueError("step_success_probability must lie in (0, 1]")
        if self.max_concurrent_attacks < 1:
            raise ValueError("max_concurrent_attacks must be >= 1")
        if not self.behaviors:
            raise ValueError("at least one post-compromise behaviour is required")


class Attacker:
    """The network attacker of the emulation environment."""

    def __init__(self, config: AttackerConfig | None = None, seed: int | None = None) -> None:
        self.config = config if config is not None else AttackerConfig()
        self._rng = np.random.default_rng(seed)
        self._states: dict[object, AttackState] = {}
        self.total_intrusions_started = 0
        self.total_compromises = 0
        # Adversary-process modulation (PR 9).  A static (or absent)
        # adversary consumes no randomness and leaves every stream of the
        # pre-seam attacker untouched.
        self._adversary = self.config.adversary
        self._time_step = 0
        self._start_probability = self.config.start_probability
        self._suppress_alerts = False
        if self._adversary is not None and not self._adversary.is_static:
            self._adversary_state = self._adversary.begin(1, 1)
            self._adversary_rng = np.random.default_rng(
                self._rng.integers(2**31)
            )
        else:
            self._adversary_state = None
            self._adversary_rng = None

    # -- adversary modulation ------------------------------------------------------
    def begin_step(self) -> None:
        """Advance the adversary process by one emulation time-step.

        Called by the environment at the top of each observe phase, before
        :meth:`select_targets`.  Updates the effective intrusion start
        probability (the pressure the adversary applies to the
        ``start_probability`` baseline, clipped to ``[0, 1]``) and whether
        this step's intrusion traffic is suppressed from the IDS.
        """
        adversary = self._adversary
        if adversary is None or adversary.is_static:
            return
        width = adversary.uniforms_per_step(1)
        uniforms = self._adversary_rng.random((1, width)) if width else None
        baseline = np.array([self.config.start_probability])
        pressure = np.asarray(
            adversary.compromise_pressure(
                self._adversary_state, self._time_step, baseline, uniforms
            )
        )
        self._start_probability = float(np.clip(pressure.reshape(-1)[0], 0.0, 1.0))
        suppress = adversary.alert_suppression(
            self._adversary_state, self._time_step, uniforms
        )
        self._suppress_alerts = suppress is not None and bool(
            np.asarray(suppress).reshape(-1)[0]
        )
        self._time_step += 1

    def observed_intrusion_activity(self, node_id: object) -> bool:
        """Whether the IDS sees attacker traffic against a node this step.

        True intrusion progress (:attr:`AttackState.intrusion_activity`)
        masked by the adversary's alert suppression — a stealth adversary
        keeps compromising while the node observes background noise only.
        """
        return self.state_of(node_id).intrusion_activity and not self._suppress_alerts

    # -- per-node state ------------------------------------------------------------
    def state_of(self, node_id: object) -> AttackState:
        return self._states.setdefault(node_id, AttackState())

    def forget(self, node_id: object) -> None:
        """Reset attacker progress against a node (after recovery/eviction)."""
        self._states[node_id] = AttackState()

    # -- dynamics -----------------------------------------------------------------
    def select_targets(self, candidates: list[tuple[object, ContainerImage]]) -> list[object]:
        """Pick new intrusion targets for this time-step.

        Args:
            candidates: ``(node_id, container)`` pairs of healthy nodes that
                are not yet under attack.

        Returns:
            The node ids against which new intrusions were started.
        """
        started: list[object] = []
        free_slots = self.config.max_concurrent_attacks - self._active_attacks()
        available = list(candidates)
        for _ in range(max(free_slots, 0)):
            if not available:
                break
            if self._rng.random() >= self._start_probability:
                continue
            index = int(self._rng.integers(len(available)))
            node_id, container = available.pop(index)
            state = self.state_of(node_id)
            state.phase = AttackPhase.IN_PROGRESS
            state.current_step = 0
            state.kill_chain = container.intrusion_steps
            self.total_intrusions_started += 1
            started.append(node_id)
        return started

    def step_node(self, node_id: object, container: ContainerImage, node_is_healthy: bool) -> AttackState:
        """Advance an ongoing intrusion against one node by one time-step.

        Args:
            node_id: Identifier of the target node.
            container: The container image currently running on the node.
            node_is_healthy: Ground-truth health; crashed or already
                compromised nodes are not attacked further.

        Returns:
            The (updated) attack state of the node.
        """
        del container  # the kill chain was fixed when the intrusion started
        state = self.state_of(node_id)

        if not node_is_healthy:
            if state.phase is AttackPhase.IN_PROGRESS:
                # The target crashed mid-attack; the attacker gives up.
                self.forget(node_id)
                return self.state_of(node_id)
            return state

        if state.phase is AttackPhase.IN_PROGRESS:
            if self._rng.random() < self.config.step_success_probability:
                state.current_step += 1
                if state.current_step >= len(state.kill_chain):
                    state.phase = AttackPhase.COMPROMISED
                    state.post_compromise_behavior = self._rng.choice(  # type: ignore[assignment]
                        np.array(self.config.behaviors, dtype=object)
                    )
                    self.total_compromises += 1
            return state

        return state

    def _active_attacks(self) -> int:
        """Number of intrusions currently in progress (not yet compromised)."""
        return sum(
            1 for state in self._states.values() if state.phase is AttackPhase.IN_PROGRESS
        )

    def compromised_nodes(self) -> list[object]:
        return [
            node_id
            for node_id, state in self._states.items()
            if state.phase is AttackPhase.COMPROMISED
        ]

    def effective_compromise_probability(self) -> float:
        """Approximate per-step compromise probability implied by the config.

        Useful to derive the ``p_A`` parameter of the node model from the
        attacker configuration (the expected time to compromise is the
        waiting time to start plus the expected kill-chain duration).
        """
        start = self.config.start_probability
        step = self.config.step_success_probability
        if start <= 0.0:
            return 0.0
        mean_chain_length = float(
            np.mean([len(c.intrusion_steps) for c in _default_chain_lengths()])
        )
        expected_steps = 1.0 / start + mean_chain_length / step
        return 1.0 / expected_steps


def _default_chain_lengths():
    from .containers import CONTAINER_CATALOG

    return CONTAINER_CATALOG
