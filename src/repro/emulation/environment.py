"""The emulation environment of Section VIII: the TOLERANCE evaluation testbed.

An evaluation run evolves in time-steps of 60 seconds.  It starts with
``N_1`` nodes, each running a randomly drawn service replica container.  At
every time-step:

1. the background client population evolves (Poisson arrivals, exponential
   service times), modulating benign IDS alert levels;
2. the attacker advances its kill chains: it may start an intrusion against
   a healthy node, progress an ongoing one, and ultimately compromise the
   replica, after which the replica behaves Byzantine;
3. nodes may crash (healthy nodes with probability ``p_C1``, compromised
   nodes with probability ``p_C2``);
4. each node's IDS produces a weighted alert count; the node controller
   updates its belief and decides whether to recover — at most ``k``
   recoveries are granted per step (Proposition 1c); recovered replicas get
   a fresh container;
5. the system controller collects beliefs (nodes that fail to report are
   evicted), and decides whether to add a node (bounded by the physical
   cluster size ``smax``);
6. the metrics collector updates ``T^(A)``, ``T^(R)``, ``F^(R)`` and the
   correctness auditor checks the Proposition 1 invariants.

The same environment, parameterized with the baseline strategies of
Section VIII-B, produces the comparison of Table 7 and Figure 12.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from ..core.correctness import CorrectnessAuditor
from ..core.metrics import EpisodeMetrics, MetricsCollector
from ..core.node_model import NodeAction, NodeParameters, NodeState
from ..core.observation import ObservationModel
from ..core.strategies import (
    AdaptiveHeuristicReplicationStrategy,
    NoRecoveryStrategy,
    PeriodicStrategy,
    RecoveryStrategy,
    ReplicationStrategy,
    ThresholdStrategy,
)
from ..core.system_controller import SystemController
from .attacker import Attacker, AttackerConfig, AttackPhase
from .containers import CONTAINER_CATALOG, PHYSICAL_NODES
from .ids import SnortLikeIDS
from .node import EmulatedNode
from .services import BackgroundClientPopulation

__all__ = [
    "EmulationConfig",
    "EvaluationPolicy",
    "EmulationEnvironment",
    "default_emulation_observation_model",
    "per_container_observation_models",
    "tolerance_policy",
    "no_recovery_policy",
    "periodic_policy",
    "periodic_adaptive_policy",
]

_OBSERVATION_MODEL_CACHE: dict[tuple[int, int, int], ObservationModel] = {}
_PER_CONTAINER_MODEL_CACHE: dict[tuple[int, int, int], dict[int, ObservationModel]] = {}


def default_emulation_observation_model(
    bucket_size: int = 20,
    samples_per_container: int = 400,
    seed: int = 1234,
    background_clients: int = 80,
) -> ObservationModel:
    """Fit the pooled empirical IDS model ``\\hat{Z}`` across all containers.

    Mirrors the paper's procedure (Section VIII-A): alert samples are
    collected from every container type, with and without intrusions, under
    the steady-state background-client load (``lambda * mu = 80``), and the
    empirical distribution is the maximum-likelihood estimate of ``Z``.  The
    result is cached because the same model is reused across the many seeds
    of Table 7 / Figure 12.
    """
    from ..core.observation import EmpiricalObservationModel

    cache_key = (bucket_size, samples_per_container, seed)
    cached = _OBSERVATION_MODEL_CACHE.get(cache_key)
    if cached is not None:
        return cached
    rng = np.random.default_rng(seed)
    healthy: list[int] = []
    intrusion: list[int] = []
    for container in CONTAINER_CATALOG:
        ids = SnortLikeIDS(container)
        for _ in range(samples_per_container):
            healthy.append(
                ids.sample_alerts(False, rng, background_clients) // bucket_size
            )
            intrusion.append(
                ids.sample_alerts(True, rng, background_clients) // bucket_size
            )
    model = EmpiricalObservationModel(healthy, intrusion)
    _OBSERVATION_MODEL_CACHE[cache_key] = model
    return model


def per_container_observation_models(
    bucket_size: int = 20,
    samples_per_container: int = 400,
    seed: int = 1234,
    background_clients: int = 80,
) -> dict[int, ObservationModel]:
    """Fit one empirical model ``\\hat{Z}_i`` per container type (Fig. 11).

    The controllers of the paper use the detection model of the container
    their replica currently runs, which is what keeps false-alarm rates low
    across containers with very different benign alert levels.
    """
    from ..core.observation import EmpiricalObservationModel

    cache_key = (bucket_size, samples_per_container, seed)
    cached = _PER_CONTAINER_MODEL_CACHE.get(cache_key)
    if cached is not None:
        return cached
    rng = np.random.default_rng(seed)
    models: dict[int, ObservationModel] = {}
    # Use a common support so that controllers can swap models after recovery.
    max_alert = max(c.alert_rate_healthy * 3.0 + c.alert_rate_intrusion * 4.0 for c in CONTAINER_CATALOG)
    num_observations = int(max_alert // bucket_size) + 2
    for container in CONTAINER_CATALOG:
        ids = SnortLikeIDS(container)
        healthy = [
            ids.sample_alerts(False, rng, background_clients) // bucket_size
            for _ in range(samples_per_container)
        ]
        intrusion = [
            ids.sample_alerts(True, rng, background_clients) // bucket_size
            for _ in range(samples_per_container)
        ]
        models[container.replica_id] = EmpiricalObservationModel(
            healthy, intrusion, num_observations=num_observations
        )
    _PER_CONTAINER_MODEL_CACHE[cache_key] = models
    return models


@dataclass(frozen=True)
class EmulationConfig:
    """Configuration of an evaluation run (Section VIII-A and Appendix E).

    Attributes:
        initial_nodes: ``N_1``, the initial replication factor.
        max_nodes: ``smax``; defaults to the 13 physical servers of Table 3.
        node_params: The per-node model parameters (``p_A``, ``p_C1``, ...).
        delta_r: The BTR constraint used by TOLERANCE and the period used by
            the PERIODIC baselines.
        k: Maximum parallel recoveries.
        f: Tolerance threshold; ``None`` uses the paper's
            ``f = min[(N_1 - 1) / 2, 2]`` rule from Appendix E.
        horizon: Number of 60-second time-steps per episode (the paper's
            Table 7 runs use 10^3).
        attacker: Attacker configuration.
        background_arrival_rate / background_mean_service: Background client
            population parameters (lambda = 20, mu = 4).
    """

    initial_nodes: int = 3
    max_nodes: int = len(PHYSICAL_NODES)
    node_params: NodeParameters = field(default_factory=lambda: NodeParameters())
    delta_r: float = math.inf
    k: int = 1
    f: int | None = None
    horizon: int = 1000
    attacker: AttackerConfig = field(default_factory=AttackerConfig)
    background_arrival_rate: float = 20.0
    background_mean_service: float = 4.0

    def tolerance_threshold(self) -> int:
        if self.f is not None:
            return self.f
        return max(min((self.initial_nodes - 1) // 2, 2), 1)

    @classmethod
    def from_scenario(cls, scenario, **overrides) -> "EmulationConfig":
        """Route a simulation :class:`~repro.sim.FleetScenario` to the testbed.

        The emulation backend models one container image per run: a single
        :class:`~repro.core.node_model.NodeParameters` drives every
        emulated node.  A homogeneous scenario maps cleanly (``N`` nodes,
        horizon, the shared parameters and ``Delta_R``); a **mixed** fleet
        does not — rather than silently running every node with slot 0's
        parameters, this raises :class:`NotImplementedError` naming the
        classes so the caller routes mixed fleets to the batched engine
        (:class:`~repro.control.TwoLevelController`), which is per-slot
        heterogeneous throughout.  See the "known limitations" section of
        the docs' architecture page.

        Args:
            scenario: The fleet scenario to translate.
            **overrides: Extra :class:`EmulationConfig` fields (``k``,
                ``attacker``, ...) overriding the derived ones.
        """
        distinct = set(scenario.node_params)
        if len(distinct) > 1:
            if scenario.node_labels is not None:
                classes = sorted(set(scenario.node_labels))
            else:
                classes = [f"slot {j}" for j in range(scenario.num_nodes)]
            raise NotImplementedError(
                "the emulation backend supports a single NodeParameters per "
                f"run, but the scenario mixes {len(distinct)} parameter sets "
                f"across classes {classes}; run mixed fleets on the batched "
                "engine (repro.control.TwoLevelController) instead"
            )
        params = scenario.node_params[0]
        fields = {
            "initial_nodes": scenario.num_nodes,
            "horizon": scenario.horizon,
            "delta_r": params.delta_r if scenario.enforce_btr else math.inf,
            "node_params": params,
        }
        if scenario.f is not None:
            fields["f"] = scenario.f
        if scenario.adversary is not None and "attacker" not in overrides:
            fields["attacker"] = AttackerConfig(adversary=scenario.adversary)
        fields.update(overrides)
        return cls(**fields)


@dataclass
class EvaluationPolicy:
    """The pair of control strategies evaluated in one run.

    Attributes:
        name: Human-readable name (``tolerance``, ``no-recovery``, ...).
        recovery_strategy_factory: Builds the per-node recovery strategy.
        replication_strategy: The system controller's strategy, or ``None``
            to never add nodes.
        adaptive_alert_replication: When set, adds a node whenever the
            maximum observed (bucketed) alert count exceeds twice its mean —
            the PERIODIC-ADAPTIVE heuristic of Section VIII-B.
        enforce_invariant: Whether the system controller force-adds nodes to
            keep ``N_t >= 2f + 1 + k``; only TOLERANCE uses feedback to do so.
        enforce_btr: Whether node controllers force a recovery every
            ``Delta_R`` steps (Eq. 6b).  Only TOLERANCE is subject to the
            BTR constraint; the baselines implement their own schedules.
        respect_recovery_limit: Whether at most ``k`` recoveries are executed
            per time-step (Prop. 1c).  TOLERANCE enforces this in its
            implementation; the baselines of prior systems recover nodes on
            their own schedule without this constraint.
    """

    name: str
    recovery_strategy_factory: Callable[[str], RecoveryStrategy]
    replication_strategy: ReplicationStrategy | None = None
    adaptive_alert_replication: AdaptiveHeuristicReplicationStrategy | None = None
    enforce_invariant: bool = False
    enforce_btr: bool = False
    respect_recovery_limit: bool = False


def tolerance_policy(
    alpha: float = 0.75,
    replication_strategy: ReplicationStrategy | None = None,
) -> EvaluationPolicy:
    """The TOLERANCE policy: threshold recovery + feedback replication."""
    return EvaluationPolicy(
        name="tolerance",
        recovery_strategy_factory=lambda node_id: ThresholdStrategy(alpha),
        replication_strategy=replication_strategy,
        enforce_invariant=True,
        enforce_btr=True,
        respect_recovery_limit=True,
    )


def no_recovery_policy() -> EvaluationPolicy:
    """The NO-RECOVERY baseline (RAMPART / SECURE-RING style)."""
    return EvaluationPolicy(
        name="no-recovery",
        recovery_strategy_factory=lambda node_id: NoRecoveryStrategy(),
    )


def periodic_policy(period: float) -> EvaluationPolicy:
    """The PERIODIC baseline: recover every ``period`` steps, never add nodes."""
    return EvaluationPolicy(
        name="periodic",
        recovery_strategy_factory=lambda node_id: PeriodicStrategy(period),
    )


def periodic_adaptive_policy(period: float, alert_mean: float = 0.0) -> EvaluationPolicy:
    """The PERIODIC-ADAPTIVE baseline: periodic recovery + alert-triggered adds.

    With ``alert_mean = 0`` the trigger threshold ``2 E[O_t]`` is calibrated
    automatically by the environment from the fitted alert model.
    """
    return EvaluationPolicy(
        name="periodic-adaptive",
        recovery_strategy_factory=lambda node_id: PeriodicStrategy(period),
        adaptive_alert_replication=AdaptiveHeuristicReplicationStrategy(alert_mean=alert_mean),
    )


@dataclass
class StepRecord:
    """Per-step trace record (used for analysis and the trace dataset)."""

    time_step: int
    num_nodes: int
    healthy: int
    compromised: int
    crashed_this_step: int
    recoveries: int
    added_node: bool
    evicted: int
    beliefs: dict[str, float]
    observations: dict[str, int]
    system_state: int


@dataclass
class ObservationPhase:
    """Intermediate state between the observe and apply halves of a step.

    Produced by :meth:`EmulationEnvironment.observe_phase` and consumed by
    :meth:`EmulationEnvironment.apply_phase`; external controllers (the
    vectorized adapter in :mod:`repro.emulation.vector_env`) read the
    beliefs here and supply the recovery actions for the apply half.
    """

    crashed_this_step: int
    beliefs: dict[str, float]
    observations: dict[str, int]


class EmulationEnvironment:
    """Discrete-time emulation of the TOLERANCE testbed.

    An episode can be re-run from scratch with :meth:`reset`, and a step can
    be driven by an external controller by passing explicit per-node actions
    to :meth:`step` (or by calling the :meth:`observe_phase` /
    :meth:`apply_phase` halves directly, which is how the vectorized
    adapter interleaves an external policy with the testbed dynamics).
    """

    def __init__(
        self,
        config: EmulationConfig,
        policy: EvaluationPolicy,
        observation_model: ObservationModel | None = None,
        seed: int | None = None,
    ) -> None:
        self.config = config
        self.policy = policy
        self.observation_model = (
            observation_model
            if observation_model is not None
            else default_emulation_observation_model()
        )
        # Per-container detection models (Fig. 11) are only used when the
        # caller did not force a specific observation model.
        self.per_container_models: dict[int, ObservationModel] = (
            per_container_observation_models() if observation_model is None else {}
        )
        self.f = config.tolerance_threshold()

        # Calibrate the PERIODIC-ADAPTIVE trigger to the fitted alert model
        # when no mean was supplied (the paper's rule is o_t >= 2 E[O_t]).
        if (
            policy.adaptive_alert_replication is not None
            and policy.adaptive_alert_replication.alert_mean <= 0.0
        ):
            healthy_pmf = self.observation_model.pmf(NodeState.HEALTHY)
            expected_alerts = float(
                np.dot(self.observation_model.observations, healthy_pmf)
            )
            policy.adaptive_alert_replication = AdaptiveHeuristicReplicationStrategy(
                alert_mean=max(expected_alerts, 1.0),
                factor=policy.adaptive_alert_replication.factor,
            )

        self._node_params = config.node_params.with_updates(
            delta_r=config.delta_r, k=config.k
        )
        self.reset(seed)

    def reset(self, seed: int | None = None) -> "EmulationEnvironment":
        """Reset to a fresh episode (nodes, attacker, metrics, trace).

        Args:
            seed: New episode seed; ``None`` reuses the seed of the previous
                episode, so ``env.reset()`` replays the construction-time
                initialization exactly (same node containers, same attacker
                stream) and a full re-run reproduces the same episode.  The
                replay guarantee requires a concrete seed somewhere in the
                chain: an environment constructed with ``seed=None`` draws
                fresh OS entropy on every reset.

        Returns:
            The environment itself, for chaining.
        """
        config = self.config
        policy = self.policy
        if seed is not None or not hasattr(self, "_seed"):
            self._seed = seed
        seed = self._seed
        self._rng = np.random.default_rng(seed)
        self._node_counter = 0
        self.nodes: dict[str, EmulatedNode] = {}
        self.attacker = Attacker(config.attacker, seed=None if seed is None else seed + 1)
        self.background = BackgroundClientPopulation(
            arrival_rate=config.background_arrival_rate,
            mean_service_time=config.background_mean_service,
            seed=None if seed is None else seed + 2,
        )
        self.system_controller = SystemController(
            f=self.f,
            k=config.k,
            strategy=policy.replication_strategy,
            smax=config.max_nodes,
            enforce_invariant=policy.enforce_invariant,
            seed=None if seed is None else seed + 3,
        )
        self.metrics = MetricsCollector(f=self.f, max_time_to_recovery=float(config.horizon))
        self.auditor = CorrectnessAuditor(f=self.f, k=config.k)
        self.trace: list[StepRecord] = []
        self.time_step = 0
        for _ in range(config.initial_nodes):
            self._add_node()
        return self

    # -- node management ----------------------------------------------------------------
    def _add_node(self) -> str | None:
        if len(self.nodes) >= self.config.max_nodes:
            return None
        node_id = f"node-{self._node_counter}"
        self._node_counter += 1
        node = EmulatedNode(
            node_id=node_id,
            params=self._node_params,
            observation_model=self.observation_model,
            strategy=self.policy.recovery_strategy_factory(node_id),
            enforce_btr=self.policy.enforce_btr,
            observation_models_by_container=self.per_container_models,
            rng=np.random.default_rng(self._rng.integers(2 ** 31)),
        )
        self.nodes[node_id] = node
        return node_id

    def _evict_node(self, node_id: str) -> None:
        self.nodes.pop(node_id, None)
        self.attacker.forget(node_id)

    # -- one evaluation step ----------------------------------------------------------------
    def step(self, actions: Mapping[str, NodeAction] | None = None) -> StepRecord:
        """Advance the emulation by one 60-second time-step.

        Args:
            actions: Optional external per-node recovery decisions keyed by
                node id (missing live nodes default to ``WAIT``; the BTR
                deadline still forces a recovery).  ``None`` — the default,
                and the paper's evaluation protocol — lets each node's own
                controller strategy decide.
        """
        return self.apply_phase(self.observe_phase(), actions)

    def observe_phase(self) -> ObservationPhase:
        """First half of a step: environment dynamics and local observation.

        Advances the background workload, the attacker kill chains and the
        crash transitions, then lets every live node controller consume its
        IDS observation and update its belief.  No decisions are made yet:
        the returned phase carries the freshly updated beliefs on which the
        recovery decisions of :meth:`apply_phase` — internal or external —
        are based.
        """
        self.time_step += 1
        background_clients = self.background.step()

        # 1. Attacker progress and compromise events.  The adversary
        #    process (if any) first sets this step's intrusion intensity
        #    and alert suppression.
        self.attacker.begin_step()
        candidates = [
            (node_id, node.container)
            for node_id, node in self.nodes.items()
            if node.state is NodeState.HEALTHY
            and self.attacker.state_of(node_id).phase is AttackPhase.IDLE
        ]
        self.attacker.select_targets(candidates)
        for node_id, node in self.nodes.items():
            state = self.attacker.step_node(node_id, node.container, node.state is NodeState.HEALTHY)
            if state.phase is AttackPhase.COMPROMISED and node.state is NodeState.HEALTHY:
                node.mark_compromised()
                self.metrics.record_compromise(node_id)

        # 2. Crash transitions.
        crashed_this_step = 0
        for node in self.nodes.values():
            if node.maybe_crash():
                crashed_this_step += 1

        # 3. Local observation: IDS alerts and belief updates (crashed nodes
        #    stop reporting).
        beliefs: dict[str, float] = {}
        observations: dict[str, int] = {}
        for node_id, node in self.nodes.items():
            if not node.is_alive:
                continue
            intrusion_activity = self.attacker.observed_intrusion_activity(node_id)
            belief, observation = node.observe(intrusion_activity, background_clients)
            beliefs[node_id] = belief
            observations[node_id] = observation
        return ObservationPhase(
            crashed_this_step=crashed_this_step,
            beliefs=beliefs,
            observations=observations,
        )

    def apply_phase(
        self,
        phase: ObservationPhase,
        actions: Mapping[str, NodeAction] | None = None,
    ) -> StepRecord:
        """Second half of a step: decisions, recoveries and global control.

        With ``actions=None`` every reporting node's own controller strategy
        decides (the classic :meth:`step` behaviour); otherwise the supplied
        actions override the controllers, with the BTR constraint still
        enforced per controller (Eq. 6b).
        """
        beliefs = phase.beliefs
        observations = phase.observations
        crashed_this_step = phase.crashed_this_step

        # 3b. Local decisions on the just-updated beliefs.
        recovery_requests: list[str] = []
        for node_id in beliefs:
            node = self.nodes[node_id]
            controller = node.controller
            if actions is None:
                action = controller.decide()
            else:
                action = actions.get(node_id, NodeAction.WAIT)
                if controller.btr_deadline_reached():
                    action = NodeAction.RECOVER
                controller.last_action = action
            if action is NodeAction.RECOVER:
                recovery_requests.append(node_id)
            else:
                controller.time_since_recovery += 1
                controller.last_action = NodeAction.WAIT

        # 4. Grant recoveries; TOLERANCE respects the k-parallel-recovery
        #    limit of Prop. 1c (most suspicious nodes first), the baselines
        #    recover on their own schedule.
        recovery_requests.sort(key=lambda nid: beliefs.get(nid, 0.0), reverse=True)
        if self.policy.respect_recovery_limit:
            granted = recovery_requests[: self.config.k]
        else:
            granted = recovery_requests
        for node_id in recovery_requests[len(granted):]:
            # Deferred recovery: the controller behaves as if it had waited.
            self.nodes[node_id].controller.last_action = NodeAction.WAIT
        recoveries = 0
        for node_id in granted:
            node = self.nodes[node_id]
            was_compromised = node.is_compromised
            node.recover()
            self.attacker.forget(node_id)
            recoveries += 1
            if was_compromised:
                self.metrics.record_recovery_start(node_id)
            beliefs[node_id] = node.controller.belief

        # 5. Global control: evictions and node additions.
        registered = set(self.nodes)
        decision = self.system_controller.step(
            reported_beliefs=beliefs,
            registered_nodes=registered,
            current_node_count=len(self.nodes),
        )
        for node_id in decision.evicted_nodes:
            self.metrics.record_recovery_start(node_id)  # censored: node replaced
            self._evict_node(node_id)
        added = False
        if decision.add_node:
            added = self._add_node() is not None
        if (
            not added
            and self.policy.adaptive_alert_replication is not None
            and observations
            and self.policy.adaptive_alert_replication.triggered(max(observations.values()))
        ):
            added = self._add_node() is not None
            if added:
                self.system_controller.total_additions += 1

        # 6. Metrics and invariant auditing.
        healthy = sum(1 for n in self.nodes.values() if n.state is NodeState.HEALTHY)
        compromised = sum(1 for n in self.nodes.values() if n.state is NodeState.COMPROMISED)
        crashed = sum(1 for n in self.nodes.values() if n.state is NodeState.CRASHED)
        self.metrics.record_step(
            healthy=healthy,
            compromised=compromised,
            crashed=crashed,
            recoveries=recoveries,
        )
        self.auditor.audit_step(
            time_step=self.time_step,
            num_nodes=len(self.nodes),
            num_compromised=compromised,
            num_crashed=crashed,
            num_recovering=recoveries,
        )

        record = StepRecord(
            time_step=self.time_step,
            num_nodes=len(self.nodes),
            healthy=healthy,
            compromised=compromised,
            crashed_this_step=crashed_this_step,
            recoveries=recoveries,
            added_node=added,
            evicted=len(decision.evicted_nodes),
            beliefs=dict(beliefs),
            observations=dict(observations),
            system_state=decision.state,
        )
        self.trace.append(record)
        return record

    # -- full episodes ---------------------------------------------------------------------
    def run(self, horizon: int | None = None) -> EpisodeMetrics:
        """Run a full evaluation episode and return its metrics."""
        steps = horizon if horizon is not None else self.config.horizon
        for _ in range(steps):
            self.step()
        return self.metrics.finalize()

    def system_state_transitions(self) -> list[tuple[int, int, int]]:
        """Observed ``(s_t, a_t, s_{t+1})`` transitions for fitting ``f_S``."""
        transitions: list[tuple[int, int, int]] = []
        for previous, current in zip(self.trace, self.trace[1:]):
            transitions.append(
                (previous.system_state, int(previous.added_node), current.system_state)
            )
        return transitions
