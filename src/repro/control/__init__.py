"""Closed-loop two-level control plane (``repro.control``).

The paper's headline contribution is *two-level* feedback control: each
node runs a POMDP recovery controller, and a global controller steers the
replication factor against a CMDP (Problems 1 and 2, Section V).  This
package closes that loop on the batched simulation path:

* :class:`VectorSystemController` — the vectorized refactor of the scalar
  :class:`~repro.core.system_controller.SystemController` (kept as the
  bit-parity reference): eviction, the Eq. 8 CMDP state, replication
  decisions and the Prop. 1 emergency-add invariant for ``B`` fleets per
  array operation, decision-for-decision identical to ``B`` scalar
  controllers under shared seeds;
* :class:`TwoLevelController` — ``B`` closed-loop fleet episodes at once:
  node-level beliefs/recoveries via the bit-exact batch engine, the
  ``k``-parallel-recovery limit, and system-level control over a fixed
  ``smax`` slot bank (standby slots stay fresh and activate on addition);
* :mod:`~repro.control.sysid` — the system-identification loop: fit the
  empirical kernel ``\\hat{f}_S`` from
  :meth:`~repro.envs.FleetVectorEnv.system_state_transitions` (or a
  closed-loop trace), solve Algorithm 2 / Theorem 2 on the estimate, and
  re-evaluate the strategies in closed loop — replacing the slow
  docker-emulation-only estimation path;
* :mod:`~repro.control.replication_ppo` — a PPO replication policy trained
  directly on the fleet environment, entering Table 7 as a learned
  contender;
* :mod:`~repro.control.sweep` — the consolidated fleet-sweep API the
  Table 7 / Figure 12 benchmarks run on, including the heterogeneous
  mixed-fleet sweep (:func:`mixed_closed_loop_sweep`) and the
  attacker-intensity sweep (:func:`attacker_intensity_sweep`); every
  sweep takes ``n_jobs=`` to shard its episodes across worker processes
  (:mod:`~repro.control.parallel`) with bit-identical results;
* :mod:`~repro.control.policy_cache` — the fitted-model-keyed cache of
  Algorithm 2 / Lagrangian solves (:class:`PolicySolveCache`): refits
  that reproduce an already-solved kernel skip the solver entirely.

Fleets may be heterogeneous: :meth:`~repro.sim.FleetScenario.mixed`
expands per-class container templates (Table 6 style) into per-slot
parameters, the whole loop uses each slot's own ``p_A``/``Delta_R``/
``eta``/observation model, and labelled scenarios get per-class metrics
(:meth:`TwoLevelResult.class_summary`) plus per-class empirical ``f_S``
fits (:func:`fit_system_models_per_class`).

On such fleets the system level is **class-aware**: the replication action
space is ``{wait, add(class c)}``.  :func:`fit_class_aware_system_model`
assembles the class-indexed CMDP from the per-class fits, the class-aware
Algorithm 2 (:func:`~repro.solvers.cmdp.solve_class_aware_replication_lp`)
chooses *which* class to add, :func:`optimize_class_deltas` gives every
class its own Algorithm-1-optimal BTR deadline
(``mixed_closed_loop_sweep(optimize_deltas=True)`` routes them through the
sweeps), and ``train_ppo_replication(class_aware=True)`` learns the
class-indexed policy directly on the fleet environment.

Layer contract
--------------

* **What is vectorized:** both feedback levels of ``B`` fleet episodes —
  belief updates, recovery grants, evictions, CMDP states, replication
  decisions (including the class choice) — advance per array operation.
* **Scalar reference:** the scalar
  :class:`~repro.core.system_controller.SystemController` and
  :meth:`TwoLevelController.run_scalar_reference`; decision traces are
  asserted bit-identical under shared seeds
  (``tests/test_control_plane.py``, ``tests/test_class_aware_cmdp.py``).
* **Seeding convention (PR 1):** one ``SeedSequence(seed)`` tree feeds the
  engine's per-(episode, node) children first and the per-episode system
  controller streams after them, so a single integer seed reproduces the
  whole closed loop on either path.

Quickstart::

    from repro.core import BetaBinomialObservationModel, NodeParameters, ThresholdStrategy
    from repro.control import TwoLevelController
    from repro.sim import FleetScenario

    scenario = FleetScenario.homogeneous(
        NodeParameters(p_a=0.1), BetaBinomialObservationModel(),
        num_nodes=9, horizon=200, f=1,
    )
    controller = TwoLevelController(
        scenario, num_envs=100, recovery_policy=ThresholdStrategy(0.75),
        initial_nodes=4,
    )
    result = controller.run(seed=0)
    print(result.summary())
"""

from __future__ import annotations

from .class_aware import (
    ClassDeltaResult,
    apply_class_deltas,
    optimize_class_deltas,
)
from .consensus_loop import (
    ConsensusBackedFleet,
    ConsensusLoopResult,
    ConsensusSafetyError,
)
from .parallel import (
    SharedResultStore,
    parallel_closed_loop_table,
    parallel_engine_sweep_table,
    shard_episodes,
    validate_n_jobs,
)
from .policy_cache import (
    DEFAULT_POLICY_CACHE,
    PolicySolveCache,
    fitted_model_key,
)
from .replication_ppo import (
    PPOReplicationResult,
    PPOReplicationStrategy,
    default_replication_config,
    train_ppo_replication,
)
from .sweep import (
    ClosedLoopCell,
    attacker_intensity_sweep,
    closed_loop_sweep,
    default_tolerance_threshold,
    emulation_cell,
    engine_fleet_sweep,
    mixed_closed_loop_sweep,
)
from .sysid import (
    SystemIdentificationResult,
    evaluate_replication_closed_loop,
    fit_class_aware_system_model,
    fit_system_model_from_env,
    fit_system_model_from_pairs,
    fit_system_model_from_trace,
    fit_system_models_per_class,
    fresh_node_survival_from_model,
    identify_replication_strategies,
)
from .two_level import (
    SystemTrace,
    TwoLevelController,
    TwoLevelLoop,
    TwoLevelResult,
    TwoLevelStepEvent,
)
from .vector_system import (
    VectorSystemController,
    VectorSystemDecision,
    expected_healthy_nodes_batch,
    strategy_consumes_rng,
)

__all__ = [
    "ClassDeltaResult",
    "ClosedLoopCell",
    "ConsensusBackedFleet",
    "ConsensusLoopResult",
    "ConsensusSafetyError",
    "DEFAULT_POLICY_CACHE",
    "PPOReplicationResult",
    "PPOReplicationStrategy",
    "PolicySolveCache",
    "SharedResultStore",
    "SystemIdentificationResult",
    "SystemTrace",
    "TwoLevelController",
    "TwoLevelLoop",
    "TwoLevelResult",
    "TwoLevelStepEvent",
    "VectorSystemController",
    "VectorSystemDecision",
    "attacker_intensity_sweep",
    "apply_class_deltas",
    "closed_loop_sweep",
    "default_replication_config",
    "default_tolerance_threshold",
    "emulation_cell",
    "engine_fleet_sweep",
    "evaluate_replication_closed_loop",
    "expected_healthy_nodes_batch",
    "fit_system_model_from_env",
    "fit_system_model_from_pairs",
    "fit_system_model_from_trace",
    "fit_system_models_per_class",
    "fit_class_aware_system_model",
    "fitted_model_key",
    "fresh_node_survival_from_model",
    "identify_replication_strategies",
    "mixed_closed_loop_sweep",
    "optimize_class_deltas",
    "parallel_closed_loop_table",
    "parallel_engine_sweep_table",
    "shard_episodes",
    "strategy_consumes_rng",
    "train_ppo_replication",
    "validate_n_jobs",
]
