"""Vectorized system-level controller: Section V-B over ``B`` fleets at once.

:class:`VectorSystemController` is the batched refactor of the scalar
:class:`~repro.core.system_controller.SystemController` (which is kept as
the bit-parity reference): one :meth:`step` advances the replication
feedback loop of ``B`` independent fleet episodes as array operations —
eviction of non-reporting nodes, the CMDP state ``s_t`` of Eq. 8, a
replication-strategy decision ``pi(a | s_t)`` and the Proposition 1
emergency-add invariant ``N_t >= 2f + 1 + k``.

Decisions are **bit-identical** to ``B`` scalar controllers under shared
seeds.  Two properties make that exact rather than statistical:

1. *Sequential state accumulation.*  The CMDP state sums ``1 - b_i`` over
   node slots in slot order with the same float additions the scalar
   controller's Python ``sum`` performs (non-reporting slots contribute an
   exact ``+0.0``), so ``floor`` never diverges at integer boundaries.
2. *Per-episode controller streams.*  Episode ``b`` consumes the uniforms
   of ``numpy.random.default_rng(children[b])`` — the same generator a
   scalar controller seeded with ``children[b]`` draws from — pre-generated
   into a ``(B, horizon)`` buffer and consumed one column per step, exactly
   when a stochastic strategy (``MixedReplicationStrategy``,
   ``TabularReplicationStrategy``) would call ``rng.random()``.

Class-aware strategies (``{wait, add(c_1), ..., add(c_C)}`` on
heterogeneous fleets) keep both properties: the decision samples one
uniform per step through the same inverse-CDF rule the scalar strategy's
``action`` applies (:func:`~repro.core.strategies.sample_action_index`)
over identical cumulative probability rows, and the chosen class index
rides on the decision record (:attr:`VectorSystemDecision.add_class`).

``tests/test_control_plane.py`` asserts the resulting decision parity per
strategy class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.strategies import (
    AdaptiveHeuristicReplicationStrategy,
    NeverAddStrategy,
    ReplicationStrategy,
    ReplicationThresholdStrategy,
    strategy_is_class_aware,
)

__all__ = [
    "VectorSystemDecision",
    "VectorSystemController",
    "strategy_consumes_rng",
    "expected_healthy_nodes_batch",
]


def strategy_consumes_rng(strategy: ReplicationStrategy) -> bool:
    """Whether ``strategy.action`` draws one uniform per step.

    Mirrors the scalar convention: the deterministic strategies
    (:class:`~repro.core.strategies.ReplicationThresholdStrategy`,
    :class:`~repro.core.strategies.NeverAddStrategy`,
    :class:`~repro.core.strategies.AdaptiveHeuristicReplicationStrategy`)
    ignore their generator, while the randomized ones call ``rng.random()``
    exactly once per :meth:`action`.  Custom strategies may override the
    classification with a boolean ``consumes_rng`` attribute.
    """
    flag = getattr(strategy, "consumes_rng", None)
    if flag is not None:
        return bool(flag)
    return not isinstance(
        strategy,
        (
            ReplicationThresholdStrategy,
            NeverAddStrategy,
            AdaptiveHeuristicReplicationStrategy,
        ),
    )


def expected_healthy_nodes_batch(
    beliefs: np.ndarray, reporting: np.ndarray, smax: int
) -> np.ndarray:
    """Per-episode CMDP state ``s_t = floor(sum_i (1 - b_i))`` (Eq. 8).

    Accumulates slot by slot (vectorized over episodes) so the float
    addition order matches the scalar controller's Python ``sum`` over its
    belief dict — the bit-parity requirement; a masked slot contributes an
    exact ``+0.0``.
    """
    beliefs = np.asarray(beliefs, dtype=float)
    reporting = np.asarray(reporting, dtype=bool)
    total = np.zeros(beliefs.shape[0])
    for j in range(beliefs.shape[1]):
        total += np.where(reporting[:, j], 1.0 - beliefs[:, j], 0.0)
    return np.clip(np.floor(total), 0, smax).astype(np.int64)


@dataclass(frozen=True)
class VectorSystemDecision:
    """Outcome of one batched system-controller step (all arrays over ``B``).

    Attributes:
        state: CMDP states ``s_t``, shape ``(B,)``.
        add_node: Whether a node addition was requested, shape ``(B,)``.
        emergency_add: Whether the addition was forced by the Prop. 1
            invariant rather than the strategy, shape ``(B,)``.
        evicted: Per-slot eviction mask (registered but not reporting),
            shape ``(B, S)``.
        add_probability: The strategy's ``pi(a=1 | s_t)`` used for the
            decision, shape ``(B,)`` (1/0 for forced/capped overrides are
            *not* folded in — this is the policy probability, which the PPO
            replication trainer consumes).  For class-aware strategies this
            is the total add mass ``1 - pi(wait | s_t)``.
        capped: Whether a requested addition was dropped because the
            physical cluster is exhausted (``N_t >= smax``), shape ``(B,)``.
        node_count_after_eviction: ``N_t`` after removing evicted nodes,
            before any addition, shape ``(B,)``.
        add_class: Chosen container-class index per episode (into the
            strategy's ``class_names``), shape ``(B,)``; ``-1`` where no
            class was chosen (wait, emergency add, capped).  ``None`` for
            classless strategies.
        action_probabilities: The full per-action distribution
            ``pi(. | s_t)`` the decision was sampled from, shape
            ``(B, 1 + C)``; ``None`` for classless strategies.  The
            class-aware PPO replication trainer consumes it.
    """

    state: np.ndarray
    add_node: np.ndarray
    emergency_add: np.ndarray
    evicted: np.ndarray
    add_probability: np.ndarray
    capped: np.ndarray
    node_count_after_eviction: np.ndarray
    add_class: np.ndarray | None = None
    action_probabilities: np.ndarray | None = None


class VectorSystemController:
    """Batched feedback controller for the replication factors of ``B`` fleets.

    Args:
        f: Tolerance threshold of the consensus protocol.
        k: Maximum number of parallel recoveries (Prop. 1).
        strategy: Replication strategy ``pi``; defaults to never adding.
            Strategies are applied through a precomputed probability table
            ``pi(a=1 | s)`` over ``s in {0, ..., smax}`` unless they expose
            ``add_probability_batch(states, node_counts)`` (the learned PPO
            replication policy does, because its probability conditions on
            the current node count as well).
        smax: Maximum number of nodes (and largest CMDP state).
        enforce_invariant: Whether to force additions when ``N_t`` would
            drop below ``2f + 1 + k``.
        num_episodes: Batch size ``B``.
        horizon: Maximum number of :meth:`step` calls (bounds the
            pre-generated uniform buffer of stochastic strategies).
        seed: Seed of the per-episode controller streams; episode ``b``
            draws from child ``b`` of ``SeedSequence(seed)``.
        seed_sequences: Explicit per-episode seed sequences overriding
            ``seed`` (one per episode) — how the two-level controller
            shares one seed tree between the engine and the system level.
    """

    def __init__(
        self,
        f: int,
        k: int = 1,
        strategy: ReplicationStrategy | None = None,
        smax: int = 13,
        enforce_invariant: bool = True,
        num_episodes: int = 1,
        horizon: int = 1000,
        seed: int | None = None,
        seed_sequences: Sequence[np.random.SeedSequence] | None = None,
    ) -> None:
        if f < 0:
            raise ValueError("f must be non-negative")
        if k < 1:
            raise ValueError("k must be >= 1")
        if smax < 1:
            raise ValueError("smax must be >= 1")
        if num_episodes < 1:
            raise ValueError("num_episodes must be >= 1")
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        self.f = f
        self.k = k
        self.smax = smax
        self.strategy: ReplicationStrategy = (
            strategy if strategy is not None else NeverAddStrategy()
        )
        self.enforce_invariant = enforce_invariant
        self.num_episodes = num_episodes
        self.horizon = horizon
        self._stochastic = strategy_consumes_rng(self.strategy)
        self._class_aware = strategy_is_class_aware(self.strategy)
        self._batch_probability = None
        self._class_batch_probability = None
        self._table = None
        self._class_cumulative = None
        if self._class_aware:
            # Class-aware strategies are applied through the cumulative
            # per-action table (or the count-conditioned batched variant);
            # the scalar controller samples with np.cumsum over the same
            # rows, so the inverse-CDF comparison is bit-identical.
            if not self._stochastic:
                raise ValueError(
                    "class-aware replication strategies must consume rng "
                    "(consumes_rng=True): the batched controller samples "
                    "them through the shared per-episode uniform buffer, "
                    "matching the scalar controller's rng.random() draws"
                )
            self.class_names: tuple[str, ...] | None = tuple(self.strategy.class_names)
            self._class_batch_probability = getattr(
                self.strategy, "action_probabilities_batch", None
            )
            if self._class_batch_probability is None:
                table = np.stack(
                    [
                        np.asarray(self.strategy.action_probabilities(s), dtype=float)
                        for s in range(smax + 1)
                    ]
                )
                self._class_cumulative = np.cumsum(table, axis=1)
                self._class_table = table
        else:
            self.class_names = None
            self._batch_probability = getattr(
                self.strategy, "add_probability_batch", None
            )
            if self._batch_probability is None:
                self._table = np.array(
                    [self.strategy.add_probability(s) for s in range(smax + 1)]
                )
        self._uniforms: np.ndarray | None = None
        if self._stochastic:
            if seed_sequences is not None:
                children = list(seed_sequences)
                if len(children) != num_episodes:
                    raise ValueError(
                        f"need one seed sequence per episode ({num_episodes}), "
                        f"got {len(children)}"
                    )
            else:
                children = np.random.SeedSequence(seed).spawn(num_episodes)
            buffer = np.empty((num_episodes, horizon))
            for b, child in enumerate(children):
                buffer[b] = np.random.default_rng(child).random(horizon)
            self._uniforms = buffer
        self._step_index = 0
        self.total_additions = np.zeros(num_episodes, dtype=np.int64)
        self.total_evictions = np.zeros(num_episodes, dtype=np.int64)
        self.emergency_additions = np.zeros(num_episodes, dtype=np.int64)

    # -- helpers -----------------------------------------------------------------
    @property
    def minimum_nodes(self) -> int:
        """Smallest admissible replication factor ``2f + 1 + k`` (Prop. 1d)."""
        return 2 * self.f + 1 + self.k

    # -- control loop ------------------------------------------------------------
    def step(
        self,
        beliefs: np.ndarray,
        reporting: np.ndarray,
        registered: np.ndarray | None = None,
        node_counts: np.ndarray | None = None,
    ) -> VectorSystemDecision:
        """Run one step of the global control loop for every episode.

        Args:
            beliefs: Reported beliefs per slot, shape ``(B, S)``; only
                entries where ``reporting & registered`` holds are read.
            reporting: Slots that reported a belief this step, ``(B, S)``.
            registered: Slots the controller expects reports from; members
                that fail to report are evicted.  Defaults to exactly the
                reporting slots (no eviction), as in the scalar controller.
            node_counts: Current replication factors ``N_t``, shape
                ``(B,)``; defaults to the registered counts.

        Returns:
            The batched decision record.
        """
        beliefs = np.asarray(beliefs, dtype=float)
        reporting = np.asarray(reporting, dtype=bool)
        if beliefs.shape[0] != self.num_episodes:
            raise ValueError(
                f"expected {self.num_episodes} episodes, got {beliefs.shape[0]}"
            )
        if registered is None:
            registered = reporting
        registered = np.asarray(registered, dtype=bool)
        evicted = registered & ~reporting
        self.total_evictions += evicted.sum(axis=1)

        live = reporting & registered
        state = expected_healthy_nodes_batch(beliefs, live, self.smax)

        if node_counts is None:
            node_counts = registered.sum(axis=1)
        node_counts = np.asarray(node_counts, dtype=np.int64)
        count_after_eviction = node_counts - evicted.sum(axis=1)

        add_class = None
        action_probabilities = None
        if self._class_aware:
            if self._class_batch_probability is not None:
                action_probabilities = np.asarray(
                    self._class_batch_probability(state, count_after_eviction),
                    dtype=float,
                )
                cumulative = np.cumsum(action_probabilities, axis=1)
            else:
                action_probabilities = self._class_table[state]
                cumulative = self._class_cumulative[state]
            if self._step_index >= self.horizon:
                raise RuntimeError(
                    "controller horizon exhausted: construct the controller "
                    "with a larger horizon"
                )
            # One uniform per episode per step, consumed by the same
            # inverse-CDF rule the scalar strategy's `action` applies
            # (strategies.sample_action_index) — identical comparisons over
            # identical cumulative rows.
            uniforms = self._uniforms[:, self._step_index]
            num_actions = cumulative.shape[1]
            action = np.minimum(
                (cumulative <= uniforms[:, None]).sum(axis=1), num_actions - 1
            )
            add = action > 0
            add_class = np.where(add, action - 1, -1).astype(np.int64)
            probs = 1.0 - action_probabilities[:, 0]
        else:
            if self._batch_probability is not None:
                probs = np.asarray(
                    self._batch_probability(state, count_after_eviction), dtype=float
                )
            else:
                probs = self._table[state]
            if self._stochastic:
                if self._step_index >= self.horizon:
                    raise RuntimeError(
                        "controller horizon exhausted: construct the controller "
                        "with a larger horizon"
                    )
                # One uniform per episode per step, drawn exactly when the
                # scalar strategy would call rng.random().
                add = self._uniforms[:, self._step_index] < probs
            else:
                add = probs > 0.5
        self._step_index += 1

        emergency = np.zeros_like(add)
        if self.enforce_invariant:
            emergency = ~add & (count_after_eviction < self.minimum_nodes)
            add = add | emergency
            self.emergency_additions += emergency

        # The physical cluster is exhausted; the request is dropped.
        capped = add & (count_after_eviction >= self.smax)
        add = add & ~capped
        emergency = emergency & ~capped
        if add_class is not None:
            # Emergency and capped overrides carry no class choice: the
            # emergency add activates the first free slot of any class.
            add_class = np.where(add & (add_class >= 0), add_class, -1)

        self.total_additions += add
        return VectorSystemDecision(
            state=state,
            add_node=add,
            emergency_add=emergency,
            evicted=evicted,
            add_probability=probs,
            capped=capped,
            node_count_after_eviction=count_after_eviction,
            add_class=add_class,
            action_probabilities=action_probabilities,
        )
