"""Learned replication control: PPO trained on the batched fleet environment.

The paper's system level is solved with planning (Algorithm 2) against a
fitted kernel ``f_S``.  This module adds the model-free contender the
ROADMAP calls for: a PPO policy trained *directly* on closed-loop
:class:`~repro.envs.FleetVectorEnv` rollouts driven by the
:class:`~repro.control.two_level.TwoLevelController` — no ``f_S`` estimate
in the loop.  The policy reuses the compact network and clipped-surrogate
update of :mod:`repro.solvers.ppo`; its two features are the CMDP state
``s_t / smax`` and the current replication factor ``N_t / smax``, and its
Bernoulli output is the add probability ``pi(a=1 | s_t, N_t)``.

The reward is the scaled Lagrangian of Problem 2,

.. math::

    r_t = -\\big(N_t / s_{max} + \\lambda_A \\, [s_t \\text{ unavailable}]\\big),

so the trained policy trades the average node count against the
availability constraint exactly as the Theorem 2 mixture does.  The result
wraps the network as a :class:`PPOReplicationStrategy`, a drop-in
:class:`~repro.core.strategies.ReplicationStrategy` for both the scalar
:class:`~repro.core.system_controller.SystemController` and the batched
control plane — which is how it enters Table 7 as a learned contender.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.strategies import RecoveryStrategy
from ..envs.policies import VectorPolicy
from ..sim import FleetScenario
from ..sim.strategies import BatchStrategy
from ..solvers.ppo import PPOConfig, PPOPolicy, _discounted_reverse_cumsum
from .two_level import TwoLevelController, TwoLevelResult

__all__ = [
    "PPOReplicationStrategy",
    "ClassAwarePPOReplicationStrategy",
    "PPOReplicationResult",
    "default_replication_config",
    "train_ppo_replication",
]


def default_replication_config() -> PPOConfig:
    """PPO hyper-parameters tuned for the system-level CMDP.

    The replication problem has a two-dimensional discrete feature space
    and a centered, tightly bounded reward, so it tolerates — and needs —
    a far more aggressive learning rate than the node-level belief MDP to
    move its Bernoulli output within a modest update budget.
    """
    return PPOConfig(
        hidden_size=32,
        learning_rate=5e-2,
        entropy_coefficient=1e-3,
        updates=40,
        rollout_episodes=16,
    )


class PPOReplicationStrategy:
    """A trained PPO network as a replication strategy ``pi(a | s, N)``.

    Conforms to the :class:`~repro.core.strategies.ReplicationStrategy`
    protocol (``add_probability`` / ``action``) and additionally exposes
    the batched, count-conditioned ``add_probability_batch`` consumed by
    :class:`~repro.control.vector_system.VectorSystemController`.

    Args:
        policy: The trained policy/value network.
        smax: Maximum node count (feature normalization constant).
        reference_node_count: Node count assumed by the scalar
            ``add_probability(state)`` marginal (the batched path always
            conditions on the actual per-episode count).
    """

    #: One uniform is consumed per decision, like the randomized strategies.
    consumes_rng = True

    def __init__(
        self, policy: PPOPolicy, smax: int, reference_node_count: int
    ) -> None:
        if smax < 1:
            raise ValueError("smax must be >= 1")
        self.policy = policy
        self.smax = smax
        self.reference_node_count = reference_node_count

    def add_probability_batch(
        self, states: np.ndarray, node_counts: np.ndarray
    ) -> np.ndarray:
        """Add probabilities for a batch of ``(s_t, N_t)`` pairs."""
        features = np.stack(
            [
                np.asarray(states, dtype=float) / self.smax,
                np.asarray(node_counts, dtype=float) / self.smax,
            ],
            axis=1,
        )
        return self.policy.recover_probability(features)

    def add_probability(self, state: int) -> float:
        """Scalar marginal at the reference node count."""
        probs = self.add_probability_batch(
            np.array([state]), np.array([self.reference_node_count])
        )
        return float(probs[0])

    def action(self, state: int, rng: np.random.Generator) -> int:
        return 1 if rng.random() < self.add_probability(state) else 0


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class ClassAwarePPOReplicationStrategy:
    """A learned class-indexed replication policy ``pi(a | s, N)``.

    Factors the ``1 + C``-action policy into the Bernoulli *add* head of
    the shared :class:`~repro.solvers.ppo.PPOPolicy` network and a linear
    softmax *class* head over the same ``(s_t / smax, N_t / smax)``
    features:

    .. math::

        \\pi(\\text{wait} | s, N) = 1 - p(s, N), \\qquad
        \\pi(\\text{add}(c) | s, N) = p(s, N) \\, q_c(s, N).

    Because ``log pi`` decomposes into ``log p + log q_c``, the PPO update
    decouples: the add head trains with the existing binary
    clipped-surrogate update, and the class head trains with its own
    clipped surrogate on the add steps (:meth:`update_class_head` — plain
    softmax policy gradient with the PPO ratio clip).

    Conforms to the
    :class:`~repro.core.strategies.ClassAwareReplicationStrategy` protocol
    and exposes the count-conditioned ``action_probabilities_batch``
    consumed by the batched system controller.
    """

    consumes_rng = True

    def __init__(
        self,
        policy: PPOPolicy,
        smax: int,
        reference_node_count: int,
        class_names: Sequence[str],
        rng: np.random.Generator,
    ) -> None:
        if smax < 1:
            raise ValueError("smax must be >= 1")
        if len(class_names) == 0:
            raise ValueError("at least one class is required")
        self.policy = policy
        self.smax = smax
        self.reference_node_count = reference_node_count
        self.class_names = tuple(class_names)
        num_classes = len(self.class_names)
        # Near-uniform initial class preferences; the scale keeps early
        # rollouts exploratory across classes.
        self.class_weights = 0.01 * rng.normal(size=(2, num_classes))
        self.class_bias = np.zeros(num_classes)

    @property
    def num_classes(self) -> int:
        return len(self.class_names)

    def _features(self, states: np.ndarray, node_counts: np.ndarray) -> np.ndarray:
        return np.stack(
            [
                np.asarray(states, dtype=float) / self.smax,
                np.asarray(node_counts, dtype=float) / self.smax,
            ],
            axis=1,
        )

    def class_probabilities(self, features: np.ndarray) -> np.ndarray:
        """Softmax class preferences ``q(. | s, N)``, shape ``(B, C)``."""
        return _softmax(features @ self.class_weights + self.class_bias)

    def action_probabilities_batch(
        self, states: np.ndarray, node_counts: np.ndarray
    ) -> np.ndarray:
        """Joint distributions over ``{wait, add(c)}``, shape ``(B, 1 + C)``."""
        features = self._features(states, node_counts)
        add = self.policy.recover_probability(features)
        classes = self.class_probabilities(features)
        return np.concatenate(
            [(1.0 - add)[:, None], add[:, None] * classes], axis=1
        )

    def action_probabilities(self, state: int) -> np.ndarray:
        """Scalar marginal at the reference node count."""
        return self.action_probabilities_batch(
            np.array([state]), np.array([self.reference_node_count])
        )[0]

    def add_probability(self, state: int) -> float:
        return float(1.0 - self.action_probabilities(state)[0])

    def action(self, state: int, rng: np.random.Generator) -> int:
        from ..core.strategies import sample_action_index

        cumulative = np.cumsum(self.action_probabilities(state))
        return sample_action_index(cumulative, rng.random())

    def update_class_head(
        self,
        features: np.ndarray,
        taken_classes: np.ndarray,
        advantages: np.ndarray,
        old_class_probs: np.ndarray,
        learning_rate: float,
        clip_epsilon: float,
    ) -> None:
        """One clipped-surrogate ascent step on the class head.

        Operates on add steps only (``taken_classes`` indexes the chosen
        class): maximizes ``min(r A, clip(r) A)`` with
        ``r = q_new(c) / q_old(c)``; the gradient of ``log q_c`` w.r.t.
        the softmax logits is ``onehot(c) - q``.
        """
        if features.shape[0] == 0:
            return
        logits = features @ self.class_weights + self.class_bias
        probs = _softmax(logits)
        idx = np.arange(features.shape[0])
        ratio = probs[idx, taken_classes] / np.maximum(old_class_probs, 1e-12)
        # PPO clip: zero the gradient where the ratio already moved past
        # the clip range in the advantage's direction.
        clipped = ((ratio > 1.0 + clip_epsilon) & (advantages > 0)) | (
            (ratio < 1.0 - clip_epsilon) & (advantages < 0)
        )
        coefficient = np.where(clipped, 0.0, ratio * advantages)
        onehot = np.zeros_like(probs)
        onehot[idx, taken_classes] = 1.0
        grad_logits = coefficient[:, None] * (onehot - probs) / features.shape[0]
        self.class_weights += learning_rate * features.T @ grad_logits
        self.class_bias += learning_rate * grad_logits.sum(axis=0)


@dataclass
class PPOReplicationResult:
    """Training diagnostics of the learned replication policy.

    Attributes:
        strategy: The trained strategy (wraps ``policy``).
        policy: The underlying network.
        history: Mean node count ``J`` per update.
        availability_history: Mean availability ``T^(A)`` per update.
        evaluation: Fresh closed-loop evaluation of the final policy.
        wall_clock_seconds: Total training time.
    """

    strategy: PPOReplicationStrategy | ClassAwarePPOReplicationStrategy
    policy: PPOPolicy
    history: list[float] = field(default_factory=list)
    availability_history: list[float] = field(default_factory=list)
    evaluation: TwoLevelResult | None = None
    wall_clock_seconds: float = 0.0


def train_ppo_replication(
    scenario: FleetScenario,
    recovery_policy: VectorPolicy | RecoveryStrategy | BatchStrategy | Sequence,
    config: PPOConfig | None = None,
    availability_penalty: float = 3.0,
    initial_nodes: int | None = None,
    k: int = 1,
    seed: int | None = None,
    evaluation_episodes: int = 100,
    class_aware: bool = False,
) -> PPOReplicationResult:
    """Train a PPO replication policy in closed loop on the batch engine.

    Each update runs ``config.rollout_episodes`` full fleet episodes
    through the two-level controller with the current policy at the system
    level, then performs the clipped-surrogate update on the recorded
    system trace (emergency adds and ``smax``-capped requests enter the
    buffer as forced actions, mirroring how the node-level PPO treats
    BTR-forced recoveries).

    Args:
        scenario: Fleet scenario (``num_nodes`` slots = ``smax``; ``f`` set).
        recovery_policy: Node-level recovery policy/strategy.
        config: PPO hyper-parameters (``horizon`` is taken from the
            scenario; ``rollout_episodes`` is the batch size ``B``).
        availability_penalty: Lagrange weight ``lambda_A`` on unavailable
            steps in the reward.
        initial_nodes: Initial replication factor ``N_1``.
        k: Maximum parallel recoveries per step.
        seed: Seed for network initialization, rollout seeds and the final
            evaluation; training is deterministic given the seed.
        evaluation_episodes: Batch size of the final evaluation run (0
            skips it).
        class_aware: Learn a class-indexed policy
            ``pi(a | s, N)`` over ``{wait, add(c_1), ..., add(c_C)}``
            instead of the classless Bernoulli: the add head trains exactly
            as before and a softmax class head learns *which* container
            class to add from the same rollouts
            (:class:`ClassAwarePPOReplicationStrategy`).  Requires a
            labelled (mixed) scenario.
    """
    config = config if config is not None else default_replication_config()
    rng = np.random.default_rng(seed)
    policy = PPOPolicy(config, rng)
    smax = scenario.num_nodes
    minimum = 2 * (scenario.f or 0) + 1 + k
    reference_count = (
        initial_nodes if initial_nodes is not None else min(minimum, smax)
    )
    strategy: PPOReplicationStrategy | ClassAwarePPOReplicationStrategy
    if class_aware:
        if scenario.node_labels is None:
            raise ValueError(
                "class_aware=True requires a labelled scenario; build it "
                "with FleetScenario.mixed(...)"
            )
        strategy = ClassAwarePPOReplicationStrategy(
            policy,
            smax=smax,
            reference_node_count=reference_count,
            class_names=tuple(scenario.class_slots()),
            rng=rng,
        )
    else:
        strategy = PPOReplicationStrategy(
            policy,
            smax=smax,
            reference_node_count=reference_count,
        )
    controller = TwoLevelController(
        scenario,
        config.rollout_episodes,
        recovery_policy,
        replication_strategy=strategy,
        initial_nodes=initial_nodes,
        k=k,
        record_system_trace=True,
    )

    history: list[float] = []
    availability_history: list[float] = []
    start = time.perf_counter()
    for _ in range(config.updates):
        result = controller.run(seed=int(rng.integers(2 ** 31)))
        trace = controller.system_trace
        horizon, batch = trace.states.shape

        features = np.stack(
            [trace.states / smax, trace.decision_counts / smax], axis=2
        )  # (T, B, 2)
        actions = trace.actions.astype(np.int64)
        rewards = -(
            trace.node_counts / smax
            + availability_penalty * (~trace.available)
        )
        # The replication CMDP is an average-cost problem: center the rewards
        # so the discounted returns lose their constant drift.  Without this
        # the horizon truncation imprints a time trend on the advantages
        # (early steps accumulate ~1/(1-gamma*lambda) more negative deltas
        # than late steps) that, after normalization, systematically blames
        # whatever action dominates the early steps.
        rewards = rewards - rewards.mean()
        # Forced steps (emergency add, smax-capped wait) enter the buffer
        # with the *executed* action at probability one — an emergency add
        # behaves like the node PPO's BTR-forced recovery, a capped request
        # like a forced wait.  Folding the override into the add
        # probability (rather than marking it 1.0 unconditionally) keeps
        # the taken-action probability at 1 for both, so the importance
        # ratios stay bounded.
        old_probs = np.where(
            trace.forced, actions.astype(float), trace.add_probabilities
        )

        values = policy.value(features.reshape(horizon * batch, 2)).reshape(
            horizon, batch
        )
        next_values = np.vstack([values[1:], np.zeros((1, batch))])
        deltas = rewards + config.discount * next_values - values
        advantages = _discounted_reverse_cumsum(
            deltas, config.discount * config.gae_lambda
        )
        returns = _discounted_reverse_cumsum(rewards, config.discount)
        # Episodes advance in lockstep, so the cross-episode mean at each
        # timestep is a state-independent baseline; subtracting it removes
        # the shared per-step noise the value network has not learned yet.
        advantages = advantages - advantages.mean(axis=1, keepdims=True)

        flat_features = features.transpose(1, 0, 2).reshape(horizon * batch, 2)
        flat_actions = actions.T.reshape(-1)
        flat_advantages = advantages.T.reshape(-1)
        flat_returns = returns.T.reshape(-1)
        flat_old_probs = old_probs.T.reshape(-1)
        if flat_advantages.std() > 1e-8:
            flat_advantages = (
                flat_advantages - flat_advantages.mean()
            ) / flat_advantages.std()

        history.append(float(result.average_nodes.mean()))
        availability_history.append(float(result.availability.mean()))
        for _ in range(config.epochs_per_update):
            policy.update(
                flat_features,
                flat_actions,
                flat_advantages,
                flat_returns,
                flat_old_probs,
            )
        if class_aware and trace.add_classes is not None:
            # The class head trains on the add steps where the strategy
            # chose a class (emergency/capped overrides carry none): the
            # joint log-probability decomposes as log p + log q_c, so the
            # conditional class surrogate uses the same advantages.
            chosen = trace.add_classes
            mask = chosen >= 0
            if mask.any():
                class_features = features[mask]
                taken = chosen[mask]
                rows = trace.action_probabilities[mask]
                add_mass = np.maximum(1.0 - rows[:, 0], 1e-12)
                old_q = rows[np.arange(taken.size), 1 + taken] / add_mass
                class_advantages = advantages[mask]
                std = class_advantages.std()
                if std > 1e-8:
                    class_advantages = (
                        class_advantages - class_advantages.mean()
                    ) / std
                for _ in range(config.epochs_per_update):
                    strategy.update_class_head(
                        class_features,
                        taken,
                        class_advantages,
                        old_q,
                        learning_rate=config.learning_rate,
                        clip_epsilon=config.clip_epsilon,
                    )
    elapsed = time.perf_counter() - start

    evaluation = None
    if evaluation_episodes > 0:
        evaluator = TwoLevelController(
            scenario,
            evaluation_episodes,
            recovery_policy,
            replication_strategy=strategy,
            initial_nodes=initial_nodes,
            k=k,
            engine=controller.env.engine,
        )
        evaluation = evaluator.run(seed=int(rng.integers(2 ** 31)))
    return PPOReplicationResult(
        strategy=strategy,
        policy=policy,
        history=history,
        availability_history=availability_history,
        evaluation=evaluation,
        wall_clock_seconds=elapsed,
    )
