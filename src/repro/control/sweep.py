"""Fleet-scale scenario sweeps on the unified control-plane API.

One home for the sweep helpers the Table 7 / Figure 12 benchmarks used to
duplicate: the emulation-testbed cell runner, the node-POMDP batch-engine
sweep, and the closed-loop two-level sweeps.  All share the cell convention
(scenario key x strategy name) so a benchmark can print one table across
backends, and the batched variants share one compiled engine per scenario.

The batched sweeps accept *per-node* parameters everywhere a single
:class:`~repro.core.node_model.NodeParameters` used to be hard-coded: pass
a sequence of per-node parameters (and optionally per-node observation
models) to ``engine_fleet_sweep``/``closed_loop_sweep``, hand ready-made
mixed scenarios to :func:`mixed_closed_loop_sweep`, or scale the whole
fleet's compromise probabilities with :func:`attacker_intensity_sweep`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from ..core.metrics import summarize_runs
from ..core.node_model import NodeParameters
from ..core.observation import ObservationModel
from ..core.strategies import RecoveryStrategy, ReplicationStrategy
from ..sim import BatchRecoveryEngine, BatchSimulationResult, FleetScenario
from ..sim.strategies import BatchStrategy
from .two_level import TwoLevelController, TwoLevelResult

__all__ = [
    "default_tolerance_threshold",
    "ClosedLoopCell",
    "emulation_cell",
    "engine_fleet_sweep",
    "closed_loop_sweep",
    "mixed_closed_loop_sweep",
    "attacker_intensity_sweep",
]


def default_tolerance_threshold(n1: int) -> int:
    """The ``f = (N_1 - 1) / 3`` BFT rule used by the fleet sweeps.

    Raises:
        ValueError: When ``n1 <= 0`` — a fleet needs at least one node, and
            the silent ``f = 0`` this used to return for non-positive sizes
            let misconfigured sweeps run whole tables of meaningless cells.
    """
    if n1 <= 0:
        raise ValueError(
            f"default_tolerance_threshold requires a fleet size n1 >= 1, got {n1}"
        )
    return (n1 - 1) // 3 if n1 >= 3 else 0


def _per_node(value, num_nodes: int, kind: str) -> tuple:
    """Expand a shared value — or validate a per-node sequence — to ``N`` slots."""
    if isinstance(value, (list, tuple)):
        if len(value) != num_nodes:
            raise ValueError(
                f"need one {kind} per node ({num_nodes}), got {len(value)}"
            )
        return tuple(value)
    return (value,) * num_nodes


def _sweep_scenario(
    node_params: NodeParameters | Sequence[NodeParameters],
    observation_model: ObservationModel | Sequence[ObservationModel],
    num_nodes: int,
    horizon: int,
    f: int | None,
) -> FleetScenario:
    """Build a (possibly heterogeneous) sweep scenario from flexible inputs."""
    return FleetScenario(
        _per_node(node_params, num_nodes, "NodeParameters"),
        _per_node(observation_model, num_nodes, "observation model"),
        horizon=horizon,
        f=f,
    )


def emulation_cell(
    n1: int,
    delta_r: float,
    policy_factory: Callable[[], object],
    seeds: Sequence[int],
    horizon: int,
    node_params: NodeParameters,
) -> dict[str, tuple[float, float]]:
    """Run one Table 7 emulation-testbed cell and summarize its metrics.

    One :class:`~repro.emulation.EmulationEnvironment` episode per seed;
    the summary maps each metric to a ``(mean, ci)`` pair via
    :func:`~repro.core.metrics.summarize_runs`.
    """
    from ..emulation import EmulationConfig, EmulationEnvironment

    config = EmulationConfig(
        initial_nodes=n1,
        horizon=horizon,
        delta_r=delta_r,
        node_params=node_params,
    )
    runs = [
        EmulationEnvironment(config, policy_factory(), seed=seed).run()
        for seed in seeds
    ]
    return summarize_runs(runs)


def engine_fleet_sweep(
    n1_values: Sequence[int],
    strategies: Mapping[str, RecoveryStrategy | BatchStrategy],
    node_params: NodeParameters | Sequence[NodeParameters],
    observation_model: ObservationModel | Sequence[ObservationModel],
    num_episodes: int = 200,
    horizon: int = 200,
    seed: int | None = 0,
    tolerance_threshold: Callable[[int], int] = default_tolerance_threshold,
    n_jobs: int = 1,
) -> dict[tuple[int, str], BatchSimulationResult]:
    """Node-POMDP fleet sweep on the batch engine (no system level).

    For every initial size ``n1`` an ``n1``-node scenario is compiled once
    and every strategy is evaluated on ``num_episodes`` batched episodes
    with common random numbers.  ``node_params``/``observation_model``
    accept either one shared value or a per-node sequence of length ``n1``
    (the latter only when a single ``n1`` is swept, since the sequence must
    match the fleet size).  ``n_jobs > 1`` shards the episodes across
    worker processes (:mod:`repro.control.parallel`); the table is
    bit-identical to ``n_jobs=1`` under a fixed seed.
    """
    scenarios = [
        (
            n1,
            _sweep_scenario(
                node_params,
                observation_model,
                num_nodes=n1,
                horizon=horizon,
                f=tolerance_threshold(n1),
            ),
        )
        for n1 in n1_values
    ]
    if n_jobs != 1:
        from .parallel import parallel_engine_sweep_table

        return parallel_engine_sweep_table(
            scenarios, strategies, num_episodes, seed, n_jobs
        )
    table: dict[tuple[int, str], BatchSimulationResult] = {}
    for n1, scenario in scenarios:
        engine = BatchRecoveryEngine(scenario)
        for name, strategy in strategies.items():
            table[(n1, name)] = engine.run(strategy, num_episodes=num_episodes, seed=seed)
    return table


def _run_cells(
    scenario: FleetScenario,
    cells: Sequence["ClosedLoopCell"],
    num_envs: int,
    seed: int | None,
    k: int,
    initial_nodes: int | None,
) -> dict[str, TwoLevelResult]:
    """Run every cell against one scenario on one shared compiled engine."""
    engine = BatchRecoveryEngine(scenario)
    results: dict[str, TwoLevelResult] = {}
    for cell in cells:
        controller = TwoLevelController(
            scenario,
            num_envs,
            cell.recovery,
            replication_strategy=cell.replication,
            initial_nodes=initial_nodes,
            k=k,
            enforce_invariant=cell.enforce_invariant,
            respect_recovery_limit=cell.respect_recovery_limit,
            engine=engine,
        )
        results[cell.name] = controller.run(seed=seed)
    return results


@dataclass(frozen=True)
class ClosedLoopCell:
    """One strategy column of a closed-loop two-level sweep.

    Attributes:
        name: Row label (``tolerance``, ``no-recovery``, ...).
        recovery: Node-level recovery strategy/policy.
        replication: System-level replication strategy (``None`` never adds).
        enforce_invariant: Whether Prop. 1 emergency adds are enabled.
        respect_recovery_limit: Whether the ``k``-recovery limit applies.
    """

    name: str
    recovery: object
    replication: ReplicationStrategy | None = None
    enforce_invariant: bool = True
    respect_recovery_limit: bool = True


def closed_loop_sweep(
    n1_values: Sequence[int],
    cells: Sequence[ClosedLoopCell],
    node_params: NodeParameters | Sequence[NodeParameters],
    observation_model: ObservationModel | Sequence[ObservationModel],
    smax: int,
    num_envs: int = 100,
    horizon: int = 200,
    seed: int | None = 0,
    k: int = 1,
    tolerance_threshold: Callable[[int], int] = default_tolerance_threshold,
    n_jobs: int = 1,
) -> dict[tuple[int, str], TwoLevelResult]:
    """Closed-loop Table 7 / Figure 12 sweep on the batched control plane.

    Every ``(n1, cell)`` pair runs ``num_envs`` full two-level episodes on
    an ``smax``-slot bank (one compiled engine per ``n1``), coupling the
    cell's recovery strategy with its replication strategy — the workload
    the scalar ``SystemController`` loop served one episode at a time.
    ``node_params``/``observation_model`` accept one shared value or a
    per-slot sequence of length ``smax``.  ``n_jobs > 1`` shards the
    episodes across worker processes (:mod:`repro.control.parallel`);
    the table is bit-identical to ``n_jobs=1`` under a fixed seed.
    """
    scenarios = [
        (
            n1,
            _sweep_scenario(
                node_params,
                observation_model,
                num_nodes=smax,
                horizon=horizon,
                f=tolerance_threshold(n1),
            ),
        )
        for n1 in n1_values
    ]
    if n_jobs != 1:
        from .parallel import parallel_closed_loop_table

        return parallel_closed_loop_table(
            scenarios,
            cells,
            num_envs,
            seed,
            k,
            [n1 for n1, _ in scenarios],
            n_jobs,
        )
    table: dict[tuple[int, str], TwoLevelResult] = {}
    for n1, scenario in scenarios:
        for name, result in _run_cells(
            scenario, cells, num_envs, seed, k, initial_nodes=n1
        ).items():
            table[(n1, name)] = result
    return table


def mixed_closed_loop_sweep(
    scenarios: Mapping[str, FleetScenario],
    cells: Sequence[ClosedLoopCell],
    num_envs: int = 100,
    seed: int | None = 0,
    k: int = 1,
    initial_nodes: int | None = None,
    optimize_deltas: bool = False,
    delta_grid: Sequence[float] = (5, 10, 25, math.inf),
    delta_optimizer_factory: Callable[[], object] | None = None,
    delta_episodes_per_evaluation: int = 10,
    n_jobs: int = 1,
) -> dict[tuple[str, str], TwoLevelResult]:
    """Heterogeneous closed-loop sweep over ready-made (mixed) scenarios.

    Every ``(scenario, cell)`` pair runs ``num_envs`` full two-level
    episodes; one engine is compiled per scenario and shared across cells.
    Scenarios built with :meth:`~repro.sim.FleetScenario.mixed` carry
    per-class metrics on their results (``TwoLevelResult.class_summary``).

    With ``optimize_deltas=True`` every scenario's classes first get their
    BTR deadline ``Delta_R`` re-optimized per class — Algorithm 1 on each
    class's own node POMDP over ``delta_grid``
    (:func:`~repro.control.class_aware.optimize_class_deltas`) — and the
    cells run against the deadline-optimized scenario.  Requires labelled
    scenarios (:meth:`~repro.sim.FleetScenario.mixed`).

    ``n_jobs > 1`` shards the closed-loop episodes across worker processes
    (:mod:`repro.control.parallel`); the per-class ``Delta_R``
    optimization — a different, solver-bound workload — always runs in the
    parent, and the table is bit-identical to ``n_jobs=1`` under a fixed
    seed.
    """
    from .class_aware import apply_class_deltas, optimize_class_deltas

    prepared: list[tuple[str, FleetScenario]] = []
    for scenario_name, scenario in scenarios.items():
        if optimize_deltas:
            deltas = optimize_class_deltas(
                scenario.node_classes(),
                delta_grid=delta_grid,
                optimizer_factory=delta_optimizer_factory,
                horizon=scenario.horizon,
                episodes_per_evaluation=delta_episodes_per_evaluation,
                seed=seed,
            )
            scenario = apply_class_deltas(scenario, deltas)
        prepared.append((scenario_name, scenario))
    if n_jobs != 1:
        from .parallel import parallel_closed_loop_table

        return parallel_closed_loop_table(
            prepared, cells, num_envs, seed, k, initial_nodes, n_jobs
        )
    table: dict[tuple[str, str], TwoLevelResult] = {}
    for scenario_name, scenario in prepared:
        for name, result in _run_cells(
            scenario, cells, num_envs, seed, k, initial_nodes
        ).items():
            table[(scenario_name, name)] = result
    return table


def attacker_intensity_sweep(
    scenario: FleetScenario,
    intensities: Sequence[float],
    cells: Sequence[ClosedLoopCell],
    num_envs: int = 100,
    seed: int | None = 0,
    k: int = 1,
    initial_nodes: int | None = None,
    n_jobs: int = 1,
) -> dict[tuple[float, str], TwoLevelResult]:
    """Closed-loop sweep over attacker intensities (fleet-wide ``p_A`` scale).

    For every intensity ``x`` the base scenario's per-node compromise
    probabilities become ``min(1, x * p_{A,i})``
    (:meth:`~repro.sim.FleetScenario.scale_attack`) — node classes keep
    their identity, only the attacker gets faster — and every cell runs
    ``num_envs`` two-level episodes against the scaled fleet.  One engine
    is compiled per intensity and shared across cells.  ``n_jobs > 1``
    shards the episodes across worker processes
    (:mod:`repro.control.parallel`); the table is bit-identical to
    ``n_jobs=1`` under a fixed seed.
    """
    scaled_scenarios = [
        (float(intensity), scenario.scale_attack(intensity))
        for intensity in intensities
    ]
    if n_jobs != 1:
        from .parallel import parallel_closed_loop_table

        return parallel_closed_loop_table(
            scaled_scenarios, cells, num_envs, seed, k, initial_nodes, n_jobs
        )
    table: dict[tuple[float, str], TwoLevelResult] = {}
    for intensity, scaled in scaled_scenarios:
        for name, result in _run_cells(
            scaled, cells, num_envs, seed, k, initial_nodes
        ).items():
            table[(intensity, name)] = result
    return table
