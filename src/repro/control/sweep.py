"""Fleet-scale scenario sweeps on the unified control-plane API.

One home for the sweep helpers the Table 7 / Figure 12 benchmarks used to
duplicate: the emulation-testbed cell runner, the node-POMDP batch-engine
sweep, and the new closed-loop two-level sweep.  All three share the cell
convention (initial size ``N_1`` x strategy name) so a benchmark can print
one table across backends, and the batched variants share one compiled
engine per scenario.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from ..core.metrics import summarize_runs
from ..core.node_model import NodeParameters
from ..core.observation import ObservationModel
from ..core.strategies import RecoveryStrategy, ReplicationStrategy
from ..sim import BatchRecoveryEngine, BatchSimulationResult, FleetScenario
from ..sim.strategies import BatchStrategy
from .two_level import TwoLevelController, TwoLevelResult

__all__ = [
    "default_tolerance_threshold",
    "ClosedLoopCell",
    "emulation_cell",
    "engine_fleet_sweep",
    "closed_loop_sweep",
]


def default_tolerance_threshold(n1: int) -> int:
    """The ``f = (N_1 - 1) / 3`` BFT rule used by the fleet sweeps."""
    return (n1 - 1) // 3 if n1 >= 3 else 0


def emulation_cell(
    n1: int,
    delta_r: float,
    policy_factory: Callable[[], object],
    seeds: Sequence[int],
    horizon: int,
    node_params: NodeParameters,
) -> dict[str, tuple[float, float]]:
    """Run one Table 7 emulation-testbed cell and summarize its metrics.

    One :class:`~repro.emulation.EmulationEnvironment` episode per seed;
    the summary maps each metric to a ``(mean, ci)`` pair via
    :func:`~repro.core.metrics.summarize_runs`.
    """
    from ..emulation import EmulationConfig, EmulationEnvironment

    config = EmulationConfig(
        initial_nodes=n1,
        horizon=horizon,
        delta_r=delta_r,
        node_params=node_params,
    )
    runs = [
        EmulationEnvironment(config, policy_factory(), seed=seed).run()
        for seed in seeds
    ]
    return summarize_runs(runs)


def engine_fleet_sweep(
    n1_values: Sequence[int],
    strategies: Mapping[str, RecoveryStrategy | BatchStrategy],
    node_params: NodeParameters,
    observation_model: ObservationModel,
    num_episodes: int = 200,
    horizon: int = 200,
    seed: int | None = 0,
    tolerance_threshold: Callable[[int], int] = default_tolerance_threshold,
) -> dict[tuple[int, str], BatchSimulationResult]:
    """Node-POMDP fleet sweep on the batch engine (no system level).

    For every initial size ``n1`` a homogeneous ``n1``-node scenario is
    compiled once and every strategy is evaluated on ``num_episodes``
    batched episodes with common random numbers.
    """
    table: dict[tuple[int, str], BatchSimulationResult] = {}
    for n1 in n1_values:
        scenario = FleetScenario.homogeneous(
            node_params,
            observation_model,
            num_nodes=n1,
            horizon=horizon,
            f=tolerance_threshold(n1),
        )
        engine = BatchRecoveryEngine(scenario)
        for name, strategy in strategies.items():
            table[(n1, name)] = engine.run(strategy, num_episodes=num_episodes, seed=seed)
    return table


@dataclass(frozen=True)
class ClosedLoopCell:
    """One strategy column of a closed-loop two-level sweep.

    Attributes:
        name: Row label (``tolerance``, ``no-recovery``, ...).
        recovery: Node-level recovery strategy/policy.
        replication: System-level replication strategy (``None`` never adds).
        enforce_invariant: Whether Prop. 1 emergency adds are enabled.
        respect_recovery_limit: Whether the ``k``-recovery limit applies.
    """

    name: str
    recovery: object
    replication: ReplicationStrategy | None = None
    enforce_invariant: bool = True
    respect_recovery_limit: bool = True


def closed_loop_sweep(
    n1_values: Sequence[int],
    cells: Sequence[ClosedLoopCell],
    node_params: NodeParameters,
    observation_model: ObservationModel,
    smax: int,
    num_envs: int = 100,
    horizon: int = 200,
    seed: int | None = 0,
    k: int = 1,
    tolerance_threshold: Callable[[int], int] = default_tolerance_threshold,
) -> dict[tuple[int, str], TwoLevelResult]:
    """Closed-loop Table 7 / Figure 12 sweep on the batched control plane.

    Every ``(n1, cell)`` pair runs ``num_envs`` full two-level episodes on
    an ``smax``-slot bank (one compiled engine per ``n1``), coupling the
    cell's recovery strategy with its replication strategy — the workload
    the scalar ``SystemController`` loop served one episode at a time.
    """
    table: dict[tuple[int, str], TwoLevelResult] = {}
    for n1 in n1_values:
        scenario = FleetScenario.homogeneous(
            node_params,
            observation_model,
            num_nodes=smax,
            horizon=horizon,
            f=tolerance_threshold(n1),
        )
        engine = BatchRecoveryEngine(scenario)
        for cell in cells:
            controller = TwoLevelController(
                scenario,
                num_envs,
                cell.recovery,
                replication_strategy=cell.replication,
                initial_nodes=n1,
                k=k,
                enforce_invariant=cell.enforce_invariant,
                respect_recovery_limit=cell.respect_recovery_limit,
                engine=engine,
            )
            table[(n1, cell.name)] = controller.run(seed=seed)
    return table
