"""Fitted-model-keyed cache of replication-policy solves.

The system-identification loop and the class-aware planners re-solve
Algorithm 2 (and its Theorem 2 Lagrangian relaxation) every time they are
called — even when the fitted kernel did not change, which is the common
case for periodic refits on a converged estimate and for benchmark loops
that rebuild the pipeline per cell.  An LP/bisection solve costs orders of
magnitude more than a hash, so :class:`PolicySolveCache` memoizes solver
outcomes keyed by **what the solver actually consumes**:

* a stable content hash of the fitted model
  (:meth:`~repro.core.system_model.SystemModel.content_hash`, the SHA-256
  of a canonical serialization of the kernel, ``smax``, ``f`` and
  ``epsilon_a`` — plus class names, survivals and add costs for
  :class:`~repro.core.system_model.ClassAwareSystemModel`), and
* the solver's name and parameters (:func:`fitted_model_key`).

Two models fitted from different episode orders but identical statistics
hash identically; a kernel perturbed in any entry hashes differently —
the hypothesis tests in ``tests/test_parallel_sweeps.py`` pin both
properties down.  Infeasible Lagrangian outcomes (a ``ValueError`` from
the bisection) are cached too, so repeated refits on an infeasible model
are hits rather than repeated bisection runs.

Solver functions are resolved **through the** :mod:`repro.solvers.cmdp`
**module at call time** (``cmdp.solve_replication_lp(model)``), so tests
that monkeypatch a solver to count invocations observe exactly the solves
the cache did not absorb — the CI cache-effectiveness step relies on
this.

Invalidation is explicit: :meth:`PolicySolveCache.invalidate` drops every
entry of one model (or one hash), :meth:`PolicySolveCache.clear` drops
everything; beyond that the cache is a bounded LRU.  Hit/miss/invalidation
counters (:meth:`PolicySolveCache.stats`) make effectiveness measurable.

The cache is **thread-safe**: every lookup, insertion, LRU move/eviction,
counter update and invalidation happens under one reentrant lock, so the
decision service (:mod:`repro.serve`) can serve policy solves for
concurrently registering sessions from the process-wide
:data:`DEFAULT_POLICY_CACHE`.  The lock is held *across* a miss's
``solve()`` call, which makes misses single-flight: two threads racing on
the same fitted model run the LP once and the loser gets a hit — never two
concurrent solves of one kernel.  (``tests/test_parallel_sweeps.py``
hammers the cache from many threads and asserts the counters stay
consistent; the test fails on the unlocked implementation.)
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable

from ..core.system_model import SystemModel
from ..solvers import cmdp

__all__ = [
    "fitted_model_key",
    "PolicySolveCache",
    "DEFAULT_POLICY_CACHE",
]


def fitted_model_key(
    model: SystemModel, solver: str, **params: float | int
) -> tuple:
    """Stable cache key of one solve: ``(solver, model hash, params)``.

    The model contributes only its content hash — order-insensitive over
    however the fit enumerated transitions, collision-distinct for any
    perturbed kernel entry — and the parameters are canonicalized by
    sorted name, so keyword order cannot split the cache.
    """
    return (
        solver,
        model.content_hash(),
        tuple(sorted((name, value) for name, value in params.items())),
    )


#: Sentinel tag for cached infeasibility outcomes (re-raised on hit).
_INFEASIBLE = "__infeasible__"


class PolicySolveCache:
    """Bounded LRU cache of replication-policy solves, keyed by model content.

    Args:
        maxsize: Maximum number of cached solver outcomes; the least
            recently used entry is evicted beyond it.
    """

    def __init__(self, maxsize: int = 128) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    # -- core ---------------------------------------------------------------------
    def get_or_solve(
        self,
        model: SystemModel,
        solver: str,
        solve: Callable[[], object],
        **params: float | int,
    ):
        """Return the cached outcome of ``solve()`` for this model, or run it.

        A ``ValueError`` raised by ``solve`` (the Lagrangian bisection's
        infeasibility signal) is cached and re-raised on subsequent hits,
        so infeasible refits stop re-running the bisection.

        The lock is held across a miss's ``solve()`` call (single-flight):
        concurrent misses on the same key run the solver exactly once.
        """
        key = fitted_model_key(model, solver, **params)
        with self._lock:
            if key in self._entries:
                self.hits += 1
                self._entries.move_to_end(key)
                outcome = self._entries[key]
                if isinstance(outcome, tuple) and outcome[:1] == (_INFEASIBLE,):
                    raise ValueError(outcome[1])
                return outcome
            self.misses += 1
            try:
                outcome = solve()
            except ValueError as error:
                self._store(key, (_INFEASIBLE, str(error)))
                raise
            self._store(key, outcome)
            return outcome

    def _store(self, key: tuple, outcome: object) -> None:
        self._entries[key] = outcome
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    # -- solver fronts ------------------------------------------------------------
    def solve_lp(self, model: SystemModel):
        """Cached :func:`~repro.solvers.cmdp.solve_replication_lp`."""
        return self.get_or_solve(
            model, "replication_lp", lambda: cmdp.solve_replication_lp(model)
        )

    def solve_lagrangian(
        self,
        model: SystemModel,
        lambda_max: float = 1000.0,
        tolerance: float = 1e-4,
        max_bisections: int = 60,
    ):
        """Cached :func:`~repro.solvers.cmdp.solve_replication_lagrangian`."""
        return self.get_or_solve(
            model,
            "replication_lagrangian",
            lambda: cmdp.solve_replication_lagrangian(
                model,
                lambda_max=lambda_max,
                tolerance=tolerance,
                max_bisections=max_bisections,
            ),
            lambda_max=lambda_max,
            tolerance=tolerance,
            max_bisections=max_bisections,
        )

    def solve_class_aware_lp(self, model):
        """Cached :func:`~repro.solvers.cmdp.solve_class_aware_replication_lp`."""
        return self.get_or_solve(
            model,
            "class_aware_replication_lp",
            lambda: cmdp.solve_class_aware_replication_lp(model),
        )

    def solve_class_aware_lagrangian(
        self,
        model,
        lambda_max: float = 1000.0,
        tolerance: float = 1e-4,
        max_bisections: int = 60,
    ):
        """Cached :func:`~repro.solvers.cmdp.solve_class_aware_replication_lagrangian`."""
        return self.get_or_solve(
            model,
            "class_aware_replication_lagrangian",
            lambda: cmdp.solve_class_aware_replication_lagrangian(
                model,
                lambda_max=lambda_max,
                tolerance=tolerance,
                max_bisections=max_bisections,
            ),
            lambda_max=lambda_max,
            tolerance=tolerance,
            max_bisections=max_bisections,
        )

    # -- invalidation and introspection --------------------------------------------
    def invalidate(self, model: SystemModel | str) -> int:
        """Drop every cached solve of one model (or one content hash).

        Call this when a kernel is refitted in place or its outcomes must
        not be served anymore; returns the number of entries dropped.
        """
        content_hash = model if isinstance(model, str) else model.content_hash()
        with self._lock:
            stale = [key for key in self._entries if key[1] == content_hash]
            for key in stale:
                del self._entries[key]
            self.invalidations += len(stale)
            return len(stale)

    def clear(self) -> int:
        """Drop every entry (counters survive); returns the number dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.invalidations += dropped
            return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> dict[str, int]:
        """``hits``/``misses``/``invalidations``/``size`` snapshot."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "size": len(self._entries),
            }


#: Process-wide default used by :func:`~repro.control.sysid.identify_replication_strategies`
#: when no cache is passed explicitly.
DEFAULT_POLICY_CACHE = PolicySolveCache()
