"""System identification of the replication CMDP from the batched engine.

The paper instantiates Problem 2 by estimating the system transition kernel
``f_S`` "from simulations of Problem 1" (Appendix E) — originally a slow
docker-emulation-only path.  This module replaces it with the vectorized
pipeline:

1. roll a :class:`~repro.envs.FleetVectorEnv` batch (``B`` episodes x ``N``
   nodes) under a node-level recovery policy and read the empirical
   ``(s_t, s_{t+1})`` pairs off
   :meth:`~repro.envs.FleetVectorEnv.system_state_transitions` — or the
   ``(s_t, a_t, s_{t+1})`` triples off a closed-loop
   :class:`~repro.control.two_level.SystemTrace`;
2. fit an :class:`~repro.core.system_model.EmpiricalSystemModel` (for
   action-free pairs, the add action's kernel follows from the Eq. 8
   structure ``f_S(s' | s, 1) = f_S(s' - 1 | s, 0)``);
3. solve Algorithm 2 (:func:`~repro.solvers.cmdp.solve_replication_lp`) and
   the Theorem 2 Lagrangian relaxation on the fitted kernel;
4. re-evaluate the resulting strategies **in closed loop** on the batched
   two-level control plane — the Monte-Carlo counterpart of the stationary
   analysis in :func:`~repro.solvers.cmdp.evaluate_replication_strategy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.strategies import RecoveryStrategy, ReplicationStrategy
from ..core.system_model import (
    ClassAwareSystemModel,
    EmpiricalSystemModel,
    class_aware_system_model,
)
from ..envs.policies import VectorPolicy
from ..envs.vector_recovery import FleetVectorEnv
from ..sim import BatchRecoveryEngine, FleetScenario
from ..sim.strategies import BatchStrategy
from ..solvers.cmdp import (
    CMDPSolution,
    LagrangianSolution,
    policy_stationary_distribution,
    solve_replication_lagrangian,
    solve_replication_lp,
)
from .two_level import SystemTrace, TwoLevelController, TwoLevelResult

__all__ = [
    "fit_system_model_from_pairs",
    "fit_system_model_from_env",
    "fit_system_models_per_class",
    "fit_system_model_from_trace",
    "fresh_node_survival_from_model",
    "fit_class_aware_system_model",
    "evaluate_replication_closed_loop",
    "SystemIdentificationResult",
    "identify_replication_strategies",
]


def fit_system_model_from_pairs(
    pairs: np.ndarray,
    smax: int,
    f: int,
    epsilon_a: float = 0.9,
    smoothing: float = 0.5,
) -> EmpiricalSystemModel:
    """Fit ``f_S`` from action-free ``(s_t, s_{t+1})`` state pairs.

    The pairs (e.g. from
    :meth:`~repro.envs.FleetVectorEnv.system_state_transitions`, observed
    without a system controller in the loop) define the passive kernel
    ``f_S(. | s, a=0)``; the add action's kernel follows from the Eq. 8
    structure — adding a node shifts the successor state up by one,
    ``f_S(s' | s, 1) = f_S(s' - 1 | s, 0)`` (clipped at ``smax``).
    """
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise ValueError(f"pairs must have shape (K, 2), got {pairs.shape}")
    if pairs.shape[0] == 0:
        raise ValueError("at least one observed transition is required")
    if pairs.min() < 0 or pairs.max() > smax:
        raise ValueError("transition outside the state space")
    # Vectorized count aggregation: at fleet scale (B x T pairs) the
    # per-triple Python loop of the EmpiricalSystemModel constructor would
    # dominate the fit.
    num_states = smax + 1
    counts = np.full((2, num_states, num_states), smoothing, dtype=float)
    np.add.at(counts[0], (pairs[:, 0], pairs[:, 1]), 1.0)
    np.add.at(counts[1], (pairs[:, 0], np.minimum(pairs[:, 1] + 1, smax)), 1.0)
    return EmpiricalSystemModel.from_counts(
        counts, f=f, epsilon_a=epsilon_a, num_observed=2 * pairs.shape[0]
    )


def fit_system_model_from_env(
    env: FleetVectorEnv,
    f: int | None = None,
    epsilon_a: float = 0.9,
    smoothing: float = 0.5,
) -> EmpiricalSystemModel:
    """Fit ``f_S`` from the transitions a rolled-out fleet env accumulated."""
    if f is None:
        f = env.scenario.f
    if f is None:
        raise ValueError("pass f explicitly or use a scenario that defines it")
    return fit_system_model_from_pairs(
        env.system_state_transitions(),
        smax=env.num_nodes,
        f=f,
        epsilon_a=epsilon_a,
        smoothing=smoothing,
    )


def fit_system_models_per_class(
    env: FleetVectorEnv,
    f: int | None = None,
    epsilon_a: float = 0.9,
    smoothing: float = 0.5,
) -> dict[str, EmpiricalSystemModel]:
    """Fit one empirical ``f_S`` per container class of a mixed fleet.

    The per-class counterpart of :func:`fit_system_model_from_env`: each
    class's kernel is estimated from the
    :meth:`~repro.envs.FleetVectorEnv.class_state_transitions` pairs of its
    own sub-fleet, over the sub-fleet state space ``{0, ..., count_c}``.
    This is what makes the fitted dynamics of a mixed fleet inspectable
    class by class (a vulnerable image's kernel drifts toward low states
    much faster than a hardened one's) instead of being averaged into one
    fleet-wide kernel.

    Args:
        env: A rolled-out fleet environment over a labelled scenario.
        f: Tolerance threshold recorded on each class model, clipped to the
            class size; defaults to the scenario's ``f``.
        epsilon_a: Availability bound recorded on the models.
        smoothing: Laplace smoothing mass per transition count.
    """
    if f is None:
        f = env.scenario.f
    if f is None:
        raise ValueError("pass f explicitly or use a scenario that defines it")
    class_slots = env.scenario.class_slots()
    models: dict[str, EmpiricalSystemModel] = {}
    for label, pairs in env.class_state_transitions().items():
        count = int(len(class_slots[label]))
        models[label] = fit_system_model_from_pairs(
            pairs,
            smax=count,
            f=min(f, count),
            epsilon_a=epsilon_a,
            smoothing=smoothing,
        )
    return models


def fresh_node_survival_from_model(model: EmpiricalSystemModel) -> float:
    """Empirical per-node survival weight ``q_c`` from a class's fitted kernel.

    Computes the stationary distribution of the class sub-fleet's passive
    kernel ``\\hat{f}_{S,c}(. | ., 0)`` and returns the long-run expected
    per-node health

    .. math::

        q_c = \\frac{1}{count_c} \\, \\mathbb{E}_{\\pi_c}[s],

    the probability that a node of this class is healthy at a random step
    of its renewal cycle (compromise, crash, recovery included).  This is
    the empirically identifiable weight the class-aware add kernels put on
    the Eq. 8 shift: it measures what an added node of the class is worth
    to the healthy count in the average-cost sense, and it separates a
    hardened image from a vulnerable one even when neither sub-fleet ever
    visits its full-health state (where a one-step estimate would read
    pure smoothing mass).  The model-based one-step counterpart is
    :func:`repro.core.system_model.fresh_node_survival`.
    """
    count = model.smax
    if count < 1:
        raise ValueError("the class sub-fleet must have at least one node")
    # The passive kernel is the chain induced by the all-wait policy; the
    # hardened solver helper supplies the non-finite/degenerate guards.
    distribution = policy_stationary_distribution(
        model, np.zeros(model.num_states, dtype=int)
    )
    expected = float(distribution @ np.arange(model.num_states))
    return float(np.clip(expected / count, 0.0, 1.0))


def fit_class_aware_system_model(
    env: FleetVectorEnv,
    f: int | None = None,
    epsilon_a: float = 0.9,
    smoothing: float = 0.5,
    survival_probabilities: dict[str, float] | None = None,
    add_costs: dict[str, float] | None = None,
) -> ClassAwareSystemModel:
    """Fit the class-indexed replication CMDP of a rolled-out mixed fleet.

    The class-aware counterpart of :func:`fit_system_model_from_env`: the
    fleet-wide passive kernel ``\\hat{f}_S(. | s, 0)`` comes from the
    global state pairs, and each class's add kernel weights the Eq. 8
    shift by the class's fresh-node survival — estimated, by default, from
    the per-class empirical fits of :func:`fit_system_models_per_class`
    (a hardened image's sub-fleet kernel certifies a higher survival than
    a vulnerable one's).  The result feeds the class-indexed Algorithm 2
    (:func:`~repro.solvers.cmdp.solve_class_aware_replication_lp` /
    :func:`~repro.solvers.cmdp.solve_class_aware_replication_lagrangian`).

    Args:
        env: A rolled-out fleet environment over a labelled scenario.
        f: Tolerance threshold; defaults to the scenario's.
        epsilon_a: Availability bound recorded on the model.
        smoothing: Laplace smoothing mass per transition count.
        survival_probabilities: Optional per-class survival overrides
            (skips the empirical estimate for the named classes).
        add_costs: Optional extra per-step cost per class (e.g. the
            class's ``eta``-weighted deployment price).
    """
    base = fit_system_model_from_env(
        env, f=f, epsilon_a=epsilon_a, smoothing=smoothing
    )
    class_models = fit_system_models_per_class(
        env, f=f, epsilon_a=epsilon_a, smoothing=smoothing
    )
    class_names = list(env.scenario.class_slots())
    overrides = survival_probabilities or {}
    survivals = [
        overrides.get(name, fresh_node_survival_from_model(class_models[name]))
        for name in class_names
    ]
    costs = None
    if add_costs is not None:
        unknown = set(add_costs) - set(class_names)
        if unknown:
            raise ValueError(
                f"add_costs name classes {sorted(unknown)} that the scenario "
                f"does not define (available: {class_names})"
            )
        costs = [0.0] + [float(add_costs.get(name, 0.0)) for name in class_names]
    return class_aware_system_model(
        base,
        class_names=class_names,
        survival_probabilities=survivals,
        add_costs=costs,
    )


def fit_system_model_from_trace(
    trace: SystemTrace,
    smax: int,
    f: int,
    epsilon_a: float = 0.9,
    smoothing: float = 0.5,
) -> EmpiricalSystemModel:
    """Fit ``f_S`` from a closed-loop trace with *observed* add actions."""
    triples = trace.transitions()
    return EmpiricalSystemModel(
        [(int(s), int(a), int(s_next)) for s, a, s_next in triples],
        smax=smax,
        f=f,
        epsilon_a=epsilon_a,
        smoothing=smoothing,
    )


def evaluate_replication_closed_loop(
    scenario: FleetScenario,
    num_envs: int,
    recovery_policy: VectorPolicy | RecoveryStrategy | BatchStrategy | Sequence,
    replication_strategy: ReplicationStrategy | None,
    seed: int | None = None,
    initial_nodes: int | None = None,
    k: int = 1,
    enforce_invariant: bool = True,
    engine: BatchRecoveryEngine | None = None,
) -> TwoLevelResult:
    """Closed-loop Monte-Carlo evaluation of a replication strategy.

    The batch-path counterpart of
    :func:`~repro.solvers.cmdp.evaluate_replication_strategy`: instead of
    the stationary distribution of the *modelled* chain, it measures the
    average node count ``J`` and availability ``T^(A)`` of the strategy
    against the actual two-level simulation dynamics.
    """
    controller = TwoLevelController(
        scenario,
        num_envs,
        recovery_policy,
        replication_strategy=replication_strategy,
        initial_nodes=initial_nodes,
        k=k,
        enforce_invariant=enforce_invariant,
        engine=engine,
    )
    return controller.run(seed=seed)


@dataclass(frozen=True)
class SystemIdentificationResult:
    """Outcome of one fit-solve-reevaluate loop.

    Attributes:
        model: The fitted empirical kernel ``\\hat{f}_S``.
        lp: Algorithm 2 solution on the fitted kernel.
        lagrangian: Theorem 2 mixture on the fitted kernel (``None`` when
            the relaxation is infeasible on the fitted model).
        closed_loop: Per-strategy closed-loop summaries, each a
            ``metric -> (mean, ci)`` mapping.  The ``never-add`` baseline
            is always present; ``lp`` only when the LP was feasible and
            ``lagrangian`` only when the relaxation succeeded — check
            membership (or :attr:`lp`/:attr:`lagrangian`) before indexing.
    """

    model: EmpiricalSystemModel
    lp: CMDPSolution
    lagrangian: LagrangianSolution | None
    closed_loop: dict[str, dict[str, tuple[float, float]]]


def identify_replication_strategies(
    scenario: FleetScenario,
    recovery_policy: VectorPolicy | RecoveryStrategy | BatchStrategy | Sequence,
    num_fit_episodes: int = 200,
    num_eval_episodes: int = 100,
    epsilon_a: float = 0.9,
    seed: int | None = 0,
    initial_nodes: int | None = None,
    k: int = 1,
    smoothing: float = 0.5,
    policy_cache: "PolicySolveCache | None | bool" = None,
) -> SystemIdentificationResult:
    """Full system-identification loop on the batched control plane.

    Estimates ``\\hat{f}_S`` from ``num_fit_episodes`` batched fleet
    episodes, solves Problem 2 on the estimate (LP and Lagrangian routes),
    and re-evaluates the resulting strategies in closed loop against the
    engine — all without touching the emulation testbed.

    Args:
        policy_cache: Where to look up previous solves of the fitted
            kernel.  ``None`` (default) uses the process-wide
            :data:`~repro.control.policy_cache.DEFAULT_POLICY_CACHE` —
            refits that reproduce an already-solved kernel (same counts,
            any episode order) skip the LP and Lagrangian solves entirely.
            Pass a :class:`~repro.control.policy_cache.PolicySolveCache`
            to scope caching, or ``False`` to always re-solve.
    """
    from ..envs.policies import StrategyPolicy
    from ..envs.rollout import rollout
    from .policy_cache import DEFAULT_POLICY_CACHE

    if scenario.f is None:
        raise ValueError("the scenario must define a tolerance threshold f")
    engine = BatchRecoveryEngine(scenario)
    policy: VectorPolicy = (
        recovery_policy
        if hasattr(recovery_policy, "act")
        else StrategyPolicy(recovery_policy)
    )

    fit_env = FleetVectorEnv(scenario, num_fit_episodes, engine)
    rollout(fit_env, policy, seed=seed)
    model = fit_system_model_from_env(
        fit_env, epsilon_a=epsilon_a, smoothing=smoothing
    )

    if policy_cache is None:
        policy_cache = DEFAULT_POLICY_CACHE
    if policy_cache is False:
        lp = solve_replication_lp(model)
        try:
            lagrangian = solve_replication_lagrangian(model)
        except ValueError:
            lagrangian = None
    else:
        lp = policy_cache.solve_lp(model)
        try:
            lagrangian = policy_cache.solve_lagrangian(model)
        except ValueError:
            lagrangian = None

    eval_seed = None if seed is None else seed + 1
    strategies: dict[str, ReplicationStrategy | None] = {"never-add": None}
    if lp.feasible:
        strategies["lp"] = lp.strategy
    if lagrangian is not None:
        strategies["lagrangian"] = lagrangian.strategy
    closed_loop = {
        name: evaluate_replication_closed_loop(
            scenario,
            num_eval_episodes,
            policy,
            strategy,
            seed=eval_seed,
            initial_nodes=initial_nodes,
            k=k,
            engine=engine,
        ).summary()
        for name, strategy in strategies.items()
    }
    return SystemIdentificationResult(
        model=model,
        lp=lp,
        lagrangian=lagrangian,
        closed_loop=closed_loop,
    )
