"""Closing the loop against the real protocol: controller-driven MinBFT.

Every other layer of the reproduction evaluates the two-level controller
against the *simulated* node model — availability ``T^(A)`` is computed from
the engine's failed mask, and the consensus substrate is exercised only by
its own unit tests.  This module welds the two together, the way the
TOLERANCE testbed does (Section VII, Fig. 17): a
:class:`ConsensusBackedFleet` maps controller slots to live
:class:`~repro.consensus.MinBFTReplica` instances so that every decision the
:class:`~repro.control.two_level.TwoLevelController` takes is mirrored onto
an actual protocol run —

* an **eviction** issues EVICT to the cluster (Fig. 17f), with the
  designated successor announcing the NEW-VIEW when the evictee led;
* a **replication add** (strategy-chosen or Prop. 1 emergency) issues JOIN
  plus state transfer for a fresh replica (Fig. 17e);
* a **node recovery** restarts the replica as a fresh container with a
  re-keyed USIG and state transfer (Section V-A);
* a **compromise** in the simulation flips the mirrored replica to
  Byzantine behaviour, corrupting its protocol messages for as long as the
  node model says it is compromised.

A :class:`~repro.consensus.ClientWorkload` streams requests through the
cluster the whole time, which yields **served availability** — the fraction
of client requests completing within a deadline — as the client-observed
counterpart of the controller-side time-average availability ``T^(A)``.
After every reconfiguration the safety invariants are audited
(:func:`~repro.consensus.audit_safety`): no two correct replicas' executed
logs diverge and no replica executed a request twice across recoveries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..consensus import (
    ByzantineBehavior,
    ClientWorkload,
    MinBFTCluster,
    MinBFTConfig,
    NetworkConfig,
    SafetyAuditResult,
    audit_safety,
)
from ..core.strategies import RecoveryStrategy, ReplicationStrategy
from ..envs.policies import VectorPolicy
from ..sim import FleetScenario
from ..sim.strategies import BatchStrategy
from .two_level import TwoLevelController, TwoLevelResult, TwoLevelStepEvent

__all__ = ["ConsensusLoopResult", "ConsensusSafetyError", "ConsensusBackedFleet"]


class ConsensusSafetyError(AssertionError):
    """A safety invariant was violated after a reconfiguration."""


@dataclass(frozen=True)
class ConsensusLoopResult:
    """Outcome of one controller-driven protocol run.

    Attributes:
        controller: The single-episode :class:`TwoLevelResult` of the
            driving controller (``availability`` is the controller-side
            ``T^(A)``).
        workload: Final workload statistics (:meth:`ClientWorkload.stats`),
            including ``served_availability``.
        audits: One :class:`SafetyAuditResult` per reconfiguration step.
        recoveries: Node recoveries mirrored onto the cluster.
        evictions: Evictions mirrored onto the cluster.
        additions: Replica additions mirrored onto the cluster.
        compromises: Byzantine-behaviour activations mirrored.
        skipped_evictions: Evictions *not* mirrored because they would have
            emptied the cluster (the controller's invariant normally
            prevents this; non-zero only with ``enforce_invariant=False``).
        final_membership: Replica ids alive at the end of the run.
    """

    controller: TwoLevelResult
    workload: dict[str, float]
    audits: tuple[SafetyAuditResult, ...]
    recoveries: int
    evictions: int
    additions: int
    compromises: int
    skipped_evictions: int
    final_membership: tuple[str, ...] = ()

    @property
    def availability(self) -> float:
        """Controller-side time-average availability ``T^(A)``."""
        return float(self.controller.availability[0])

    @property
    def served_availability(self) -> float:
        """Client-observed availability: served / due requests."""
        return float(self.workload["served_availability"])

    @property
    def safety_ok(self) -> bool:
        return all(audit.ok for audit in self.audits)


@dataclass
class _MirrorState:
    """Mutable bookkeeping of one run (slot map plus operation counters)."""

    slot_to_replica: dict[int, str] = field(default_factory=dict)
    recoveries: int = 0
    evictions: int = 0
    additions: int = 0
    compromises: int = 0
    skipped_evictions: int = 0
    audits: list[SafetyAuditResult] = field(default_factory=list)


class ConsensusBackedFleet:
    """Drive a live MinBFT cluster with the two-level controller.

    The controller runs exactly one episode (``num_envs=1``); its per-step
    decisions are mirrored onto the cluster through the ``on_step`` hook of
    :meth:`TwoLevelController.run` while a closed-loop client workload pumps
    requests between steps.

    Args:
        scenario: Fleet scenario (slot bank ``smax``, horizon, ``f``).
        recovery_policy: Node-level recovery policy or strategy.
        replication_strategy: System-level replication strategy.
        initial_nodes: Initial replication factor (defaults to the
            controller's ``2f + 1 + k``).
        k: Parallel-recovery limit; also the ``k`` of the cluster's hybrid
            quorum ``f = (N - 1 - k) / 2``.
        enforce_invariant: Forwarded to the controller.
        num_clients: Client population of the workload.
        pipeline: Outstanding requests per client.
        ticks_per_step: Protocol ticks pumped per controller step.
        deadline_ticks: Served-availability deadline; defaults to
            ``2 * ticks_per_step``.
        retry_interval: Client retransmission interval in ticks (0
            disables retries).
        checkpoint_interval: Cluster checkpoint interval ``cp``.
        network_config: Simulated-network configuration; defaults to a
            batched reliable network (batching keeps large request volumes
            cheap — one envelope per link per tick).
        strict: Raise :class:`ConsensusSafetyError` the moment a
            post-reconfiguration audit fails (on by default; the audit
            results are also returned either way).
    """

    def __init__(
        self,
        scenario: FleetScenario,
        recovery_policy: VectorPolicy | RecoveryStrategy | BatchStrategy,
        replication_strategy: ReplicationStrategy | None = None,
        initial_nodes: int | None = None,
        k: int = 1,
        enforce_invariant: bool = True,
        num_clients: int = 4,
        pipeline: int = 2,
        ticks_per_step: int = 20,
        deadline_ticks: int | None = None,
        retry_interval: int = 10,
        checkpoint_interval: int = 10,
        network_config: NetworkConfig | None = None,
        strict: bool = True,
    ) -> None:
        if ticks_per_step < 1:
            raise ValueError("ticks_per_step must be at least 1")
        self.controller = TwoLevelController(
            scenario,
            num_envs=1,
            recovery_policy=recovery_policy,
            replication_strategy=replication_strategy,
            initial_nodes=initial_nodes,
            k=k,
            enforce_invariant=enforce_invariant,
        )
        self.k = k
        self.num_clients = num_clients
        self.pipeline = pipeline
        self.ticks_per_step = ticks_per_step
        self.deadline_ticks = (
            deadline_ticks if deadline_ticks is not None else 2 * ticks_per_step
        )
        self.retry_interval = retry_interval
        self.checkpoint_interval = checkpoint_interval
        self.network_config = (
            network_config
            if network_config is not None
            else NetworkConfig(batch_messages=True)
        )
        self.strict = strict
        self.cluster: MinBFTCluster | None = None
        self.workload: ClientWorkload | None = None

    # -- the run -----------------------------------------------------------------------
    def run(self, seed: int | None = None, tick_seconds: float = 0.01) -> ConsensusLoopResult:
        """Run the closed loop; a fresh cluster and workload per call."""
        self.cluster = MinBFTCluster(
            num_replicas=self.controller.initial_nodes,
            config=MinBFTConfig(
                checkpoint_interval=self.checkpoint_interval, k=self.k
            ),
            network_config=self.network_config,
            seed=seed,
        )
        self.workload = ClientWorkload(
            self.cluster,
            num_clients=self.num_clients,
            pipeline=self.pipeline,
            deadline_ticks=self.deadline_ticks,
            retry_interval=self.retry_interval,
        )
        mirror = _MirrorState(
            slot_to_replica={
                slot: f"replica-{slot}"
                for slot in range(self.controller.initial_nodes)
            }
        )
        self.workload.start()
        self.workload.pump(self.ticks_per_step)

        def on_step(event: TwoLevelStepEvent) -> None:
            self._mirror_step(event, mirror)

        controller_result = self.controller.run(seed=seed, on_step=on_step)
        # Drain: give in-flight requests one deadline's worth of ticks.
        self.workload.pump(self.deadline_ticks)
        return ConsensusLoopResult(
            controller=controller_result,
            workload=self.workload.stats(tick_seconds),
            audits=tuple(mirror.audits),
            recoveries=mirror.recoveries,
            evictions=mirror.evictions,
            additions=mirror.additions,
            compromises=mirror.compromises,
            skipped_evictions=mirror.skipped_evictions,
            final_membership=tuple(self.cluster.membership),
        )

    # -- decision mirroring ------------------------------------------------------------
    def _mirror_step(self, event: TwoLevelStepEvent, mirror: _MirrorState) -> None:
        """Mirror one controller step onto the live cluster (episode 0)."""
        cluster = self.cluster
        assert cluster is not None and self.workload is not None
        mapping = mirror.slot_to_replica
        reconfigured = False

        # 1. Node-level recoveries: fresh container, re-keyed USIG, state
        #    transfer (Section V-A).  Recoveries of slots evicted in the
        #    same step are skipped — the eviction below supersedes them.
        recovered = np.flatnonzero(
            event.executed_recoveries[0] & ~event.crashed[0]
        )
        for slot in recovered:
            replica_id = mapping.get(int(slot))
            if replica_id is not None and replica_id in cluster.replicas:
                cluster.recover_replica(replica_id)
                mirror.recoveries += 1
                reconfigured = True

        # 2. Evictions (Fig. 17f): the node crashed in the node model and
        #    the system level deactivated its slot.
        for slot in np.flatnonzero(event.crashed[0]):
            replica_id = mapping.pop(int(slot), None)
            if replica_id is None or replica_id not in cluster.replicas:
                continue
            if len(cluster.replicas) <= 1:
                mirror.skipped_evictions += 1
                continue
            cluster.crash(replica_id)
            cluster.evict_replica(replica_id)
            mirror.evictions += 1
            reconfigured = True

        # 3. Additions (Fig. 17e): JOIN plus state transfer for the slot
        #    the controller activated (strategy add or emergency add).
        activated = int(event.activated[0])
        if activated >= 0:
            mapping[activated] = cluster.add_replica()
            mirror.additions += 1
            reconfigured = True

        # 4. Compromise sync: slots the node model marks failed (and not
        #    crashed — crashes were evicted above) act Byzantine until the
        #    controller recovers them.
        failed = event.failed[0] & event.active[0]
        for slot, replica_id in mapping.items():
            replica = cluster.replicas.get(replica_id)
            if replica is None:
                continue
            if failed[slot] and replica.byzantine is ByzantineBehavior.NONE:
                cluster.compromise(replica_id, ByzantineBehavior.ARBITRARY)
                mirror.compromises += 1

        # 5. Keep client traffic flowing through whatever membership the
        #    reconfigurations produced.
        self.workload.pump(self.ticks_per_step)

        # 6. Safety audit after every reconfiguration (Theorem 1): correct
        #    replicas' logs must stay prefix-consistent, and no request may
        #    have executed twice across recoveries.
        if reconfigured:
            audit = audit_safety(cluster)
            mirror.audits.append(audit)
            if self.strict and not audit.ok:
                raise ConsensusSafetyError(
                    f"safety violated after reconfiguration at step {event.t}: "
                    f"divergent={audit.divergent} duplicated={audit.duplicated}"
                )
