"""Sharded multi-process execution of the control-plane sweeps.

Every sweep in :mod:`repro.control.sweep` is embarrassingly parallel over
episodes: the engine's per-(episode, node) uniform streams and the system
controller's per-episode streams are independent children of one
``SeedSequence`` tree, and every per-episode metric is a row-wise
reduction.  This module fans that work out to worker processes:

* **Contiguous episode shards.**  ``num_envs`` episodes are partitioned
  into ``n_jobs`` contiguous ``[lo, hi)`` shards (:func:`shard_episodes`);
  each ``(scenario, cell, shard)`` triple is one work item on a process
  pool, so a grid with more cells than workers keeps every core busy.
* **Deterministic per-worker seed subtrees.**  The serial path consumes
  children ``0 .. B*N-1`` of ``SeedSequence(seed)`` for the engine
  (episode-major) and children ``B*N + b`` for episode ``b``'s system
  controller.  A worker reconstructs exactly the children its shard owns
  via the spawn-key identity ``SeedSequence(seed).spawn(n)[i] ==
  SeedSequence(seed, spawn_key=(i,))`` (:func:`spawned_child`) — no
  serial pre-spawn, no stream handoff — so **any shard count reproduces
  the single-process result bit for bit** under a fixed seed.
* **Shared-memory result arrays.**  The parent allocates one
  ``multiprocessing.shared_memory`` block per sweep with a named slot for
  every per-episode metric array (:class:`SharedResultStore`); workers
  attach and write their ``[lo, hi)`` rows in place.  Only tiny
  :class:`~repro.sim.kernels.EngineProfile` objects travel back through
  the pool — per-episode logs are never pickled.
* **Profile merge at join.**  Each shard runs with engine profiling and
  the parent folds the per-shard phase timings into one profile per cell
  via :meth:`~repro.sim.kernels.EngineProfile.merge`.

``seed=None`` draws fresh OS entropy once in the parent (the run is
non-reproducible, matching the serial convention, but all shards still
share one tree).  Strategies, policies and scenarios must be picklable —
everything the repo ships is; ad-hoc lambdas are not.

The entry points are the ``n_jobs=`` parameters of
:func:`~repro.control.sweep.engine_fleet_sweep`,
:func:`~repro.control.sweep.closed_loop_sweep`,
:func:`~repro.control.sweep.mixed_closed_loop_sweep` and
:func:`~repro.control.sweep.attacker_intensity_sweep`;
``benchmarks/bench_parallel_sweep.py`` asserts the bit-exact parity and
the multi-core speedup.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Mapping, Sequence

import numpy as np

from ..sim import BatchRecoveryEngine, BatchSimulationResult, FleetScenario
from ..sim.adversary import draw_adversary_uniforms
from ..sim.kernels import EngineProfile
from .two_level import TwoLevelController, TwoLevelResult
from .vector_system import strategy_consumes_rng

__all__ = [
    "validate_n_jobs",
    "shard_episodes",
    "resolve_root_entropy",
    "spawned_child",
    "shard_uniforms",
    "SharedResultStore",
    "parallel_closed_loop_table",
    "parallel_engine_sweep_table",
]


# -- sharding and seeding contract -----------------------------------------------
def validate_n_jobs(n_jobs: int) -> int:
    """Validate the worker count of a parallel entry point.

    Raises:
        ValueError: Named ``n_jobs`` error for non-integers and values
            below 1 (the satellite contract of the parallel API).
    """
    if isinstance(n_jobs, bool) or not isinstance(n_jobs, (int, np.integer)):
        raise ValueError(f"n_jobs must be an integer >= 1, got {n_jobs!r}")
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
    return int(n_jobs)


def shard_episodes(num_episodes: int, num_shards: int) -> list[tuple[int, int]]:
    """Partition ``B`` episodes into contiguous ``[lo, hi)`` shards.

    Shard sizes differ by at most one episode; when there are more shards
    than episodes the surplus shards are dropped (never empty ranges).
    """
    if num_episodes < 1:
        raise ValueError(f"num_episodes must be >= 1, got {num_episodes}")
    num_shards = min(validate_n_jobs(num_shards), num_episodes)
    base, extra = divmod(num_episodes, num_shards)
    bounds: list[tuple[int, int]] = []
    lo = 0
    for index in range(num_shards):
        hi = lo + base + (1 if index < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def resolve_root_entropy(seed: int | None) -> int:
    """Entropy of the shared root ``SeedSequence`` of one sweep.

    An integer seed is its own entropy (``SeedSequence(seed)``); ``None``
    draws OS entropy once in the parent so that every shard of the run
    still descends from one tree (the run itself is non-reproducible,
    matching the serial ``seed=None`` convention).
    """
    if seed is None:
        return np.random.SeedSequence().entropy
    return seed


def spawned_child(entropy: int, index: int) -> np.random.SeedSequence:
    """Child ``index`` of ``SeedSequence(entropy)``, without spawning.

    The spawn-key identity ``SeedSequence(e).spawn(n)[i] ==
    SeedSequence(e, spawn_key=(i,))`` lets every worker reconstruct
    exactly the subtree its shard owns without replaying the serial
    spawn sequence — the contract that makes sharded randomness
    bit-identical to the single-process run.
    """
    return np.random.SeedSequence(entropy, spawn_key=(index,))


def shard_uniforms(
    entropy: int, lo: int, hi: int, num_nodes: int, width: int
) -> np.ndarray:
    """Engine uniform rows for episodes ``[lo, hi)`` of the full batch.

    Reproduces rows ``lo:hi`` of
    :meth:`~repro.sim.BatchRecoveryEngine.draw_uniforms` for the same
    seed: stream ``(b, j)`` is child ``b * N + j`` of the root
    (episode-major), so a shard regenerates only its own streams.
    """
    count = (hi - lo) * num_nodes
    buffer = np.empty((count, width))
    start = lo * num_nodes
    for row in range(count):
        buffer[row] = np.random.default_rng(
            spawned_child(entropy, start + row)
        ).random(width)
    return buffer.reshape(hi - lo, num_nodes, width)


# -- shared-memory result arrays --------------------------------------------------
@dataclass(frozen=True)
class _ArraySpec:
    """Placement of one named result array inside the shared block."""

    offset: int
    shape: tuple[int, ...]
    dtype: str


class SharedResultStore:
    """Named per-episode result arrays backed by one shared-memory block.

    The parent :meth:`allocate`\\ s the block from a ``key -> (shape,
    dtype)`` layout before the pool starts; workers :meth:`attach` via the
    picklable :meth:`descriptor` and write their episode rows in place —
    the join step never unpickles a result array.  Keys are arbitrary
    hashable tuples (the sweeps use ``(scenario_index, cell_index,
    metric)``).
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        specs: dict,
        owner: bool,
    ) -> None:
        self._shm = shm
        self._specs = specs
        self._owner = owner

    @classmethod
    def allocate(cls, layout: Mapping) -> "SharedResultStore":
        """Create the block for a ``key -> (shape, dtype)`` layout."""
        specs: dict = {}
        offset = 0
        for key, (shape, dtype) in layout.items():
            dtype = np.dtype(dtype)
            size = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
            # 8-byte alignment keeps every float64/int64 view aligned.
            offset = (offset + 7) // 8 * 8
            specs[key] = _ArraySpec(offset, tuple(int(s) for s in shape), dtype.str)
            offset += size
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        return cls(shm, specs, owner=True)

    def descriptor(self) -> tuple[str, dict]:
        """Picklable ``(name, specs)`` handle workers attach with."""
        return self._shm.name, self._specs

    @classmethod
    def attach(
        cls, descriptor: tuple[str, dict], unregister: bool = False
    ) -> "SharedResultStore":
        """Attach to a block allocated by the parent (worker side).

        Python < 3.13 registers every attach with the process's resource
        tracker.  Under ``fork`` the tracker is shared with the parent, so
        the duplicate registration is a set no-op and the parent's
        ``unlink`` settles the books.  Under ``spawn``/``forkserver`` the
        worker has its *own* tracker, which would try to unlink the
        parent-owned block again at worker exit — pass
        ``unregister=True`` there to drop the spurious registration.
        """
        name, specs = descriptor
        shm = shared_memory.SharedMemory(name=name)
        if unregister:
            try:  # pragma: no cover - depends on interpreter internals
                from multiprocessing import resource_tracker

                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:
                pass
        return cls(shm, specs, owner=False)

    def array(self, key) -> np.ndarray:
        """NumPy view of one named array inside the block."""
        spec = self._specs[key]
        return np.ndarray(
            spec.shape, dtype=np.dtype(spec.dtype), buffer=self._shm.buf, offset=spec.offset
        )

    def keys(self):
        return self._specs.keys()

    def close(self) -> None:
        """Detach; the owning (parent) handle also unlinks the block."""
        try:
            self._shm.close()
        finally:
            if self._owner:
                self._shm.unlink()


# -- worker-side execution ---------------------------------------------------------
#: Per-worker state set up by the pool initializer: the sweep spec, the
#: attached result store, and memos for compiled engines / uniform shards
#: so multiple cells of one scenario reuse them within a worker.
_WORKER: dict = {}


@dataclass(frozen=True)
class _ClosedLoopSpec:
    """Everything a worker needs to run closed-loop shards (picklable)."""

    scenarios: tuple  # ((key, FleetScenario), ...)
    cells: tuple  # (ClosedLoopCell, ...)
    num_envs: int
    k: int
    initial_nodes: tuple  # one entry (int | None) per scenario
    entropy: int
    store: tuple  # SharedResultStore descriptor
    profile: bool


@dataclass(frozen=True)
class _EngineSweepSpec:
    """Everything a worker needs to run engine-sweep shards (picklable)."""

    scenarios: tuple  # ((key, FleetScenario), ...)
    strategies: tuple  # ((name, strategy), ...)
    num_episodes: int
    entropy: int
    store: tuple
    profile: bool


def _init_worker(spec, store=None, unregister: bool = False) -> None:
    _WORKER.clear()
    _WORKER["spec"] = spec
    # The in-process path hands the parent-owned store straight in; pool
    # workers attach via the picklable descriptor.
    _WORKER["store"] = (
        store
        if store is not None
        else SharedResultStore.attach(spec.store, unregister=unregister)
    )
    _WORKER["engines"] = {}
    _WORKER["uniforms"] = {}


def _worker_engine(scenario_index: int, scenario: FleetScenario) -> BatchRecoveryEngine:
    engines = _WORKER["engines"]
    engine = engines.get(scenario_index)
    if engine is None:
        engine = engines[scenario_index] = BatchRecoveryEngine(scenario)
    return engine


def _worker_uniforms(
    entropy: int, lo: int, hi: int, num_nodes: int, width: int
) -> np.ndarray:
    # Keyed by stream geometry, not scenario index: scenarios that share
    # (N, width) — every n1 of a closed-loop sweep, every intensity of an
    # attacker sweep — consume identical uniform streams.
    memo = _WORKER["uniforms"]
    key = (lo, hi, num_nodes, width)
    uniforms = memo.get(key)
    if uniforms is None:
        uniforms = shard_uniforms(entropy, lo, hi, num_nodes, width)
        memo.clear()  # one live shard buffer per worker bounds memory
        memo[key] = uniforms
    return uniforms


def _shard_adversary_uniforms(
    engine: BatchRecoveryEngine, entropy: int, lo: int, hi: int
) -> np.ndarray | None:
    """Adversary uniform rows for episodes ``[lo, hi)`` of the full batch.

    Rows of the adversary buffer are per-episode streams (salted
    ``SeedSequence`` per episode, see :mod:`repro.sim.adversary`), so a
    shard regenerates exactly its own slice of the monolithic draw.  The
    buffers are small (``(hi - lo, horizon, K)``) and adversary-dependent,
    so they deliberately bypass the geometry-keyed engine-uniform memo.
    """
    if not engine.is_dynamic:
        return None
    scenario = engine.scenario
    return draw_adversary_uniforms(
        engine.adversary, entropy, lo, hi, scenario.num_nodes, scenario.horizon
    )


def _run_closed_loop_shard(task: tuple[int, int, int, int]):
    scenario_index, cell_index, lo, hi = task
    spec: _ClosedLoopSpec = _WORKER["spec"]
    store: SharedResultStore = _WORKER["store"]
    key, scenario = spec.scenarios[scenario_index]
    cell = spec.cells[cell_index]
    engine = _worker_engine(scenario_index, scenario)
    uniforms = _worker_uniforms(
        spec.entropy, lo, hi, scenario.num_nodes, 2 * scenario.horizon
    )
    controller = TwoLevelController(
        scenario,
        hi - lo,
        cell.recovery,
        replication_strategy=cell.replication,
        initial_nodes=spec.initial_nodes[scenario_index],
        k=spec.k,
        enforce_invariant=cell.enforce_invariant,
        respect_recovery_limit=cell.respect_recovery_limit,
        engine=engine,
    )
    sequences = None
    if cell.replication is not None and strategy_consumes_rng(cell.replication):
        # The serial run hands child B*N + b to episode b's controller.
        offset = spec.num_envs * scenario.num_nodes
        sequences = [spawned_child(spec.entropy, offset + b) for b in range(lo, hi)]
    result = controller.run(
        uniforms=uniforms,
        system_seed_sequences=sequences,
        profile=spec.profile,
        adversary_uniforms=_shard_adversary_uniforms(engine, spec.entropy, lo, hi),
    )
    for metric in _CLOSED_LOOP_METRICS:
        store.array((scenario_index, cell_index, metric))[lo:hi] = getattr(
            result, metric
        )
    if result.class_average_cost is not None:
        for label, values in result.class_average_cost.items():
            store.array((scenario_index, cell_index, "class_cost", label))[lo:hi] = values
        for label, values in result.class_recovery_frequency.items():
            store.array((scenario_index, cell_index, "class_recovery", label))[
                lo:hi
            ] = values
    return scenario_index, cell_index, result.steps, result.profile


def _run_engine_shard(task: tuple[int, int, int, int]):
    scenario_index, strategy_index, lo, hi = task
    spec: _EngineSweepSpec = _WORKER["spec"]
    store: SharedResultStore = _WORKER["store"]
    key, scenario = spec.scenarios[scenario_index]
    _, strategy = spec.strategies[strategy_index]
    engine = _worker_engine(scenario_index, scenario)
    uniforms = _worker_uniforms(
        spec.entropy, lo, hi, scenario.num_nodes, 2 * scenario.horizon
    )
    result = engine.run(
        strategy,
        uniforms=uniforms,
        profile=spec.profile or None,
        adversary_uniforms=_shard_adversary_uniforms(engine, spec.entropy, lo, hi),
    )
    for metric in _ENGINE_METRICS:
        store.array((scenario_index, strategy_index, metric))[lo:hi] = getattr(
            result, metric
        )
    if result.availability is not None:
        store.array((scenario_index, strategy_index, "availability"))[lo:hi] = (
            result.availability
        )
    return scenario_index, strategy_index, result.steps, result.profile


#: Per-episode metric fields of a TwoLevelResult, with their dtypes.
_CLOSED_LOOP_METRICS: dict[str, str] = {
    "availability": "<f8",
    "average_nodes": "<f8",
    "average_cost": "<f8",
    "recovery_frequency": "<f8",
    "additions": "<i8",
    "emergency_additions": "<i8",
    "evictions": "<i8",
}

#: Per-(episode, node) metric fields of a BatchSimulationResult.
_ENGINE_METRICS: dict[str, str] = {
    "average_cost": "<f8",
    "time_to_recovery": "<f8",
    "recovery_frequency": "<f8",
    "num_recoveries": "<i8",
    "num_compromises": "<i8",
}


# -- parent-side drivers -----------------------------------------------------------
def _pool_context():
    """Prefer fork (cheap start, inherited imports); fall back to spawn."""
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


def _plan_shards(num_episodes: int, n_jobs: int, num_pairs: int) -> list[tuple[int, int]]:
    """Choose the episode-shard count for a grid of ``num_pairs`` cells.

    Every (scenario, cell) pair is already an independent task, and each
    episode shard pays the full horizon loop's fixed per-step cost — the
    vectorized engine's step time is ``c + B * m`` with the constant ``c``
    dominating at small ``B``.  So episodes are split only as much as
    needed to keep ``n_jobs`` workers busy: ``ceil(n_jobs / num_pairs)``
    shards per pair (at least one; capped at ``num_episodes``).  Any shard
    count yields the bit-identical table — this only decides wall-clock.
    """
    if n_jobs <= 1:
        return [(0, num_episodes)]
    per_pair = -(-n_jobs // max(num_pairs, 1))
    return shard_episodes(num_episodes, per_pair)


def _effective_jobs(n_jobs: int, num_tasks: int) -> int:
    return max(1, min(n_jobs, num_tasks, (os.cpu_count() or 1) * 4))


def parallel_closed_loop_table(
    scenarios: Sequence[tuple[object, FleetScenario]],
    cells: Sequence,
    num_envs: int,
    seed: int | None,
    k: int,
    initial_nodes: int | None | Sequence[int | None],
    n_jobs: int,
    profile: bool = False,
) -> dict:
    """Run a keyed closed-loop sweep grid across worker processes.

    The sharded counterpart of the serial ``_run_cells`` loops in
    :mod:`repro.control.sweep`: every ``(scenario, cell)`` pair's
    ``num_envs`` episodes are split into contiguous shards, each shard
    runs a :class:`~repro.control.two_level.TwoLevelController` over its
    own seed subtree, per-episode metrics land in shared memory, and the
    join assembles one :class:`~repro.control.two_level.TwoLevelResult`
    per pair with the shards' engine profiles merged.  Bit-identical to
    the serial table for any ``n_jobs`` under a fixed seed.
    """
    n_jobs = validate_n_jobs(n_jobs)
    scenarios = tuple((key, scenario) for key, scenario in scenarios)
    cells = tuple(cells)
    if not scenarios or not cells:
        return {}
    if isinstance(initial_nodes, (list, tuple)):
        initial = tuple(initial_nodes)
        if len(initial) != len(scenarios):
            raise ValueError(
                f"need one initial_nodes entry per scenario "
                f"({len(scenarios)}), got {len(initial)}"
            )
    else:
        initial = (initial_nodes,) * len(scenarios)
    entropy = resolve_root_entropy(seed)
    shards = _plan_shards(num_envs, n_jobs, len(scenarios) * len(cells))

    layout: dict = {}
    class_labels: dict[int, list[str]] = {}
    for i, (_, scenario) in enumerate(scenarios):
        labels = list(scenario.class_slots()) if scenario.node_labels is not None else []
        class_labels[i] = labels
        for j in range(len(cells)):
            for metric, dtype in _CLOSED_LOOP_METRICS.items():
                layout[(i, j, metric)] = ((num_envs,), dtype)
            for label in labels:
                layout[(i, j, "class_cost", label)] = ((num_envs,), "<f8")
                layout[(i, j, "class_recovery", label)] = ((num_envs,), "<f8")

    store = SharedResultStore.allocate(layout)
    # Shard geometry varies slowest so consecutive tasks on one worker hit
    # its uniform-buffer memo across cells.
    tasks = [
        (i, j, lo, hi)
        for i in range(len(scenarios))
        for lo, hi in shards
        for j in range(len(cells))
    ]
    spec = _ClosedLoopSpec(
        scenarios=scenarios,
        cells=cells,
        num_envs=num_envs,
        k=k,
        initial_nodes=initial,
        entropy=entropy,
        store=store.descriptor(),
        profile=profile,
    )
    try:
        outcomes = _map_tasks(spec, _run_closed_loop_shard, tasks, n_jobs, store)
        table: dict = {}
        for i, (key, scenario) in enumerate(scenarios):
            for j, cell in enumerate(cells):
                steps = max(
                    s for si, sj, s, _ in outcomes if (si, sj) == (i, j)
                )
                merged = EngineProfile.merge(
                    *(p for si, sj, _, p in outcomes if (si, sj) == (i, j))
                )
                labels = class_labels[i]
                table[(key, cell.name)] = TwoLevelResult(
                    **{
                        metric: store.array((i, j, metric)).copy()
                        for metric in _CLOSED_LOOP_METRICS
                    },
                    steps=steps,
                    class_average_cost=(
                        {
                            label: store.array((i, j, "class_cost", label)).copy()
                            for label in labels
                        }
                        if labels
                        else None
                    ),
                    class_recovery_frequency=(
                        {
                            label: store.array((i, j, "class_recovery", label)).copy()
                            for label in labels
                        }
                        if labels
                        else None
                    ),
                    profile=merged if profile else None,
                )
        return table
    finally:
        store.close()


def parallel_engine_sweep_table(
    scenarios: Sequence[tuple[object, FleetScenario]],
    strategies: Mapping,
    num_episodes: int,
    seed: int | None,
    n_jobs: int,
    profile: bool = False,
) -> dict:
    """Run a keyed node-POMDP engine sweep across worker processes.

    The sharded counterpart of
    :func:`~repro.control.sweep.engine_fleet_sweep`'s inner loop: each
    shard replays its episode rows of the shared uniform buffer through
    :meth:`~repro.sim.BatchRecoveryEngine.run`, writes the per-(episode,
    node) statistics into shared memory, and the join assembles
    bit-identical :class:`~repro.sim.BatchSimulationResult` tables.
    """
    n_jobs = validate_n_jobs(n_jobs)
    scenarios = tuple((key, scenario) for key, scenario in scenarios)
    strategy_items = tuple(strategies.items())
    if not scenarios or not strategy_items:
        return {}
    entropy = resolve_root_entropy(seed)
    shards = _plan_shards(num_episodes, n_jobs, len(scenarios) * len(strategy_items))

    layout: dict = {}
    for i, (_, scenario) in enumerate(scenarios):
        for j in range(len(strategy_items)):
            for metric, dtype in _ENGINE_METRICS.items():
                layout[(i, j, metric)] = ((num_episodes, scenario.num_nodes), dtype)
            if scenario.f is not None:
                layout[(i, j, "availability")] = ((num_episodes,), "<f8")

    store = SharedResultStore.allocate(layout)
    tasks = [
        (i, j, lo, hi)
        for i in range(len(scenarios))
        for lo, hi in shards
        for j in range(len(strategy_items))
    ]
    spec = _EngineSweepSpec(
        scenarios=scenarios,
        strategies=strategy_items,
        num_episodes=num_episodes,
        entropy=entropy,
        store=store.descriptor(),
        profile=profile,
    )
    try:
        outcomes = _map_tasks(spec, _run_engine_shard, tasks, n_jobs, store)
        table: dict = {}
        for i, (key, scenario) in enumerate(scenarios):
            for j, (name, _) in enumerate(strategy_items):
                steps = max(s for si, sj, s, _ in outcomes if (si, sj) == (i, j))
                merged = EngineProfile.merge(
                    *(p for si, sj, _, p in outcomes if (si, sj) == (i, j))
                )
                table[(key, name)] = BatchSimulationResult(
                    **{
                        metric: store.array((i, j, metric)).copy()
                        for metric in _ENGINE_METRICS
                    },
                    steps=steps,
                    availability=(
                        store.array((i, j, "availability")).copy()
                        if scenario.f is not None
                        else None
                    ),
                    profile=merged if profile else None,
                )
        return table
    finally:
        store.close()


def _map_tasks(spec, runner, tasks, n_jobs: int, store: SharedResultStore) -> list:
    """Run the shard tasks on a worker pool (in-process when pointless).

    A single worker — or a single task — skips the pool entirely and runs
    the identical shard code in-process against the parent-owned store,
    which keeps ``n_jobs=2`` usable on one-core machines for parity
    testing without fork overhead dominating.
    """
    jobs = _effective_jobs(n_jobs, len(tasks))
    if jobs == 1:
        _init_worker(spec, store=store)
        try:
            return [runner(task) for task in tasks]
        finally:
            _WORKER.clear()
    context = _pool_context()
    unregister = context.get_start_method() != "fork"
    with context.Pool(
        jobs, initializer=_init_worker, initargs=(spec, None, unregister)
    ) as pool:
        return pool.map(runner, tasks)
