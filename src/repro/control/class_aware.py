"""Per-class recovery-deadline optimization (Algorithm 1 per node class).

The BTR deadline ``Delta_R`` is a *constraint* of the node-level recovery
POMDP (Eq. 6b), but on a mixed fleet there is no reason every container
class should run the same one: a vulnerable image benefits from a short
deadline (frequent forced refreshes bound the attacker's dwell time) while
a hardened image only pays the recovery cost.  This module closes that gap:

* :func:`optimize_class_deltas` runs Algorithm 1
  (:func:`~repro.solvers.parametric.solve_recovery_problem`, batch path,
  common random numbers across candidates) on **each class's own node
  POMDP** for every deadline in a grid, and picks the deadline whose
  optimized threshold strategy achieves the lowest estimated node cost;
* :func:`apply_class_deltas` routes the chosen deadlines back into a
  labelled :class:`~repro.sim.FleetScenario` (via
  :meth:`~repro.sim.FleetScenario.with_class_deltas`), so the closed-loop
  control plane — and the ``optimize_deltas`` mode of
  :func:`~repro.control.sweep.mixed_closed_loop_sweep` — runs every slot
  under its class's Algorithm-1-optimal deadline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

from ..solvers.optimizers import CrossEntropyMethod, ParametricOptimizer
from ..solvers.parametric import RecoverySolution, solve_recovery_problem

if TYPE_CHECKING:  # imported lazily to keep the package import graph acyclic
    from ..sim import FleetScenario, NodeClass

__all__ = ["ClassDeltaResult", "optimize_class_deltas", "apply_class_deltas"]


def _default_optimizer_factory() -> ParametricOptimizer:
    """A small CEM budget: the deadline grid multiplies the solve count."""
    return CrossEntropyMethod(population_size=30, iterations=8)


@dataclass(frozen=True)
class ClassDeltaResult:
    """Outcome of the per-class deadline search.

    Attributes:
        name: The container-class label.
        delta_r: The Algorithm-1-optimal BTR deadline for the class.
        estimated_cost: Estimated node cost ``J_i`` under the winning
            deadline's optimized threshold strategy.
        costs: Estimated cost per candidate deadline (the whole curve, for
            inspection/plotting).
        solution: The winning deadline's full Algorithm 1 solution
            (threshold strategy + optimizer diagnostics).
    """

    name: str
    delta_r: float
    estimated_cost: float
    costs: dict[float, float]
    solution: RecoverySolution


def optimize_class_deltas(
    classes: Sequence[NodeClass],
    delta_grid: Sequence[float],
    optimizer_factory: Callable[[], ParametricOptimizer] | None = None,
    horizon: int = 200,
    episodes_per_evaluation: int = 10,
    final_evaluation_episodes: int = 50,
    seed: int | None = 0,
) -> dict[str, ClassDeltaResult]:
    """Algorithm 1 per class x deadline: pick each class's best ``Delta_R``.

    Every ``(class, delta)`` cell solves the class's node POMDP with
    Algorithm 1 on the batch path under the candidate deadline; the same
    seed is shared across cells so deadline comparisons use common random
    numbers.  The search is exhaustive over ``delta_grid`` (the deadline is
    an integer-or-infinity constraint, not a continuous parameter — a grid
    is the honest search space).

    Args:
        classes: The node-class templates (e.g.
            :meth:`~repro.sim.FleetScenario.node_classes` of a mixed
            scenario).
        delta_grid: Candidate deadlines (positive integers and/or
            ``math.inf``).
        optimizer_factory: Builds a fresh parametric optimizer per cell;
            defaults to a small-budget CEM.
        horizon: Episode length of the Monte-Carlo cost estimator.
        episodes_per_evaluation: Episodes per objective evaluation.
        final_evaluation_episodes: Episodes scoring each cell's strategy.
        seed: Shared seed (common random numbers across cells).
    """
    if len(delta_grid) == 0:
        raise ValueError("delta_grid must contain at least one deadline")
    for delta in delta_grid:
        if delta != math.inf and (delta < 1 or int(delta) != delta):
            raise ValueError(
                f"deadlines must be positive integers or inf, got {delta}"
            )
    factory = optimizer_factory if optimizer_factory is not None else _default_optimizer_factory

    results: dict[str, ClassDeltaResult] = {}
    for node_class in classes:
        costs: dict[float, float] = {}
        best: tuple[float, RecoverySolution] | None = None
        for delta in delta_grid:
            solution = solve_recovery_problem(
                node_class.params.with_updates(delta_r=delta),
                node_class.observation_model,
                factory(),
                horizon=horizon,
                episodes_per_evaluation=episodes_per_evaluation,
                final_evaluation_episodes=final_evaluation_episodes,
                seed=seed,
                batch=True,
            )
            costs[float(delta)] = solution.estimated_cost
            if best is None or solution.estimated_cost < best[1].estimated_cost:
                best = (float(delta), solution)
        delta_r, solution = best
        results[node_class.name] = ClassDeltaResult(
            name=node_class.name,
            delta_r=delta_r,
            estimated_cost=solution.estimated_cost,
            costs=costs,
            solution=solution,
        )
    return results


def apply_class_deltas(
    scenario: FleetScenario,
    results: Mapping[str, ClassDeltaResult],
) -> FleetScenario:
    """Route optimized per-class deadlines back into a labelled scenario."""
    return scenario.with_class_deltas(
        {name: result.delta_r for name, result in results.items()}
    )
