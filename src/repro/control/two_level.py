"""Closed-loop two-level feedback control on the batched simulation path.

:class:`TwoLevelController` runs ``B`` fleet episodes of the paper's full
control architecture at once:

* **node level** — per-slot belief updates and recovery actions through a
  :class:`~repro.envs.VectorRecoveryEnv` over the bit-exact
  :class:`~repro.sim.BatchRecoveryEngine` (the controller computes its own
  active-masked CMDP states, so it skips
  :class:`~repro.envs.FleetVectorEnv`'s whole-fleet bookkeeping), with the
  ``k``-parallel-recovery limit of Proposition 1c granted to the most
  suspicious requests;
* **system level** — eviction, CMDP-state computation, replication
  decisions and the Prop. 1 emergency-add invariant through a
  :class:`~repro.control.vector_system.VectorSystemController` with a
  pluggable :class:`~repro.core.strategies.ReplicationStrategy` backend
  (threshold, Algorithm 2 LP, Theorem 2 Lagrangian mixture, or the learned
  PPO replication policy of :mod:`repro.control.replication_ppo`).

Node churn is mapped onto a fixed bank of ``smax`` engine slots: ``N_1``
slots start active, evicted/crashed slots deactivate, and additions claim
standby slots.  Standby slots recover on every step, so a newly activated
slot joins as a fresh healthy node with the prior belief ``p_A`` —
mirroring the testbed's fresh-container semantics.  Only active slots
contribute to the CMDP state, the fleet availability ``T^(A)``, the node
count ``N_t`` and the cost accounting.

Fleets may be heterogeneous (``FleetScenario.mixed``): every per-slot
quantity — the initial/reset belief ``p_{A,j}``, the BTR deadline
``Delta_{R,j}``, the cost weight ``eta_j`` and the observation model — is
threaded through the engine per slot, so a standby slot activates as a
fresh node of *its own* container class, never node 0's.  Labelled
scenarios additionally get per-class cost/recovery metrics on the result.

The system level is **class-aware** on such fleets: a replication strategy
that chooses *which* class to add
(:class:`~repro.core.strategies.ClassTabularReplicationStrategy`, the
class-indexed Algorithm 2 output, or any
:class:`~repro.core.strategies.ClassAwareReplicationStrategy`) has its
``add(c)`` decision activate the first free slot of class ``c``'s
sub-fleet on both run paths (falling back to any free slot when the
sub-fleet is exhausted); emergency adds stay classless.  Classless
strategies keep the first-free-slot behaviour unchanged.

:meth:`TwoLevelController.run_scalar_reference` executes the identical
closed loop one episode at a time with the scalar
:class:`~repro.core.system_controller.SystemController` — the decision
trace is bit-identical to the batched run under a shared seed (asserted in
``tests/test_control_plane.py``), and the wall-clock ratio between the two
is the control-plane speedup asserted in the Table 7 closed-loop benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..core.strategies import (
    RecoveryStrategy,
    ReplicationStrategy,
    strategy_is_class_aware,
)
from ..core.system_controller import SystemController
from ..envs.base import VectorObservation
from ..envs.policies import StrategyPolicy, VectorPolicy
from ..envs.vector_recovery import VectorRecoveryEnv
from ..sim import BatchRecoveryEngine, FleetScenario
from ..sim.kernels import EngineProfile
from ..sim.strategies import BatchStrategy
from ..core.metrics import summarize_metric_arrays
from .vector_system import (
    VectorSystemController,
    VectorSystemDecision,
    strategy_consumes_rng,
)

__all__ = [
    "SystemTrace",
    "TwoLevelResult",
    "TwoLevelStepEvent",
    "TwoLevelLoop",
    "TwoLevelController",
]


@dataclass(frozen=True)
class TwoLevelStepEvent:
    """One step of the batched closed loop, as seen by an ``on_step`` observer.

    :meth:`TwoLevelController.run` emits one event per step *after* the
    step's recoveries, evictions and additions have been applied.  The
    consensus integration (:mod:`repro.control.consensus_loop`) consumes the
    events to mirror every controller decision onto a live MinBFT cluster;
    the arrays are the controller's own working state — observers must not
    mutate them.

    Attributes:
        t: Step index, ``0 <= t < horizon``.
        executed_recoveries: Recoveries executed this step (granted
            voluntary plus BTR-forced, active slots only), shape ``(B, S)``.
        crashed: Slots that crashed this step (evicted by the system
            level), shape ``(B, S)``.
        failed: Ground-truth failed mask (compromised or crashed) after the
            step, shape ``(B, S)``.
        decision: The system level's full :class:`VectorSystemDecision`.
        activated: Slot activated by this step's addition per episode,
            shape ``(B,)``; ``-1`` where no slot was added.
        active: Active mask after evictions and additions, shape
            ``(B, S)``.
        available: Whether the step counted toward ``T^(A)``, shape
            ``(B,)``.
    """

    t: int
    executed_recoveries: np.ndarray
    crashed: np.ndarray
    failed: np.ndarray
    decision: VectorSystemDecision
    activated: np.ndarray
    active: np.ndarray
    available: np.ndarray


@dataclass(frozen=True)
class SystemTrace:
    """Per-step system-level trajectory of one batched closed-loop run.

    All arrays have shape ``(T, B)``.  The PPO replication trainer consumes
    the trace as its rollout buffer; the system-identification loop reads
    the ``(s_t, a_t, s_{t+1})`` transitions off it.

    Attributes:
        states: CMDP states ``s_t``.
        actions: Executed add decisions ``a_t`` (including emergency adds).
        add_probabilities: The strategy's ``pi(a=1 | s_t)`` per decision.
        forced: Steps where the executed action overrode the strategy
            (emergency add, or an add dropped at the ``smax`` cap).
        node_counts: Replication factors ``N_t`` after the step's
            evictions and additions.
        decision_counts: ``N_t`` at decision time (after evictions, before
            additions) — the count feature the learned policy conditions on.
        available: Whether at most ``f`` active nodes were failed.
        add_classes: Chosen container-class indices, shape ``(T, B)`` with
            ``-1`` where no class was chosen; ``None`` for classless
            strategies.
        action_probabilities: Full per-action distributions the decisions
            were sampled from, shape ``(T, B, 1 + C)``; ``None`` for
            classless strategies.  The class-aware PPO replication trainer
            reads its old-policy probabilities off this.
    """

    states: np.ndarray
    actions: np.ndarray
    add_probabilities: np.ndarray
    forced: np.ndarray
    node_counts: np.ndarray
    decision_counts: np.ndarray
    available: np.ndarray
    add_classes: np.ndarray | None = None
    action_probabilities: np.ndarray | None = None

    def transitions(self) -> np.ndarray:
        """Observed ``(s_t, a_t, s_{t+1})`` triples, shape ``(K, 3)``.

        The empirical input of Algorithm 2's system-identification step:
        aggregate into counts to fit ``f_S`` from closed-loop simulation
        instead of testbed traces (see :mod:`repro.control.sysid`).
        """
        if self.states.shape[0] < 2:
            return np.empty((0, 3), dtype=np.int64)
        return np.stack(
            [
                self.states[:-1].ravel(),
                self.actions[:-1].astype(np.int64).ravel(),
                self.states[1:].ravel(),
            ],
            axis=1,
        )


@dataclass(frozen=True)
class TwoLevelResult:
    """Per-episode outcome of one closed-loop two-level run.

    All arrays have shape ``(B,)``; metrics follow the Table 7 conventions.

    Attributes:
        availability: Fleet availability ``T^(A)``: the fraction of steps
            with at most ``f`` failed active nodes **and** a consensus
            quorum ``N_t >= 2f + 1`` in place.  The quorum conjunct
            matters under dynamic membership — a fleet evicted down to one
            node trivially satisfies ``failed <= f`` but cannot serve
            requests (Prop. 1d); fixed-size backends
            (:class:`~repro.sim.BatchSimulationResult`) omit it because
            their ``N`` never changes.
        average_nodes: Average replication factor ``J`` (Eq. 9 cost).
        average_cost: Node-level Eq. 5 cost per active slot-step.
        recovery_frequency: Executed recoveries per active slot-step.
        additions: Node additions requested by the system level.
        emergency_additions: Additions forced by the Prop. 1 invariant.
        evictions: Evicted (crashed) nodes.
        steps: Episode length.
        class_average_cost: Per-class Eq. 5 cost per active slot-step,
            one ``(B,)`` array per node class — present only for labelled
            (mixed) scenarios, else ``None``.
        class_recovery_frequency: Per-class executed recoveries per active
            slot-step, same convention.
        profile: Engine per-phase wall-clock accounting, when the run was
            requested with ``run(..., profile=True)``; the sharded sweeps
            (:mod:`repro.control.parallel`) merge per-shard profiles into
            this field at join.  Else ``None``.
    """

    availability: np.ndarray
    average_nodes: np.ndarray
    average_cost: np.ndarray
    recovery_frequency: np.ndarray
    additions: np.ndarray
    emergency_additions: np.ndarray
    evictions: np.ndarray
    steps: int
    class_average_cost: dict[str, np.ndarray] | None = None
    class_recovery_frequency: dict[str, np.ndarray] | None = None
    profile: "EngineProfile | None" = None

    @property
    def num_episodes(self) -> int:
        return int(self.availability.shape[0])

    def summary(self, confidence: float = 0.95) -> dict[str, tuple[float, float]]:
        """Aggregate ``(mean, ci)`` pairs across episodes."""
        return summarize_metric_arrays(
            {
                "availability": self.availability,
                "average_nodes": self.average_nodes,
                "average_cost": self.average_cost,
                "recovery_frequency": self.recovery_frequency,
            },
            confidence,
        )

    def class_summary(
        self, confidence: float = 0.95
    ) -> dict[str, dict[str, tuple[float, float]]]:
        """Per-class ``(mean, ci)`` pairs for labelled (mixed) scenarios."""
        if self.class_average_cost is None or self.class_recovery_frequency is None:
            raise ValueError(
                "per-class metrics require a labelled scenario; build it with "
                "FleetScenario.mixed(...)"
            )
        return {
            label: summarize_metric_arrays(
                {
                    "average_cost": self.class_average_cost[label],
                    "recovery_frequency": self.class_recovery_frequency[label],
                },
                confidence,
            )
            for label in self.class_average_cost
        }


@dataclass
class _DecisionTrace:
    """Per-step decision record used by the parity tests."""

    states: list = field(default_factory=list)
    adds: list = field(default_factory=list)
    emergencies: list = field(default_factory=list)
    evictions: list = field(default_factory=list)
    add_classes: list = field(default_factory=list)


class TwoLevelLoop:
    """Incremental executor of the batched two-level loop, one tick at a time.

    The loop owns everything :meth:`TwoLevelController.run` accumulates
    between engine steps — the active-slot mask, the metric accumulators,
    the per-episode :class:`VectorSystemController` and the optional
    decision/system traces — but **not** the engine state, which its driver
    advances between :meth:`pre_step` and :meth:`post_step`:

    * :meth:`TwoLevelController.run` drives the loop to the horizon with
      its own :class:`~repro.envs.VectorRecoveryEnv` (one fleet batch per
      engine call);
    * the decision service (:mod:`repro.serve`) drives one loop per
      connected fleet around a **shared** engine step, fusing the belief
      updates of every session in a cohort into a single kernel call.

    Both drivers execute the identical per-tick arithmetic, which is what
    makes service decisions bit-identical to a direct
    :meth:`TwoLevelController.run` on the same ``SeedSequence`` tree
    (asserted in ``tests/test_decision_service.py``).

    One tick is::

        mask = loop.pre_step(observation)       # node level: recoveries
        # driver advances the engine with `mask` (plus the BTR overrides)
        event = loop.post_step(observation', costs, info)   # system level

    where ``observation'`` is the post-step observation and ``info``
    carries the step's ``crashed``/``failed_mask`` arrays.
    """

    def __init__(
        self,
        controller: "TwoLevelController",
        system: VectorSystemController,
        policy_rng: np.random.Generator | None = None,
    ) -> None:
        self.controller = controller
        self.system = system
        self.policy_rng = policy_rng
        batch, slots = controller.num_envs, controller.smax
        self.t = 0
        self.active = np.zeros((batch, slots), dtype=bool)
        self.active[:, : controller.initial_nodes] = True
        self.available_steps = np.zeros(batch, dtype=np.int64)
        self.node_count_sum = np.zeros(batch, dtype=np.int64)
        self.cost_sum = np.zeros(batch)
        self.recovery_steps = np.zeros(batch, dtype=np.int64)
        self.active_slot_steps = np.zeros(batch, dtype=np.int64)
        self.class_slots = controller.class_slots
        if self.class_slots is not None:
            self._class_cost = {label: np.zeros(batch) for label in self.class_slots}
            self._class_recoveries = {
                label: np.zeros(batch, dtype=np.int64) for label in self.class_slots
            }
            self._class_steps = {
                label: np.zeros(batch, dtype=np.int64) for label in self.class_slots
            }
        self.trace = _DecisionTrace() if controller.record_decisions else None
        self._record = controller.record_system_trace
        self._states_t: list[np.ndarray] = []
        self._actions_t: list[np.ndarray] = []
        self._probs_t: list[np.ndarray] = []
        self._forced_t: list[np.ndarray] = []
        self._counts_t: list[np.ndarray] = []
        self._decision_counts_t: list[np.ndarray] = []
        self._available_t: list[np.ndarray] = []
        self._add_classes_t: list[np.ndarray] = []
        self._class_probs_t: list[np.ndarray] = []
        self._executed: np.ndarray | None = None

    @property
    def done(self) -> bool:
        return self.t >= self.controller.horizon

    def pre_step(self, observation: VectorObservation) -> np.ndarray:
        """Node level: decide this tick's recoveries from ``observation``.

        Returns the engine recover mask (granted voluntary recoveries plus
        every standby slot) **without** the BTR overrides — the driver ORs
        ``observation.forced`` in when it steps the engine, exactly as
        :meth:`~repro.envs.VectorRecoveryEnv.step` does.
        """
        if self.done:
            raise RuntimeError("the loop is done (horizon reached)")
        controller = self.controller
        active = self.active
        forced = observation.forced
        policy_observation = VectorObservation(
            beliefs=observation.beliefs,
            time_since_recovery=observation.time_since_recovery,
            forced=forced,
            active=active,
        )
        voluntary = (
            np.asarray(controller.recovery_policy.act(policy_observation, self.policy_rng))
            .astype(bool)
            & active
            & ~forced
        )
        granted = (
            controller._grant_recoveries(voluntary, observation.beliefs)
            if controller.respect_recovery_limit
            else voluntary
        )
        self.active_slot_steps += active.sum(axis=1)
        executed = (granted | forced) & active
        self.recovery_steps += executed.sum(axis=1)
        self._executed = executed
        # Standby slots recover every step, staying fresh for activation.
        return granted | ~active

    def post_step(
        self,
        observation: VectorObservation,
        costs: np.ndarray,
        info: dict,
        on_step: Callable[[TwoLevelStepEvent], None] | None = None,
    ) -> TwoLevelStepEvent:
        """System level: account the step and take the replication decision.

        ``observation``/``costs``/``info`` are the engine step's outputs
        (post-step beliefs, per-slot costs, ``crashed``/``failed_mask``).
        Returns the step's :class:`TwoLevelStepEvent` — the per-tick
        decision record the service hands back to its clients.
        """
        controller = self.controller
        active = self.active
        executed = self._executed
        if executed is None:
            raise RuntimeError("post_step called before pre_step")
        self._executed = None
        active_costs = costs * active
        self.cost_sum += active_costs.sum(axis=1)
        if self.class_slots is not None:
            for label, slots in self.class_slots.items():
                self._class_steps[label] += active[:, slots].sum(axis=1)
                self._class_recoveries[label] += executed[:, slots].sum(axis=1)
                self._class_cost[label] += active_costs[:, slots].sum(axis=1)

        crashed = info["crashed"]
        decision = self.system.step(
            observation.beliefs,
            reporting=active & ~crashed,
            registered=active,
            node_counts=active.sum(axis=1),
        )
        active = active & ~crashed
        activated = controller._activate_slots(
            active, decision.add_node, decision.add_class
        )
        self.active = active

        node_counts = active.sum(axis=1)
        self.node_count_sum += node_counts
        step_available = (
            (info["failed_mask"] & active).sum(axis=1) <= controller.f
        ) & (node_counts >= 2 * controller.f + 1)
        self.available_steps += step_available

        event = TwoLevelStepEvent(
            t=self.t,
            executed_recoveries=executed,
            crashed=crashed,
            failed=info["failed_mask"],
            decision=decision,
            activated=activated,
            active=active,
            available=step_available,
        )
        if on_step is not None:
            on_step(event)

        if self.trace is not None:
            self.trace.states.append(decision.state)
            self.trace.adds.append(decision.add_node)
            self.trace.emergencies.append(decision.emergency_add)
            self.trace.evictions.append(decision.evicted.sum(axis=1))
            self.trace.add_classes.append(
                decision.add_class
                if decision.add_class is not None
                else np.full(controller.num_envs, -1, dtype=np.int64)
            )
        if self._record:
            self._states_t.append(decision.state)
            self._actions_t.append(decision.add_node)
            self._probs_t.append(decision.add_probability)
            self._forced_t.append(decision.emergency_add | decision.capped)
            self._counts_t.append(node_counts)
            self._decision_counts_t.append(decision.node_count_after_eviction)
            self._available_t.append(step_available)
            if decision.add_class is not None:
                self._add_classes_t.append(decision.add_class)
                self._class_probs_t.append(decision.action_probabilities)
        self.t += 1
        return event

    def build_system_trace(self) -> SystemTrace | None:
        """The recorded :class:`SystemTrace` (``None`` unless recording)."""
        if not self._record or not self._states_t:
            return None
        return SystemTrace(
            states=np.stack(self._states_t),
            actions=np.stack(self._actions_t),
            add_probabilities=np.stack(self._probs_t),
            forced=np.stack(self._forced_t),
            node_counts=np.stack(self._counts_t),
            decision_counts=np.stack(self._decision_counts_t),
            available=np.stack(self._available_t),
            add_classes=(
                np.stack(self._add_classes_t) if self._add_classes_t else None
            ),
            action_probabilities=(
                np.stack(self._class_probs_t) if self._class_probs_t else None
            ),
        )

    def result(self, profile: "EngineProfile | None" = None) -> TwoLevelResult:
        """Aggregate the accumulators into a :class:`TwoLevelResult`."""
        controller = self.controller
        steps = max(controller.horizon, 1)
        slot_steps = np.maximum(self.active_slot_steps, 1)
        class_average_cost = class_recovery_frequency = None
        if self.class_slots is not None:
            class_average_cost = {
                label: self._class_cost[label]
                / np.maximum(self._class_steps[label], 1)
                for label in self.class_slots
            }
            class_recovery_frequency = {
                label: self._class_recoveries[label]
                / np.maximum(self._class_steps[label], 1)
                for label in self.class_slots
            }
        return TwoLevelResult(
            availability=self.available_steps / steps,
            average_nodes=self.node_count_sum / steps,
            average_cost=self.cost_sum / slot_steps,
            recovery_frequency=self.recovery_steps / slot_steps,
            additions=self.system.total_additions.copy(),
            emergency_additions=self.system.emergency_additions.copy(),
            evictions=self.system.total_evictions.copy(),
            steps=steps,
            class_average_cost=class_average_cost,
            class_recovery_frequency=class_recovery_frequency,
            profile=profile,
        )


class TwoLevelController:
    """Batched closed-loop controller coupling both feedback levels.

    Args:
        scenario: Fleet scenario whose ``num_nodes`` is the slot-bank
            capacity ``smax`` and whose ``f`` defines availability; the
            horizon is the episode length.
        num_envs: Number of independent fleet episodes ``B``.
        recovery_policy: Node-level policy — any
            :class:`~repro.envs.policies.VectorPolicy`, or any recovery
            strategy / per-slot strategy sequence (wrapped via
            :class:`~repro.envs.policies.StrategyPolicy`).
        replication_strategy: System-level strategy ``pi(a | s)``; ``None``
            never adds nodes.
        initial_nodes: Initial replication factor ``N_1``; defaults to the
            minimum admissible ``2f + 1 + k`` (capped at ``smax``).
        k: Maximum parallel recoveries granted per step (Prop. 1c).
        enforce_invariant: Whether the system level force-adds nodes to
            keep ``N_t >= 2f + 1 + k``.
        respect_recovery_limit: Whether at most ``k`` voluntary recoveries
            are granted per episode-step (most suspicious beliefs first);
            BTR-forced recoveries are always executed.
        engine: Optional pre-built engine for ``scenario`` (sharing one
            across controllers skips recompiling the scenario kernels).
        backend: Kernel backend name forwarded to the engine when none is
            given (see :mod:`repro.sim.kernels`).
        record_system_trace: Record the per-step :class:`SystemTrace`
            (required by the PPO replication trainer and the
            system-identification loop).
        record_decisions: Record the per-step decision trace
            (:attr:`last_decision_trace`) that the scalar-vs-vectorized
            parity checks compare.  Off by default so the hot loop — and
            the batched side of the speedup measurement — carries no
            optional bookkeeping.
    """

    def __init__(
        self,
        scenario: FleetScenario,
        num_envs: int,
        recovery_policy: VectorPolicy | RecoveryStrategy | BatchStrategy | Sequence,
        replication_strategy: ReplicationStrategy | None = None,
        initial_nodes: int | None = None,
        k: int = 1,
        enforce_invariant: bool = True,
        respect_recovery_limit: bool = True,
        engine: BatchRecoveryEngine | None = None,
        record_system_trace: bool = False,
        record_decisions: bool = False,
        backend: str | None = None,
    ) -> None:
        if scenario.f is None:
            raise ValueError(
                "the scenario must define a tolerance threshold f (the system "
                "level plans against it); pass f=... to "
                "FleetScenario.homogeneous/.mixed"
            )
        if k < 1:
            raise ValueError("k must be >= 1")
        self.scenario = scenario
        self.f = scenario.f
        self.k = k
        self.smax = scenario.num_nodes
        minimum = 2 * self.f + 1 + k
        if initial_nodes is None:
            initial_nodes = min(minimum, self.smax)
        if not 1 <= initial_nodes <= self.smax:
            raise ValueError(
                f"initial_nodes must lie in [1, {self.smax}], got {initial_nodes}"
            )
        self.initial_nodes = initial_nodes
        self.enforce_invariant = enforce_invariant
        self.respect_recovery_limit = respect_recovery_limit
        self.replication_strategy = replication_strategy
        self.recovery_policy: VectorPolicy = (
            recovery_policy
            if hasattr(recovery_policy, "act")
            else StrategyPolicy(recovery_policy)
        )
        self.env = VectorRecoveryEnv(scenario, num_envs, engine, backend=backend)
        self.record_system_trace = record_system_trace
        self.record_decisions = record_decisions
        self.system_trace: SystemTrace | None = None
        self.last_decision_trace: _DecisionTrace | None = None
        #: Slot indices per container class for labelled (mixed) scenarios;
        #: drives the per-class metric accounting of both run paths.
        self.class_slots: dict[str, np.ndarray] | None = (
            scenario.class_slots() if scenario.node_labels is not None else None
        )
        #: Slot indices per strategy class index, for class-aware
        #: replication strategies: an add(c) decision activates the first
        #: free slot of class c (falling back to the first free slot of any
        #: class when c's sub-fleet is exhausted), on both run paths.
        self._strategy_class_slots: list[np.ndarray] | None = None
        if replication_strategy is not None and strategy_is_class_aware(
            replication_strategy
        ):
            if self.class_slots is None:
                raise ValueError(
                    "a class-aware replication strategy requires a labelled "
                    "scenario; build it with FleetScenario.mixed(...)"
                )
            missing = [
                name
                for name in replication_strategy.class_names
                if name not in self.class_slots
            ]
            if missing:
                raise ValueError(
                    f"replication strategy chooses among classes {missing} "
                    f"that the scenario does not define "
                    f"(available: {sorted(self.class_slots)})"
                )
            self._strategy_class_slots = [
                self.class_slots[name] for name in replication_strategy.class_names
            ]

    # -- interface properties ----------------------------------------------------
    @property
    def num_envs(self) -> int:
        return self.env.num_envs

    @property
    def horizon(self) -> int:
        return self.scenario.horizon

    # -- seed tree ----------------------------------------------------------------
    def _system_seed_sequences(
        self, seed: int | None
    ) -> list[np.random.SeedSequence] | None:
        """Per-episode controller streams from the shared episode seed tree.

        The engine consumes children ``0 .. B*N-1`` of ``SeedSequence(seed)``
        (episode-major); the system controllers take the next ``B`` children,
        so one seed reproduces the entire closed loop — including the scalar
        reference, which hands child ``B*N + b`` to episode ``b``'s scalar
        controller.
        """
        if self.replication_strategy is None or not strategy_consumes_rng(
            self.replication_strategy
        ):
            return None
        total = self.num_envs * self.smax
        children = np.random.SeedSequence(seed).spawn(total + self.num_envs)
        return children[total:]

    # -- batched closed loop -------------------------------------------------------
    def run(
        self,
        seed: int | None = None,
        policy_rng: np.random.Generator | None = None,
        on_step: Callable[[TwoLevelStepEvent], None] | None = None,
        uniforms: np.ndarray | None = None,
        system_seed_sequences: Sequence[np.random.SeedSequence] | None = None,
        profile: bool = False,
        adversary_uniforms: np.ndarray | None = None,
    ) -> TwoLevelResult:
        """Run one batch of ``B`` closed-loop episodes.

        Args:
            seed: Episode seed; seeds the engine's per-(episode, node)
                streams and the per-episode system-controller streams from
                one ``SeedSequence`` tree.
            policy_rng: Generator handed to stochastic node-level policies
                (deterministic strategies ignore it).
            on_step: Observer called once per step with a
                :class:`TwoLevelStepEvent` after the step's recoveries,
                evictions and additions have been applied; the consensus
                integration mirrors controller decisions onto a live
                cluster through it.
            uniforms: Pre-drawn ``(B, N, width)`` engine uniform buffer
                overriding the seed tree — e.g. an episode slice of the
                full batch's buffer, which is how the sharded sweeps
                (:mod:`repro.control.parallel`) replay episodes
                ``[lo, hi)`` of a larger run bit for bit.  Mutually
                exclusive with ``seed``.
            system_seed_sequences: Explicit per-episode controller seed
                sequences overriding the seed tree's tail children (one
                per episode); used together with ``uniforms`` by the
                sharded sweeps.  Ignored for deterministic replication
                strategies, matching the seed-tree convention.
            profile: Record the engine's per-phase wall-clock time into
                :attr:`TwoLevelResult.profile`.
            adversary_uniforms: Pre-drawn ``(B, horizon, K)`` adversary
                uniform buffer accompanying ``uniforms`` when the
                scenario's adversary is dynamic (see
                :mod:`repro.sim.adversary`); sliced per shard by the
                sharded sweeps exactly like ``uniforms``.
        """
        env = self.env
        observation = env.reset(
            seed=seed,
            uniforms=uniforms,
            profile=profile,
            adversary_uniforms=adversary_uniforms,
        )
        loop = self.begin_loop(
            seed=seed,
            policy_rng=policy_rng,
            system_seed_sequences=system_seed_sequences,
        )
        for _ in range(self.horizon):
            mask = loop.pre_step(observation)
            observation, costs, _, info = env.step(mask)
            loop.post_step(observation, costs, info, on_step)

        self.last_decision_trace = loop.trace
        if self.record_system_trace:
            self.system_trace = loop.build_system_trace()
        return loop.result(profile=env.profile if profile else None)

    def begin_loop(
        self,
        seed: int | None = None,
        policy_rng: np.random.Generator | None = None,
        system_seed_sequences: Sequence[np.random.SeedSequence] | None = None,
    ) -> TwoLevelLoop:
        """Create the incremental per-tick executor of this controller's loop.

        :meth:`run` drives the returned :class:`TwoLevelLoop` to the
        horizon around its own environment; the decision service drives it
        one tick at a time around a fused engine step shared with other
        sessions.  The system-controller seed sequences follow the same
        convention as :meth:`run` (tail children of the shared episode seed
        tree unless given explicitly).
        """
        system = VectorSystemController(
            f=self.f,
            k=self.k,
            strategy=self.replication_strategy,
            smax=self.smax,
            enforce_invariant=self.enforce_invariant,
            num_episodes=self.num_envs,
            horizon=self.horizon,
            seed_sequences=(
                system_seed_sequences
                if system_seed_sequences is not None
                else self._system_seed_sequences(seed)
            ),
        )
        return TwoLevelLoop(self, system, policy_rng)

    def _activate_slots(
        self,
        active: np.ndarray,
        add_mask: np.ndarray,
        add_class: np.ndarray | None,
    ) -> np.ndarray:
        """Activate one standby slot per adding episode, in place.

        Classless adds (and class-aware emergency adds, ``add_class == -1``)
        claim the first free slot; a class-aware ``add(c)`` claims the first
        free slot of class ``c``'s sub-fleet, falling back to the first free
        slot of any class when the sub-fleet is exhausted.  The scalar
        reference applies the identical rule one episode at a time.

        Returns the activated slot index per episode (``-1`` where the
        episode added nothing), for ``on_step`` observers.
        """
        activated = np.full(active.shape[0], -1, dtype=np.int64)
        if not add_mask.any():
            return activated
        rows = np.flatnonzero(add_mask)
        targets = (~active).argmax(axis=1)[rows]
        if self._strategy_class_slots is not None and add_class is not None:
            classes = add_class[rows]
            for c, slots in enumerate(self._strategy_class_slots):
                members = np.flatnonzero(classes == c)
                if members.size == 0:
                    continue
                free = ~active[np.ix_(rows[members], slots)]
                has_free = free.any(axis=1)
                chosen = slots[free.argmax(axis=1)]
                targets[members[has_free]] = chosen[has_free]
        active[rows, targets] = True
        activated[rows] = targets
        return activated

    def _grant_recoveries(
        self, requests: np.ndarray, beliefs: np.ndarray
    ) -> np.ndarray:
        """Grant at most ``k`` voluntary recoveries per episode (Prop. 1c).

        Most suspicious requests first, ties broken by slot index — the
        same stable ordering the scalar reference's ``sorted`` applies.
        """
        keys = np.where(requests, -beliefs, np.inf)
        order = np.argsort(keys, axis=1, kind="stable")
        granted = np.zeros_like(requests)
        rows = np.arange(requests.shape[0])[:, None]
        head = order[:, : self.k]
        granted[rows, head] = requests[rows, head]
        return granted

    # -- scalar reference ----------------------------------------------------------
    def run_scalar_reference(self, seed: int | None = None) -> TwoLevelResult:
        """Run the identical closed loop one episode at a time.

        Episode ``b`` replays row ``b`` of the batched run bit for bit: the
        engine consumes the same per-(episode, node) uniform streams (via a
        slice of the shared buffer) and a scalar
        :class:`~repro.core.system_controller.SystemController` seeded with
        the same seed-tree child takes every system-level decision.  Kept
        as the parity reference and the speedup baseline — the decision
        trace (:attr:`last_decision_trace`) matches :meth:`run` exactly
        under a shared seed.
        """
        engine = self.env.engine
        batch, slots = self.num_envs, self.smax
        if engine.is_dynamic and seed is None:
            from ..sim.adversary import resolve_adversary_entropy

            seed = resolve_adversary_entropy(None)
        uniforms = engine.draw_uniforms(seed, batch)
        adversary_uniforms = engine.draw_adversary_uniforms(seed, batch)
        sequences = self._system_seed_sequences(seed)

        availability = np.zeros(batch)
        average_nodes = np.zeros(batch)
        average_cost = np.zeros(batch)
        recovery_frequency = np.zeros(batch)
        additions = np.zeros(batch, dtype=np.int64)
        emergencies = np.zeros(batch, dtype=np.int64)
        evictions = np.zeros(batch, dtype=np.int64)
        class_slots = self.class_slots
        if class_slots is not None:
            class_average_cost = {label: np.zeros(batch) for label in class_slots}
            class_recovery_frequency = {
                label: np.zeros(batch) for label in class_slots
            }
        trace = _DecisionTrace() if self.record_decisions else None
        if trace is not None:
            trace.states = [[] for _ in range(batch)]
            trace.adds = [[] for _ in range(batch)]
            trace.emergencies = [[] for _ in range(batch)]
            trace.evictions = [[] for _ in range(batch)]
            trace.add_classes = [[] for _ in range(batch)]

        for b in range(batch):
            sim = engine.begin(
                uniforms=uniforms[b : b + 1],
                adversary_uniforms=(
                    adversary_uniforms[b : b + 1]
                    if adversary_uniforms is not None
                    else None
                ),
            )
            controller = SystemController(
                f=self.f,
                k=self.k,
                strategy=self.replication_strategy,
                smax=slots,
                enforce_invariant=self.enforce_invariant,
                seed=sequences[b] if sequences is not None else None,
            )
            active = np.zeros(slots, dtype=bool)
            active[: self.initial_nodes] = True
            available_steps = 0
            node_count_sum = 0
            cost_sum = 0.0
            recovery_steps = 0
            active_slot_steps = 0
            if class_slots is not None:
                episode_class_cost = {label: 0.0 for label in class_slots}
                episode_class_recoveries = {label: 0 for label in class_slots}
                episode_class_steps = {label: 0 for label in class_slots}

            for _ in range(self.horizon):
                forced = engine.forced_recoveries(sim)[0]
                observation = VectorObservation(
                    beliefs=sim.belief,
                    time_since_recovery=sim.time_since_recovery,
                    forced=forced[None, :],
                    active=active[None, :],
                )
                voluntary = (
                    np.asarray(self.recovery_policy.act(observation, None))[0]
                    .astype(bool)
                    & active
                    & ~forced
                )
                if self.respect_recovery_limit:
                    requested = [j for j in range(slots) if voluntary[j]]
                    requested.sort(key=lambda j: -sim.belief[0, j])
                    granted = np.zeros(slots, dtype=bool)
                    granted[requested[: self.k]] = True
                else:
                    granted = voluntary
                active_slot_steps += int(active.sum())
                executed = (granted | forced) & active
                recovery_steps += int(executed.sum())
                mask = granted | ~active
                costs = engine.step(sim, (mask | forced)[None, :], btr_applied=True)
                cost_sum += float(costs[0][active].sum())
                if class_slots is not None:
                    active_costs = costs[0] * active
                    for label, indices in class_slots.items():
                        episode_class_steps[label] += int(active[indices].sum())
                        episode_class_recoveries[label] += int(executed[indices].sum())
                        episode_class_cost[label] += float(active_costs[indices].sum())

                crashed = sim.last_crashed[0]
                reported = {
                    j: float(sim.belief[0, j])
                    for j in range(slots)
                    if active[j] and not crashed[j]
                }
                registered = {j for j in range(slots) if active[j]}
                decision = controller.step(
                    reported_beliefs=reported,
                    registered_nodes=registered,
                    current_node_count=int(active.sum()),
                )
                active = active & ~crashed
                if decision.add_node:
                    target = int(np.argmax(~active))
                    if (
                        self._strategy_class_slots is not None
                        and decision.add_class is not None
                    ):
                        class_slot_indices = self._strategy_class_slots[
                            decision.add_class
                        ]
                        free = ~active[class_slot_indices]
                        if free.any():
                            target = int(class_slot_indices[int(np.argmax(free))])
                    active[target] = True

                count = int(active.sum())
                node_count_sum += count
                failed = sim.last_failed_mask[0]
                available_steps += int(
                    (failed & active).sum() <= self.f and count >= 2 * self.f + 1
                )
                if trace is not None:
                    trace.states[b].append(decision.state)
                    trace.adds[b].append(decision.add_node)
                    trace.emergencies[b].append(decision.emergency_add)
                    trace.evictions[b].append(len(decision.evicted_nodes))
                    trace.add_classes[b].append(
                        decision.add_class if decision.add_class is not None else -1
                    )

            steps = max(self.horizon, 1)
            slot_steps = max(active_slot_steps, 1)
            availability[b] = available_steps / steps
            average_nodes[b] = node_count_sum / steps
            average_cost[b] = cost_sum / slot_steps
            recovery_frequency[b] = recovery_steps / slot_steps
            additions[b] = controller.total_additions
            emergencies[b] = controller.emergency_additions
            evictions[b] = controller.total_evictions
            if class_slots is not None:
                for label in class_slots:
                    denominator = max(episode_class_steps[label], 1)
                    class_average_cost[label][b] = (
                        episode_class_cost[label] / denominator
                    )
                    class_recovery_frequency[label][b] = (
                        episode_class_recoveries[label] / denominator
                    )

        if trace is not None:
            # Transpose the per-episode lists into per-step arrays matching run().
            trace.states = [
                np.array([trace.states[b][t] for b in range(batch)], dtype=np.int64)
                for t in range(self.horizon)
            ]
            trace.adds = [
                np.array([trace.adds[b][t] for b in range(batch)], dtype=bool)
                for t in range(self.horizon)
            ]
            trace.emergencies = [
                np.array([trace.emergencies[b][t] for b in range(batch)], dtype=bool)
                for t in range(self.horizon)
            ]
            trace.evictions = [
                np.array([trace.evictions[b][t] for b in range(batch)], dtype=np.int64)
                for t in range(self.horizon)
            ]
            trace.add_classes = [
                np.array(
                    [trace.add_classes[b][t] for b in range(batch)], dtype=np.int64
                )
                for t in range(self.horizon)
            ]
        self.last_decision_trace = trace
        return TwoLevelResult(
            availability=availability,
            average_nodes=average_nodes,
            average_cost=average_cost,
            recovery_frequency=recovery_frequency,
            additions=additions,
            emergency_additions=emergencies,
            evictions=evictions,
            steps=max(self.horizon, 1),
            class_average_cost=(
                class_average_cost if class_slots is not None else None
            ),
            class_recovery_frequency=(
                class_recovery_frequency if class_slots is not None else None
            ),
        )
