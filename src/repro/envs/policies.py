"""Strategy-as-policy adapters for the vectorized environments.

A *vector policy* maps a :class:`~repro.envs.base.VectorObservation` to a
boolean ``(B, N)`` recover mask.  :class:`StrategyPolicy` turns any of the
package's decision objects into one:

* the core strategy classes of :mod:`repro.core.strategies` (via their
  native ``action_batch``);
* arbitrary scalar :class:`~repro.core.strategies.RecoveryStrategy`
  implementations (via the element-wise fallback of
  :func:`~repro.sim.strategies.as_batch_strategy`);
* learned policies such as :class:`~repro.solvers.ppo.PPOPolicy`, which
  exposes both ``action`` and ``action_batch``;
* per-node heterogeneous strategy lists, or the
  ``recovery_strategy_factory`` of an emulation
  :class:`~repro.emulation.environment.EvaluationPolicy` — so the same
  evaluation policy object drives the simulation and testbed backends
  unmodified.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from ..core.strategies import RecoveryStrategy
from ..sim.strategies import BatchStrategy, as_batch_strategy
from .base import VectorObservation

__all__ = ["VectorPolicy", "StrategyPolicy"]


@runtime_checkable
class VectorPolicy(Protocol):
    """Interface of a batched environment policy."""

    def act(
        self, observation: VectorObservation, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Boolean recover mask of shape ``(B, N)`` for this observation."""
        ...


class StrategyPolicy:
    """Run recovery strategies as a vector-environment policy.

    Args:
        strategies: One strategy shared by every node slot, or a sequence
            with one strategy per slot.  Scalar strategies are batched via
            :func:`~repro.sim.strategies.as_batch_strategy`.
    """

    def __init__(
        self, strategies: RecoveryStrategy | BatchStrategy | Sequence
    ) -> None:
        if isinstance(strategies, (list, tuple)):
            self._per_node: list[BatchStrategy] | None = [
                as_batch_strategy(s) for s in strategies
            ]
            self._shared: BatchStrategy | None = None
        else:
            self._per_node = None
            self._shared = as_batch_strategy(strategies)

    @classmethod
    def from_factory(cls, factory, num_nodes: int) -> "StrategyPolicy":
        """Build a per-slot policy from a node-id -> strategy factory.

        Accepts the ``recovery_strategy_factory`` of an emulation
        :class:`~repro.emulation.environment.EvaluationPolicy`, keyed by
        synthetic slot identifiers.
        """
        return cls([factory(f"slot-{j}") for j in range(num_nodes)])

    def _strategy_for(self, node: int) -> BatchStrategy:
        if self._per_node is not None:
            if node >= len(self._per_node):
                raise ValueError(
                    f"policy has {len(self._per_node)} per-node strategies, "
                    f"got node index {node}"
                )
            return self._per_node[node]
        assert self._shared is not None
        return self._shared

    def act(
        self, observation: VectorObservation, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        del rng  # strategies are deterministic in the belief
        recover = np.zeros(observation.beliefs.shape, dtype=bool)
        for j in range(observation.num_nodes):
            recover[:, j] = self._strategy_for(j).action_batch(
                observation.beliefs[:, j], observation.time_since_recovery[:, j]
            )
        return recover & observation.active
