"""Unified vectorized environment layer (``repro.envs``).

One Gym-style batched ``step``/``reset`` API over every recovery backend in
the reproduction:

* :class:`VectorRecoveryEnv` — ``B`` independent node-POMDP episodes
  advanced per array operation on the bit-exact batch engine of
  :mod:`repro.sim` (per-episode ``SeedSequence`` streams preserved, so
  trajectories match the scalar simulator exactly under a shared seed);
* :class:`FleetVectorEnv` — the system-level view over a heterogeneous
  ``N``-node :class:`~repro.sim.FleetScenario`: CMDP states (Eq. 8),
  failed-node counts and fleet availability per step, feeding the system
  controller / Algorithm 2 evaluation;
* :class:`EmulationVectorEnv` — the same interface over the Section VIII
  emulation testbed (:mod:`repro.emulation`), so evaluation policies,
  threshold strategies and learned PPO policies run unmodified against
  both simulation and testbed backends.

The PPO baseline (:mod:`repro.solvers.ppo`) collects its rollouts through
:class:`VectorRecoveryEnv`: one policy forward pass per timestep over all
``B`` episodes instead of ``B x T`` scalar passes.

Layer contract
--------------

* **What is vectorized:** the ``step(recover_mask)`` / ``reset(seed)``
  cycle over ``B`` episodes — one call advances every episode; observations
  are ``(B, N)`` belief/clock/forced/active arrays.
* **Scalar reference:** the environments add *no* randomness of their own;
  a trajectory stepped through :class:`VectorRecoveryEnv` is bit-identical
  to the corresponding scalar
  :class:`~repro.solvers.evaluation.RecoverySimulator` episode
  (``tests/test_envs_equivalence.py``), because the engine underneath
  preserves the per-episode ``SeedSequence`` streams.
* **Seeding convention (PR 1):** ``reset(seed)`` seeds the same
  per-(episode, node) ``SeedSequence`` tree the scalar simulator and
  ``BatchRecoveryEngine.run`` use; ``None`` draws OS entropy.
* :class:`FleetVectorEnv` additionally exposes the system level: Eq. 8
  CMDP states, fleet and per-class availability, the class-indexed
  replication action count (``num_replication_actions``), and the
  empirical transition pairs that feed ``f_S`` identification.

Quickstart::

    from repro.core import BetaBinomialObservationModel, NodeParameters, ThresholdStrategy
    from repro.envs import StrategyPolicy, VectorRecoveryEnv, rollout

    env = VectorRecoveryEnv.single_node(
        NodeParameters(p_a=0.1), BetaBinomialObservationModel(),
        num_envs=1000, horizon=200,
    )
    result = rollout(env, StrategyPolicy(ThresholdStrategy(0.75)), seed=0)
    print(result.mean_cost)
"""

from __future__ import annotations

from .base import VectorEnv, VectorObservation
from .policies import StrategyPolicy, VectorPolicy
from .rollout import VectorRolloutResult, rollout
from .vector_recovery import FleetVectorEnv, VectorRecoveryEnv

__all__ = [
    "EmulationVectorEnv",
    "FleetVectorEnv",
    "StrategyPolicy",
    "VectorEnv",
    "VectorObservation",
    "VectorPolicy",
    "VectorRecoveryEnv",
    "VectorRolloutResult",
    "rollout",
]


def __getattr__(name: str):
    # EmulationVectorEnv lives in repro.emulation (it adapts the testbed);
    # importing it lazily keeps repro.envs importable without triggering the
    # emulation package (and avoids a circular import at package-init time).
    if name == "EmulationVectorEnv":
        from ..emulation.vector_env import EmulationVectorEnv

        return EmulationVectorEnv
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
