"""Unified vectorized environment layer (``repro.envs``).

One Gym-style batched ``step``/``reset`` API over every recovery backend in
the reproduction:

* :class:`VectorRecoveryEnv` — ``B`` independent node-POMDP episodes
  advanced per array operation on the bit-exact batch engine of
  :mod:`repro.sim` (per-episode ``SeedSequence`` streams preserved, so
  trajectories match the scalar simulator exactly under a shared seed);
* :class:`FleetVectorEnv` — the system-level view over a heterogeneous
  ``N``-node :class:`~repro.sim.FleetScenario`: CMDP states (Eq. 8),
  failed-node counts and fleet availability per step, feeding the system
  controller / Algorithm 2 evaluation;
* :class:`EmulationVectorEnv` — the same interface over the Section VIII
  emulation testbed (:mod:`repro.emulation`), so evaluation policies,
  threshold strategies and learned PPO policies run unmodified against
  both simulation and testbed backends.

The PPO baseline (:mod:`repro.solvers.ppo`) collects its rollouts through
:class:`VectorRecoveryEnv`: one policy forward pass per timestep over all
``B`` episodes instead of ``B x T`` scalar passes.

Quickstart::

    from repro.core import BetaBinomialObservationModel, NodeParameters, ThresholdStrategy
    from repro.envs import StrategyPolicy, VectorRecoveryEnv, rollout

    env = VectorRecoveryEnv.single_node(
        NodeParameters(p_a=0.1), BetaBinomialObservationModel(),
        num_envs=1000, horizon=200,
    )
    result = rollout(env, StrategyPolicy(ThresholdStrategy(0.75)), seed=0)
    print(result.mean_cost)
"""

from __future__ import annotations

from .base import VectorEnv, VectorObservation
from .policies import StrategyPolicy, VectorPolicy
from .rollout import VectorRolloutResult, rollout
from .vector_recovery import FleetVectorEnv, VectorRecoveryEnv

__all__ = [
    "EmulationVectorEnv",
    "FleetVectorEnv",
    "StrategyPolicy",
    "VectorEnv",
    "VectorObservation",
    "VectorPolicy",
    "VectorRecoveryEnv",
    "VectorRolloutResult",
    "rollout",
]


def __getattr__(name: str):
    # EmulationVectorEnv lives in repro.emulation (it adapts the testbed);
    # importing it lazily keeps repro.envs importable without triggering the
    # emulation package (and avoids a circular import at package-init time).
    if name == "EmulationVectorEnv":
        from ..emulation.vector_env import EmulationVectorEnv

        return EmulationVectorEnv
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
