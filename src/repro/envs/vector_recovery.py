"""Vectorized recovery environments over the bit-exact batch engine.

:class:`VectorRecoveryEnv` advances ``B`` independent episodes of a
:class:`~repro.sim.FleetScenario` per array operation by driving the
stepwise API of :class:`~repro.sim.BatchRecoveryEngine`.  Because the
engine consumes the same per-episode ``SeedSequence`` streams as the scalar
:class:`~repro.solvers.evaluation.RecoverySimulator`, an episode stepped
through this environment under a strategy's decisions is **bit-identical**
to the corresponding scalar episode — which is what makes the PPO rollout
refactor and the environment test suite exact rather than statistical.

:class:`FleetVectorEnv` extends the recovery environment with the
system-level quantities of Section V-B: the per-episode CMDP state
``s_t = floor(sum_i (1 - b_{i,t}))`` (Eq. 8, what the system controller
conditions its replication decision on), per-step failed-node counts, and
fleet availability ``T^(A)`` — feeding heterogeneous N-node sweeps and the
empirical ``f_S`` transition counts used by Algorithm 2.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.node_model import NodeParameters
from ..core.observation import ObservationModel
from ..sim import BatchRecoveryEngine, BatchSimulationResult, FleetScenario
from ..sim.engine import BatchEpisodeState
from .base import VectorObservation

__all__ = ["VectorRecoveryEnv", "FleetVectorEnv"]


class VectorRecoveryEnv:
    """Batched step/reset environment over the vectorized recovery simulator.

    Args:
        scenario: The fleet of node POMDPs one episode simulates.
        num_envs: Number of independent episodes ``B`` advanced per step.
        engine: Optional pre-built engine for ``scenario`` (rebuilding the
            engine recompiles the scenario kernels; sharing one across
            environments avoids that).
        backend: Kernel backend name forwarded to
            :class:`~repro.sim.BatchRecoveryEngine` when no ``engine`` is
            given; ``None`` follows the engine's default selection
            (``REPRO_ENGINE_BACKEND`` or ``fused``).
        track_metrics: Track recovery/compromise/delay statistics so that
            :meth:`result` reports them (the default).  Rollout consumers
            that only need costs and observations — the PPO collector —
            switch this off for a faster step.
        copy_observations: Return defensive copies of the belief/clock
            arrays in every observation (the default).  With ``False`` the
            observation holds views that the next :meth:`step` may
            invalidate — safe for consumers that derive their features
            before stepping, and one allocation cheaper per step.
    """

    def __init__(
        self,
        scenario: FleetScenario,
        num_envs: int,
        engine: BatchRecoveryEngine | None = None,
        track_metrics: bool = True,
        copy_observations: bool = True,
        backend: str | None = None,
    ) -> None:
        if num_envs < 1:
            raise ValueError("num_envs must be >= 1")
        if engine is not None and backend is not None:
            raise ValueError("pass either a pre-built engine or a backend, not both")
        self.scenario = scenario
        self._num_envs = num_envs
        self.engine = (
            engine if engine is not None else BatchRecoveryEngine(scenario, backend=backend)
        )
        self._track_metrics = track_metrics
        self._copy_observations = copy_observations
        self._active = np.ones((num_envs, scenario.num_nodes), dtype=bool)
        self._last_forced: np.ndarray | None = None
        self._sim: BatchEpisodeState | None = None

    @classmethod
    def single_node(
        cls,
        params: NodeParameters,
        observation_model: ObservationModel,
        num_envs: int,
        horizon: int = 200,
        enforce_btr: bool = True,
    ) -> "VectorRecoveryEnv":
        """Environment over a single-node scenario (the Problem 1 setting)."""
        scenario = FleetScenario.single_node(
            params, observation_model, horizon=horizon, enforce_btr=enforce_btr
        )
        return cls(scenario, num_envs)

    # -- interface properties ---------------------------------------------------
    @property
    def num_envs(self) -> int:
        return self._num_envs

    @property
    def num_nodes(self) -> int:
        return self.scenario.num_nodes

    @property
    def horizon(self) -> int:
        return self.scenario.horizon

    @property
    def done(self) -> bool:
        return self._sim is not None and self._sim.t >= self.horizon

    # -- step/reset -------------------------------------------------------------
    def reset(
        self,
        seed: int | None = None,
        uniforms: np.ndarray | None = None,
        profile: bool = False,
        adversary_uniforms: np.ndarray | None = None,
    ) -> VectorObservation:
        """Start ``B`` fresh episodes from the per-episode seed tree.

        ``seed`` seeds the same ``SeedSequence`` tree the scalar simulator
        and :meth:`BatchRecoveryEngine.run` use; ``None`` draws OS entropy
        (non-reproducible), matching their convention.

        ``uniforms`` bypasses the seed tree with a pre-drawn
        ``(num_envs, N, width)`` buffer — e.g. a contiguous episode slice
        of :meth:`~repro.sim.BatchRecoveryEngine.draw_uniforms`, which is
        how the sharded sweeps of :mod:`repro.control.parallel` replay
        rows ``[lo, hi)`` of a larger batch bit for bit.  Mutually
        exclusive with ``seed``.  When the scenario carries a dynamic
        :class:`~repro.sim.adversary.AdversaryProcess`, pass the matching
        episode slice of
        :meth:`~repro.sim.BatchRecoveryEngine.draw_adversary_uniforms` as
        ``adversary_uniforms`` (the seed path draws it automatically).
        ``profile=True`` attaches an
        :class:`~repro.sim.kernels.EngineProfile` (read it back via
        :attr:`profile`).
        """
        if uniforms is not None:
            if seed is not None:
                raise ValueError("pass either uniforms or seed, not both")
            uniforms = np.asarray(uniforms, dtype=float)
            if uniforms.ndim != 3 or uniforms.shape[0] != self._num_envs:
                raise ValueError(
                    f"uniforms must have shape (num_envs={self._num_envs}, "
                    f"num_nodes, width), got {uniforms.shape}"
                )
            self._sim = self.engine.begin(
                uniforms=uniforms,
                track_metrics=self._track_metrics,
                profile=profile,
                adversary_uniforms=adversary_uniforms,
            )
        else:
            self._sim = self.engine.begin(
                self._num_envs,
                seed=seed,
                track_metrics=self._track_metrics,
                profile=profile,
                adversary_uniforms=adversary_uniforms,
            )
        return self._observation()

    @property
    def profile(self):
        """The :class:`~repro.sim.kernels.EngineProfile` of the current
        episode batch, when it was requested with ``reset(profile=True)``;
        else ``None``."""
        return self._sim.profile if self._sim is not None else None

    def step(
        self, recover: np.ndarray
    ) -> tuple[VectorObservation, np.ndarray, bool, dict[str, Any]]:
        sim = self._require_running()
        shape = (self._num_envs, self.num_nodes)
        recover = np.asarray(recover, dtype=bool)
        if recover.shape != shape:
            recover = np.broadcast_to(recover, shape)
        # The forced mask shown in the last observation is exactly the BTR
        # override the engine would recompute; OR it in here and tell the
        # engine so.
        costs = self.engine.step(sim, recover | self._last_forced, btr_applied=True)
        observation = self._observation()
        info = self._info(sim)
        return observation, costs, sim.t >= self.horizon, info

    def result(self) -> BatchSimulationResult:
        """Per-episode statistics of the current (or finished) episodes.

        Identical to what :meth:`BatchRecoveryEngine.run` returns for the
        same seed and decision sequence.  Raises for environments built
        with ``track_metrics=False`` (no statistics were accumulated).
        """
        return self.engine.finalize(self._require_started())

    # -- internals ---------------------------------------------------------------
    def _require_started(self) -> BatchEpisodeState:
        if self._sim is None:
            raise RuntimeError("reset() must be called before stepping the environment")
        return self._sim

    def _require_running(self) -> BatchEpisodeState:
        sim = self._require_started()
        if sim.t >= self.horizon:
            raise RuntimeError(
                "the episode batch is done (horizon reached); call reset() first"
            )
        return sim

    def _observation(self) -> VectorObservation:
        sim = self._require_started()
        copy = self._copy_observations
        forced = self.engine.forced_recoveries(sim)
        self._last_forced = forced
        return VectorObservation(
            beliefs=sim.belief.copy() if copy else sim.belief,
            time_since_recovery=(
                sim.time_since_recovery.copy() if copy else sim.time_since_recovery
            ),
            forced=forced,
            active=self._active,
        )

    def _info(self, sim: BatchEpisodeState) -> dict[str, Any]:
        info: dict[str, Any] = {"t": sim.t}
        if sim.last_crashed is not None:
            info["crashed"] = sim.last_crashed
        if sim.last_failed_mask is not None:
            info["failed_mask"] = sim.last_failed_mask
        return info


class FleetVectorEnv(VectorRecoveryEnv):
    """System-level vectorized environment over an ``N``-node fleet.

    On top of :class:`VectorRecoveryEnv`, every step's info dict carries

    * ``system_state`` — the per-episode CMDP state ``s_t`` of Eq. 8
      (expected number of healthy nodes, from the post-step beliefs), shape
      ``(B,)``;
    * ``failed_nodes`` — ground-truth failed-node counts, shape ``(B,)``
      (present when the scenario defines a tolerance threshold ``f``);

    and the environment records the system-state trajectory so that
    :meth:`system_state_transitions` can produce empirical ``(s_t, s_{t+1})``
    counts for fitting the system transition kernel ``f_S`` consumed by
    Algorithm 2 / the CMDP evaluation.
    """

    def __init__(
        self,
        scenario: FleetScenario,
        num_envs: int,
        engine: BatchRecoveryEngine | None = None,
        backend: str | None = None,
    ) -> None:
        super().__init__(scenario, num_envs, engine, backend=backend)
        self._system_states: list[np.ndarray] = []
        self._class_slots: dict[str, np.ndarray] | None = (
            scenario.class_slots() if scenario.node_labels is not None else None
        )
        self._class_states: dict[str, list[np.ndarray]] = {}
        self._class_available_steps: dict[str, np.ndarray] = {}

    @property
    def num_replication_actions(self) -> int:
        """Size of the system-level action space over this fleet.

        ``1 + C`` for a labelled (mixed) scenario — wait plus one add
        action per container class — and the classless ``2`` otherwise.
        This is the action dimension a class-aware replication policy
        (:func:`repro.control.train_ppo_replication` with
        ``class_aware=True``) learns over.
        """
        if self._class_slots is None:
            return 2
        return 1 + len(self._class_slots)

    def expected_healthy_nodes(self) -> np.ndarray:
        """Per-episode CMDP state ``s_t = floor(sum_i (1 - b_i))`` (Eq. 8)."""
        sim = self._require_started()
        total = (1.0 - sim.belief).sum(axis=1)
        return np.clip(np.floor(total), 0, self.num_nodes).astype(np.int64)

    def expected_healthy_nodes_by_class(self) -> dict[str, np.ndarray]:
        """Per-class Eq. 8 states: the sum restricted to each class's slots.

        Requires a labelled (mixed) scenario.  Each class state lives in
        ``{0, ..., count_c}``, the sub-fleet counterpart of the global CMDP
        state — the input of the per-class ``f_S`` fits in
        :func:`repro.control.sysid.fit_system_models_per_class`.
        """
        if self._class_slots is None:
            raise ValueError(
                "per-class states require a labelled scenario; build it with "
                "FleetScenario.mixed(...)"
            )
        sim = self._require_started()
        states: dict[str, np.ndarray] = {}
        for label, slots in self._class_slots.items():
            total = (1.0 - sim.belief[:, slots]).sum(axis=1)
            states[label] = np.clip(np.floor(total), 0, len(slots)).astype(np.int64)
        return states

    def reset(
        self,
        seed: int | None = None,
        uniforms: np.ndarray | None = None,
        profile: bool = False,
        adversary_uniforms: np.ndarray | None = None,
    ) -> VectorObservation:
        observation = super().reset(
            seed,
            uniforms=uniforms,
            profile=profile,
            adversary_uniforms=adversary_uniforms,
        )
        self._system_states = [self.expected_healthy_nodes()]
        if self._class_slots is not None:
            self._class_states = {
                label: [state]
                for label, state in self.expected_healthy_nodes_by_class().items()
            }
            self._class_available_steps = {
                label: np.zeros(self.num_envs, dtype=np.int64)
                for label in self._class_slots
            }
        return observation

    def step(
        self, recover: np.ndarray
    ) -> tuple[VectorObservation, np.ndarray, bool, dict[str, Any]]:
        observation, costs, done, info = super().step(recover)
        system_state = self.expected_healthy_nodes()
        self._system_states.append(system_state)
        info["system_state"] = system_state
        if self._class_slots is not None:
            for label, state in self.expected_healthy_nodes_by_class().items():
                self._class_states[label].append(state)
            failed_mask = info.get("failed_mask")
            if failed_mask is not None and self.scenario.f is not None:
                for label, slots in self._class_slots.items():
                    threshold = min(self.scenario.f, len(slots))
                    self._class_available_steps[label] += (
                        failed_mask[:, slots].sum(axis=1) <= threshold
                    )
        sim = self._require_started()
        if sim.last_failed is not None:
            info["failed_nodes"] = sim.last_failed
        return observation, costs, done, info

    def availability(self) -> np.ndarray | None:
        """Per-episode fleet availability ``T^(A)`` so far, shape ``(B,)``."""
        sim = self._require_started()
        if sim.available_steps is None:
            return None
        return sim.available_steps / max(sim.t, 1)

    def class_availability(self) -> dict[str, np.ndarray]:
        """Per-class availability so far: one ``(B,)`` array per class.

        A class sub-fleet counts as available on a step when at most
        ``min(f, count_c)`` of its nodes are failed — the sub-fleet
        counterpart of the fleet-level ``T^(A)``, and the per-class signal
        a class-aware replication policy trades off against the add cost.
        Requires a labelled scenario with a tolerance threshold ``f``.
        """
        if self._class_slots is None:
            raise ValueError(
                "per-class availability requires a labelled scenario; build "
                "it with FleetScenario.mixed(...)"
            )
        if self.scenario.f is None:
            raise ValueError(
                "per-class availability requires the scenario to define f"
            )
        sim = self._require_started()
        steps = max(sim.t, 1)
        return {
            label: counts / steps
            for label, counts in self._class_available_steps.items()
        }

    def system_state_transitions(self) -> np.ndarray:
        """Observed ``(s_t, s_{t+1})`` pairs across all episodes, shape ``(K, 2)``.

        The empirical counterpart of the ``f_S`` estimation step: aggregate
        the pairs into a count matrix to fit the system CMDP transition
        kernel from simulation instead of testbed traces.
        """
        if len(self._system_states) < 2:
            return np.empty((0, 2), dtype=np.int64)
        states = np.stack(self._system_states)  # (T + 1, B)
        pairs = np.stack([states[:-1].ravel(), states[1:].ravel()], axis=1)
        return pairs

    def class_state_transitions(self) -> dict[str, np.ndarray]:
        """Per-class ``(s_t, s_{t+1})`` pairs across all episodes.

        The mixed-fleet counterpart of :meth:`system_state_transitions`:
        each class's pairs live in its own sub-fleet state space
        ``{0, ..., count_c}`` and feed one empirical kernel per container
        class.  Requires a labelled scenario.
        """
        if self._class_slots is None:
            raise ValueError(
                "per-class transitions require a labelled scenario; build it "
                "with FleetScenario.mixed(...)"
            )
        transitions: dict[str, np.ndarray] = {}
        # Key off the scenario's classes (not the recorded dict) so an env
        # that was never reset still reports every class, with empty pairs.
        for label in self._class_slots:
            recorded = self._class_states.get(label, [])
            if len(recorded) < 2:
                transitions[label] = np.empty((0, 2), dtype=np.int64)
                continue
            states = np.stack(recorded)  # (T + 1, B)
            transitions[label] = np.stack(
                [states[:-1].ravel(), states[1:].ravel()], axis=1
            )
        return transitions
