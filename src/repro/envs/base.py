"""The unified vectorized environment interface (``step``/``reset``).

Every backend in this package — the bit-exact batch simulator
(:class:`~repro.envs.vector_recovery.VectorRecoveryEnv`), the fleet-level
system view (:class:`~repro.envs.vector_recovery.FleetVectorEnv`) and the
emulation testbed adapter
(:class:`~repro.emulation.vector_env.EmulationVectorEnv`) — exposes the same
Gym-style vectorized API:

* :meth:`VectorEnv.reset` starts ``B`` independent recovery episodes and
  returns the initial :class:`VectorObservation`;
* :meth:`VectorEnv.step` takes a boolean ``(B, N)`` recover mask (one
  decision per episode and node slot) and advances every episode by one
  time-step, returning the next observation, the per-slot step costs, a
  ``done`` flag and a backend-specific info dict.

Episodes are fixed-horizon and advance in lockstep, so ``done`` is a single
flag for the whole batch.  Observations carry exactly the information the
paper's controllers act on: the compromise belief, the time since the last
recovery (the BTR clock), the mask of slots whose BTR deadline forces a
recovery this step, and the mask of active slots (always all-true for the
simulation backends; the emulation backend deactivates crashed/evicted
slots and activates newly added nodes).

Because the interface is belief-level, any
:class:`~repro.core.strategies.RecoveryStrategy`, any batched strategy, and
any learned policy (e.g. :class:`~repro.solvers.ppo.PPOPolicy`) can drive
any backend unmodified — see :mod:`repro.envs.policies` for the adapters
and :mod:`repro.envs.rollout` for the generic rollout driver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Protocol, runtime_checkable

import numpy as np

__all__ = ["DEFAULT_CLOCK_CAP", "VectorObservation", "VectorEnv"]

#: Cap on the BTR-clock feature: ``min(t, cap) / cap`` is the second input
#: of the PPO policy/value networks (shared with :mod:`repro.solvers.ppo`).
DEFAULT_CLOCK_CAP = 100


@dataclass
class VectorObservation:
    """Batched observation of ``B`` episodes x ``N`` node slots.

    A plain (non-frozen) dataclass: observations sit on the hot rollout
    path, and frozen-dataclass construction costs a ``__setattr__``
    indirection per field.  Treat instances as read-only.

    Attributes:
        beliefs: Compromise beliefs ``b_t``, shape ``(B, N)``.
        time_since_recovery: BTR clocks, shape ``(B, N)``, ``int64``.
        forced: Slots whose BTR deadline forces ``RECOVER`` as the next
            action regardless of the policy's choice, shape ``(B, N)``.
        active: Slots currently holding a live, reporting node, shape
            ``(B, N)``.  Decisions for inactive slots are ignored.
    """

    beliefs: np.ndarray
    time_since_recovery: np.ndarray
    forced: np.ndarray
    active: np.ndarray

    @property
    def num_envs(self) -> int:
        return int(self.beliefs.shape[0])

    @property
    def num_nodes(self) -> int:
        return int(self.beliefs.shape[1])

    def features(self, node: int = 0, clock_cap: int = DEFAULT_CLOCK_CAP) -> np.ndarray:
        """Per-episode ``(belief, normalized BTR clock)`` feature matrix.

        The two-dimensional feature vector consumed by the PPO policy/value
        networks, shape ``(B, 2)``.
        """
        clock = np.minimum(self.time_since_recovery[:, node], clock_cap) / float(clock_cap)
        return np.stack([self.beliefs[:, node], clock], axis=1)


@runtime_checkable
class VectorEnv(Protocol):
    """Interface of a batched step/reset recovery environment."""

    @property
    def num_envs(self) -> int:
        """Number of independent episodes ``B`` advanced per step."""
        ...

    @property
    def num_nodes(self) -> int:
        """Number of node slots ``N`` per episode."""
        ...

    @property
    def horizon(self) -> int:
        """Episode length ``T`` in time-steps."""
        ...

    def reset(self, seed: int | None = None) -> VectorObservation:
        """Start ``B`` fresh episodes and return the initial observation."""
        ...

    def step(
        self, recover: np.ndarray
    ) -> tuple[VectorObservation, np.ndarray, bool, dict[str, Any]]:
        """Advance all episodes one step under the given recover mask.

        Args:
            recover: Boolean decisions, shape ``(B, N)`` (anything
                broadcastable to it is accepted).  ``True`` requests a
                recovery of that episode's node slot.

        Returns:
            ``(observation, costs, done, info)`` where ``costs`` holds the
            per-slot step costs ``c_N(s_t, a_t)`` of Eq. 5, shape
            ``(B, N)``, and ``done`` is ``True`` once the fixed horizon is
            reached (after which :meth:`step` must not be called again
            before a :meth:`reset`).
        """
        ...
