"""Generic rollout driver: run any vector policy on any vector environment.

The driver encodes the control-loop convention shared by all backends:
observe the current beliefs, ask the policy for a recover mask, step.  It
is the environment-layer counterpart of
:meth:`~repro.solvers.evaluation.RecoverySimulator.evaluate` — and on
:class:`~repro.envs.vector_recovery.VectorRecoveryEnv` it reproduces the
scalar simulator episode for episode under a shared seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from .base import VectorEnv
from .policies import VectorPolicy

__all__ = ["VectorRolloutResult", "rollout"]


@dataclass(frozen=True)
class VectorRolloutResult:
    """Aggregate outcome of one batched rollout.

    Attributes:
        average_cost: Per-slot average step cost, shape ``(B, N)``.
        total_cost: Per-slot summed cost, shape ``(B, N)``.
        steps: Number of steps executed (the environment horizon).
        final_info: The info dict returned by the last step.
    """

    average_cost: np.ndarray
    total_cost: np.ndarray
    steps: int
    final_info: dict[str, Any]

    @property
    def mean_cost(self) -> float:
        """Scalar Monte-Carlo estimate across all episodes and slots."""
        return float(self.average_cost.mean())


def rollout(
    env: VectorEnv,
    policy: VectorPolicy,
    seed: int | None = None,
    rng: np.random.Generator | None = None,
) -> VectorRolloutResult:
    """Run one full fixed-horizon batch of episodes under ``policy``.

    Args:
        env: Any :class:`~repro.envs.base.VectorEnv` backend.
        policy: Any :class:`~repro.envs.policies.VectorPolicy` — e.g. a
            :class:`~repro.envs.policies.StrategyPolicy` around a threshold
            strategy or a learned PPO policy.
        seed: Episode seed forwarded to :meth:`VectorEnv.reset`.
        rng: Generator handed to stochastic policies (deterministic
            policies ignore it).

    Returns:
        The aggregated per-episode costs.
    """
    observation = env.reset(seed=seed)
    total_cost = np.zeros((env.num_envs, env.num_nodes))
    steps = 0
    done = False
    info: dict[str, Any] = {}
    while not done:
        recover = policy.act(observation, rng)
        observation, costs, done, info = env.step(recover)
        total_cost += costs
        steps += 1
    return VectorRolloutResult(
        average_cost=total_cost / max(steps, 1),
        total_cost=total_cost,
        steps=steps,
        final_info=info,
    )
