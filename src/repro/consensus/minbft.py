"""Reconfigurable MinBFT: the intrusion-tolerant consensus substrate (Appendix G).

MinBFT is a BFT state-machine-replication protocol for the *hybrid* failure
model: every replica has a trusted USIG component that fails only by
crashing, which raises the tolerance threshold to ``f = (N - 1) / 2``
(compared with PBFT's ``(N - 1) / 3``).  The normal-case message pattern is

    client --REQUEST--> all replicas
    leader --PREPARE(UI)--> all replicas
    every replica --COMMIT(UI)--> all replicas
    every replica --REPLY--> client          (client waits for f + 1 matches)

complemented by VIEW-CHANGE / NEW-VIEW (leader replacement), CHECKPOINT
(garbage collection), STATE (state transfer to recovering or joining
replicas), and JOIN / EVICT (reconfiguration triggered by the system
controller), as shown in Figure 17 of the paper.

This module implements the protocol over the simulated authenticated
network of :mod:`repro.consensus.network`.  Byzantine behaviour of
compromised replicas is injected through :class:`ByzantineBehavior`,
mirroring the attacker options of Section VIII-A: after compromising a
replica the attacker either participates normally, stops participating, or
participates with corrupted messages.
"""

from __future__ import annotations

import enum
import functools
import itertools
from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from .crypto import KeyRegistry, digest
from .messages import (
    Checkpoint,
    ClientRequest,
    Commit,
    EvictRequest,
    JoinRequest,
    NewView,
    Prepare,
    ReconfigurationReply,
    Reply,
    StateTransferRequest,
    StateTransferResponse,
    ViewChange,
)
from .network import NetworkConfig, SimulatedNetwork
from .state_machine import KeyValueStateMachine
from .usig import USIG, USIGVerifier

__all__ = [
    "ByzantineBehavior",
    "MinBFTConfig",
    "MinBFTReplica",
    "MinBFTCluster",
]


@functools.lru_cache(maxsize=8192)
def _cached_request_digest(request: ClientRequest) -> str:
    return digest(request.payload())


def _request_digest(request: ClientRequest) -> str:
    """Digest of a client request's signable payload, memoized when hashable.

    The same request is digested a handful of times per replica (prepare
    handling, commit sending, quorum counting); the cache keeps the
    closed-loop benchmark from re-serializing the payload each time.
    """
    try:
        return _cached_request_digest(request)
    except TypeError:  # unhashable request value
        return digest(request.payload())


class ByzantineBehavior(enum.Enum):
    """Post-compromise behaviour of a replica (Section VIII-A)."""

    NONE = "none"  # not compromised / behaves correctly
    SILENT = "silent"  # stops participating in the protocol
    ARBITRARY = "arbitrary"  # participates with corrupted messages
    PARTICIPATE = "participate"  # compromised but follows the protocol


@dataclass(frozen=True)
class MinBFTConfig:
    """Protocol configuration.

    Attributes:
        checkpoint_interval: Number of executed requests between checkpoints
            (the ``cp`` parameter, Appendix E uses 100).
        view_change_timeout: Ticks a replica waits for an accepted request to
            execute before voting for a view change (``T_vc``).
        k: Number of simultaneous recoveries tolerated (enters the quorum
            size ``f = (N - 1 - k) / 2`` of the reconfigurable variant).
    """

    checkpoint_interval: int = 10
    view_change_timeout: int = 30
    k: int = 1


class MinBFTReplica:
    """One MinBFT replica attached to a simulated network."""

    def __init__(
        self,
        replica_id: str,
        membership: list[str],
        registry: KeyRegistry,
        network: SimulatedNetwork,
        config: MinBFTConfig | None = None,
    ) -> None:
        self.process_id = replica_id
        self.replica_id = replica_id
        self.config = config if config is not None else MinBFTConfig()
        self.network = network
        self.registry = registry
        self.membership: list[str] = sorted(membership)
        self.view = 0
        self.usig = USIG(replica_id, registry)
        self.verifier = USIGVerifier(registry)
        self.state_machine = KeyValueStateMachine()
        self.byzantine = ByzantineBehavior.NONE
        self._rng = np.random.default_rng(abs(hash(replica_id)) % (2 ** 32))

        # Normal-case protocol state.  Commit votes are keyed by
        # ``(sequence, request_digest)``: a corrupted COMMIT that arrives
        # before its PREPARE (jitter reordering skips the digest check) must
        # vote for *its own* digest, never toward the f + 1 quorum of the
        # honest one.
        self.next_sequence = 0  # leader only
        #: Highest sequence number seen in any verified PREPARE, COMMIT or
        #: NEW-VIEW.  A leader never assigns a sequence at or below this
        #: watermark, so a recovered replica that could not complete state
        #: transfer (e.g. too many compromised peers to form the f + 1
        #: response quorum) cannot restart sequencing from zero and execute
        #: a divergent history on its fresh state machine — it proposes
        #: *above* the watermark and stays safely behind until state
        #: transfer succeeds.
        self.known_sequence = 0
        self._last_state_request_tick = 0
        self.prepare_log: dict[int, Prepare] = {}
        self.commit_votes: dict[tuple[int, str], set[str]] = defaultdict(set)
        self.executed_sequence = 0
        self.pending_client_requests: dict[tuple[str, int], tuple[ClientRequest, int]] = {}
        self.executed_request_ids: set[tuple[str, int]] = set()
        self.replies_sent = 0
        # Replies to executed requests, kept until the next stable checkpoint
        # so retransmitted client requests can be answered without
        # re-execution (clients retry under churn).
        self.reply_cache: dict[tuple[str, int], Reply] = {}
        #: Append-only observer log of ``(request identifier, sequence)``
        #: pairs in execution order.  Unlike the state machine it survives
        #: recovery (a recovered replica starts a fresh container but the
        #: *observer* still saw the old replies), which is what lets the
        #: safety audit detect duplicate execution across recoveries.
        self.execution_log: list[tuple[tuple[str, int], int]] = []

        # View change state.
        self.view_change_votes: dict[int, set[str]] = defaultdict(set)
        self.in_view_change = False

        # Checkpoint state.
        self.last_checkpoint_sequence = 0
        self.checkpoint_votes: dict[tuple[int, str], set[str]] = defaultdict(set)

        network.register(self)

    # -- roles ---------------------------------------------------------------------
    @property
    def num_replicas(self) -> int:
        return len(self.membership)

    @property
    def f(self) -> int:
        """Tolerance threshold of the hybrid model, ``f = (N - 1 - k) / 2``."""
        return max((self.num_replicas - 1 - self.config.k) // 2, 0)

    @property
    def quorum_size(self) -> int:
        """Commit quorum: ``f + 1`` matching COMMITs suffice under hybrid failures."""
        return self.f + 1

    def leader_of(self, view: int) -> str:
        return self.membership[view % self.num_replicas]

    @property
    def is_leader(self) -> bool:
        return self.leader_of(self.view) == self.replica_id

    # -- failure injection -------------------------------------------------------------
    def set_byzantine(self, behavior: ByzantineBehavior) -> None:
        self.byzantine = behavior

    def recover(self) -> None:
        """Local recovery: reset Byzantine behaviour; state transfer refreshes the log."""
        self.byzantine = ByzantineBehavior.NONE

    def _acting_correctly(self) -> bool:
        return self.byzantine in (ByzantineBehavior.NONE, ByzantineBehavior.PARTICIPATE)

    # -- message handling -------------------------------------------------------------
    def on_message(self, sender: str, payload: object, tick: int) -> None:
        if self.byzantine is ByzantineBehavior.SILENT:
            return
        if isinstance(payload, ClientRequest):
            self._handle_request(payload, tick)
        elif isinstance(payload, Prepare):
            self._handle_prepare(payload, tick)
        elif isinstance(payload, Commit):
            self._handle_commit(payload, tick)
        elif isinstance(payload, ViewChange):
            self._handle_view_change(payload)
        elif isinstance(payload, NewView):
            self._handle_new_view(payload)
        elif isinstance(payload, Checkpoint):
            self._handle_checkpoint(payload)
        elif isinstance(payload, StateTransferRequest):
            self._handle_state_request(payload)
        elif isinstance(payload, StateTransferResponse):
            self._handle_state_response(payload)
        elif isinstance(payload, JoinRequest):
            self._handle_join(payload)
        elif isinstance(payload, EvictRequest):
            self._handle_evict(payload)

    # -- normal case -----------------------------------------------------------------
    def _handle_request(self, request: ClientRequest, tick: int) -> None:
        if request.identifier in self.executed_request_ids:
            # Retransmission of an executed request: re-send the cached
            # reply (the original may have been lost to a crash or raced a
            # reconfiguration) instead of executing again.
            reply = self.reply_cache.get(request.identifier)
            if reply is not None and self._acting_correctly():
                self.network.send(self.replica_id, request.client_id, reply)
            return
        if request.signature is not None and not self.registry.verify(
            request.payload(), request.signature
        ):
            return  # Validity: drop requests that were not signed by a client.
        if request.identifier not in self.pending_client_requests:
            self.pending_client_requests[request.identifier] = (request, tick)
        if self.is_leader and self._acting_correctly():
            self._send_prepare(request)

    def _send_prepare(self, request: ClientRequest) -> None:
        already_prepared = any(
            p.request.identifier == request.identifier for p in self.prepare_log.values()
        )
        if already_prepared:
            return
        self.next_sequence = (
            max(self.next_sequence, self.executed_sequence, self.known_sequence) + 1
        )
        sequence = self.next_sequence
        content = {"view": self.view, "sequence": sequence, "request": _request_digest(request)}
        ui = self.usig.create_ui(content)
        prepare = Prepare(
            view=self.view,
            sequence=sequence,
            request=request,
            leader_id=self.replica_id,
            ui=ui,
        )
        if self.byzantine is ByzantineBehavior.ARBITRARY:
            # Corrupted leader: send a prepare for a garbled request digest.
            prepare = Prepare(
                view=self.view,
                sequence=sequence,
                request=request,
                leader_id=self.replica_id,
                ui=self.usig.create_ui({"garbage": self._rng.integers(1 << 30)}),
            )
        for destination in self.membership:
            if destination != self.replica_id:
                self.network.send(self.replica_id, destination, prepare)
        self._accept_prepare(prepare)

    def _handle_prepare(self, prepare: Prepare, tick: int) -> None:
        if prepare.view != self.view:
            return
        if prepare.leader_id != self.leader_of(prepare.view):
            return
        content = {
            "view": prepare.view,
            "sequence": prepare.sequence,
            "request": _request_digest(prepare.request),
        }
        if not self.verifier.verify(content, prepare.ui, enforce_order=False):
            return
        self.pending_client_requests.setdefault(prepare.request.identifier, (prepare.request, tick))
        self._accept_prepare(prepare)

    def _accept_prepare(self, prepare: Prepare) -> None:
        self.known_sequence = max(self.known_sequence, prepare.sequence)
        if prepare.sequence in self.prepare_log:
            return
        self.prepare_log[prepare.sequence] = prepare
        if not self._acting_correctly():
            if self.byzantine is ByzantineBehavior.ARBITRARY:
                self._send_commit(prepare, corrupt=True)
            return
        self._send_commit(prepare, corrupt=False)

    def _send_commit(self, prepare: Prepare, corrupt: bool) -> None:
        request_digest = _request_digest(prepare.request)
        if corrupt:
            request_digest = digest({"corrupted": self._rng.integers(1 << 30)})
        content = {
            "view": prepare.view,
            "sequence": prepare.sequence,
            "digest": request_digest,
        }
        ui = self.usig.create_ui(content)
        commit = Commit(
            view=prepare.view,
            sequence=prepare.sequence,
            request_digest=request_digest,
            replica_id=self.replica_id,
            prepare_ui=prepare.ui,
            ui=ui,
        )
        for destination in self.membership:
            if destination != self.replica_id:
                self.network.send(self.replica_id, destination, commit)
        self._register_commit(commit)

    def _handle_commit(self, commit: Commit, tick: int) -> None:
        del tick
        if commit.view != self.view:
            return
        content = {
            "view": commit.view,
            "sequence": commit.sequence,
            "digest": commit.request_digest,
        }
        if not self.verifier.verify(content, commit.ui, enforce_order=False):
            return
        prepare = self.prepare_log.get(commit.sequence)
        if prepare is not None and commit.request_digest != _request_digest(prepare.request):
            return  # Corrupted commit from a Byzantine replica.
        self._register_commit(commit)

    def _register_commit(self, commit: Commit) -> None:
        self.known_sequence = max(self.known_sequence, commit.sequence)
        self.commit_votes[(commit.sequence, commit.request_digest)].add(commit.replica_id)
        self._try_execute()

    def _try_execute(self) -> None:
        """Execute committed requests in sequence order (Safety)."""
        while True:
            next_sequence = self.executed_sequence + 1
            prepare = self.prepare_log.get(next_sequence)
            if prepare is None:
                return
            # Only COMMITs matching the prepared request's digest count
            # toward the quorum: votes for a corrupted digest accumulate
            # under their own key and never reach f + 1.
            votes = self.commit_votes.get(
                (next_sequence, _request_digest(prepare.request)), set()
            )
            if len(votes) < self.quorum_size:
                return
            if not self._acting_correctly():
                return
            result = self.state_machine.apply(prepare.request, next_sequence)
            self.executed_sequence = next_sequence
            self.executed_request_ids.add(prepare.request.identifier)
            if not result.duplicate:
                # Only effectful applies enter the observer log: idempotent
                # re-deliveries (view-change re-proposals) are benign, while
                # a re-execution on a *fresh* state machine after recovery
                # is the duplicate the safety audit must catch.
                self.execution_log.append((prepare.request.identifier, next_sequence))
            self.pending_client_requests.pop(prepare.request.identifier, None)
            reply = Reply(
                view=self.view,
                replica_id=self.replica_id,
                client_id=prepare.request.client_id,
                request_id=prepare.request.request_id,
                result=result.value,
                sequence=next_sequence,
            )
            self.network.send(self.replica_id, prepare.request.client_id, reply)
            self.reply_cache[prepare.request.identifier] = reply
            self.replies_sent += 1
            if (
                self.config.checkpoint_interval > 0
                and self.executed_sequence - self.last_checkpoint_sequence
                >= self.config.checkpoint_interval
            ):
                self._send_checkpoint()

    # -- checkpoints -------------------------------------------------------------------
    def _send_checkpoint(self) -> None:
        state_digest = self.state_machine.state_digest()
        content = {"sequence": self.executed_sequence, "digest": state_digest}
        checkpoint = Checkpoint(
            sequence=self.executed_sequence,
            state_digest=state_digest,
            replica_id=self.replica_id,
            ui=self.usig.create_ui(content),
        )
        for destination in self.membership:
            if destination != self.replica_id:
                self.network.send(self.replica_id, destination, checkpoint)
        self._register_checkpoint(checkpoint)

    def _handle_checkpoint(self, checkpoint: Checkpoint) -> None:
        content = {"sequence": checkpoint.sequence, "digest": checkpoint.state_digest}
        if not self.verifier.verify(content, checkpoint.ui, enforce_order=False):
            return
        self._register_checkpoint(checkpoint)

    def _register_checkpoint(self, checkpoint: Checkpoint) -> None:
        key = (checkpoint.sequence, checkpoint.state_digest)
        self.checkpoint_votes[key].add(checkpoint.replica_id)
        if len(self.checkpoint_votes[key]) >= self.quorum_size:
            if checkpoint.sequence > self.last_checkpoint_sequence:
                self.last_checkpoint_sequence = checkpoint.sequence
                self._garbage_collect(checkpoint.sequence)

    def _garbage_collect(self, stable_sequence: int) -> None:
        for sequence in list(self.prepare_log):
            if sequence <= stable_sequence:
                del self.prepare_log[sequence]
        for key in list(self.commit_votes):
            if key[0] <= stable_sequence:
                del self.commit_votes[key]
        self.reply_cache = {
            identifier: reply
            for identifier, reply in self.reply_cache.items()
            if reply.sequence > stable_sequence
        }

    # -- view changes -------------------------------------------------------------------
    def on_tick(self, tick: int) -> None:
        """Timer processing; the cluster calls this once per network tick."""
        if not self._acting_correctly():
            return
        if self.in_view_change:
            return
        timeout = self.config.view_change_timeout
        if (
            self.known_sequence > self.executed_sequence + self.config.checkpoint_interval
            and tick - self._last_state_request_tick >= timeout
        ):
            # Lagging badly (e.g. recovery while too many peers were
            # compromised to answer the first transfer): retry state
            # transfer until an f + 1 response quorum forms.
            self._last_state_request_tick = tick
            self.request_state_transfer()
        for request, received_at in list(self.pending_client_requests.values()):
            if tick - received_at > timeout:
                self._start_view_change(self.view + 1)
                return

    def _start_view_change(self, new_view: int) -> None:
        self.in_view_change = True
        content = {
            "new_view": new_view,
            "last_executed": self.executed_sequence,
            "checkpoint": self.state_machine.state_digest(),
        }
        message = ViewChange(
            new_view=new_view,
            last_executed=self.executed_sequence,
            replica_id=self.replica_id,
            checkpoint_digest=self.state_machine.state_digest(),
            ui=self.usig.create_ui(content),
        )
        for destination in self.membership:
            if destination != self.replica_id:
                self.network.send(self.replica_id, destination, message)
        self._register_view_change(message)

    def _handle_view_change(self, message: ViewChange) -> None:
        content = {
            "new_view": message.new_view,
            "last_executed": message.last_executed,
            "checkpoint": message.checkpoint_digest,
        }
        if not self.verifier.verify(content, message.ui, enforce_order=False):
            return
        self._register_view_change(message)

    def _register_view_change(self, message: ViewChange) -> None:
        if message.new_view <= self.view:
            return
        self.view_change_votes[message.new_view].add(message.replica_id)
        votes = self.view_change_votes[message.new_view]
        if len(votes) >= self.quorum_size:
            # Join the view change if we have not already.
            if not self.in_view_change and self.replica_id not in votes:
                self._start_view_change(message.new_view)
            if self.leader_of(message.new_view) == self.replica_id and self._acting_correctly():
                self._announce_new_view(message.new_view)

    def _announce_new_view(self, view: int) -> None:
        content = {
            "view": view,
            "membership": tuple(self.membership),
            "starting_sequence": self.executed_sequence,
        }
        new_view = NewView(
            view=view,
            leader_id=self.replica_id,
            membership=tuple(self.membership),
            starting_sequence=self.executed_sequence,
            ui=self.usig.create_ui(content),
        )
        for destination in self.membership:
            if destination != self.replica_id:
                self.network.send(self.replica_id, destination, new_view)
        self._apply_new_view(new_view)

    def _handle_new_view(self, message: NewView) -> None:
        content = {
            "view": message.view,
            "membership": message.membership,
            "starting_sequence": message.starting_sequence,
        }
        if not self.verifier.verify(content, message.ui, enforce_order=False):
            return
        if message.leader_id != sorted(message.membership)[message.view % len(message.membership)]:
            return
        self._apply_new_view(message)

    def _apply_new_view(self, message: NewView) -> None:
        if message.view < self.view:
            return
        self.known_sequence = max(self.known_sequence, message.starting_sequence)
        self.view = message.view
        self.membership = sorted(message.membership)
        self.in_view_change = False
        self.view_change_votes = defaultdict(set)
        # Drop uncommitted protocol state from older views; pending client
        # requests are re-proposed by the new leader.
        self.prepare_log = {
            seq: prep for seq, prep in self.prepare_log.items() if seq <= self.executed_sequence
        }
        self.commit_votes = defaultdict(set, {
            key: votes for key, votes in self.commit_votes.items()
            if key[0] <= self.executed_sequence
        })
        self.next_sequence = max(self.executed_sequence, self.known_sequence)
        if self.is_leader and self._acting_correctly():
            for request, _ in list(self.pending_client_requests.values()):
                self._send_prepare(request)

    # -- state transfer --------------------------------------------------------------------
    def request_state_transfer(self) -> None:
        """Ask the other replicas for the current state (Fig. 17d)."""
        request = StateTransferRequest(
            replica_id=self.replica_id, last_executed=self.executed_sequence
        )
        for destination in self.membership:
            if destination != self.replica_id:
                self.network.send(self.replica_id, destination, request)

    def _handle_state_request(self, request: StateTransferRequest) -> None:
        if not self._acting_correctly():
            return
        snapshot = self.state_machine.snapshot()
        response = StateTransferResponse(
            replica_id=self.replica_id,
            last_executed=self.executed_sequence,
            state_snapshot=snapshot,
            state_digest=self.state_machine.state_digest(),
            executed_requests=self.state_machine.executed_requests(),
        )
        self.network.send(self.replica_id, request.replica_id, response)

    def _handle_state_response(self, response: StateTransferResponse) -> None:
        # Adopt a state that is ahead of ours and confirmed by f + 1 replicas.
        key = ("state", response.last_executed, response.state_digest)
        self.checkpoint_votes[key].add(response.replica_id)
        if (
            len(self.checkpoint_votes[key]) >= self.quorum_size
            and response.last_executed > self.executed_sequence
        ):
            self.state_machine.restore(response.state_snapshot)
            self.executed_sequence = response.last_executed
            self.executed_request_ids = set(response.executed_requests)
            self.known_sequence = max(self.known_sequence, response.last_executed)
            self.next_sequence = max(self.executed_sequence, self.known_sequence)

    # -- reconfiguration ----------------------------------------------------------------------
    def _handle_join(self, request: JoinRequest) -> None:
        if request.new_replica_id in self.membership:
            return
        new_membership = tuple(sorted(self.membership + [request.new_replica_id]))
        self._reconfigure(new_membership, kind="join", subject=request.new_replica_id,
                          reply_to=request.issued_by)

    def _handle_evict(self, request: EvictRequest) -> None:
        if request.replica_id not in self.membership:
            return
        remaining = [r for r in self.membership if r != request.replica_id]
        if not remaining:
            return
        self._reconfigure(tuple(sorted(remaining)), kind="evict", subject=request.replica_id,
                          reply_to=request.issued_by)

    def _reconfigure(
        self, new_membership: tuple[str, ...], kind: str, subject: str, reply_to: str
    ) -> None:
        """Apply a membership change through a view change (Fig. 17e-f).

        The current leader announces the NEW-VIEW; other replicas adopt it
        when they receive the announcement.  When the change removes the
        current leader itself (leader eviction), the *designated successor*
        — the leader of ``view + 1`` under the new membership — is entitled
        to announce instead: without this, an EVICT of the leader handed to
        a follower would silently no-op and the cluster would never produce
        the NEW-VIEW that actually reconfigures the group.
        """
        if not self._acting_correctly():
            return
        new_view = self.view + 1
        if not self.is_leader:
            successor = sorted(new_membership)[new_view % len(new_membership)]
            leader_removed = self.leader_of(self.view) not in new_membership
            if not (leader_removed and successor == self.replica_id):
                # Followers update their local membership lazily via NEW-VIEW.
                return
        content = {
            "view": new_view,
            "membership": new_membership,
            "starting_sequence": self.executed_sequence,
        }
        announcement = NewView(
            view=new_view,
            leader_id=sorted(new_membership)[new_view % len(new_membership)],
            membership=new_membership,
            starting_sequence=self.executed_sequence,
            ui=self.usig.create_ui(content),
        )
        targets = set(new_membership) | set(self.membership)
        for destination in targets:
            if destination != self.replica_id:
                self.network.send(self.replica_id, destination, announcement)
        self._apply_new_view(announcement)
        reply = ReconfigurationReply(
            kind=kind,
            replica_id=subject,
            view=self.view,
            membership=new_membership,
            sender_id=self.replica_id,
        )
        self.network.send(self.replica_id, reply_to, reply)


class MinBFTCluster:
    """Orchestrates a MinBFT replica group over a simulated network.

    The cluster owns the network, the key registry, and the replicas; it
    provides helpers for driving the simulation (ticks), submitting client
    requests, injecting failures, and reconfiguring membership — the same
    operations the TOLERANCE architecture performs through its controllers.
    """

    def __init__(
        self,
        num_replicas: int = 4,
        config: MinBFTConfig | None = None,
        network_config: NetworkConfig | None = None,
        seed: int | None = None,
    ) -> None:
        if num_replicas < 2:
            raise ValueError("MinBFT requires at least two replicas")
        self.config = config if config is not None else MinBFTConfig()
        self.registry = KeyRegistry()
        self.network = SimulatedNetwork(network_config, seed=seed)
        self._replica_counter = itertools.count(num_replicas)
        replica_ids = [f"replica-{i}" for i in range(num_replicas)]
        self.replicas: dict[str, MinBFTReplica] = {}
        for replica_id in replica_ids:
            self.replicas[replica_id] = MinBFTReplica(
                replica_id, replica_ids, self.registry, self.network, self.config
            )

    # -- membership --------------------------------------------------------------------
    @property
    def membership(self) -> list[str]:
        return sorted(self.replicas)

    @property
    def f(self) -> int:
        any_replica = next(iter(self.replicas.values()))
        return any_replica.f

    def current_leader(self) -> str:
        """Leader according to the most advanced live replica's view."""
        live = [
            replica
            for replica_id, replica in self.replicas.items()
            if not self.network.is_crashed(replica_id)
        ]
        candidates = live if live else list(self.replicas.values())
        reference = max(candidates, key=lambda replica: replica.view)
        return reference.leader_of(reference.view)

    def add_replica(self, issued_by: str = "system-controller") -> str:
        """Add a new replica and reconfigure the group (JOIN, Fig. 17e)."""
        new_id = f"replica-{next(self._replica_counter)}"
        replica = MinBFTReplica(
            new_id, self.membership + [new_id], self.registry, self.network, self.config
        )
        self.replicas[new_id] = replica
        join = JoinRequest(new_replica_id=new_id, issued_by=issued_by)
        self.network.send(issued_by, self.current_leader(), join)
        self.run(ticks=10)
        replica.request_state_transfer()
        self.run(ticks=10)
        return new_id

    def evict_replica(self, replica_id: str, issued_by: str = "system-controller") -> None:
        """Evict a replica and reconfigure the group (EVICT, Fig. 17f).

        Evicting the current leader hands the EVICT to the remaining
        replicas, whose designated successor (the leader of the next view
        under the shrunk membership) announces the NEW-VIEW — see
        :meth:`MinBFTReplica._reconfigure`.
        """
        if replica_id not in self.replicas:
            return
        evict = EvictRequest(replica_id=replica_id, issued_by=issued_by)
        leader = self.current_leader()
        if leader == replica_id:
            # The leader cannot be trusted to evict itself: deliver the
            # EVICT to every remaining replica; the entitlement rule in
            # _reconfigure lets exactly the designated successor announce.
            for other in self.membership:
                if other != replica_id:
                    self.network.send(issued_by, other, evict)
        else:
            self.network.send(issued_by, leader, evict)
        self.run(ticks=10)
        self.network.unregister(replica_id)
        self.replicas.pop(replica_id, None)
        # Cleanup for replicas that missed the NEW-VIEW announcement (e.g.
        # crashed at eviction time); live replicas adopted it via the
        # protocol above.
        for replica in self.replicas.values():
            if replica_id in replica.membership:
                replica.membership = [r for r in replica.membership if r != replica_id]

    # -- failure injection --------------------------------------------------------------
    def compromise(self, replica_id: str, behavior: ByzantineBehavior) -> None:
        self.replicas[replica_id].set_byzantine(behavior)

    def crash(self, replica_id: str) -> None:
        self.network.crash(replica_id)

    def recover_replica(self, replica_id: str) -> None:
        """Recover a replica: new container, re-keyed USIG, state transfer.

        The fresh container starts with *no* protocol state: besides the
        state machine, the prepare log, commit votes and checkpoint state
        are cleared — stale quorums left in place would let the replica
        re-execute old requests and send duplicate replies before state
        transfer completes.  The USIG is re-provisioned with a fresh key,
        revoking anything the compromised container may have signed.
        """
        replica = self.replicas[replica_id]
        replica.recover()
        replica.state_machine = KeyValueStateMachine()
        replica.executed_sequence = 0
        replica.executed_request_ids = set()
        replica.reply_cache = {}
        replica.next_sequence = 0
        replica.prepare_log = {}
        replica.commit_votes = defaultdict(set)
        replica.pending_client_requests = {}
        replica.view_change_votes = defaultdict(set)
        replica.in_view_change = False
        replica.last_checkpoint_sequence = 0
        replica.checkpoint_votes = defaultdict(set)
        replica.usig = USIG(replica_id, self.registry, fresh_key=True)
        self.network.restart(replica_id)
        replica.request_state_transfer()
        self.run(ticks=10)

    # -- simulation ---------------------------------------------------------------------
    def run(self, ticks: int = 50) -> None:
        for _ in range(ticks):
            self.network.step()
            for replica in list(self.replicas.values()):
                replica.on_tick(self.network.tick)

    def executed_sequences(self) -> dict[str, tuple[tuple[str, int], ...]]:
        """Executed request identifiers per replica (safety audits)."""
        return {
            replica_id: replica.state_machine.executed_requests()
            for replica_id, replica in self.replicas.items()
        }

    def state_digests(self) -> dict[str, str]:
        return {
            replica_id: replica.state_machine.state_digest()
            for replica_id, replica in self.replicas.items()
        }
