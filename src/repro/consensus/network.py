"""Simulated authenticated network for the consensus substrates.

The paper assumes an authenticated, reliable, partially synchronous network
(Proposition 1b, 1e).  This module provides a discrete-time message-passing
simulation with:

* per-link latency (in ticks) and optional jitter,
* optional packet loss (to emulate the 0.05 % / 0.1 % NETEM loss of the
  testbed) with automatic retransmission to preserve the reliable-link
  abstraction when requested,
* network partitions (to exercise the partially synchronous model: messages
  between partitioned nodes are delayed until the partition heals),
* authenticated channels: every message carries its true sender identity,
  which receivers can trust (the paper's authenticated-link assumption).

Processes register with the network and expose an ``on_message`` callback.
The simulation advances in ticks via :meth:`SimulatedNetwork.step`; the
convenience :meth:`run` advances until no messages are in flight or a tick
budget is exhausted.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Iterable, Protocol

import numpy as np

__all__ = ["NetworkConfig", "Envelope", "Process", "SimulatedNetwork"]


@dataclass(frozen=True)
class NetworkConfig:
    """Configuration of the simulated network.

    Attributes:
        base_delay: Minimum delivery delay in ticks.
        jitter: Maximum additional random delay in ticks.
        loss_probability: Probability that a transmission attempt is lost.
        reliable: When ``True`` lost messages are retransmitted until they
            are delivered (reliable links, Prop. 1b); when ``False`` losses
            are permanent (used to test liveness under lossy links).
        max_retransmissions: Bound on retransmissions in reliable mode.
    """

    base_delay: int = 1
    jitter: int = 0
    loss_probability: float = 0.0
    reliable: bool = True
    max_retransmissions: int = 16

    def __post_init__(self) -> None:
        if self.base_delay < 0 or self.jitter < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.loss_probability < 1.0:
            raise ValueError("loss_probability must lie in [0, 1)")


@dataclass(frozen=True)
class Envelope:
    """A message in flight: authenticated sender, destination, payload."""

    sender: str
    destination: str
    payload: object
    sent_at: int
    delivery_tick: int


class Process(Protocol):
    """Interface of a process attached to the network."""

    process_id: str

    def on_message(self, sender: str, payload: object, tick: int) -> None:
        """Handle a delivered message."""
        ...


class SimulatedNetwork:
    """Discrete-time message-passing network with authenticated channels."""

    def __init__(self, config: NetworkConfig | None = None, seed: int | None = None) -> None:
        self.config = config if config is not None else NetworkConfig()
        self._rng = np.random.default_rng(seed)
        self._processes: dict[str, Process] = {}
        self._queue: list[tuple[int, int, Envelope]] = []
        self._counter = itertools.count()
        self._partitions: list[set[str]] = []
        self._crashed: set[str] = set()
        self.tick = 0
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0

    # -- membership --------------------------------------------------------------
    def register(self, process: Process) -> None:
        """Attach a process to the network; its id must be unique."""
        if process.process_id in self._processes:
            raise ValueError(f"process {process.process_id!r} already registered")
        self._processes[process.process_id] = process

    def unregister(self, process_id: str) -> None:
        self._processes.pop(process_id, None)
        self._crashed.discard(process_id)

    def processes(self) -> list[str]:
        return sorted(self._processes)

    # -- failures ----------------------------------------------------------------
    def crash(self, process_id: str) -> None:
        """Crash a process: it no longer receives messages."""
        self._crashed.add(process_id)

    def restart(self, process_id: str) -> None:
        self._crashed.discard(process_id)

    def is_crashed(self, process_id: str) -> bool:
        return process_id in self._crashed

    def partition(self, groups: Iterable[Iterable[str]]) -> None:
        """Partition the network: only processes in the same group communicate."""
        self._partitions = [set(group) for group in groups]

    def heal_partition(self) -> None:
        self._partitions = []

    def _connected(self, a: str, b: str) -> bool:
        if not self._partitions:
            return True
        for group in self._partitions:
            if a in group and b in group:
                return True
        return False

    # -- sending -----------------------------------------------------------------
    def send(self, sender: str, destination: str, payload: object) -> None:
        """Send an authenticated message; delivery obeys delay/loss/partitions."""
        if destination not in self._processes:
            return
        self.messages_sent += 1
        attempts = 1
        if self.config.loss_probability > 0.0:
            while self._rng.random() < self.config.loss_probability:
                if not self.config.reliable or attempts >= self.config.max_retransmissions:
                    self.messages_dropped += 1
                    return
                attempts += 1
        delay = self.config.base_delay
        if self.config.jitter > 0:
            delay += int(self._rng.integers(0, self.config.jitter + 1))
        # Retransmissions add one base delay each.
        delay += (attempts - 1) * self.config.base_delay
        envelope = Envelope(
            sender=sender,
            destination=destination,
            payload=payload,
            sent_at=self.tick,
            delivery_tick=self.tick + max(delay, 1),
        )
        heapq.heappush(self._queue, (envelope.delivery_tick, next(self._counter), envelope))

    def broadcast(self, sender: str, payload: object, include_self: bool = False) -> None:
        """Send ``payload`` to every registered process (optionally the sender too)."""
        for destination in self._processes:
            if destination == sender and not include_self:
                continue
            self.send(sender, destination, payload)

    # -- time --------------------------------------------------------------------
    def pending_messages(self) -> int:
        return len(self._queue)

    def step(self) -> int:
        """Advance one tick, delivering all messages due at the new tick."""
        self.tick += 1
        delivered = 0
        while self._queue and self._queue[0][0] <= self.tick:
            _, _, envelope = heapq.heappop(self._queue)
            if not self._connected(envelope.sender, envelope.destination):
                # Delay the message until the partition heals.
                heapq.heappush(
                    self._queue,
                    (self.tick + 1, next(self._counter), envelope),
                )
                # Avoid spinning forever within this tick.
                if self._queue[0][0] <= self.tick:
                    break
                continue
            process = self._processes.get(envelope.destination)
            if process is None or envelope.destination in self._crashed:
                self.messages_dropped += 1
                continue
            process.on_message(envelope.sender, envelope.payload, self.tick)
            self.messages_delivered += 1
            delivered += 1
        return delivered

    def run(self, max_ticks: int = 1000) -> int:
        """Advance until the network is quiescent or the tick budget runs out."""
        ticks = 0
        while self._queue and ticks < max_ticks:
            self.step()
            ticks += 1
        return ticks
