"""Simulated authenticated network for the consensus substrates.

The paper assumes an authenticated, reliable, partially synchronous network
(Proposition 1b, 1e).  This module provides a discrete-time message-passing
simulation with:

* per-link latency (in ticks) and optional jitter,
* optional packet loss (to emulate the 0.05 % / 0.1 % NETEM loss of the
  testbed) with automatic retransmission to preserve the reliable-link
  abstraction when requested,
* network partitions (to exercise the partially synchronous model: messages
  between partitioned nodes are delayed until the partition heals),
* authenticated channels: every message carries its true sender identity,
  which receivers can trust (the paper's authenticated-link assumption),
* optional message batching (``NetworkConfig.batch_messages``): payloads
  sent over the same ``(sender, destination)`` link within one tick share a
  single envelope — one heap operation and one delay/loss draw per link per
  tick instead of one per message.  Receivers still see one ``on_message``
  call per payload, in send order, so the protocol code is unchanged; the
  throughput-under-churn benchmark needs the batched path to push
  10^4-10^5 client requests through the cluster in one run.

Processes register with the network and expose an ``on_message`` callback.
The simulation advances in ticks via :meth:`SimulatedNetwork.step`; the
convenience :meth:`run` advances until no messages are in flight or a tick
budget is exhausted.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Iterable, Protocol

import numpy as np

__all__ = ["NetworkConfig", "Envelope", "Process", "SimulatedNetwork"]


@dataclass(frozen=True)
class NetworkConfig:
    """Configuration of the simulated network.

    Attributes:
        base_delay: Minimum delivery delay in ticks.
        jitter: Maximum additional random delay in ticks.
        loss_probability: Probability that a transmission attempt is lost.
        reliable: When ``True`` lost messages are retransmitted until they
            are delivered (reliable links, Prop. 1b); when ``False`` losses
            are permanent (used to test liveness under lossy links).
        max_retransmissions: Bound on retransmissions in reliable mode.
        batch_messages: Coalesce payloads sent over the same link within
            one tick into a single envelope (one delay/jitter/loss draw per
            batch).  Delivery semantics per payload are unchanged; same-seed
            runs differ from the unbatched network because fewer random
            draws are consumed.
    """

    base_delay: int = 1
    jitter: int = 0
    loss_probability: float = 0.0
    reliable: bool = True
    max_retransmissions: int = 16
    batch_messages: bool = False

    def __post_init__(self) -> None:
        if self.base_delay < 0 or self.jitter < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.loss_probability < 1.0:
            raise ValueError("loss_probability must lie in [0, 1)")


@dataclass(frozen=True)
class Envelope:
    """A message in flight: authenticated sender, destination, payload."""

    sender: str
    destination: str
    payload: object
    sent_at: int
    delivery_tick: int


@dataclass(frozen=True)
class _Batch:
    """Internal envelope payload: several messages sharing one link and tick."""

    payloads: tuple


class Process(Protocol):
    """Interface of a process attached to the network."""

    process_id: str

    def on_message(self, sender: str, payload: object, tick: int) -> None:
        """Handle a delivered message."""
        ...


class SimulatedNetwork:
    """Discrete-time message-passing network with authenticated channels."""

    def __init__(self, config: NetworkConfig | None = None, seed: int | None = None) -> None:
        self.config = config if config is not None else NetworkConfig()
        self._rng = np.random.default_rng(seed)
        self._processes: dict[str, Process] = {}
        self._queue: list[tuple[int, int, Envelope]] = []
        self._outbox: dict[tuple[str, str], list[object]] = {}
        self._counter = itertools.count()
        self._partitions: list[set[str]] = []
        self._crashed: set[str] = set()
        self.tick = 0
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0

    # -- membership --------------------------------------------------------------
    def register(self, process: Process) -> None:
        """Attach a process to the network; its id must be unique."""
        if process.process_id in self._processes:
            raise ValueError(f"process {process.process_id!r} already registered")
        self._processes[process.process_id] = process

    def unregister(self, process_id: str) -> None:
        self._processes.pop(process_id, None)
        self._crashed.discard(process_id)

    def processes(self) -> list[str]:
        return sorted(self._processes)

    # -- failures ----------------------------------------------------------------
    def crash(self, process_id: str) -> None:
        """Crash a process: it no longer receives messages."""
        self._crashed.add(process_id)

    def restart(self, process_id: str) -> None:
        self._crashed.discard(process_id)

    def is_crashed(self, process_id: str) -> bool:
        return process_id in self._crashed

    def partition(self, groups: Iterable[Iterable[str]]) -> None:
        """Partition the network: only processes in the same group communicate."""
        self._partitions = [set(group) for group in groups]

    def heal_partition(self) -> None:
        self._partitions = []

    def _connected(self, a: str, b: str) -> bool:
        if not self._partitions:
            return True
        for group in self._partitions:
            if a in group and b in group:
                return True
        return False

    # -- sending -----------------------------------------------------------------
    def send(self, sender: str, destination: str, payload: object) -> None:
        """Send an authenticated message; delivery obeys delay/loss/partitions."""
        if destination not in self._processes:
            return
        self.messages_sent += 1
        if self.config.batch_messages:
            self._outbox.setdefault((sender, destination), []).append(payload)
            return
        self._enqueue(sender, destination, payload, size=1)

    def _enqueue(self, sender: str, destination: str, payload: object, size: int) -> None:
        """Draw delay/loss for one envelope (``size`` payloads) and queue it."""
        attempts = 1
        if self.config.loss_probability > 0.0:
            while self._rng.random() < self.config.loss_probability:
                if not self.config.reliable or attempts >= self.config.max_retransmissions:
                    self.messages_dropped += size
                    return
                attempts += 1
        delay = self.config.base_delay
        if self.config.jitter > 0:
            delay += int(self._rng.integers(0, self.config.jitter + 1))
        # Retransmissions add one base delay each.
        delay += (attempts - 1) * self.config.base_delay
        envelope = Envelope(
            sender=sender,
            destination=destination,
            payload=payload,
            sent_at=self.tick,
            delivery_tick=self.tick + max(delay, 1),
        )
        heapq.heappush(self._queue, (envelope.delivery_tick, next(self._counter), envelope))

    def _flush_outbox(self) -> None:
        """Turn each link's buffered payloads into one in-flight envelope."""
        if not self._outbox:
            return
        outbox, self._outbox = self._outbox, {}
        for (sender, destination), payloads in outbox.items():
            if len(payloads) == 1:
                self._enqueue(sender, destination, payloads[0], size=1)
            else:
                self._enqueue(
                    sender, destination, _Batch(tuple(payloads)), size=len(payloads)
                )

    def broadcast(self, sender: str, payload: object, include_self: bool = False) -> None:
        """Send ``payload`` to every registered process (optionally the sender too)."""
        for destination in self._processes:
            if destination == sender and not include_self:
                continue
            self.send(sender, destination, payload)

    # -- time --------------------------------------------------------------------
    def pending_messages(self) -> int:
        buffered = sum(len(payloads) for payloads in self._outbox.values())
        return len(self._queue) + buffered

    def step(self) -> int:
        """Advance one tick, delivering all messages due at the new tick."""
        self._flush_outbox()
        self.tick += 1
        delivered = 0
        # Envelopes crossing a partition are set aside and re-queued *after*
        # the drain, so a blocked head-of-queue message never defers the
        # delivery of deliverable messages due this tick (and the drain
        # cannot spin on its own re-pushed envelopes).
        deferred: list[Envelope] = []
        while self._queue and self._queue[0][0] <= self.tick:
            _, _, envelope = heapq.heappop(self._queue)
            if not self._connected(envelope.sender, envelope.destination):
                # Delay the message until the partition heals.
                deferred.append(envelope)
                continue
            process = self._processes.get(envelope.destination)
            payloads = (
                envelope.payload.payloads
                if isinstance(envelope.payload, _Batch)
                else (envelope.payload,)
            )
            if process is None or envelope.destination in self._crashed:
                self.messages_dropped += len(payloads)
                continue
            for payload in payloads:
                process.on_message(envelope.sender, payload, self.tick)
            self.messages_delivered += len(payloads)
            delivered += len(payloads)
        for envelope in deferred:
            heapq.heappush(self._queue, (self.tick + 1, next(self._counter), envelope))
        return delivered

    def run(self, max_ticks: int = 1000) -> int:
        """Advance until the network is quiescent or the tick budget runs out."""
        ticks = 0
        while (self._queue or self._outbox) and ticks < max_ticks:
            self.step()
            ticks += 1
        return ticks
