"""Cryptographic primitives for the consensus substrate.

The paper's implementation signs client requests and protocol messages with
RSA-1024 and relies on the assumption that the attacker cannot forge
signatures (Proposition 1a).  For the simulation we provide HMAC-based
signatures with per-key secrets managed by a :class:`KeyRegistry`: they give
the same *interface* guarantees (only the holder of the signing secret can
produce a valid signature; anyone with the registry can verify) without the
cost of real public-key cryptography.  The registry also doubles as the
trusted PKI that an authenticated network provides.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import secrets
from dataclasses import dataclass

__all__ = ["Signature", "KeyPair", "KeyRegistry", "digest"]


def _canonical(payload: object) -> bytes:
    """Deterministic byte serialization of a payload for hashing/signing."""
    return json.dumps(payload, sort_keys=True, default=repr).encode("utf-8")


def digest(payload: object) -> str:
    """SHA-256 digest of an arbitrary (JSON-serializable) payload."""
    return hashlib.sha256(_canonical(payload)).hexdigest()


@dataclass(frozen=True)
class Signature:
    """A signature: the signer identity plus the authentication tag."""

    signer: str
    tag: str


class KeyPair:
    """Signing key of one principal (replica, client, or controller)."""

    def __init__(self, owner: str, secret: bytes | None = None) -> None:
        self.owner = owner
        self._secret = secret if secret is not None else secrets.token_bytes(32)

    def sign(self, payload: object) -> Signature:
        tag = hmac.new(self._secret, _canonical(payload), hashlib.sha256).hexdigest()
        return Signature(signer=self.owner, tag=tag)

    def verify(self, payload: object, signature: Signature) -> bool:
        if signature.signer != self.owner:
            return False
        expected = hmac.new(self._secret, _canonical(payload), hashlib.sha256).hexdigest()
        return hmac.compare_digest(expected, signature.tag)


class KeyRegistry:
    """Registry of key pairs; models the PKI shared by all correct processes.

    A compromised replica can sign messages with *its own* key (Byzantine
    behaviour), but it cannot forge another principal's signature because it
    never learns other principals' secrets — which is exactly assumption (a)
    of Proposition 1.
    """

    def __init__(self) -> None:
        self._keys: dict[str, KeyPair] = {}

    def create(self, owner: str) -> KeyPair:
        if owner in self._keys:
            raise ValueError(f"key for {owner!r} already exists")
        key = KeyPair(owner)
        self._keys[owner] = key
        return key

    def get_or_create(self, owner: str) -> KeyPair:
        if owner not in self._keys:
            self._keys[owner] = KeyPair(owner)
        return self._keys[owner]

    def rotate(self, owner: str) -> KeyPair:
        """Replace ``owner``'s key with a fresh one (revoking the old one).

        Signatures produced under the previous key no longer verify — this
        is how a recovered replica's re-keyed USIG invalidates anything the
        attacker may have signed with the compromised container's secret.
        """
        key = KeyPair(owner)
        self._keys[owner] = key
        return key

    def verify(self, payload: object, signature: Signature) -> bool:
        key = self._keys.get(signature.signer)
        if key is None:
            return False
        return key.verify(payload, signature)

    def known_principals(self) -> list[str]:
        return sorted(self._keys)
