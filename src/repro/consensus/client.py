"""MinBFT client: issues signed requests and waits for ``f + 1`` matching replies.

Clients in the paper send each request to all replicas and accept the result
once ``f + 1`` replicas return identical replies with valid signatures
(Section VII-B): since at most ``f`` replicas are faulty, at least one of the
matching replies comes from a healthy replica, so the result is correct.
The :class:`MinBFTClient` below implements that rule on top of the simulated
network and also records per-request latency, which the throughput benchmark
of Figure 10 uses.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from dataclasses import dataclass

from .messages import ClientRequest, Reply
from .minbft import MinBFTCluster

__all__ = ["CompletedRequest", "MinBFTClient", "ClientWorkload"]


@dataclass
class CompletedRequest:
    """A request that gathered a quorum of matching replies."""

    request: ClientRequest
    result: object
    submitted_at: int
    completed_at: int

    @property
    def latency(self) -> int:
        return self.completed_at - self.submitted_at


class MinBFTClient:
    """A client of the replicated service."""

    def __init__(self, client_id: str, cluster: MinBFTCluster) -> None:
        self.process_id = client_id
        self.client_id = client_id
        self.cluster = cluster
        self._key = cluster.registry.get_or_create(client_id)
        self._request_counter = itertools.count(1)
        self._reply_votes: dict[int, dict[str, set[str]]] = defaultdict(lambda: defaultdict(set))
        self._reply_values: dict[tuple[int, str], object] = {}
        self._pending: dict[int, tuple[ClientRequest, int]] = {}
        self.completed: dict[int, CompletedRequest] = {}
        cluster.network.register(self)

    # -- network interface ---------------------------------------------------------
    def on_message(self, sender: str, payload: object, tick: int) -> None:
        if not isinstance(payload, Reply):
            return
        if payload.client_id != self.client_id:
            return
        request_id = payload.request_id
        if request_id in self.completed or request_id not in self._pending:
            return
        result_key = repr(payload.result)
        self._reply_votes[request_id][result_key].add(sender)
        self._reply_values[(request_id, result_key)] = payload.result
        quorum = self.cluster.f + 1
        if len(self._reply_votes[request_id][result_key]) >= quorum:
            request, submitted_at = self._pending.pop(request_id)
            self.completed[request_id] = CompletedRequest(
                request=request,
                result=self._reply_values[(request_id, result_key)],
                submitted_at=submitted_at,
                completed_at=tick,
            )

    # -- request submission -----------------------------------------------------------
    def _build_request(self, operation: str, key: str, value: object | None) -> ClientRequest:
        request_id = next(self._request_counter)
        unsigned = ClientRequest(
            client_id=self.client_id,
            request_id=request_id,
            operation=operation,
            key=key,
            value=value,
        )
        signature = self._key.sign(unsigned.payload())
        return ClientRequest(
            client_id=self.client_id,
            request_id=request_id,
            operation=operation,
            key=key,
            value=value,
            signature=signature,
        )

    def submit(self, operation: str, key: str, value: object | None = None) -> int:
        """Send a request to all replicas; returns the request id."""
        request = self._build_request(operation, key, value)
        self._pending[request.request_id] = (request, self.cluster.network.tick)
        for replica_id in self.cluster.membership:
            self.cluster.network.send(self.client_id, replica_id, request)
        return request.request_id

    def write(self, key: str, value: object) -> int:
        return self.submit("write", key, value)

    def read(self, key: str) -> int:
        return self.submit("read", key)

    # -- blocking helpers ---------------------------------------------------------------
    def await_request(self, request_id: int, max_ticks: int = 200) -> CompletedRequest | None:
        """Drive the cluster until the request completes or the budget runs out."""
        for _ in range(max_ticks):
            if request_id in self.completed:
                return self.completed[request_id]
            self.cluster.run(ticks=1)
        return self.completed.get(request_id)

    def write_and_wait(self, key: str, value: object, max_ticks: int = 200) -> CompletedRequest | None:
        return self.await_request(self.write(key, value), max_ticks)

    def read_and_wait(self, key: str, max_ticks: int = 200) -> CompletedRequest | None:
        return self.await_request(self.read(key), max_ticks)

    @property
    def pending_count(self) -> int:
        return len(self._pending)


class ClientWorkload:
    """Closed-loop workload driver used by the throughput benchmark (Fig. 10).

    Each of ``num_clients`` clients keeps exactly one request outstanding; as
    soon as a request completes the client submits the next one.  Throughput
    is the number of completed requests divided by the number of simulated
    ticks (scaled by the tick duration to obtain requests per second).
    """

    def __init__(self, cluster: MinBFTCluster, num_clients: int = 1) -> None:
        self.cluster = cluster
        self.clients = [MinBFTClient(f"client-{i}", cluster) for i in range(num_clients)]

    def run(self, total_ticks: int, tick_seconds: float = 0.01) -> dict[str, float]:
        """Run the closed-loop workload; returns throughput and latency stats."""
        outstanding: dict[str, int] = {}
        for client in self.clients:
            outstanding[client.client_id] = client.write("x", 0)
        completed = 0
        latencies: list[int] = []
        for _ in range(total_ticks):
            self.cluster.run(ticks=1)
            for client in self.clients:
                request_id = outstanding[client.client_id]
                finished = client.completed.get(request_id)
                if finished is not None:
                    completed += 1
                    latencies.append(finished.latency)
                    outstanding[client.client_id] = client.write("x", completed)
        elapsed_seconds = max(total_ticks * tick_seconds, 1e-9)
        return {
            "completed_requests": float(completed),
            "throughput_rps": completed / elapsed_seconds,
            "mean_latency_ticks": float(sum(latencies) / len(latencies)) if latencies else 0.0,
            "ticks": float(total_ticks),
        }
