"""MinBFT client: issues signed requests and waits for ``f + 1`` matching replies.

Clients in the paper send each request to all replicas and accept the result
once ``f + 1`` replicas return identical replies with valid signatures
(Section VII-B): since at most ``f`` replicas are faulty, at least one of the
matching replies comes from a healthy replica, so the result is correct.
The :class:`MinBFTClient` below implements that rule on top of the simulated
network and also records per-request latency, which the throughput benchmark
of Figure 10 uses.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from dataclasses import dataclass

from .messages import ClientRequest, Reply
from .minbft import MinBFTCluster

__all__ = ["CompletedRequest", "MinBFTClient", "ClientWorkload"]


@dataclass
class CompletedRequest:
    """A request that gathered a quorum of matching replies."""

    request: ClientRequest
    result: object
    submitted_at: int
    completed_at: int

    @property
    def latency(self) -> int:
        return self.completed_at - self.submitted_at


class MinBFTClient:
    """A client of the replicated service."""

    def __init__(self, client_id: str, cluster: MinBFTCluster) -> None:
        self.process_id = client_id
        self.client_id = client_id
        self.cluster = cluster
        self._key = cluster.registry.get_or_create(client_id)
        self._request_counter = itertools.count(1)
        self._reply_votes: dict[int, dict[str, set[str]]] = defaultdict(lambda: defaultdict(set))
        self._reply_values: dict[tuple[int, str], object] = {}
        self._pending: dict[int, tuple[ClientRequest, int]] = {}
        self.completed: dict[int, CompletedRequest] = {}
        cluster.network.register(self)

    # -- network interface ---------------------------------------------------------
    def on_message(self, sender: str, payload: object, tick: int) -> None:
        if not isinstance(payload, Reply):
            return
        if payload.client_id != self.client_id:
            return
        request_id = payload.request_id
        if request_id in self.completed or request_id not in self._pending:
            return
        result_key = repr(payload.result)
        self._reply_votes[request_id][result_key].add(sender)
        self._reply_values[(request_id, result_key)] = payload.result
        quorum = self.cluster.f + 1
        if len(self._reply_votes[request_id][result_key]) >= quorum:
            request, submitted_at = self._pending.pop(request_id)
            self.completed[request_id] = CompletedRequest(
                request=request,
                result=self._reply_values[(request_id, result_key)],
                submitted_at=submitted_at,
                completed_at=tick,
            )

    # -- request submission -----------------------------------------------------------
    def _build_request(self, operation: str, key: str, value: object | None) -> ClientRequest:
        request_id = next(self._request_counter)
        unsigned = ClientRequest(
            client_id=self.client_id,
            request_id=request_id,
            operation=operation,
            key=key,
            value=value,
        )
        signature = self._key.sign(unsigned.payload())
        return ClientRequest(
            client_id=self.client_id,
            request_id=request_id,
            operation=operation,
            key=key,
            value=value,
            signature=signature,
        )

    def submit(self, operation: str, key: str, value: object | None = None) -> int:
        """Send a request to all replicas; returns the request id."""
        request = self._build_request(operation, key, value)
        self._pending[request.request_id] = (request, self.cluster.network.tick)
        for replica_id in self.cluster.membership:
            self.cluster.network.send(self.client_id, replica_id, request)
        return request.request_id

    def write(self, key: str, value: object) -> int:
        return self.submit("write", key, value)

    def read(self, key: str) -> int:
        return self.submit("read", key)

    # -- blocking helpers ---------------------------------------------------------------
    def await_request(self, request_id: int, max_ticks: int = 200) -> CompletedRequest | None:
        """Drive the cluster until the request completes or the budget runs out."""
        for _ in range(max_ticks):
            if request_id in self.completed:
                return self.completed[request_id]
            self.cluster.run(ticks=1)
        return self.completed.get(request_id)

    def write_and_wait(self, key: str, value: object, max_ticks: int = 200) -> CompletedRequest | None:
        return self.await_request(self.write(key, value), max_ticks)

    def read_and_wait(self, key: str, max_ticks: int = 200) -> CompletedRequest | None:
        return self.await_request(self.read(key), max_ticks)

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def pending_since(self, request_id: int) -> int | None:
        """Tick at which an outstanding request was submitted (``None`` if done)."""
        pending = self._pending.get(request_id)
        return pending[1] if pending is not None else None

    def resend(self, request_id: int) -> None:
        """Re-broadcast an outstanding request to the *current* membership.

        Requests caught mid-reconfiguration can be lost (the leader was
        evicted before preparing, or replies raced a crash); re-sending the
        same signed request is safe — replicas deduplicate by identifier and
        re-reply for already-executed requests — and restores liveness.
        """
        pending = self._pending.get(request_id)
        if pending is None:
            return
        request, _ = pending
        for replica_id in self.cluster.membership:
            self.cluster.network.send(self.client_id, replica_id, request)


class ClientWorkload:
    """Closed-loop workload driver used by the throughput benchmark (Fig. 10).

    Each of ``num_clients`` clients keeps up to ``pipeline`` requests
    outstanding; as soon as a request completes the client submits the next
    one.  Throughput is the number of completed requests divided by the
    number of simulated ticks (scaled by the tick duration to obtain
    requests per second).

    The workload can be driven *stepwise*: :meth:`start` submits the initial
    window and :meth:`pump` advances the cluster a few ticks at a time, so a
    controller (``repro.control.consensus_loop``) can interleave
    reconfigurations with a continuously running client population.  With a
    ``deadline_ticks`` bound the workload also measures **served
    availability** — the fraction of due requests that completed within the
    deadline — the client-observed counterpart of the controller-side
    time-average availability T(A).  A request becomes *due* when it
    completes or when it ages past the deadline while outstanding, whichever
    happens first; only requests completing within the deadline count as
    served.  ``retry_interval`` re-broadcasts outstanding requests to the
    current membership (replicas deduplicate and re-reply), restoring
    liveness for requests caught mid-reconfiguration.
    """

    def __init__(
        self,
        cluster: MinBFTCluster,
        num_clients: int = 1,
        pipeline: int = 1,
        deadline_ticks: int | None = None,
        retry_interval: int = 0,
    ) -> None:
        if pipeline < 1:
            raise ValueError("pipeline must be at least 1")
        if retry_interval < 0:
            raise ValueError("retry_interval must be non-negative")
        self.cluster = cluster
        self.pipeline = pipeline
        self.deadline_ticks = deadline_ticks
        self.retry_interval = retry_interval
        self.clients = [MinBFTClient(f"client-{i}", cluster) for i in range(num_clients)]
        self._outstanding: dict[str, set[int]] = {
            client.client_id: set() for client in self.clients
        }
        self._deadline_missed: set[tuple[str, int]] = set()
        self._value_counter = itertools.count(1)
        self._started = False
        self.ticks_pumped = 0
        self.submitted = 0
        self.completed_requests = 0
        self.served_requests = 0
        self.missed_requests = 0
        self._latency_sum = 0
        self._latency_count = 0

    # -- stepwise driving ---------------------------------------------------------------
    def start(self) -> None:
        """Submit the initial window of ``pipeline`` requests per client."""
        if self._started:
            return
        self._started = True
        for client in self.clients:
            for _ in range(self.pipeline):
                self._submit_one(client)

    def _submit_one(self, client: MinBFTClient) -> None:
        request_id = client.write("x", next(self._value_counter))
        self._outstanding[client.client_id].add(request_id)
        self.submitted += 1

    def pump(self, ticks: int) -> None:
        """Advance the cluster ``ticks`` ticks, keeping the windows full."""
        self.start()
        for _ in range(ticks):
            self.cluster.run(ticks=1)
            self.ticks_pumped += 1
            tick = self.cluster.network.tick
            for client in self.clients:
                outstanding = self._outstanding[client.client_id]
                for request_id in sorted(outstanding):
                    finished = client.completed.get(request_id)
                    if finished is not None:
                        outstanding.discard(request_id)
                        self._account_completion(client.client_id, finished)
                        self._submit_one(client)
                        continue
                    submitted_at = client.pending_since(request_id)
                    if submitted_at is None:
                        outstanding.discard(request_id)
                        continue
                    age = tick - submitted_at
                    key = (client.client_id, request_id)
                    if (
                        self.deadline_ticks is not None
                        and age > self.deadline_ticks
                        and key not in self._deadline_missed
                    ):
                        # Due but not served: counted once, at expiry.
                        self._deadline_missed.add(key)
                        self.missed_requests += 1
                    if self.retry_interval and age > 0 and age % self.retry_interval == 0:
                        client.resend(request_id)

    def _account_completion(self, client_id: str, finished: CompletedRequest) -> None:
        self.completed_requests += 1
        self._latency_sum += finished.latency
        self._latency_count += 1
        key = (client_id, finished.request.request_id)
        if key in self._deadline_missed:
            # Already counted as missed when it aged past the deadline.
            self._deadline_missed.discard(key)
            return
        if self.deadline_ticks is None or finished.latency <= self.deadline_ticks:
            self.served_requests += 1
        else:
            self.missed_requests += 1

    # -- metrics -----------------------------------------------------------------------
    @property
    def due_requests(self) -> int:
        """Requests that completed or aged past the deadline (denominator)."""
        return self.served_requests + self.missed_requests

    @property
    def served_availability(self) -> float:
        """Fraction of due requests served within the deadline (1.0 if none due)."""
        due = self.due_requests
        return self.served_requests / due if due else 1.0

    def stats(self, tick_seconds: float = 0.01) -> dict[str, float]:
        elapsed_seconds = max(self.ticks_pumped * tick_seconds, 1e-9)
        mean_latency = (
            self._latency_sum / self._latency_count if self._latency_count else 0.0
        )
        return {
            "completed_requests": float(self.completed_requests),
            "throughput_rps": self.completed_requests / elapsed_seconds,
            "mean_latency_ticks": float(mean_latency),
            "ticks": float(self.ticks_pumped),
            "submitted_requests": float(self.submitted),
            "served_requests": float(self.served_requests),
            "due_requests": float(self.due_requests),
            "served_availability": float(self.served_availability),
        }

    def run(self, total_ticks: int, tick_seconds: float = 0.01) -> dict[str, float]:
        """Run the closed-loop workload; returns throughput and latency stats."""
        self.pump(total_ticks)
        return self.stats(tick_seconds)
