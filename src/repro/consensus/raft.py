"""Raft: the crash-tolerant substrate of the system controller (Section IV).

The TOLERANCE system controller "can be deployed on a standard crash-tolerant
system, e.g., a RAFT-based system", which is the justification for treating
its crash probability as negligible.  This module implements the core of
Raft — leader election with randomized timeouts and log replication with
majority commit — over the simulated network, sufficient to (a) demonstrate
that the controller survives minority crashes and (b) serve as the durable
log in which the system controller records its decisions.

The implementation follows the Raft paper's state machine but runs in the
discrete-tick model of :class:`~repro.consensus.network.SimulatedNetwork`.
Byzantine behaviour is out of scope by design: the privileged domain fails
only by crashing (hybrid failure model).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from .network import SimulatedNetwork

__all__ = ["RaftRole", "LogEntry", "RaftNode", "RaftCluster"]


class RaftRole(enum.Enum):
    FOLLOWER = "follower"
    CANDIDATE = "candidate"
    LEADER = "leader"


@dataclass(frozen=True)
class LogEntry:
    """One entry of the replicated log: a term and an opaque command."""

    term: int
    command: object


@dataclass(frozen=True)
class RequestVote:
    term: int
    candidate_id: str
    last_log_index: int
    last_log_term: int


@dataclass(frozen=True)
class RequestVoteReply:
    term: int
    vote_granted: bool
    voter_id: str


@dataclass(frozen=True)
class AppendEntries:
    term: int
    leader_id: str
    prev_log_index: int
    prev_log_term: int
    entries: tuple[LogEntry, ...]
    leader_commit: int


@dataclass(frozen=True)
class AppendEntriesReply:
    term: int
    success: bool
    follower_id: str
    match_index: int


class RaftNode:
    """One Raft server."""

    def __init__(
        self,
        node_id: str,
        peers: list[str],
        network: SimulatedNetwork,
        election_timeout_range: tuple[int, int] = (10, 20),
        heartbeat_interval: int = 3,
        seed: int | None = None,
    ) -> None:
        self.process_id = node_id
        self.node_id = node_id
        self.peers = [p for p in peers if p != node_id]
        self.network = network
        self.role = RaftRole.FOLLOWER
        self.current_term = 0
        self.voted_for: str | None = None
        self.log: list[LogEntry] = []
        self.commit_index = 0
        self.last_applied = 0
        self.applied_commands: list[object] = []
        self._rng = np.random.default_rng(seed if seed is not None else abs(hash(node_id)) % (2 ** 32))
        self._election_timeout_range = election_timeout_range
        self._heartbeat_interval = heartbeat_interval
        self._ticks_since_heartbeat = 0
        self._ticks_as_leader = 0
        self._votes_received: set[str] = set()
        self._next_index: dict[str, int] = {}
        self._match_index: dict[str, int] = {}
        self._reset_election_timeout()
        network.register(self)

    # -- helpers --------------------------------------------------------------------
    def _reset_election_timeout(self) -> None:
        low, high = self._election_timeout_range
        self._election_timeout = int(self._rng.integers(low, high + 1))
        self._ticks_since_heartbeat = 0

    @property
    def cluster_size(self) -> int:
        return len(self.peers) + 1

    @property
    def majority(self) -> int:
        return self.cluster_size // 2 + 1

    def last_log_index(self) -> int:
        return len(self.log)

    def last_log_term(self) -> int:
        return self.log[-1].term if self.log else 0

    # -- timers ---------------------------------------------------------------------
    def on_tick(self, tick: int) -> None:
        del tick
        if self.network.is_crashed(self.node_id):
            return
        if self.role is RaftRole.LEADER:
            self._ticks_as_leader += 1
            if self._ticks_as_leader >= self._heartbeat_interval:
                self._send_append_entries()
                self._ticks_as_leader = 0
            return
        self._ticks_since_heartbeat += 1
        if self._ticks_since_heartbeat >= self._election_timeout:
            self._start_election()

    def _start_election(self) -> None:
        self.role = RaftRole.CANDIDATE
        self.current_term += 1
        self.voted_for = self.node_id
        self._votes_received = {self.node_id}
        self._reset_election_timeout()
        message = RequestVote(
            term=self.current_term,
            candidate_id=self.node_id,
            last_log_index=self.last_log_index(),
            last_log_term=self.last_log_term(),
        )
        for peer in self.peers:
            self.network.send(self.node_id, peer, message)
        if self._votes_received_count() >= self.majority:
            self._become_leader()

    def _votes_received_count(self) -> int:
        return len(self._votes_received)

    def _become_leader(self) -> None:
        self.role = RaftRole.LEADER
        self._next_index = {peer: self.last_log_index() + 1 for peer in self.peers}
        self._match_index = {peer: 0 for peer in self.peers}
        self._ticks_as_leader = self._heartbeat_interval  # send a heartbeat immediately
        self._send_append_entries()

    # -- message handling ---------------------------------------------------------------
    def on_message(self, sender: str, payload: object, tick: int) -> None:
        del tick
        if isinstance(payload, RequestVote):
            self._handle_request_vote(payload)
        elif isinstance(payload, RequestVoteReply):
            self._handle_vote_reply(payload)
        elif isinstance(payload, AppendEntries):
            self._handle_append_entries(payload)
        elif isinstance(payload, AppendEntriesReply):
            self._handle_append_reply(payload)

    def _maybe_step_down(self, term: int) -> None:
        if term > self.current_term:
            self.current_term = term
            self.role = RaftRole.FOLLOWER
            self.voted_for = None

    def _handle_request_vote(self, message: RequestVote) -> None:
        self._maybe_step_down(message.term)
        grant = False
        if message.term >= self.current_term and self.voted_for in (None, message.candidate_id):
            log_ok = (message.last_log_term, message.last_log_index) >= (
                self.last_log_term(),
                self.last_log_index(),
            )
            if log_ok:
                grant = True
                self.voted_for = message.candidate_id
                self._reset_election_timeout()
        reply = RequestVoteReply(
            term=self.current_term, vote_granted=grant, voter_id=self.node_id
        )
        self.network.send(self.node_id, message.candidate_id, reply)

    def _handle_vote_reply(self, message: RequestVoteReply) -> None:
        self._maybe_step_down(message.term)
        if self.role is not RaftRole.CANDIDATE or message.term != self.current_term:
            return
        if message.vote_granted:
            self._votes_received.add(message.voter_id)
            if self._votes_received_count() >= self.majority:
                self._become_leader()

    def _handle_append_entries(self, message: AppendEntries) -> None:
        self._maybe_step_down(message.term)
        if message.term < self.current_term:
            reply = AppendEntriesReply(self.current_term, False, self.node_id, 0)
            self.network.send(self.node_id, message.leader_id, reply)
            return
        self.role = RaftRole.FOLLOWER
        self._reset_election_timeout()
        # Consistency check on the previous entry.
        if message.prev_log_index > 0:
            if (
                len(self.log) < message.prev_log_index
                or self.log[message.prev_log_index - 1].term != message.prev_log_term
            ):
                reply = AppendEntriesReply(self.current_term, False, self.node_id, 0)
                self.network.send(self.node_id, message.leader_id, reply)
                return
        # Append new entries, truncating conflicts.
        index = message.prev_log_index
        for entry in message.entries:
            if len(self.log) > index and self.log[index].term != entry.term:
                self.log = self.log[:index]
            if len(self.log) <= index:
                self.log.append(entry)
            index += 1
        if message.leader_commit > self.commit_index:
            self.commit_index = min(message.leader_commit, len(self.log))
            self._apply_committed()
        reply = AppendEntriesReply(self.current_term, True, self.node_id, len(self.log))
        self.network.send(self.node_id, message.leader_id, reply)

    def _handle_append_reply(self, message: AppendEntriesReply) -> None:
        self._maybe_step_down(message.term)
        if self.role is not RaftRole.LEADER:
            return
        if message.success:
            self._match_index[message.follower_id] = message.match_index
            self._next_index[message.follower_id] = message.match_index + 1
            self._advance_commit_index()
        else:
            self._next_index[message.follower_id] = max(
                1, self._next_index.get(message.follower_id, 1) - 1
            )

    def _advance_commit_index(self) -> None:
        for candidate in range(len(self.log), self.commit_index, -1):
            if self.log[candidate - 1].term != self.current_term:
                continue
            replicas = 1 + sum(
                1 for peer in self.peers if self._match_index.get(peer, 0) >= candidate
            )
            if replicas >= self.majority:
                self.commit_index = candidate
                self._apply_committed()
                break

    def _apply_committed(self) -> None:
        while self.last_applied < self.commit_index:
            self.last_applied += 1
            self.applied_commands.append(self.log[self.last_applied - 1].command)

    # -- client interface ------------------------------------------------------------------
    def propose(self, command: object) -> bool:
        """Append a command to the log (leader only); returns acceptance."""
        if self.role is not RaftRole.LEADER:
            return False
        self.log.append(LogEntry(term=self.current_term, command=command))
        self._send_append_entries()
        return True

    def _send_append_entries(self) -> None:
        for peer in self.peers:
            next_index = self._next_index.get(peer, 1)
            prev_log_index = next_index - 1
            prev_log_term = (
                self.log[prev_log_index - 1].term if prev_log_index > 0 and self.log else 0
            )
            entries = tuple(self.log[prev_log_index:])
            message = AppendEntries(
                term=self.current_term,
                leader_id=self.node_id,
                prev_log_index=prev_log_index,
                prev_log_term=prev_log_term,
                entries=entries,
                leader_commit=self.commit_index,
            )
            self.network.send(self.node_id, peer, message)


class RaftCluster:
    """A Raft cluster hosting the (crash-tolerant) system controller."""

    def __init__(
        self,
        num_nodes: int = 3,
        network: SimulatedNetwork | None = None,
        seed: int | None = None,
    ) -> None:
        if num_nodes < 1:
            raise ValueError("a Raft cluster needs at least one node")
        self.network = network if network is not None else SimulatedNetwork(seed=seed)
        node_ids = [f"raft-{i}" for i in range(num_nodes)]
        self.nodes = {
            node_id: RaftNode(
                node_id,
                node_ids,
                self.network,
                seed=None if seed is None else seed + index,
            )
            for index, node_id in enumerate(node_ids)
        }

    def run(self, ticks: int = 50) -> None:
        for _ in range(ticks):
            self.network.step()
            for node in self.nodes.values():
                node.on_tick(self.network.tick)

    def elect_leader(self, max_ticks: int = 500) -> str | None:
        """Run until a leader emerges; returns its id."""
        for _ in range(max_ticks):
            self.run(ticks=1)
            leader = self.leader()
            if leader is not None:
                return leader
        return None

    def leader(self) -> str | None:
        leaders = [
            node_id
            for node_id, node in self.nodes.items()
            if node.role is RaftRole.LEADER and not self.network.is_crashed(node_id)
        ]
        if not leaders:
            return None
        # With crashed leaders excluded, the node with the highest term wins.
        return max(leaders, key=lambda node_id: self.nodes[node_id].current_term)

    def propose(self, command: object, max_ticks: int = 200) -> bool:
        """Propose a command through the current leader and wait for commit."""
        leader_id = self.leader() or self.elect_leader()
        if leader_id is None:
            return False
        leader = self.nodes[leader_id]
        if not leader.propose(command):
            return False
        target_index = leader.last_log_index()
        for _ in range(max_ticks):
            self.run(ticks=1)
            if leader.commit_index >= target_index:
                return True
        return False

    def crash(self, node_id: str) -> None:
        self.network.crash(node_id)

    def restart(self, node_id: str) -> None:
        self.network.restart(node_id)

    def committed_commands(self) -> dict[str, list[object]]:
        return {node_id: list(node.applied_commands) for node_id, node in self.nodes.items()}
