"""Consensus substrates: reconfigurable MinBFT, clients, Raft, and the
simulated authenticated network they run on.

* :mod:`~repro.consensus.minbft` — the intrusion-tolerant replication
  protocol used by the TOLERANCE application domain (Appendix G, Fig. 17).
* :mod:`~repro.consensus.client` — clients that wait for ``f + 1`` matching
  replies, plus the closed-loop workload driver of Figure 10.
* :mod:`~repro.consensus.raft` — the crash-tolerant substrate hosting the
  system controller.
* :mod:`~repro.consensus.network`, :mod:`~repro.consensus.crypto`,
  :mod:`~repro.consensus.usig` — the simulated network, signatures, and the
  trusted USIG component of the hybrid failure model.
"""

from .audit import SafetyAuditResult, audit_safety
from .client import ClientWorkload, CompletedRequest, MinBFTClient
from .crypto import KeyPair, KeyRegistry, Signature, digest
from .messages import (
    Checkpoint,
    ClientRequest,
    Commit,
    EvictRequest,
    JoinRequest,
    NewView,
    Prepare,
    ReconfigurationReply,
    Reply,
    StateTransferRequest,
    StateTransferResponse,
    ViewChange,
)
from .minbft import ByzantineBehavior, MinBFTCluster, MinBFTConfig, MinBFTReplica
from .network import Envelope, NetworkConfig, SimulatedNetwork
from .raft import LogEntry, RaftCluster, RaftNode, RaftRole
from .state_machine import KeyValueStateMachine, OperationResult
from .usig import USIG, UniqueIdentifier, USIGVerifier

__all__ = [
    "ByzantineBehavior",
    "Checkpoint",
    "ClientRequest",
    "ClientWorkload",
    "Commit",
    "CompletedRequest",
    "Envelope",
    "EvictRequest",
    "JoinRequest",
    "KeyPair",
    "KeyRegistry",
    "KeyValueStateMachine",
    "LogEntry",
    "MinBFTClient",
    "MinBFTCluster",
    "MinBFTConfig",
    "MinBFTReplica",
    "NetworkConfig",
    "NewView",
    "OperationResult",
    "Prepare",
    "RaftCluster",
    "RaftNode",
    "RaftRole",
    "ReconfigurationReply",
    "Reply",
    "SafetyAuditResult",
    "Signature",
    "SimulatedNetwork",
    "StateTransferRequest",
    "StateTransferResponse",
    "USIG",
    "USIGVerifier",
    "UniqueIdentifier",
    "ViewChange",
    "audit_safety",
    "digest",
]
