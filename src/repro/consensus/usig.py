"""USIG: the Unique Sequential Identifier Generator trusted component.

MinBFT tolerates ``f = (N - 1) / 2`` Byzantine replicas — instead of the
``(N - 1) / 3`` of PBFT — by equipping every replica with a small trusted
service that assigns *unique, monotonically increasing* counter values to
messages and certifies the assignment.  A compromised replica can refuse to
use its USIG, but it cannot equivocate: it cannot assign the same counter
value to two different messages, and it cannot skip values unnoticed.

In the TOLERANCE architecture the USIG lives in the privileged domain
(provided by the virtualization layer), so it fails only by crashing — the
hybrid failure model.  This module simulates the service: the tamper-proof
property is modelled by keeping the counter and the signing secret inside
the :class:`USIG` object, which the Byzantine-behaviour code in the
emulation never touches directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from .crypto import KeyPair, KeyRegistry, Signature, digest

__all__ = ["UniqueIdentifier", "USIG", "USIGVerifier"]


@dataclass(frozen=True)
class UniqueIdentifier:
    """Certificate binding a counter value to a message digest (the "UI")."""

    replica_id: str
    counter: int
    message_digest: str
    signature: Signature


class USIG:
    """Trusted monotonic counter service of one replica."""

    def __init__(
        self, replica_id: str, registry: KeyRegistry, fresh_key: bool = False
    ) -> None:
        self.replica_id = replica_id
        owner = f"usig:{replica_id}"
        # ``fresh_key`` models re-provisioning the trusted component when a
        # replica recovers into a new container: the old signing secret is
        # revoked in the registry, so stale in-flight messages signed by the
        # compromised container stop verifying.
        self._key: KeyPair = (
            registry.rotate(owner) if fresh_key else registry.get_or_create(owner)
        )
        self._counter = 0

    @property
    def counter(self) -> int:
        """Value of the last assigned counter (0 when none assigned yet)."""
        return self._counter

    def create_ui(self, message: object) -> UniqueIdentifier:
        """Assign the next counter value to ``message`` and certify it."""
        self._counter += 1
        message_digest = digest(message)
        payload = {
            "replica": self.replica_id,
            "counter": self._counter,
            "digest": message_digest,
        }
        signature = self._key.sign(payload)
        return UniqueIdentifier(
            replica_id=self.replica_id,
            counter=self._counter,
            message_digest=message_digest,
            signature=signature,
        )


class USIGVerifier:
    """Verifier of UIs produced by any replica's USIG.

    Besides signature verification, the verifier tracks the highest counter
    value seen per replica and enforces the FIFO property: a correct receiver
    only accepts counter values in strictly increasing order without gaps,
    which is what prevents equivocation and message reordering.
    """

    def __init__(self, registry: KeyRegistry) -> None:
        self._registry = registry
        self._last_seen: dict[str, int] = {}

    def verify(self, message: object, ui: UniqueIdentifier, enforce_order: bool = True) -> bool:
        payload = {
            "replica": ui.replica_id,
            "counter": ui.counter,
            "digest": ui.message_digest,
        }
        if ui.signature.signer != f"usig:{ui.replica_id}":
            return False
        if not self._registry.verify(payload, ui.signature):
            return False
        if digest(message) != ui.message_digest:
            return False
        if enforce_order:
            expected = self._last_seen.get(ui.replica_id, 0) + 1
            if ui.counter != expected:
                return False
            self._last_seen[ui.replica_id] = ui.counter
        return True

    def last_counter(self, replica_id: str) -> int:
        return self._last_seen.get(replica_id, 0)

    def reset(self, replica_id: str, counter: int = 0) -> None:
        """Reset the expected counter (used after state transfer / view change)."""
        self._last_seen[replica_id] = counter
