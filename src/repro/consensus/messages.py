"""Protocol messages of the reconfigurable MinBFT implementation (Fig. 17).

Each dataclass corresponds to one arrow type in the time-space diagrams of
Appendix G: REQUEST, PREPARE, COMMIT, REPLY for the normal case;
VIEW-CHANGE / NEW-VIEW for leader replacement; CHECKPOINT for garbage
collection; STATE for state transfer after recovery; and JOIN / EVICT plus
their replies for reconfiguration requested by the system controller.
Messages are plain frozen dataclasses so they can be hashed into digests and
carried over the simulated network by value.
"""

from __future__ import annotations

from dataclasses import dataclass

from .crypto import Signature
from .usig import UniqueIdentifier

__all__ = [
    "ClientRequest",
    "Prepare",
    "Commit",
    "Reply",
    "Checkpoint",
    "ViewChange",
    "NewView",
    "StateTransferRequest",
    "StateTransferResponse",
    "JoinRequest",
    "EvictRequest",
    "ReconfigurationReply",
]


@dataclass(frozen=True)
class ClientRequest:
    """A signed client request (read or write) with a unique identifier."""

    client_id: str
    request_id: int
    operation: str  # "read" or "write"
    key: str
    value: object | None
    signature: Signature | None = None

    @property
    def identifier(self) -> tuple[str, int]:
        return (self.client_id, self.request_id)

    def payload(self) -> dict:
        """Signable content (everything except the signature)."""
        return {
            "client_id": self.client_id,
            "request_id": self.request_id,
            "operation": self.operation,
            "key": self.key,
            "value": self.value,
        }


@dataclass(frozen=True)
class Prepare:
    """PREPARE sent by the leader: assigns a sequence number via its USIG."""

    view: int
    sequence: int
    request: ClientRequest
    leader_id: str
    ui: UniqueIdentifier


@dataclass(frozen=True)
class Commit:
    """COMMIT sent by every replica after accepting a PREPARE."""

    view: int
    sequence: int
    request_digest: str
    replica_id: str
    prepare_ui: UniqueIdentifier
    ui: UniqueIdentifier


@dataclass(frozen=True)
class Reply:
    """REPLY sent to the client after executing the request."""

    view: int
    replica_id: str
    client_id: str
    request_id: int
    result: object
    sequence: int


@dataclass(frozen=True)
class Checkpoint:
    """CHECKPOINT message carrying a digest of the replica state at a sequence number."""

    sequence: int
    state_digest: str
    replica_id: str
    ui: UniqueIdentifier


@dataclass(frozen=True)
class ViewChange:
    """VIEW-CHANGE vote for moving to ``new_view``."""

    new_view: int
    last_executed: int
    replica_id: str
    checkpoint_digest: str
    ui: UniqueIdentifier


@dataclass(frozen=True)
class NewView:
    """NEW-VIEW announcement from the leader of ``view``; includes the membership."""

    view: int
    leader_id: str
    membership: tuple[str, ...]
    starting_sequence: int
    ui: UniqueIdentifier


@dataclass(frozen=True)
class StateTransferRequest:
    """Request by a recovering/joining replica for the current service state."""

    replica_id: str
    last_executed: int


@dataclass(frozen=True)
class StateTransferResponse:
    """State snapshot sent by a healthy replica (STATE in Fig. 17d)."""

    replica_id: str
    last_executed: int
    state_snapshot: dict
    state_digest: str
    executed_requests: tuple[tuple[str, int], ...]


@dataclass(frozen=True)
class JoinRequest:
    """Reconfiguration request from the system controller: add ``new_replica_id``."""

    new_replica_id: str
    issued_by: str
    signature: Signature | None = None


@dataclass(frozen=True)
class EvictRequest:
    """Reconfiguration request from the system controller: evict ``replica_id``."""

    replica_id: str
    issued_by: str
    signature: Signature | None = None


@dataclass(frozen=True)
class ReconfigurationReply:
    """JOIN-REPLY / EXIT-REPLY acknowledging a completed reconfiguration."""

    kind: str  # "join" or "evict"
    replica_id: str
    view: int
    membership: tuple[str, ...]
    sender_id: str
