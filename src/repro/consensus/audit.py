"""Safety audits for a MinBFT cluster under reconfiguration.

The closed-loop integration (:mod:`repro.control.consensus_loop`) reconfigures
a live cluster continuously — evictions, joins, recoveries — and the paper's
correctness claim (Theorem 1 / Proposition 1) is that none of this violates
safety.  This module checks two invariants after arbitrary churn:

* **Prefix consistency** — the executed-request logs of all non-Byzantine
  replicas' state machines are prefixes of one another (replicas may lag but
  never diverge).  This reuses :func:`repro.core.correctness.check_safety`.
* **No duplicate execution** — no replica applied the same client request
  twice across its lifetime, *including across recoveries*.  The state
  machine is replaced on recovery, so this is audited against the replica's
  append-only :attr:`~repro.consensus.minbft.MinBFTReplica.execution_log`,
  which survives recovery precisely so the audit can see duplicates that a
  fresh state machine would hide.

Byzantine replicas are excluded from both checks: a compromised replica may
corrupt its own log at will; safety is a claim about correct replicas only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.correctness import check_safety
from .minbft import ByzantineBehavior, MinBFTCluster

__all__ = ["SafetyAuditResult", "audit_safety"]


@dataclass(frozen=True)
class SafetyAuditResult:
    """Outcome of one safety audit over a cluster.

    Attributes:
        consistent: ``True`` when every audited replica's executed-request
            log is a prefix of the longest one.
        no_duplicates: ``True`` when no audited replica executed any client
            request more than once (across recoveries).
        audited: Replica ids included in the audit (non-Byzantine, live).
        divergent: Replica ids whose logs are not prefixes of the longest.
        duplicated: Map of replica id to the request identifiers it
            executed more than once (empty when ``no_duplicates``).
    """

    consistent: bool
    no_duplicates: bool
    audited: tuple[str, ...] = ()
    divergent: tuple[str, ...] = ()
    duplicated: dict[str, tuple[tuple[str, int], ...]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.consistent and self.no_duplicates


def audit_safety(cluster: MinBFTCluster) -> SafetyAuditResult:
    """Audit the safety invariants of ``cluster``'s correct replicas."""
    audited = {
        replica_id: replica
        for replica_id, replica in sorted(cluster.replicas.items())
        if replica.byzantine is ByzantineBehavior.NONE
    }
    sequences = {
        replica_id: replica.state_machine.executed_requests()
        for replica_id, replica in audited.items()
    }
    consistent = check_safety(sequences.values())
    divergent: list[str] = []
    if not consistent and sequences:
        reference = max(sequences.values(), key=len)
        divergent = [
            replica_id
            for replica_id, sequence in sequences.items()
            if reference[: len(sequence)] != sequence
        ]
    duplicated: dict[str, tuple[tuple[str, int], ...]] = {}
    for replica_id, replica in audited.items():
        seen: set[tuple[str, int]] = set()
        repeats: list[tuple[str, int]] = []
        for identifier, _sequence in replica.execution_log:
            if identifier in seen and identifier not in repeats:
                repeats.append(identifier)
            seen.add(identifier)
        if repeats:
            duplicated[replica_id] = tuple(repeats)
    return SafetyAuditResult(
        consistent=consistent,
        no_duplicates=not duplicated,
        audited=tuple(audited),
        divergent=tuple(divergent),
        duplicated=duplicated,
    )
