"""The replicated service: a deterministic key-value state machine.

The paper's testbed replicates a web service offering two deterministic
operations: a *read* that returns the current state and a *write* that
updates it (Section VII-B).  The consensus layer is agnostic to the service
semantics as long as operations are deterministic, which is what
:class:`KeyValueStateMachine` provides.  Replicas apply committed requests
in sequence-number order; equality of state digests across replicas is the
safety check used by the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from .crypto import digest
from .messages import ClientRequest

__all__ = ["OperationResult", "KeyValueStateMachine"]


@dataclass(frozen=True)
class OperationResult:
    """Result of applying one operation to the state machine."""

    success: bool
    value: object | None
    sequence: int


class KeyValueStateMachine:
    """Deterministic key-value store replicated by MinBFT.

    Operations:
        * ``write(key, value)`` -- store ``value`` under ``key``;
        * ``read(key)`` -- return the value stored under ``key`` (or ``None``).

    The machine tracks the sequence of applied request identifiers so that
    safety (identical request sequences on all healthy replicas) can be
    audited, and exposes snapshot/restore for state transfer.
    """

    def __init__(self) -> None:
        self._store: dict[str, object] = {}
        self._applied: list[tuple[str, int]] = []
        self._last_sequence = 0

    # -- execution -----------------------------------------------------------------
    def apply(self, request: ClientRequest, sequence: int) -> OperationResult:
        """Apply a committed request at ``sequence``; idempotent per request id."""
        if request.identifier in set(self._applied):
            # Duplicate delivery (e.g. after a view change): return the stored value.
            value = self._store.get(request.key)
            return OperationResult(success=True, value=value, sequence=sequence)
        if request.operation == "write":
            self._store[request.key] = request.value
            result_value: object | None = request.value
        elif request.operation == "read":
            result_value = self._store.get(request.key)
        else:
            return OperationResult(success=False, value=None, sequence=sequence)
        self._applied.append(request.identifier)
        self._last_sequence = sequence
        return OperationResult(success=True, value=result_value, sequence=sequence)

    # -- introspection ----------------------------------------------------------------
    @property
    def last_sequence(self) -> int:
        return self._last_sequence

    def executed_requests(self) -> tuple[tuple[str, int], ...]:
        """Identifiers of applied requests, in execution order (safety audits)."""
        return tuple(self._applied)

    def read(self, key: str) -> object | None:
        return self._store.get(key)

    def state_digest(self) -> str:
        """Digest of the full state; equal digests imply equal states."""
        return digest({"store": sorted(self._store.items(), key=lambda kv: kv[0]),
                       "applied": self._applied})

    # -- state transfer -----------------------------------------------------------------
    def snapshot(self) -> dict:
        return {
            "store": dict(self._store),
            "applied": list(self._applied),
            "last_sequence": self._last_sequence,
        }

    def restore(self, snapshot: dict) -> None:
        self._store = dict(snapshot["store"])
        self._applied = [tuple(item) for item in snapshot["applied"]]
        self._last_sequence = int(snapshot["last_sequence"])
