"""The replicated service: a deterministic key-value state machine.

The paper's testbed replicates a web service offering two deterministic
operations: a *read* that returns the current state and a *write* that
updates it (Section VII-B).  The consensus layer is agnostic to the service
semantics as long as operations are deterministic, which is what
:class:`KeyValueStateMachine` provides.  Replicas apply committed requests
in sequence-number order; equality of state digests across replicas is the
safety check used by the tests.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from .crypto import digest
from .messages import ClientRequest

__all__ = ["OperationResult", "KeyValueStateMachine"]


@dataclass(frozen=True)
class OperationResult:
    """Result of applying one operation to the state machine.

    ``duplicate`` marks an idempotent no-op: the request identifier was
    already applied by *this* state machine incarnation (e.g. re-proposed
    at a new sequence after a view change), so no state changed.  Effectful
    applies report ``duplicate=False`` — the safety audit counts only those
    when checking for duplicate execution across recoveries.
    """

    success: bool
    value: object | None
    sequence: int
    duplicate: bool = False


class KeyValueStateMachine:
    """Deterministic key-value store replicated by MinBFT.

    Operations:
        * ``write(key, value)`` -- store ``value`` under ``key``;
        * ``read(key)`` -- return the value stored under ``key`` (or ``None``).

    The machine tracks the sequence of applied request identifiers so that
    safety (identical request sequences on all healthy replicas) can be
    audited, and exposes snapshot/restore for state transfer.
    """

    def __init__(self) -> None:
        self._store: dict[str, object] = {}
        self._applied: list[tuple[str, int]] = []
        self._last_sequence = 0
        self._applied_set: set[tuple[str, int]] = set()
        # Rolling digest of the applied-request history: updated in O(1)
        # per apply so that state_digest() stays O(|store|) instead of
        # re-serializing the entire history (which made checkpointing
        # quadratic in the number of executed requests).
        self._history_digest = ""

    # -- execution -----------------------------------------------------------------
    def apply(self, request: ClientRequest, sequence: int) -> OperationResult:
        """Apply a committed request at ``sequence``; idempotent per request id."""
        if request.identifier in self._applied_set:
            # Duplicate delivery (e.g. after a view change): return the stored value.
            value = self._store.get(request.key)
            return OperationResult(success=True, value=value, sequence=sequence, duplicate=True)
        if request.operation == "write":
            self._store[request.key] = request.value
            result_value: object | None = request.value
        elif request.operation == "read":
            result_value = self._store.get(request.key)
        else:
            return OperationResult(success=False, value=None, sequence=sequence)
        self._applied.append(request.identifier)
        self._applied_set.add(request.identifier)
        self._extend_history(request.identifier)
        self._last_sequence = sequence
        return OperationResult(success=True, value=result_value, sequence=sequence)

    def _extend_history(self, identifier: tuple[str, int]) -> None:
        self._history_digest = hashlib.sha256(
            f"{self._history_digest}|{identifier[0]}:{identifier[1]}".encode("utf-8")
        ).hexdigest()

    # -- introspection ----------------------------------------------------------------
    @property
    def last_sequence(self) -> int:
        return self._last_sequence

    def executed_requests(self) -> tuple[tuple[str, int], ...]:
        """Identifiers of applied requests, in execution order (safety audits)."""
        return tuple(self._applied)

    def read(self, key: str) -> object | None:
        return self._store.get(key)

    def state_digest(self) -> str:
        """Digest of the full state; equal digests imply equal states.

        The applied-request history enters through the rolling
        ``_history_digest`` (plus the count), so the cost is O(|store|)
        rather than O(|history|) — checkpointing every ``k`` requests
        stays linear in the run length instead of quadratic.
        """
        return digest({
            "store": sorted(self._store.items(), key=lambda kv: kv[0]),
            "history": self._history_digest,
            "count": len(self._applied),
        })

    # -- state transfer -----------------------------------------------------------------
    def snapshot(self) -> dict:
        return {
            "store": dict(self._store),
            "applied": list(self._applied),
            "last_sequence": self._last_sequence,
            "history_digest": self._history_digest,
        }

    def restore(self, snapshot: dict) -> None:
        self._store = dict(snapshot["store"])
        self._applied = [tuple(item) for item in snapshot["applied"]]
        self._applied_set = set(self._applied)
        self._last_sequence = int(snapshot["last_sequence"])
        if "history_digest" in snapshot:
            self._history_digest = str(snapshot["history_digest"])
        else:
            # Snapshot from an older producer: recompute from the history.
            self._history_digest = ""
            for identifier in self._applied:
                self._extend_history(identifier)
