"""The ``repro/decision-v1`` request/response schema of the decision service.

Newline-delimited JSON, one request and one response object per line,
versioned alongside the ``repro/scenario-v1`` (YAML input) and
``repro/result-v1`` (JSON output) schemas.  Every request carries the
schema identifier and an ``op``; every response carries the schema, the
``op`` it answers and ``ok``.  Failures are **named**: ``ok: false``
responses hold an ``error`` object with a stable machine-readable ``name``
(one of :data:`ERROR_NAMES`) next to the human-readable message, so
clients can branch without string-matching tracebacks — the same contract
the CLI's exit paths follow.

Operations
----------

``register``
    ``{"op": "register", "scenario": <scenario-v1 mapping>,``
    ``"overrides": {...}}`` — build a closed-loop session from an inline
    scenario document (the parsed form of a scenario-v1 YAML file; the
    ``run`` section and the overrides use the CLI's run-section
    vocabulary).  Answers with the ``session`` id and the session's
    ``episodes``/``nodes``/``horizon``/``seed``.
``tick``
    ``{"op": "tick", "session": s, "count": n}`` — advance ``n`` ticks
    (default 1) and answer with one decision event per tick (see
    :func:`encode_event`).
``result``
    Final ``repro/result-v1``-style metrics of a finished session.
``close``
    Detach a session (its episode rows keep stepping inside a fused
    cohort; no further events are buffered).
``stats``
    Service counters: sessions, cohorts, fused engine calls, decisions
    and the policy-cache counters.
``shutdown``
    Stop the server after answering.

Decision events
---------------

One event describes one tick of one session's ``B`` episodes; arrays are
encoded per episode, recoveries/evictions as slot-index lists (sparse —
most ticks recover a handful of nodes), so payload size scales with the
decisions taken rather than the fleet size:

.. code-block:: json

    {"t": 3,
     "recoveries": [[0, 4], []],
     "evicted": [[], [2]],
     "added": [-1, 5],
     "add": [false, true],
     "emergency": [false, false],
     "add_class": [-1, 1],
     "state": [4, 2],
     "node_counts": [5, 5],
     "available": [true, true]}
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

__all__ = [
    "DECISION_SCHEMA",
    "ERROR_NAMES",
    "ServiceError",
    "encode_event",
    "error_response",
    "ok_response",
    "validate_request",
]

#: Schema identifier every decision-service request and response carries.
DECISION_SCHEMA = "repro/decision-v1"

#: The operations the service understands.
OPS = ("register", "tick", "result", "close", "stats", "shutdown")

#: Stable machine-readable error names (the ``error.name`` vocabulary).
ERROR_NAMES = (
    "schema-mismatch",
    "bad-request",
    "unknown-op",
    "invalid-scenario",
    "unknown-session",
    "session-done",
    "session-not-done",
    "internal-error",
)


class ServiceError(Exception):
    """A named decision-service failure (maps to an ``ok: false`` response).

    Args:
        name: Machine-readable error name from :data:`ERROR_NAMES`.
        message: Human-readable description.
    """

    def __init__(self, name: str, message: str) -> None:
        if name not in ERROR_NAMES:
            raise ValueError(f"unknown error name {name!r}; known: {list(ERROR_NAMES)}")
        super().__init__(message)
        self.name = name
        self.message = message


def validate_request(request: Any) -> dict[str, Any]:
    """Check one parsed request object; returns it as a plain dict.

    Raises :class:`ServiceError` with ``schema-mismatch``/``bad-request``/
    ``unknown-op`` names — the server turns those into error responses
    without touching the service state.
    """
    if not isinstance(request, Mapping):
        raise ServiceError(
            "bad-request",
            f"request must be a JSON object, got {type(request).__name__}",
        )
    schema = request.get("schema", DECISION_SCHEMA)
    if schema != DECISION_SCHEMA:
        raise ServiceError(
            "schema-mismatch",
            f"unsupported request schema {schema!r}; this server speaks "
            f"{DECISION_SCHEMA!r}",
        )
    op = request.get("op")
    if op not in OPS:
        raise ServiceError(
            "unknown-op", f"unknown op {op!r}; known ops: {list(OPS)}"
        )
    return dict(request)


def ok_response(op: str, **payload: Any) -> dict[str, Any]:
    """An ``ok: true`` response envelope for ``op``."""
    return {"schema": DECISION_SCHEMA, "op": op, "ok": True, **payload}


def error_response(op: str | None, error: ServiceError) -> dict[str, Any]:
    """An ``ok: false`` response carrying the named error."""
    return {
        "schema": DECISION_SCHEMA,
        "op": op,
        "ok": False,
        "error": {"name": error.name, "message": error.message},
    }


def _slot_lists(mask: np.ndarray) -> list[list[int]]:
    """Per-episode slot-index lists of a boolean ``(B, S)`` mask."""
    return [[int(j) for j in np.flatnonzero(row)] for row in mask]


def encode_event(event) -> dict[str, Any]:
    """Encode one :class:`~repro.control.TwoLevelStepEvent` as a JSON object.

    Recoveries and evictions are sparse slot-index lists; the system-level
    decision contributes its CMDP state, add/emergency flags and the chosen
    container class (``-1`` for classless strategies / no add).
    """
    decision = event.decision
    batch = event.active.shape[0]
    add_class = (
        decision.add_class
        if decision.add_class is not None
        else np.full(batch, -1, dtype=np.int64)
    )
    return {
        "t": int(event.t),
        "recoveries": _slot_lists(event.executed_recoveries),
        "evicted": _slot_lists(event.crashed),
        "added": [int(j) for j in event.activated],
        "add": [bool(a) for a in decision.add_node],
        "emergency": [bool(e) for e in decision.emergency_add],
        "add_class": [int(c) for c in add_class],
        "state": [int(s) for s in decision.state],
        "node_counts": [int(n) for n in event.active.sum(axis=1)],
        "available": [bool(a) for a in event.available],
    }
