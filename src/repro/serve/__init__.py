"""Long-running decision service over the two-level control plane.

The paper's TOLERANCE architecture is an *online* system: its node-level
and system-level controllers continuously ingest intrusion alerts and emit
recovery/replication decisions for a live replica fleet (Fig. 2).  This
package is the reproduction's serving mode — the closed loop of
:class:`~repro.control.TwoLevelController` behind a request interface
instead of a one-shot ``run()``:

* :class:`DecisionService` — the in-process API: sessions register a fleet
  (a built controller or a ``repro/scenario-v1`` document), stream ticks
  and read back per-tick recovery/replication decisions, with the belief
  updates of compatible fleets **fused into single batched kernel calls**
  and LP replication solves served from the thread-safe
  :data:`~repro.control.policy_cache.DEFAULT_POLICY_CACHE`;
* :mod:`~repro.serve.protocol` — the versioned ``repro/decision-v1``
  newline-delimited-JSON schema (requests, decision events, named
  errors), living alongside ``repro/scenario-v1`` and ``repro/result-v1``;
* :class:`DecisionServer` / :func:`serve_forever` — the socket front
  (``python -m repro serve``);
* :class:`ServiceClient` — the matching client the tests and the
  ``bench_decision_service.py`` soak benchmark drive the server with.

Service decisions are bit-identical to a direct
``TwoLevelController.run`` on the same ``SeedSequence`` tree — a fused
cohort concatenates each session's own uniform buffer along the episode
axis, and engine episode rows are mutually independent (asserted in
``tests/test_decision_service.py``; see ``docs/serving.md`` for the
batching and seeding contract).
"""

from __future__ import annotations

from .client import ServiceClient
from .protocol import DECISION_SCHEMA, ServiceError, encode_event
from .server import DecisionServer, serve_forever
from .service import DecisionService, build_session_controller

__all__ = [
    "DECISION_SCHEMA",
    "DecisionServer",
    "DecisionService",
    "ServiceClient",
    "ServiceError",
    "build_session_controller",
    "encode_event",
    "serve_forever",
]
