"""In-process decision service fusing connected fleets into batched kernel calls.

:class:`DecisionService` is the long-running counterpart of one-shot
:meth:`~repro.control.TwoLevelController.run` calls: sessions register a
fleet (a built controller, or a ``repro/scenario-v1`` document the way the
CLI builds one), then stream ticks and get back per-tick recovery and
replication decisions (:class:`~repro.control.TwoLevelStepEvent`).

Cross-fleet batching
--------------------

Sessions whose scenarios compile to the same engine tables (identical
scenario mapping and kernel backend) and that register before their cohort
takes its first tick are **fused**: their per-session uniform buffers —
``engine.draw_uniforms(seed_i, B_i)``, episode-major children of
``SeedSequence(seed_i)`` — are concatenated along the episode axis into a
single :class:`~repro.sim.engine.BatchEpisodeState`, and every tick runs
ONE fused ``engine.step`` for the whole cohort instead of one call per
fleet.  Engine episode rows are mutually independent (the same property
the sharded sweeps of :mod:`repro.control.parallel` replay shards with),
so the fused step is **bit-identical** to stepping each session's batch
separately — which in turn is exactly what a direct
``TwoLevelController.run(seed=seed_i)`` executes.  The parity is asserted,
not assumed, in ``tests/test_decision_service.py``.

Each session keeps its *own* :class:`~repro.control.TwoLevelLoop` (its own
recovery policy, replication strategy and per-episode system-controller
seed streams from the tail of ``SeedSequence(seed_i)``): fusion happens at
the engine level only, so heterogeneous control policies coexist in one
cohort as long as the fleet dynamics match.

A tick request from *any* session advances its whole cohort one fused
step; the other sessions' events are buffered and delivered when they ask.
Sessions may therefore tick at different paces without blocking each
other, and a single-threaded client driving many sessions never
deadlocks.

Policy solves (the LP replication route of ``replication: {type: lp}``)
are served from the process-wide, thread-safe
:data:`~repro.control.policy_cache.DEFAULT_POLICY_CACHE` unless a scoped
cache is injected: concurrent registrations that fit the same kernel run
Algorithm 2 once.
"""

from __future__ import annotations

import itertools
import json
import threading
from typing import Any, Mapping

import numpy as np

from ..control.policy_cache import DEFAULT_POLICY_CACHE, PolicySolveCache
from ..control.two_level import TwoLevelController, TwoLevelLoop, TwoLevelResult, TwoLevelStepEvent
from ..envs.base import VectorObservation
from ..sim import BatchRecoveryEngine, FleetScenario
from ..sim.scenario_io import (
    load_yaml_document,
    run_section,
    scenario_from_mapping,
    scenario_to_mapping,
)
from .protocol import ServiceError

__all__ = ["DecisionService", "build_session_controller"]

#: Register-time run-section keys the service understands (the CLI's
#: closed-loop vocabulary plus the replication spec; ``mode``/``n_jobs``
#: are accepted for document compatibility and must be consistent).
_REGISTER_KEYS = frozenset(
    {
        "mode",
        "episodes",
        "seed",
        "n_jobs",
        "threshold",
        "beta",
        "k",
        "initial_nodes",
        "replication",
    }
)


def build_session_controller(
    scenario: FleetScenario,
    run: Mapping[str, Any],
    engine: BatchRecoveryEngine | None = None,
    policy_cache: PolicySolveCache | None = None,
) -> tuple[TwoLevelController, int | None]:
    """Build one session's closed-loop controller from a run section.

    Mirrors the CLI's ``closed-loop`` construction (threshold recovery,
    threshold replication) and adds the service-only ``replication`` spec:
    ``{"type": "threshold", "beta": 1}`` (default) or ``{"type": "lp",
    "fit_episodes": 50, "epsilon_a": 0.9}``, the latter fitting the
    empirical ``f_S`` kernel and serving Algorithm 2's solution from the
    policy cache.  Returns ``(controller, seed)``.
    """
    from ..core import ReplicationThresholdStrategy, ThresholdStrategy

    unknown = set(run) - _REGISTER_KEYS
    if unknown:
        raise ServiceError(
            "bad-request",
            f"unknown run option(s) {sorted(unknown)}; known: "
            f"{sorted(_REGISTER_KEYS)}",
        )
    mode = run.get("mode", "closed-loop")
    if mode not in (None, "closed-loop"):
        raise ServiceError(
            "bad-request",
            f"the decision service runs the closed-loop mode only, got "
            f"mode {mode!r}",
        )
    episodes = int(run.get("episodes", 100))
    if episodes < 1:
        raise ServiceError(
            "bad-request", f"episodes must be >= 1, got {episodes}"
        )
    seed = run.get("seed", 0)
    seed = None if seed is None else int(seed)
    threshold = float(run.get("threshold", 0.75))
    recovery = ThresholdStrategy(threshold)

    replication_spec = run.get("replication")
    if replication_spec is None:
        replication_spec = {"type": "threshold", "beta": int(run.get("beta", 1))}
    if not isinstance(replication_spec, Mapping) or "type" not in replication_spec:
        raise ServiceError(
            "bad-request",
            "replication must be a mapping with a 'type' key, got "
            f"{replication_spec!r}",
        )
    kind = replication_spec["type"]
    if kind == "threshold":
        replication = ReplicationThresholdStrategy(
            int(replication_spec.get("beta", run.get("beta", 1)))
        )
    elif kind == "lp":
        replication = _solve_lp_replication(
            scenario,
            recovery,
            fit_episodes=int(replication_spec.get("fit_episodes", 50)),
            epsilon_a=float(replication_spec.get("epsilon_a", 0.9)),
            seed=seed,
            policy_cache=policy_cache,
        )
    else:
        raise ServiceError(
            "bad-request",
            f"unknown replication type {kind!r}; known: ['threshold', 'lp']",
        )

    try:
        controller = TwoLevelController(
            scenario,
            num_envs=episodes,
            recovery_policy=recovery,
            replication_strategy=replication,
            initial_nodes=(
                None
                if run.get("initial_nodes") is None
                else int(run["initial_nodes"])
            ),
            k=int(run.get("k", 1)),
            engine=engine,
        )
    except ValueError as exc:
        raise ServiceError("invalid-scenario", str(exc)) from exc
    return controller, seed


def _solve_lp_replication(
    scenario: FleetScenario,
    recovery,
    fit_episodes: int,
    epsilon_a: float,
    seed: int | None,
    policy_cache: PolicySolveCache | None,
):
    """Fit ``\\hat{f}_S`` and serve Algorithm 2's LP solve from the cache."""
    from ..envs.policies import StrategyPolicy
    from ..envs.rollout import rollout
    from ..envs.vector_recovery import FleetVectorEnv
    from ..control.sysid import fit_system_model_from_env

    if scenario.f is None:
        raise ServiceError(
            "invalid-scenario",
            "the LP replication route requires the scenario to define f",
        )
    cache = policy_cache if policy_cache is not None else DEFAULT_POLICY_CACHE
    fit_env = FleetVectorEnv(scenario, fit_episodes)
    rollout(fit_env, StrategyPolicy(recovery), seed=seed)
    model = fit_system_model_from_env(fit_env, epsilon_a=epsilon_a)
    solution = cache.solve_lp(model)
    if not solution.feasible:
        raise ServiceError(
            "invalid-scenario",
            "Algorithm 2 is infeasible on the fitted kernel; relax "
            "epsilon_a or use threshold replication",
        )
    return solution.strategy


class _Session:
    """One registered fleet: its loop, its episode slice, its event buffer."""

    def __init__(
        self,
        session_id: str,
        controller: TwoLevelController,
        loop: TwoLevelLoop,
        seed: int | None,
    ) -> None:
        self.id = session_id
        self.controller = controller
        self.loop = loop
        self.seed = seed
        self.lo = 0
        self.hi = 0
        #: Events produced by cohort advances this session has not consumed.
        self.events: list[TwoLevelStepEvent] = []
        self.closed = False
        self.cohort: "_Cohort | None" = None


class _Cohort:
    """Sessions fused into one engine state; sealed at the first tick.

    The cohort owns the fused :class:`BatchEpisodeState`; each member
    session owns a contiguous episode slice ``[lo, hi)`` of it.  One
    :meth:`advance` call executes one fused engine step for every member.
    """

    def __init__(self, engine: BatchRecoveryEngine, profile: bool) -> None:
        self.engine = engine
        self.profile = profile
        self.sessions: list[_Session] = []
        self.sim = None
        self._forced: np.ndarray | None = None

    @property
    def sealed(self) -> bool:
        return self.sim is not None

    @property
    def num_episodes(self) -> int:
        return sum(s.controller.num_envs for s in self.sessions)

    def add(self, session: _Session) -> None:
        if self.sealed:
            raise RuntimeError("cannot join a sealed cohort")
        session.lo = self.num_episodes
        session.hi = session.lo + session.controller.num_envs
        session.cohort = self
        self.sessions.append(session)

    def seal(self) -> None:
        """Fuse the members' per-session uniform buffers into one state.

        Session ``i``'s rows ``[lo_i, hi_i)`` of the fused buffers are
        exactly ``engine.draw_uniforms(seed_i, B_i)`` — the buffer a direct
        ``TwoLevelController.run(seed=seed_i)`` consumes — so every fused
        row replays its standalone counterpart bit for bit.
        """
        engine = self.engine
        uniforms = np.concatenate(
            [
                engine.draw_uniforms(s.seed, s.controller.num_envs)
                for s in self.sessions
            ],
            axis=0,
        )
        adversary_uniforms = None
        if engine.is_dynamic:
            buffers = [
                engine.draw_adversary_uniforms(s.seed, s.controller.num_envs)
                for s in self.sessions
            ]
            if buffers[0] is not None:
                adversary_uniforms = np.concatenate(buffers, axis=0)
        self.sim = engine.begin(
            uniforms=uniforms,
            adversary_uniforms=adversary_uniforms,
            profile=self.profile,
        )
        self._forced = engine.forced_recoveries(self.sim)

    @property
    def done(self) -> bool:
        return self.sealed and self.sim.t >= self.engine.scenario.horizon

    def advance(self) -> None:
        """One fused tick: every member's pre_step, ONE engine step, post_step.

        Executes the identical per-tick arithmetic as
        :meth:`TwoLevelController.run` on each session's slice — the belief
        updates of the whole cohort land in a single fused kernel call.
        """
        if not self.sealed:
            self.seal()
        if self.done:
            raise ServiceError("session-done", "the cohort reached its horizon")
        sim, engine = self.sim, self.engine
        forced = self._forced
        masks = np.empty_like(forced)
        for session in self.sessions:
            lo, hi = session.lo, session.hi
            observation = VectorObservation(
                beliefs=sim.belief[lo:hi],
                time_since_recovery=sim.time_since_recovery[lo:hi],
                forced=forced[lo:hi],
                active=session.loop.active,
            )
            masks[lo:hi] = session.loop.pre_step(observation)
        costs = engine.step(sim, masks | forced, btr_applied=True)
        self._forced = engine.forced_recoveries(sim)
        for session in self.sessions:
            lo, hi = session.lo, session.hi
            observation = VectorObservation(
                beliefs=sim.belief[lo:hi],
                time_since_recovery=sim.time_since_recovery[lo:hi],
                forced=self._forced[lo:hi],
                active=session.loop.active,
            )
            info = {
                "t": sim.t,
                "crashed": sim.last_crashed[lo:hi],
                "failed_mask": sim.last_failed_mask[lo:hi],
            }
            event = session.loop.post_step(observation, costs[lo:hi], info)
            if not session.closed:
                session.events.append(event)


class DecisionService:
    """Long-running decision service over fused two-level control loops.

    Args:
        coalesce: Fuse compatible sessions into shared engine batches (the
            default).  ``False`` gives every session its own cohort — the
            per-fleet serial dispatch the soak benchmark compares against.
        policy_cache: Cache serving the LP replication solves; defaults to
            the process-wide thread-safe
            :data:`~repro.control.policy_cache.DEFAULT_POLICY_CACHE`.
        profile: Attach an :class:`~repro.sim.kernels.EngineProfile` to
            every cohort; finished sessions carry it on
            :attr:`~repro.control.TwoLevelResult.profile`.

    All public methods are thread-safe behind one reentrant lock — the
    socket server (:mod:`repro.serve.server`) calls them from one thread
    per connection.
    """

    def __init__(
        self,
        coalesce: bool = True,
        policy_cache: PolicySolveCache | None = None,
        profile: bool = False,
    ) -> None:
        self.coalesce = coalesce
        self.policy_cache = (
            policy_cache if policy_cache is not None else DEFAULT_POLICY_CACHE
        )
        self.profile = profile
        self._lock = threading.RLock()
        self._ids = itertools.count(1)
        self._sessions: dict[str, _Session] = {}
        self._engines: dict[str, BatchRecoveryEngine] = {}
        self._open_cohorts: dict[str, _Cohort] = {}
        self._cohorts: list[_Cohort] = []
        self.engine_calls = 0
        self.node_decisions = 0
        self.ticks_served = 0

    # -- registration -------------------------------------------------------------
    @staticmethod
    def _scenario_key(scenario: FleetScenario, backend: str) -> str:
        """Content key of the engine tables a scenario compiles to."""
        mapping = scenario_to_mapping(scenario)
        return backend + ":" + json.dumps(mapping, sort_keys=True)

    def register_controller(
        self, controller: TwoLevelController, seed: int | None = 0
    ) -> str:
        """Register a pre-built controller as a new session.

        The session joins (or opens) the cohort of its scenario/backend
        key; its decisions replay ``controller.run(seed=seed)`` bit for
        bit.  Returns the session id.
        """
        with self._lock:
            engine = controller.env.engine
            if engine.is_dynamic and seed is None:
                from ..sim.adversary import resolve_adversary_entropy

                seed = resolve_adversary_entropy(None)
            key = self._scenario_key(controller.scenario, engine.backend)
            self._engines.setdefault(key, engine)
            session = _Session(
                session_id=f"s{next(self._ids)}",
                controller=controller,
                loop=controller.begin_loop(seed=seed),
                seed=seed,
            )
            cohort = self._open_cohorts.get(key) if self.coalesce else None
            if cohort is None or cohort.sealed:
                cohort = _Cohort(self._engines[key], self.profile)
                self._cohorts.append(cohort)
                if self.coalesce:
                    self._open_cohorts[key] = cohort
            cohort.add(session)
            self._sessions[session.id] = session
            return session.id

    def register_document(
        self,
        document: Mapping[str, Any] | str,
        overrides: Mapping[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Register a session from a ``repro/scenario-v1`` document.

        ``document`` is a parsed mapping, YAML text or a YAML path; the
        ``run`` section (updated with ``overrides``) supplies episodes,
        seed and the control policies exactly as the CLI runner reads
        them.  Returns the register-response payload (session id plus the
        session's dimensions).
        """
        with self._lock:
            try:
                parsed = load_yaml_document(document)
                scenario = scenario_from_mapping(parsed)
                run = run_section(parsed)
            except (ValueError, TypeError) as exc:
                raise ServiceError("invalid-scenario", str(exc)) from exc
            if overrides:
                run.update({k: v for k, v in overrides.items() if v is not None})
            from ..sim.kernels import resolve_backend

            key_engine = self._engines.get(
                self._scenario_key(scenario, resolve_backend(None))
            )
            controller, seed = build_session_controller(
                scenario, run, engine=key_engine, policy_cache=self.policy_cache
            )
            session_id = self.register_controller(controller, seed=seed)
            return {
                "session": session_id,
                "episodes": controller.num_envs,
                "nodes": controller.smax,
                "horizon": controller.horizon,
                "seed": seed,
            }

    # -- ticking ------------------------------------------------------------------
    def _get(self, session_id: str) -> _Session:
        session = self._sessions.get(session_id)
        if session is None or session.closed:
            raise ServiceError(
                "unknown-session", f"no open session {session_id!r}"
            )
        return session

    def tick(self, session_id: str, count: int = 1) -> list[TwoLevelStepEvent]:
        """Advance ``count`` ticks of one session; returns its decision events.

        A session that is behind its cohort first drains buffered events;
        beyond that, each tick advances the whole cohort by one fused
        engine step (buffering the other members' events).
        """
        if count < 1:
            raise ServiceError("bad-request", f"count must be >= 1, got {count}")
        with self._lock:
            session = self._get(session_id)
            cohort = session.cohort
            delivered: list[TwoLevelStepEvent] = []
            for _ in range(count):
                if not session.events:
                    if session.loop.done:
                        raise ServiceError(
                            "session-done",
                            f"session {session_id!r} reached its horizon "
                            f"({session.controller.horizon} ticks)",
                        )
                    cohort.advance()
                    self.engine_calls += 1
                    self.node_decisions += (
                        cohort.num_episodes * cohort.engine.scenario.num_nodes
                    )
                delivered.append(session.events.pop(0))
            self.ticks_served += len(delivered)
            return delivered

    # -- results ------------------------------------------------------------------
    def result(self, session_id: str) -> TwoLevelResult:
        """The finished session's :class:`~repro.control.TwoLevelResult`.

        Identical to ``controller.run(seed=seed)`` on the session's seed;
        carries the cohort's shared engine profile when the service was
        built with ``profile=True``.
        """
        with self._lock:
            session = self._get(session_id)
            if not session.loop.done:
                raise ServiceError(
                    "session-not-done",
                    f"session {session_id!r} is at tick {session.loop.t} of "
                    f"{session.controller.horizon}; tick it to the horizon "
                    "before requesting the result",
                )
            profile = session.cohort.sim.profile if self.profile else None
            return session.loop.result(profile=profile)

    def close(self, session_id: str) -> None:
        """Detach a session.

        Inside a sealed fused cohort its episode rows keep stepping (the
        fused state is shared), but no further events are buffered for it.
        """
        with self._lock:
            session = self._get(session_id)
            session.closed = True
            session.events.clear()
            del self._sessions[session_id]

    # -- introspection ------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Service counters plus the policy cache's hit/miss statistics."""
        with self._lock:
            return {
                "sessions": len(self._sessions),
                "cohorts": len(self._cohorts),
                "coalesce": self.coalesce,
                "engine_calls": self.engine_calls,
                "ticks_served": self.ticks_served,
                "node_decisions": self.node_decisions,
                "policy_cache": self.policy_cache.stats(),
            }
