"""Socket client of the decision service (``repro/decision-v1``).

:class:`ServiceClient` wraps one TCP connection to a
:class:`~repro.serve.DecisionServer` behind typed request helpers: each
call writes one JSON line and reads one JSON response line, raising
:class:`~repro.serve.protocol.ServiceError` with the server's named error
on ``ok: false``.  The tests and the soak benchmark drive the service
through it::

    with ServiceClient("127.0.0.1", port) as client:
        session = client.register(document, episodes=50, seed=3)["session"]
        events = client.tick(session, count=horizon)
        result = client.result(session)
"""

from __future__ import annotations

import json
import socket
from typing import Any, Mapping

from .protocol import DECISION_SCHEMA, ServiceError

__all__ = ["ServiceClient"]


class ServiceClient:
    """One NDJSON connection to a running decision server.

    Args:
        host: Server host.
        port: Server port (the server's ``listening`` announcement carries
            the resolved one when it bound port 0).
        timeout: Socket timeout in seconds for connect and each response.
    """

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        self._socket = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._socket.makefile("r", encoding="utf-8")

    # -- transport ----------------------------------------------------------------
    def request(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """Send one request object; return the ``ok: true`` response.

        Raises :class:`ServiceError` carrying the server's named error on
        an ``ok: false`` response, and ``ConnectionError`` if the server
        hangs up mid-exchange.
        """
        message = {"schema": DECISION_SCHEMA, **payload}
        self._socket.sendall((json.dumps(message) + "\n").encode("utf-8"))
        line = self._reader.readline()
        if not line:
            raise ConnectionError("the decision server closed the connection")
        response = json.loads(line)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServiceError(
                error.get("name", "internal-error"),
                error.get("message", "unspecified server error"),
            )
        return response

    # -- typed helpers ------------------------------------------------------------
    def register(
        self, scenario: Mapping[str, Any] | str, **overrides: Any
    ) -> dict[str, Any]:
        """Register a scenario-v1 document; returns the register payload.

        ``scenario`` is a scenario-v1 mapping or the YAML text of one
        (sent verbatim; the server parses it).  Keyword arguments become
        run-section overrides (``episodes=``, ``seed=``, ``threshold=``,
        ...), exactly like the CLI flags.
        """
        document = scenario if isinstance(scenario, str) else dict(scenario)
        request: dict[str, Any] = {"op": "register", "scenario": document}
        if overrides:
            request["overrides"] = overrides
        return self.request(request)

    def tick(self, session: str, count: int = 1) -> list[dict[str, Any]]:
        """Advance ``count`` ticks; returns the decision events."""
        return self.request({"op": "tick", "session": session, "count": count})[
            "events"
        ]

    def result(self, session: str) -> dict[str, Any]:
        """The finished session's result payload (metrics + per-episode arrays)."""
        return self.request({"op": "result", "session": session})["result"]

    def close_session(self, session: str) -> None:
        """Detach one session server-side."""
        self.request({"op": "close", "session": session})

    def stats(self) -> dict[str, Any]:
        """Server-side service counters."""
        return self.request({"op": "stats"})["stats"]

    def shutdown(self) -> None:
        """Ask the server to stop (after answering)."""
        self.request({"op": "shutdown"})

    # -- lifecycle ----------------------------------------------------------------
    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._socket.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
