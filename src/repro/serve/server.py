"""Newline-delimited-JSON socket front of the decision service.

``python -m repro serve`` binds a :class:`DecisionServer` — a threading TCP
server whose connections speak the ``repro/decision-v1`` schema
(:mod:`repro.serve.protocol`): one JSON request per line in, one JSON
response per line out.  Every connection shares ONE
:class:`~repro.serve.DecisionService`, so fleets registered over separate
connections fuse into shared engine batches exactly as in-process sessions
do; the service's reentrant lock serializes the per-tick state while the
per-connection threads overlap parsing and I/O.

On startup the server prints a single ``listening`` line to its
announce stream::

    {"schema": "repro/decision-v1", "event": "listening",
     "host": "127.0.0.1", "port": 40217}

so callers binding port 0 (the tests and the soak benchmark) learn the
assigned port without racing the log.  A ``shutdown`` request stops the
server after answering.
"""

from __future__ import annotations

import json
import socketserver
import threading
from typing import Any, TextIO

from .protocol import (
    DECISION_SCHEMA,
    ServiceError,
    encode_event,
    error_response,
    ok_response,
    validate_request,
)
from .service import DecisionService

__all__ = ["DecisionServer", "serve_forever"]


def _result_payload(result) -> dict[str, Any]:
    """Encode a :class:`~repro.control.TwoLevelResult` for the wire.

    Mirrors the ``repro/result-v1`` metric conventions (mean/ci95 pairs
    from :meth:`~repro.control.TwoLevelResult.summary`) and adds the raw
    per-episode arrays so clients can assert bit-parity, not just
    aggregate closeness.
    """
    payload: dict[str, Any] = {
        "steps": int(result.steps),
        "metrics": {
            name: {"mean": float(mean), "ci95": float(ci)}
            for name, (mean, ci) in result.summary().items()
        },
        "episodes": {
            "availability": [float(v) for v in result.availability],
            "average_nodes": [float(v) for v in result.average_nodes],
            "average_cost": [float(v) for v in result.average_cost],
            "recovery_frequency": [float(v) for v in result.recovery_frequency],
            "additions": [int(v) for v in result.additions],
            "emergency_additions": [int(v) for v in result.emergency_additions],
            "evictions": [int(v) for v in result.evictions],
        },
    }
    return payload


class _Handler(socketserver.StreamRequestHandler):
    """One connection: read request lines, answer response lines."""

    def handle(self) -> None:  # pragma: no cover - exercised via ServiceClient
        server: DecisionServer = self.server  # type: ignore[assignment]
        for raw in self.rfile:
            line = raw.decode("utf-8").strip()
            if not line:
                continue
            response = server.handle_request_line(line)
            self.wfile.write((json.dumps(response) + "\n").encode("utf-8"))
            self.wfile.flush()
            if server.stopping:
                break


class DecisionServer(socketserver.ThreadingTCPServer):
    """Threading TCP server exposing one shared :class:`DecisionService`.

    Args:
        address: ``(host, port)`` bind address; port ``0`` asks the OS for
            a free port (read the resolved one off ``server_address``).
        service: The shared service; a fresh coalescing one by default.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int] = ("127.0.0.1", 0),
        service: DecisionService | None = None,
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service if service is not None else DecisionService()
        self.stopping = False

    # -- request dispatch ---------------------------------------------------------
    def handle_request_line(self, line: str) -> dict[str, Any]:
        """Answer one raw request line; never raises (errors become named
        ``ok: false`` responses)."""
        op = None
        try:
            try:
                request = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ServiceError("bad-request", f"invalid JSON: {exc}") from exc
            request = validate_request(request)
            op = request["op"]
            return self._dispatch(op, request)
        except ServiceError as error:
            return error_response(op, error)
        except Exception as exc:  # pragma: no cover - defensive
            return error_response(op, ServiceError("internal-error", str(exc)))

    def _dispatch(self, op: str, request: dict[str, Any]) -> dict[str, Any]:
        service = self.service
        if op == "register":
            scenario = request.get("scenario")
            if scenario is None:
                raise ServiceError(
                    "bad-request", "register requires a 'scenario' document"
                )
            payload = service.register_document(
                scenario, overrides=request.get("overrides")
            )
            return ok_response(op, **payload)
        if op == "tick":
            events = service.tick(
                self._session_of(request), count=int(request.get("count", 1))
            )
            return ok_response(op, events=[encode_event(e) for e in events])
        if op == "result":
            result = service.result(self._session_of(request))
            return ok_response(op, result=_result_payload(result))
        if op == "close":
            service.close(self._session_of(request))
            return ok_response(op)
        if op == "stats":
            return ok_response(op, stats=service.stats())
        # shutdown
        self.stopping = True
        threading.Thread(target=self.shutdown, daemon=True).start()
        return ok_response(op)

    @staticmethod
    def _session_of(request: dict[str, Any]) -> str:
        session = request.get("session")
        if not isinstance(session, str):
            raise ServiceError(
                "bad-request", f"a 'session' id string is required, got {session!r}"
            )
        return session

    # -- lifecycle ----------------------------------------------------------------
    def announce(self, stream: TextIO) -> None:
        """Print the single-line ``listening`` announcement to ``stream``."""
        host, port = self.server_address[:2]
        print(
            json.dumps(
                {
                    "schema": DECISION_SCHEMA,
                    "event": "listening",
                    "host": host,
                    "port": port,
                }
            ),
            file=stream,
            flush=True,
        )


def serve_forever(
    host: str = "127.0.0.1",
    port: int = 0,
    service: DecisionService | None = None,
    announce_stream: TextIO | None = None,
) -> int:
    """Run a decision server until a ``shutdown`` request (or KeyboardInterrupt).

    The CLI's ``serve`` subcommand lands here.  Returns ``0``.
    """
    import sys

    with DecisionServer((host, port), service=service) as server:
        server.announce(announce_stream if announce_stream is not None else sys.stdout)
        try:
            server.serve_forever(poll_interval=0.1)
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
    return 0
