"""Command-line runner for declarative scenarios (``python -m repro``).

One YAML file specifies one reproducible experiment (the
``repro/scenario-v1`` schema of :mod:`repro.sim.scenario_io`); the runner
executes it and emits a structured JSON result (``repro/result-v1``):

.. code-block:: console

    $ python -m repro run examples/scenarios/bursty_campaign.yaml
    $ python -m repro run scenario.yaml --episodes 500 --n-jobs 4 --json out.json
    $ python -m repro validate out.json
    $ python -m repro serve --host 127.0.0.1 --port 0

``serve`` starts the long-running decision service (:mod:`repro.serve`):
clients register scenario-v1 fleets over newline-delimited JSON
(``repro/decision-v1``) and stream per-tick recovery/replication
decisions; see ``docs/serving.md``.

Every failure path exits non-zero with a named one-line ``error:``
message on stderr — malformed YAML, unknown run options or adversary
types, schema-version mismatches and unreadable files never escape as
tracebacks (pinned in ``tests/test_scenario_dsl.py``).

``run`` modes (the ``run.mode`` key of the document, or ``--mode``):

* ``engine`` — node-POMDP rollouts of a per-node threshold strategy on the
  :class:`~repro.sim.BatchRecoveryEngine`, sharded across processes via
  :func:`~repro.control.parallel.parallel_engine_sweep_table`.
* ``closed-loop`` — the full two-level feedback loop
  (:class:`~repro.control.TwoLevelController`: threshold recovery at the
  node level, threshold replication at the system level), sharded via
  :func:`~repro.control.parallel.parallel_closed_loop_table`.
* ``emulation`` — one episode on the emulated testbed
  (:class:`~repro.emulation.EmulationEnvironment`); homogeneous fleets
  only, and the adversary process modulates the emulated attacker.

The result schema ``repro/result-v1`` is a JSON object with ``schema``,
``mode``, ``episodes``, ``seed``, ``n_jobs``, the serialized ``scenario``
mapping, and a ``metrics`` mapping of metric name to ``{"mean": float,
"ci95": float}``; :func:`validate_result` checks a parsed object against
it (the CI ``scenario-smoke`` step runs it on every shipped example).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Mapping

__all__ = ["main", "run_scenario", "validate_result", "RESULT_SCHEMA"]

#: Schema identifier stamped on every emitted result document.
RESULT_SCHEMA = "repro/result-v1"

#: Run-section keys the runner understands (anything else is an error —
#: a typo in a config file should fail loudly, not silently default).
_RUN_KEYS = frozenset(
    {"mode", "episodes", "seed", "n_jobs", "threshold", "beta", "k", "initial_nodes"}
)
_MODES = ("engine", "closed-loop", "emulation")


def _summary_to_metrics(summary: Mapping[str, tuple]) -> dict[str, dict[str, float]]:
    return {
        name: {"mean": float(mean), "ci95": float(ci)}
        for name, (mean, ci) in summary.items()
    }


def run_scenario(source, overrides: Mapping[str, Any] | None = None) -> dict[str, Any]:
    """Execute one scenario document and return the ``repro/result-v1`` dict.

    Args:
        source: YAML path, YAML text, or parsed mapping (bare scenario or
            full runner document with ``scenario``/``run`` sections).
        overrides: Run-section overrides (the CLI flags); keys must be in
            the run-section vocabulary.
    """
    from .sim.scenario_io import (
        load_yaml_document,
        run_section,
        scenario_from_mapping,
        scenario_to_mapping,
    )

    document = load_yaml_document(source)
    scenario = scenario_from_mapping(document)
    run = run_section(document)
    unknown = set(run) - _RUN_KEYS
    if unknown:
        raise ValueError(
            f"unknown run option(s) {sorted(unknown)}; known: {sorted(_RUN_KEYS)}"
        )
    if overrides:
        run.update({k: v for k, v in overrides.items() if v is not None})

    mode = str(run.get("mode", "engine"))
    if mode not in _MODES:
        raise ValueError(f"unknown run mode {mode!r}; known modes: {list(_MODES)}")
    episodes = int(run.get("episodes", 100))
    if episodes < 1:
        raise ValueError(f"episodes must be >= 1, got {episodes}")
    seed = run.get("seed", 0)
    seed = None if seed is None else int(seed)
    n_jobs = int(run.get("n_jobs", 1))
    threshold = float(run.get("threshold", 0.75))

    result: dict[str, Any] = {
        "schema": RESULT_SCHEMA,
        "mode": mode,
        "episodes": episodes,
        "seed": seed,
        "n_jobs": n_jobs,
        "scenario": scenario_to_mapping(scenario),
        "metrics": {},
    }

    if mode == "engine":
        from .core import ThresholdStrategy
        from .control.parallel import parallel_engine_sweep_table

        table = parallel_engine_sweep_table(
            [("scenario", scenario)],
            {"threshold": ThresholdStrategy(threshold)},
            num_episodes=episodes,
            seed=seed,
            n_jobs=n_jobs,
        )
        engine_result = table[("scenario", "threshold")]
        result["metrics"] = _summary_to_metrics(engine_result.summary())
        result["threshold"] = threshold
    elif mode == "closed-loop":
        from .core import ReplicationThresholdStrategy, ThresholdStrategy
        from .control.parallel import parallel_closed_loop_table
        from .control.sweep import ClosedLoopCell

        beta = int(run.get("beta", 1))
        cell = ClosedLoopCell(
            name="tolerance",
            recovery=ThresholdStrategy(threshold),
            replication=ReplicationThresholdStrategy(beta),
        )
        table = parallel_closed_loop_table(
            [("scenario", scenario)],
            [cell],
            num_envs=episodes,
            seed=seed,
            k=int(run.get("k", 1)),
            initial_nodes=run.get("initial_nodes"),
            n_jobs=n_jobs,
        )
        loop_result = table[("scenario", "tolerance")]
        result["metrics"] = _summary_to_metrics(loop_result.summary())
        result["threshold"] = threshold
        result["beta"] = beta
    else:  # emulation
        from .emulation import EmulationConfig, EmulationEnvironment, tolerance_policy

        config = EmulationConfig.from_scenario(scenario)
        environment = EmulationEnvironment(
            config, tolerance_policy(alpha=threshold), seed=seed
        )
        metrics = environment.run()
        result["metrics"] = {
            name: {"mean": float(getattr(metrics, name)), "ci95": 0.0}
            for name in (
                "availability",
                "time_to_recovery",
                "recovery_frequency",
                "average_nodes",
            )
        }
        result["episodes"] = 1
        result["threshold"] = threshold
    return result


def validate_result(document: Any) -> list[str]:
    """Check a parsed result object against ``repro/result-v1``.

    Returns a list of human-readable problems (empty = valid).
    """
    problems: list[str] = []
    if not isinstance(document, Mapping):
        return [f"result must be a JSON object, got {type(document).__name__}"]
    if document.get("schema") != RESULT_SCHEMA:
        problems.append(
            f"schema must be {RESULT_SCHEMA!r}, got {document.get('schema')!r}"
        )
    if document.get("mode") not in _MODES:
        problems.append(f"mode must be one of {list(_MODES)}, got {document.get('mode')!r}")
    episodes = document.get("episodes")
    if not isinstance(episodes, int) or isinstance(episodes, bool) or episodes < 1:
        problems.append(f"episodes must be a positive integer, got {episodes!r}")
    seed = document.get("seed")
    if seed is not None and (not isinstance(seed, int) or isinstance(seed, bool)):
        problems.append(f"seed must be an integer or null, got {seed!r}")
    scenario = document.get("scenario")
    if not isinstance(scenario, Mapping):
        problems.append("scenario section missing or not an object")
    else:
        from .sim.scenario_io import scenario_from_mapping

        try:
            scenario_from_mapping(scenario)
        except ValueError as exc:
            problems.append(f"scenario section invalid: {exc}")
    metrics = document.get("metrics")
    if not isinstance(metrics, Mapping) or not metrics:
        problems.append("metrics section missing or empty")
    else:
        for name, entry in metrics.items():
            if not isinstance(entry, Mapping) or "mean" not in entry:
                problems.append(f"metric {name!r} must be an object with a 'mean'")
                continue
            if not isinstance(entry["mean"], (int, float)) or isinstance(
                entry["mean"], bool
            ):
                problems.append(f"metric {name!r} mean must be a number")
    return problems


# -- argument parsing --------------------------------------------------------------
def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run declarative intrusion-tolerance scenarios.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="execute a scenario YAML file")
    run.add_argument("scenario", help="path to a repro/scenario-v1 YAML file")
    run.add_argument("--mode", choices=_MODES, default=None, help="override run.mode")
    run.add_argument("--episodes", type=int, default=None, help="override run.episodes")
    run.add_argument("--seed", type=int, default=None, help="override run.seed")
    run.add_argument("--n-jobs", type=int, default=None, help="override run.n_jobs")
    run.add_argument(
        "--threshold", type=float, default=None, help="override the recovery threshold"
    )
    run.add_argument(
        "--json", dest="json_path", default=None, help="also write the result JSON here"
    )
    run.add_argument(
        "--quiet", action="store_true", help="suppress the stdout result dump"
    )

    validate = commands.add_parser(
        "validate", help="validate a result JSON against repro/result-v1"
    )
    validate.add_argument("result", help="path to a result JSON file")

    serve = commands.add_parser(
        "serve", help="run the repro/decision-v1 decision service"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind host")
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="bind port (0 asks the OS; the listening line reports it)",
    )
    return parser


def _run_command(args: argparse.Namespace) -> int:
    if args.command == "run":
        result = run_scenario(
            args.scenario,
            overrides={
                "mode": args.mode,
                "episodes": args.episodes,
                "seed": args.seed,
                "n_jobs": args.n_jobs,
                "threshold": args.threshold,
            },
        )
        text = json.dumps(result, indent=2)
        if args.json_path:
            with open(args.json_path, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
        if not args.quiet:
            print(text)
        return 0
    if args.command == "serve":
        from .serve import serve_forever

        return serve_forever(host=args.host, port=args.port)
    # validate
    with open(args.result, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    problems = validate_result(document)
    if problems:
        for problem in problems:
            print(f"invalid: {problem}", file=sys.stderr)
        return 1
    print(f"ok: {args.result} conforms to {RESULT_SCHEMA}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: dispatch the subcommand, naming every failure.

    Anticipated failures — malformed or schema-mismatched documents
    (``ValueError``), unreadable files (``OSError``), invalid result JSON
    (``json.JSONDecodeError``) and a missing PyYAML (``ImportError``) —
    exit with status 2 and a one-line ``error:`` message on stderr instead
    of a traceback.
    """
    args = _build_parser().parse_args(argv)
    try:
        return _run_command(args)
    except (ValueError, OSError, ImportError) as error:
        # json.JSONDecodeError subclasses ValueError; named errors from the
        # scenario layer arrive here as plain ValueErrors.
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
