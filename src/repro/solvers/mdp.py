"""Finite MDP solvers: value iteration and policy iteration.

These solvers back two parts of the reproduction:

* the Lagrangian-relaxed replication MDP of Appendix D (Theorem 2), where
  the per-step cost is ``c_lambda(s) = s + lambda [s < f + 1]`` and the
  optimal policy is a threshold ("order-up-to") policy; and
* generic sanity checks of the structural results (monotone value
  functions, threshold policies) used by the property-based tests.

The solvers operate on explicit transition arrays ``T[a, s, s']`` and cost
arrays ``C[a, s]`` and support both the discounted and the (relative) average
cost criteria.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "MDPSolution",
    "value_iteration",
    "policy_iteration",
    "relative_value_iteration",
    "policy_evaluation",
]


@dataclass
class MDPSolution:
    """Solution of a finite MDP.

    Attributes:
        values: Optimal value function ``V*(s)`` (relative values under the
            average-cost criterion).
        policy: Optimal deterministic policy ``pi*(s)`` (action indices).
        iterations: Number of iterations performed.
        residual: Final Bellman residual.
        average_cost: Optimal average cost (average-cost criterion only).
    """

    values: np.ndarray
    policy: np.ndarray
    iterations: int
    residual: float
    average_cost: float | None = None


def _validate(transition: np.ndarray, costs: np.ndarray) -> tuple[int, int]:
    transition = np.asarray(transition, dtype=float)
    costs = np.asarray(costs, dtype=float)
    if transition.ndim != 3:
        raise ValueError("transition must have shape (A, S, S)")
    num_actions, num_states, num_states_2 = transition.shape
    if num_states != num_states_2:
        raise ValueError("transition matrices must be square")
    if costs.shape != (num_actions, num_states):
        raise ValueError("costs must have shape (A, S)")
    if not np.allclose(transition.sum(axis=2), 1.0, atol=1e-6):
        raise ValueError("transition rows must sum to one")
    return num_actions, num_states


def value_iteration(
    transition: np.ndarray,
    costs: np.ndarray,
    discount: float = 0.95,
    max_iterations: int = 10000,
    tolerance: float = 1e-9,
) -> MDPSolution:
    """Discounted value iteration minimizing expected total discounted cost."""
    if not 0.0 < discount < 1.0:
        raise ValueError("discount must lie in (0, 1)")
    num_actions, num_states = _validate(transition, costs)
    values = np.zeros(num_states)
    iteration = 0
    residual = np.inf
    for iteration in range(1, max_iterations + 1):
        q_values = costs + discount * np.einsum("ast,t->as", transition, values)
        new_values = q_values.min(axis=0)
        residual = float(np.max(np.abs(new_values - values)))
        values = new_values
        if residual < tolerance:
            break
    q_values = costs + discount * np.einsum("ast,t->as", transition, values)
    policy = q_values.argmin(axis=0)
    return MDPSolution(values=values, policy=policy, iterations=iteration, residual=residual)


def policy_evaluation(
    transition: np.ndarray,
    costs: np.ndarray,
    policy: np.ndarray,
    discount: float = 0.95,
) -> np.ndarray:
    """Exact discounted evaluation of a deterministic policy (linear solve)."""
    num_actions, num_states = _validate(transition, costs)
    policy = np.asarray(policy, dtype=int)
    if policy.shape != (num_states,):
        raise ValueError("policy must assign one action per state")
    transition_pi = np.array([transition[policy[s], s] for s in range(num_states)])
    costs_pi = np.array([costs[policy[s], s] for s in range(num_states)])
    return np.linalg.solve(np.eye(num_states) - discount * transition_pi, costs_pi)


def policy_iteration(
    transition: np.ndarray,
    costs: np.ndarray,
    discount: float = 0.95,
    max_iterations: int = 1000,
) -> MDPSolution:
    """Howard policy iteration; converges in finitely many steps."""
    num_actions, num_states = _validate(transition, costs)
    policy = np.zeros(num_states, dtype=int)
    values = np.zeros(num_states)
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        values = policy_evaluation(transition, costs, policy, discount)
        q_values = costs + discount * np.einsum("ast,t->as", transition, values)
        new_policy = q_values.argmin(axis=0)
        if np.array_equal(new_policy, policy):
            break
        policy = new_policy
    residual = float(np.max(np.abs(q_values.min(axis=0) - values)))
    return MDPSolution(values=values, policy=policy, iterations=iteration, residual=residual)


def relative_value_iteration(
    transition: np.ndarray,
    costs: np.ndarray,
    max_iterations: int = 20000,
    tolerance: float = 1e-9,
    reference_state: int = 0,
) -> MDPSolution:
    """Relative value iteration for the long-run average cost criterion.

    Requires the MDP to be unichain (assumption B of Theorem 2 ensures this
    for the replication CMDP).  Returns relative values, the optimal policy,
    and the optimal average cost ``rho*``.
    """
    num_actions, num_states = _validate(transition, costs)
    values = np.zeros(num_states)
    average_cost = 0.0
    iteration = 0
    residual = np.inf
    for iteration in range(1, max_iterations + 1):
        q_values = costs + np.einsum("ast,t->as", transition, values)
        new_values = q_values.min(axis=0)
        average_cost = float(new_values[reference_state])
        new_values = new_values - average_cost
        residual = float(np.max(np.abs(new_values - values)))
        values = new_values
        if residual < tolerance:
            break
    q_values = costs + np.einsum("ast,t->as", transition, values)
    policy = q_values.argmin(axis=0)
    return MDPSolution(
        values=values,
        policy=policy,
        iterations=iteration,
        residual=residual,
        average_cost=average_cost,
    )
