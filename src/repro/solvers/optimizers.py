"""Black-box parametric optimizers used by Algorithm 1.

Algorithm 1 reduces Problem 1 to optimizing a ``d``-dimensional threshold
vector ``theta in [0, 1]^d`` against the simulated objective
``J(theta)``.  The paper evaluates four optimizers:

* **CEM** -- the cross-entropy method: sample a population from a Gaussian,
  keep the elite fraction, refit the Gaussian;
* **DE**  -- differential evolution: mutation + crossover over a population;
* **SPSA** -- simultaneous perturbation stochastic approximation: two-sided
  gradient estimates from random +/- perturbations;
* **BO**  -- Bayesian optimization with a Matern-2.5 Gaussian process
  surrogate and a lower-confidence-bound acquisition function.

All optimizers implement :class:`ParametricOptimizer` and operate on a
bounded box ``[0, 1]^d``, which is the threshold space ``Theta`` of
Algorithm 1.  Hyper-parameter defaults follow Appendix E (Table 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

import numpy as np
from scipy import linalg

__all__ = [
    "ObjectiveFunction",
    "OptimizationResult",
    "ParametricOptimizer",
    "CrossEntropyMethod",
    "DifferentialEvolution",
    "SPSA",
    "BayesianOptimization",
    "RandomSearch",
]

ObjectiveFunction = Callable[[np.ndarray], float]


@dataclass
class OptimizationResult:
    """Result of one optimizer run.

    Attributes:
        best_parameters: The best threshold vector found.
        best_value: Estimated objective at the best parameters.
        history: Best-so-far objective after each iteration (convergence
            curve, Fig. 7).
        evaluations: Total number of objective evaluations.
    """

    best_parameters: np.ndarray
    best_value: float
    history: list[float] = field(default_factory=list)
    evaluations: int = 0


class ParametricOptimizer(Protocol):
    """Interface of the ``PO`` argument of Algorithm 1."""

    name: str

    def optimize(
        self,
        objective: ObjectiveFunction,
        dimension: int,
        seed: int | None = None,
    ) -> OptimizationResult:
        """Minimize ``objective`` over ``[0, 1]^dimension``."""
        ...


def _clip_box(theta: np.ndarray) -> np.ndarray:
    return np.clip(theta, 0.0, 1.0)


def _evaluate_population(
    objective: ObjectiveFunction, population: np.ndarray
) -> np.ndarray:
    """Evaluate a ``(K, d)`` candidate population, batched when possible.

    Objectives exposing an ``evaluate_population(thetas)`` method (e.g. the
    batch-engine objective built by
    :func:`~repro.solvers.parametric.solve_recovery_problem`) score the
    whole population in one vectorized simulation; plain callables are
    evaluated candidate by candidate in population order.  Both paths return
    the same values, so optimizer trajectories do not depend on which one
    runs.
    """
    batch = getattr(objective, "evaluate_population", None)
    if batch is not None:
        return np.asarray(batch(np.asarray(population)), dtype=float)
    return np.array([objective(theta) for theta in population], dtype=float)


@dataclass
class CrossEntropyMethod:
    """Cross-entropy method (Rubinstein; Appendix E: K=100, elite fraction 0.15)."""

    population_size: int = 100
    elite_fraction: float = 0.15
    iterations: int = 30
    initial_std: float = 0.3
    min_std: float = 0.02
    name: str = "cem"

    def optimize(
        self, objective: ObjectiveFunction, dimension: int, seed: int | None = None
    ) -> OptimizationResult:
        rng = np.random.default_rng(seed)
        mean = np.full(dimension, 0.5)
        std = np.full(dimension, self.initial_std)
        num_elite = max(int(self.population_size * self.elite_fraction), 2)
        best_theta = mean.copy()
        best_value = objective(best_theta)
        evaluations = 1
        history = [best_value]
        for _ in range(self.iterations):
            population = _clip_box(
                rng.normal(mean, std, size=(self.population_size, dimension))
            )
            values = _evaluate_population(objective, population)
            evaluations += self.population_size
            order = np.argsort(values)
            elites = population[order[:num_elite]]
            mean = elites.mean(axis=0)
            std = np.maximum(elites.std(axis=0), self.min_std)
            if values[order[0]] < best_value:
                best_value = float(values[order[0]])
                best_theta = population[order[0]].copy()
            history.append(best_value)
        return OptimizationResult(best_theta, best_value, history, evaluations)


@dataclass
class DifferentialEvolution:
    """Differential evolution (Storn & Price; Appendix E: K=10, F=0.2, CR=0.7)."""

    population_size: int = 10
    mutation: float = 0.2
    recombination: float = 0.7
    iterations: int = 50
    name: str = "de"

    def optimize(
        self, objective: ObjectiveFunction, dimension: int, seed: int | None = None
    ) -> OptimizationResult:
        rng = np.random.default_rng(seed)
        population = rng.uniform(0.0, 1.0, size=(self.population_size, dimension))
        values = _evaluate_population(objective, population)
        evaluations = self.population_size
        best_index = int(np.argmin(values))
        best_theta = population[best_index].copy()
        best_value = float(values[best_index])
        history = [best_value]
        for _ in range(self.iterations):
            for i in range(self.population_size):
                candidates = [j for j in range(self.population_size) if j != i]
                a, b, c = rng.choice(candidates, size=3, replace=False)
                mutant = _clip_box(
                    population[a] + self.mutation * (population[b] - population[c])
                )
                crossover_mask = rng.random(dimension) < self.recombination
                # Guarantee at least one coordinate from the mutant.
                crossover_mask[rng.integers(dimension)] = True
                trial = np.where(crossover_mask, mutant, population[i])
                trial_value = objective(trial)
                evaluations += 1
                if trial_value <= values[i]:
                    population[i] = trial
                    values[i] = trial_value
                    if trial_value < best_value:
                        best_value = float(trial_value)
                        best_theta = trial.copy()
            history.append(best_value)
        return OptimizationResult(best_theta, best_value, history, evaluations)


@dataclass
class SPSA:
    """Simultaneous perturbation stochastic approximation (Spall).

    Gain sequences follow the standard recipe ``a_k = a / (k + A)^alpha`` and
    ``c_k = c / k^gamma``; defaults mirror Table 8 (``c=10`` is scaled to the
    unit box).
    """

    iterations: int = 50
    a: float = 0.2
    c: float = 0.1
    big_a: float = 10.0
    alpha: float = 0.602
    gamma: float = 0.101
    name: str = "spsa"

    def optimize(
        self, objective: ObjectiveFunction, dimension: int, seed: int | None = None
    ) -> OptimizationResult:
        rng = np.random.default_rng(seed)
        theta = np.full(dimension, 0.5)
        best_theta = theta.copy()
        best_value = objective(theta)
        evaluations = 1
        history = [best_value]
        for k in range(1, self.iterations + 1):
            a_k = self.a / (k + self.big_a) ** self.alpha
            c_k = self.c / k ** self.gamma
            delta = rng.choice([-1.0, 1.0], size=dimension)
            theta_plus = _clip_box(theta + c_k * delta)
            theta_minus = _clip_box(theta - c_k * delta)
            # The two perturbed points are independent: score them as one
            # two-candidate population so batch objectives simulate them in a
            # single pass (plain callables are evaluated in the same order).
            value_plus, value_minus = _evaluate_population(
                objective, np.stack([theta_plus, theta_minus])
            )
            evaluations += 2
            gradient = (value_plus - value_minus) / (2.0 * c_k * delta)
            theta = _clip_box(theta - a_k * gradient)
            current_value = objective(theta)
            evaluations += 1
            if current_value < best_value:
                best_value = float(current_value)
                best_theta = theta.copy()
            history.append(best_value)
        return OptimizationResult(best_theta, best_value, history, evaluations)


@dataclass
class BayesianOptimization:
    """Bayesian optimization with a Matern-2.5 GP and an LCB acquisition.

    A lightweight NumPy implementation: exact GP regression with a fixed
    length-scale Matern kernel, candidate points sampled uniformly, and the
    lower-confidence-bound acquisition ``mu(x) - beta * sigma(x)`` of
    Srinivas et al. (Appendix E: ``beta = 2.5``).
    """

    iterations: int = 30
    initial_samples: int = 8
    candidate_pool: int = 256
    beta: float = 2.5
    length_scale: float = 0.25
    noise: float = 1e-3
    name: str = "bo"

    def _matern_kernel(self, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        distances = np.sqrt(
            np.maximum(
                np.sum(x1 ** 2, axis=1)[:, None]
                + np.sum(x2 ** 2, axis=1)[None, :]
                - 2.0 * x1 @ x2.T,
                0.0,
            )
        )
        scaled = np.sqrt(5.0) * distances / self.length_scale
        return (1.0 + scaled + scaled ** 2 / 3.0) * np.exp(-scaled)

    def optimize(
        self, objective: ObjectiveFunction, dimension: int, seed: int | None = None
    ) -> OptimizationResult:
        rng = np.random.default_rng(seed)
        observed_x = rng.uniform(0.0, 1.0, size=(self.initial_samples, dimension))
        observed_y = _evaluate_population(objective, observed_x)
        evaluations = self.initial_samples
        best_index = int(np.argmin(observed_y))
        best_theta = observed_x[best_index].copy()
        best_value = float(observed_y[best_index])
        history = [best_value]

        for _ in range(self.iterations):
            kernel = self._matern_kernel(observed_x, observed_x)
            kernel[np.diag_indices_from(kernel)] += self.noise
            try:
                cho = linalg.cho_factor(kernel, lower=True)
            except linalg.LinAlgError:
                kernel[np.diag_indices_from(kernel)] += 1e-6
                cho = linalg.cho_factor(kernel, lower=True)
            y_mean = observed_y.mean()
            alpha_weights = linalg.cho_solve(cho, observed_y - y_mean)

            candidates = rng.uniform(0.0, 1.0, size=(self.candidate_pool, dimension))
            cross = self._matern_kernel(candidates, observed_x)
            mu = y_mean + cross @ alpha_weights
            v = linalg.cho_solve(cho, cross.T)
            var = np.maximum(1.0 - np.sum(cross * v.T, axis=1), 1e-12)
            acquisition = mu - self.beta * np.sqrt(var)
            next_x = candidates[int(np.argmin(acquisition))]

            next_y = objective(next_x)
            evaluations += 1
            observed_x = np.vstack([observed_x, next_x])
            observed_y = np.append(observed_y, next_y)
            if next_y < best_value:
                best_value = float(next_y)
                best_theta = next_x.copy()
            history.append(best_value)

        return OptimizationResult(best_theta, best_value, history, evaluations)


@dataclass
class RandomSearch:
    """Uniform random search; a sanity baseline and a fast fallback for tests."""

    iterations: int = 100
    name: str = "random"

    def optimize(
        self, objective: ObjectiveFunction, dimension: int, seed: int | None = None
    ) -> OptimizationResult:
        rng = np.random.default_rng(seed)
        # Candidates are independent of past evaluations, so they can be
        # drawn up front (the same draws as the sequential loop) and scored
        # as one population; the best-so-far fold preserves the original
        # history semantics.
        candidates = rng.uniform(0.0, 1.0, size=(self.iterations + 1, dimension))
        values = _evaluate_population(objective, candidates)
        evaluations = self.iterations + 1
        best_theta = candidates[0]
        best_value = float(values[0])
        history = [best_value]
        for theta, value in zip(candidates[1:], values[1:]):
            if value < best_value:
                best_value = float(value)
                best_theta = theta
            history.append(best_value)
        return OptimizationResult(best_theta, best_value, history, evaluations)
