"""Algorithm 2: the occupancy-measure linear program for the replication CMDP.

Problem 2 is a constrained MDP: minimize the long-run average number of
nodes subject to the availability constraint ``T^(A) >= epsilon_A``.  The
paper solves it exactly with the classical linear programming formulation of
average-cost CMDPs (Altman, Thm. 4.3): optimize over the stationary
state-action occupancy measure ``rho(s, a)`` subject to

* non-negativity (14b),
* normalization ``sum rho = 1`` (14c),
* stationarity ``sum_a rho(s, a) = sum_{s', a} rho(s', a) f_S(s | s', a)`` (14d),
* the availability constraint ``sum_{s,a} rho(s, a) [s >= f + 1] >= epsilon_A`` (14e),

and recover the randomized strategy ``pi*(a | s) = rho*(s, a) / sum_a rho*(s, a)``.

This module implements Algorithm 2 on top of :func:`scipy.optimize.linprog`
(the HiGHS solver plays the role of the paper's CBC), plus the Lagrangian
relaxation route of Theorem 2, which yields the two threshold strategies
``pi_{lambda_1}`` and ``pi_{lambda_2}`` and the mixing coefficient ``kappa``.

Class-aware extension (heterogeneous fleets).  On a Table 6 style mixed
fleet the add action is class-indexed: the CMDP action space becomes
``{wait, add(c_1), ..., add(c_C)}`` over a
:class:`~repro.core.system_model.ClassAwareSystemModel` whose per-class add
kernels weight the Eq. 8 shift by each class's fresh-node survival.  Both
solution routes generalize:
:func:`solve_class_aware_replication_lp` runs the same occupancy-measure LP
over ``1 + C`` actions and recovers a
:class:`~repro.core.strategies.ClassTabularReplicationStrategy`;
:func:`solve_class_aware_replication_lagrangian` runs the Theorem 2
bisection with ``(1 + C)``-action relative value iteration and mixes the
two bracketing deterministic policies.  With a single class the LP matrices
and the relaxed MDPs are float-for-float the classless ones, so both
solvers reduce **bit for bit** to :func:`solve_replication_lp` /
:func:`solve_replication_lagrangian` (pinned in
``tests/test_class_aware_cmdp.py``) — growing a homogeneous fleet's action
space never changes its solution.

**Layer contract.**  This module is pure planning: it consumes a fitted
:class:`~repro.core.system_model.SystemModel` (no simulation, no RNG except
HiGHS-internal pivoting, which is deterministic) and returns strategy
objects plus stationary-analysis diagnostics.  Monte-Carlo counterparts of
the evaluation live in :mod:`repro.control`
(:func:`~repro.control.evaluate_replication_closed_loop`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from ..core.strategies import (
    ClassTabularReplicationStrategy,
    MixedReplicationStrategy,
    ReplicationThresholdStrategy,
    TabularReplicationStrategy,
)
from ..core.system_model import ClassAwareSystemModel, SystemModel
from .mdp import relative_value_iteration

__all__ = [
    "CMDPSolution",
    "solve_replication_lp",
    "LagrangianSolution",
    "solve_replication_lagrangian",
    "ClassAwareCMDPSolution",
    "solve_class_aware_replication_lp",
    "ClassAwareLagrangianSolution",
    "solve_class_aware_replication_lagrangian",
    "policy_stationary_distribution",
    "evaluate_replication_strategy",
    "evaluate_class_aware_strategy",
]


@dataclass
class CMDPSolution:
    """Solution of the occupancy-measure LP (Algorithm 2).

    Attributes:
        strategy: The randomized replication strategy ``pi*(a | s)``.
        occupancy: The optimal occupancy measure ``rho*(s, a)``.
        expected_cost: Optimal objective ``J`` (average number of nodes).
        availability: Achieved average availability under ``pi*``.
        feasible: Whether the LP was feasible (assumption A of Theorem 2).
    """

    strategy: TabularReplicationStrategy
    occupancy: np.ndarray
    expected_cost: float
    availability: float
    feasible: bool


def _solve_occupancy_lp(
    model: SystemModel, num_actions: int
) -> tuple[np.ndarray, float, float, bool]:
    """The Eq. 14 occupancy-measure LP over an arbitrary action count.

    Shared core of the classless and class-aware Algorithm 2: with
    ``num_actions == 2`` it performs float-for-float the arithmetic the
    classless solver always performed, which is what keeps the class-aware
    route bit-identical on single-class models.

    Returns ``(occupancy, expected_cost, availability, feasible)``.
    """
    num_states = model.num_states
    num_vars = num_states * num_actions

    def var(s: int, a: int) -> int:
        return s * num_actions + a

    # Objective (14a): minimize sum_s sum_a cost(s, a) * rho(s, a).
    objective = np.zeros(num_vars)
    for s in range(num_states):
        for a in range(num_actions):
            objective[var(s, a)] = model.cost(s, a)

    # Equality constraints: normalization (14c) and stationarity (14d).
    equality_rows: list[np.ndarray] = []
    equality_rhs: list[float] = []

    normalization = np.ones(num_vars)
    equality_rows.append(normalization)
    equality_rhs.append(1.0)

    for s in range(num_states):
        row = np.zeros(num_vars)
        for a in range(num_actions):
            row[var(s, a)] += 1.0
        for s_prev in range(num_states):
            for a in range(num_actions):
                row[var(s_prev, a)] -= model.probability(s, s_prev, a)
        equality_rows.append(row)
        equality_rhs.append(0.0)

    # Inequality constraint (14e): availability >= epsilon_A, expressed as
    # -sum rho(s,a) [s >= f+1] <= -epsilon_A for linprog's A_ub x <= b_ub.
    availability_row = np.zeros(num_vars)
    for s in range(num_states):
        indicator = model.availability_indicator(s)
        for a in range(num_actions):
            availability_row[var(s, a)] = -indicator
    inequality_matrix = availability_row.reshape(1, -1)
    inequality_rhs = np.array([-model.epsilon_a])

    result = optimize.linprog(
        c=objective,
        A_ub=inequality_matrix,
        b_ub=inequality_rhs,
        A_eq=np.vstack(equality_rows),
        b_eq=np.array(equality_rhs),
        bounds=[(0.0, None)] * num_vars,
        method="highs",
    )

    if not result.success:
        return np.zeros((num_states, num_actions)), float("inf"), 0.0, False

    occupancy = np.asarray(result.x).reshape(num_states, num_actions)
    occupancy = np.clip(occupancy, 0.0, None)
    expected_cost = float(objective @ result.x)
    availability = float(
        sum(
            occupancy[s, a] * model.availability_indicator(s)
            for s in range(num_states)
            for a in range(num_actions)
        )
    )
    return occupancy, expected_cost, availability, True


def _require_classless(model: SystemModel, solver: str) -> None:
    """Reject class-aware models: solving only their first add action would
    silently answer a truncated problem."""
    if model.num_actions != 2:
        raise ValueError(
            f"{solver} handles the classless two-action CMDP, but the model "
            f"has {model.num_actions} actions; use the class-aware "
            "counterpart (solve_class_aware_replication_lp / "
            "solve_class_aware_replication_lagrangian / "
            "evaluate_class_aware_strategy)"
        )


def solve_replication_lp(model: SystemModel) -> CMDPSolution:
    """Solve Problem 2 exactly via the LP of Equation (14).

    Decision variables are ``rho(s, a)`` flattened in state-major order.
    """
    _require_classless(model, "solve_replication_lp")
    num_states = model.num_states
    occupancy, expected_cost, availability, feasible = _solve_occupancy_lp(
        model, num_actions=2
    )

    if not feasible:
        empty = TabularReplicationStrategy({}, default_add_probability=1.0)
        return CMDPSolution(
            strategy=empty,
            occupancy=occupancy,
            expected_cost=expected_cost,
            availability=availability,
            feasible=False,
        )

    add_probabilities: dict[int, float] = {}
    for s in range(num_states):
        mass = occupancy[s].sum()
        if mass > 1e-12:
            add_probabilities[s] = float(occupancy[s, 1] / mass)
    strategy = TabularReplicationStrategy(
        add_probabilities=add_probabilities,
        # States never visited under rho*: act conservatively and add a node,
        # which can only help availability.
        default_add_probability=1.0,
    )
    return CMDPSolution(
        strategy=strategy,
        occupancy=occupancy,
        expected_cost=expected_cost,
        availability=availability,
        feasible=True,
    )


@dataclass
class ClassAwareCMDPSolution:
    """Solution of the class-indexed occupancy-measure LP.

    Attributes:
        strategy: The randomized class-indexed strategy ``pi*(a | s)``.
        occupancy: The optimal occupancy measure, shape ``(S, 1 + C)``.
        expected_cost: Optimal objective ``J`` (average node count plus any
            per-class add costs).
        availability: Achieved average availability under ``pi*``.
        feasible: Whether the LP was feasible.
    """

    strategy: ClassTabularReplicationStrategy
    occupancy: np.ndarray
    expected_cost: float
    availability: float
    feasible: bool


def solve_class_aware_replication_lp(
    model: ClassAwareSystemModel,
) -> ClassAwareCMDPSolution:
    """Class-indexed Algorithm 2: the Eq. 14 LP over ``{wait, add(c)}``.

    Identical to :func:`solve_replication_lp` except that the action
    dimension enumerates the container classes; on a single-class model the
    LP matrices coincide bit for bit with the classless ones, so the
    occupancy measure, cost and availability are exactly the classless
    solution (the homogeneous-reduction regression).
    """
    num_states = model.num_states
    num_actions = model.num_actions
    occupancy, expected_cost, availability, feasible = _solve_occupancy_lp(
        model, num_actions=num_actions
    )

    probabilities = np.zeros((num_states, num_actions))
    # States never visited under rho*: act conservatively and add a node
    # (uniformly over the classes), which can only help availability.
    probabilities[:, 1:] = 1.0 / (num_actions - 1)
    if feasible:
        for s in range(num_states):
            mass = occupancy[s].sum()
            if mass > 1e-12:
                probabilities[s] = occupancy[s] / mass
    strategy = ClassTabularReplicationStrategy(
        class_names=model.class_names, probabilities=probabilities
    )
    return ClassAwareCMDPSolution(
        strategy=strategy,
        occupancy=occupancy,
        expected_cost=expected_cost,
        availability=availability,
        feasible=feasible,
    )


# ---------------------------------------------------------------------------
# Lagrangian relaxation route (Theorem 2)
# ---------------------------------------------------------------------------
@dataclass
class LagrangianSolution:
    """Result of the Lagrangian relaxation of Problem 2 (Theorem 2).

    Attributes:
        strategy: The mixed threshold strategy ``kappa pi_1 + (1-kappa) pi_2``.
        threshold_low: Threshold ``beta_1`` of the low-multiplier policy.
        threshold_high: Threshold ``beta_2`` of the high-multiplier policy.
        kappa: Mixing coefficient.
        lambda_low: Lagrange multiplier of the first policy.
        lambda_high: Lagrange multiplier of the second policy.
    """

    strategy: MixedReplicationStrategy
    threshold_low: int
    threshold_high: int
    kappa: float
    lambda_low: float
    lambda_high: float


def _lagrangian_mdp(model: SystemModel, lam: float) -> tuple[np.ndarray, np.ndarray]:
    """Transition and cost arrays of the Lagrangian-relaxed MDP (Appendix D)."""
    num_states = model.num_states
    costs = np.zeros((2, num_states))
    for a in (0, 1):
        for s in range(num_states):
            penalty = lam * (1.0 - model.availability_indicator(s))
            costs[a, s] = model.cost(s, a) + penalty
    return model.transition, costs


def _threshold_of_policy(policy: np.ndarray) -> int:
    """Largest state in which the policy adds a node; -1 when it never adds."""
    add_states = np.nonzero(policy == 1)[0]
    if add_states.size == 0:
        return -1
    return int(add_states.max())


def _policy_availability(model: SystemModel, policy: np.ndarray) -> float:
    """Average availability of a deterministic policy via its stationary distribution."""
    distribution = policy_stationary_distribution(model, policy)
    return float(
        sum(distribution[s] * model.availability_indicator(s) for s in range(model.num_states))
    )


def policy_stationary_distribution(model: SystemModel, policy: np.ndarray) -> np.ndarray:
    """Stationary distribution of the Markov chain induced by a policy.

    Solved as the left eigenvector problem via a least-squares linear
    system; assumes the chain is unichain (assumption B of Theorem 2).
    Edge cases are handled deterministically rather than silently:

    * an *absorbing* kernel concentrates the distribution on its absorbing
      class (the least-squares system is consistent there);
    * a *degenerate* kernel with several closed classes (e.g. the identity
      chain, where every distribution is stationary) returns the
      minimum-norm stationary distribution the least-squares solve picks;
    * invalid policies (entries outside the action set) and non-finite
      solves raise instead of propagating NaNs.
    """
    num_states = model.num_states
    policy = np.asarray(policy, dtype=int)
    if policy.shape != (num_states,):
        raise ValueError(f"policy must have shape ({num_states},), got {policy.shape}")
    if np.any((policy < 0) | (policy >= model.transition.shape[0])):
        raise ValueError("policy entries must index a valid action")
    chain = np.array([model.transition[policy[s], s] for s in range(num_states)])
    # Solve pi (P - I) = 0 with sum(pi) = 1.
    a_matrix = np.vstack([chain.T - np.eye(num_states), np.ones(num_states)])
    b_vector = np.zeros(num_states + 1)
    b_vector[-1] = 1.0
    distribution, *_ = np.linalg.lstsq(a_matrix, b_vector, rcond=None)
    if not np.all(np.isfinite(distribution)):
        raise RuntimeError("stationary-distribution solve produced non-finite values")
    distribution = np.clip(distribution, 0.0, None)
    total = distribution.sum()
    if total <= 0:
        raise RuntimeError("failed to compute a stationary distribution")
    return distribution / total


def solve_replication_lagrangian(
    model: SystemModel,
    lambda_max: float = 1000.0,
    tolerance: float = 1e-4,
    max_bisections: int = 60,
) -> LagrangianSolution:
    """Solve Problem 2 via Lagrangian relaxation and bisection on ``lambda``.

    Following Appendix D, for each multiplier ``lambda`` the relaxed MDP has
    an optimal threshold policy.  Availability is monotone in ``lambda``, so
    bisection finds the two adjacent multipliers ``lambda_1 < lambda_2``
    whose policies bracket the availability constraint; mixing them with the
    coefficient ``kappa`` that meets the constraint with equality yields the
    Theorem 2 strategy.
    """
    _require_classless(model, "solve_replication_lagrangian")

    def solve_for(lam: float) -> tuple[np.ndarray, float]:
        transition, costs = _lagrangian_mdp(model, lam)
        solution = relative_value_iteration(transition, costs, max_iterations=5000, tolerance=1e-8)
        availability = _policy_availability(model, solution.policy)
        return solution.policy, availability

    policy_low, availability_low = solve_for(0.0)
    if availability_low >= model.epsilon_a:
        threshold = _threshold_of_policy(policy_low)
        base = ReplicationThresholdStrategy(beta=threshold)
        return LagrangianSolution(
            strategy=MixedReplicationStrategy(base, base, kappa=1.0),
            threshold_low=threshold,
            threshold_high=threshold,
            kappa=1.0,
            lambda_low=0.0,
            lambda_high=0.0,
        )

    policy_high, availability_high = solve_for(lambda_max)
    if availability_high < model.epsilon_a:
        raise ValueError(
            "availability constraint infeasible even with the maximum Lagrange "
            "multiplier; assumption A of Theorem 2 is violated"
        )

    low, high = 0.0, lambda_max
    for _ in range(max_bisections):
        mid = 0.5 * (low + high)
        policy_mid, availability_mid = solve_for(mid)
        if availability_mid >= model.epsilon_a:
            high, policy_high, availability_high = mid, policy_mid, availability_mid
        else:
            low, policy_low, availability_low = mid, policy_mid, availability_mid
        if high - low < tolerance:
            break

    threshold_low = _threshold_of_policy(policy_low)
    threshold_high = _threshold_of_policy(policy_high)
    strategy_low = ReplicationThresholdStrategy(beta=threshold_low)
    strategy_high = ReplicationThresholdStrategy(beta=threshold_high)

    # Mixing coefficient: meet the availability constraint with equality.
    if abs(availability_high - availability_low) < 1e-12:
        kappa = 0.0
    else:
        kappa = (availability_high - model.epsilon_a) / (availability_high - availability_low)
        kappa = float(np.clip(kappa, 0.0, 1.0))

    strategy = MixedReplicationStrategy(strategy_low, strategy_high, kappa=kappa)
    return LagrangianSolution(
        strategy=strategy,
        threshold_low=threshold_low,
        threshold_high=threshold_high,
        kappa=kappa,
        lambda_low=low,
        lambda_high=high,
    )


@dataclass
class ClassAwareLagrangianSolution:
    """Result of the class-indexed Lagrangian relaxation (Theorem 2 route).

    Attributes:
        strategy: The mixture ``kappa pi_1 + (1 - kappa) pi_2`` of the two
            bracketing deterministic class-indexed policies, as one
            probability table.
        policy_low: Deterministic policy of the low-multiplier MDP
            (action indices, 0 = wait, ``c + 1`` = add class ``c``).
        policy_high: Deterministic policy of the high-multiplier MDP.
        kappa: Mixing coefficient.
        lambda_low: Lagrange multiplier of the first policy.
        lambda_high: Lagrange multiplier of the second policy.
    """

    strategy: ClassTabularReplicationStrategy
    policy_low: np.ndarray
    policy_high: np.ndarray
    kappa: float
    lambda_low: float
    lambda_high: float


def _complete_threshold_policy(policy: np.ndarray) -> np.ndarray:
    """Impose the Theorem 2 order-up-to structure on a VI policy.

    Value iteration is indifferent at states that are unreachable under the
    relaxed-optimal policy, so the raw policy may wait below its largest
    add state.  Theorem 2 guarantees a threshold-structured optimum exists;
    this completes the policy to it by assigning every waiting state below
    the threshold the add action of the nearest add state at or above it
    (in the classless case this is exactly the
    ``ReplicationThresholdStrategy(beta)`` coercion of
    :func:`_threshold_of_policy`, which keeps the single-class reduction
    bit-for-bit).
    """
    policy = np.asarray(policy, dtype=int)
    add_states = np.nonzero(policy > 0)[0]
    if add_states.size == 0:
        return policy.copy()
    beta = int(add_states.max())
    completed = policy.copy()
    for s in range(beta + 1):
        if completed[s] == 0:
            nearest = int(add_states[add_states >= s].min())
            completed[s] = policy[nearest]
    return completed


def _mix_deterministic_policies(
    model: ClassAwareSystemModel,
    policy_low: np.ndarray,
    policy_high: np.ndarray,
    kappa: float,
) -> ClassTabularReplicationStrategy:
    """Probability table of ``kappa pi_low + (1 - kappa) pi_high``."""
    num_states, num_actions = model.num_states, model.num_actions
    probabilities = np.zeros((num_states, num_actions))
    for s in range(num_states):
        probabilities[s, policy_low[s]] += kappa
        probabilities[s, policy_high[s]] += 1.0 - kappa
    return ClassTabularReplicationStrategy(
        class_names=model.class_names, probabilities=probabilities
    )


def solve_class_aware_replication_lagrangian(
    model: ClassAwareSystemModel,
    lambda_max: float = 1000.0,
    tolerance: float = 1e-4,
    max_bisections: int = 60,
) -> ClassAwareLagrangianSolution:
    """Theorem 2 route over the class-indexed action space.

    For each multiplier ``lambda`` the relaxed MDP (costs
    ``cost(s, a) + lambda [s unavailable]``) is solved with relative value
    iteration over all ``1 + C`` actions; availability is monotone in
    ``lambda``, so the same bisection as the classless
    :func:`solve_replication_lagrangian` brackets the constraint and the
    two bracketing deterministic policies are mixed with the coefficient
    ``kappa`` that meets it with equality.  On a single-class model the
    relaxed MDPs are float-for-float the classless ones, so the policies,
    multipliers and ``kappa`` reduce bit for bit.
    """

    def solve_for(lam: float) -> tuple[np.ndarray, float]:
        num_states = model.num_states
        costs = np.zeros((model.num_actions, num_states))
        for a in range(model.num_actions):
            for s in range(num_states):
                penalty = lam * (1.0 - model.availability_indicator(s))
                costs[a, s] = model.cost(s, a) + penalty
        solution = relative_value_iteration(
            model.transition, costs, max_iterations=5000, tolerance=1e-8
        )
        availability = _policy_availability(model, solution.policy)
        return solution.policy, availability

    policy_low, availability_low = solve_for(0.0)
    if availability_low >= model.epsilon_a:
        completed = _complete_threshold_policy(policy_low)
        return ClassAwareLagrangianSolution(
            strategy=_mix_deterministic_policies(model, completed, completed, 1.0),
            policy_low=completed,
            policy_high=completed,
            kappa=1.0,
            lambda_low=0.0,
            lambda_high=0.0,
        )

    policy_high, availability_high = solve_for(lambda_max)
    if availability_high < model.epsilon_a:
        raise ValueError(
            "availability constraint infeasible even with the maximum Lagrange "
            "multiplier; assumption A of Theorem 2 is violated"
        )

    low, high = 0.0, lambda_max
    for _ in range(max_bisections):
        mid = 0.5 * (low + high)
        policy_mid, availability_mid = solve_for(mid)
        if availability_mid >= model.epsilon_a:
            high, policy_high, availability_high = mid, policy_mid, availability_mid
        else:
            low, policy_low, availability_low = mid, policy_mid, availability_mid
        if high - low < tolerance:
            break

    if abs(availability_high - availability_low) < 1e-12:
        kappa = 0.0
    else:
        kappa = (availability_high - model.epsilon_a) / (
            availability_high - availability_low
        )
        kappa = float(np.clip(kappa, 0.0, 1.0))

    # The bisection and kappa use the raw VI policies' availabilities (like
    # the classless route); the returned strategy mixes their Theorem 2
    # threshold completions.
    policy_low = _complete_threshold_policy(policy_low)
    policy_high = _complete_threshold_policy(policy_high)
    return ClassAwareLagrangianSolution(
        strategy=_mix_deterministic_policies(model, policy_low, policy_high, kappa),
        policy_low=policy_low,
        policy_high=policy_high,
        kappa=kappa,
        lambda_low=low,
        lambda_high=high,
    )


def evaluate_class_aware_strategy(
    model: ClassAwareSystemModel,
    probabilities: np.ndarray,
) -> tuple[float, float]:
    """Expected cost and availability of a class-indexed strategy table.

    The class-aware counterpart of :func:`evaluate_replication_strategy`:
    builds the chain induced by mixing all ``1 + C`` action kernels with
    the per-state action probabilities, computes its stationary
    distribution, and returns ``(J, T^(A))``.
    """
    probabilities = np.asarray(probabilities, dtype=float)
    num_states, num_actions = model.num_states, model.num_actions
    if probabilities.shape != (num_states, num_actions):
        raise ValueError(
            f"probabilities must have shape ({num_states}, {num_actions}), "
            f"got {probabilities.shape}"
        )
    chain = np.einsum("sa,ast->st", probabilities, model.transition)
    a_matrix = np.vstack([chain.T - np.eye(num_states), np.ones(num_states)])
    b_vector = np.zeros(num_states + 1)
    b_vector[-1] = 1.0
    distribution, *_ = np.linalg.lstsq(a_matrix, b_vector, rcond=None)
    distribution = np.clip(distribution, 0.0, None)
    distribution /= distribution.sum()
    cost = float(
        sum(
            distribution[s] * probabilities[s, a] * model.cost(s, a)
            for s in range(num_states)
            for a in range(num_actions)
        )
    )
    availability = float(
        sum(distribution[s] * model.availability_indicator(s) for s in range(num_states))
    )
    return cost, availability


def evaluate_replication_strategy(
    model: SystemModel,
    add_probabilities: np.ndarray,
) -> tuple[float, float]:
    """Expected cost and availability of a randomized strategy ``pi(1 | s)``.

    Builds the induced Markov chain, computes its stationary distribution,
    and returns ``(J, T^(A))``.  This is the *model-side* evaluation
    (stationary analysis of ``f_S``); its Monte-Carlo counterpart on the
    batched two-level control plane is
    :func:`repro.control.evaluate_replication_closed_loop`, which measures
    the same pair against the actual closed-loop simulation dynamics.
    """
    _require_classless(model, "evaluate_replication_strategy")
    add_probabilities = np.asarray(add_probabilities, dtype=float)
    num_states = model.num_states
    if add_probabilities.shape != (num_states,):
        raise ValueError("add_probabilities must have one entry per state")
    chain = np.zeros((num_states, num_states))
    for s in range(num_states):
        p_add = float(np.clip(add_probabilities[s], 0.0, 1.0))
        chain[s] = (1.0 - p_add) * model.transition[0, s] + p_add * model.transition[1, s]
    a_matrix = np.vstack([chain.T - np.eye(num_states), np.ones(num_states)])
    b_vector = np.zeros(num_states + 1)
    b_vector[-1] = 1.0
    distribution, *_ = np.linalg.lstsq(a_matrix, b_vector, rcond=None)
    distribution = np.clip(distribution, 0.0, None)
    distribution /= distribution.sum()
    cost = float(sum(distribution[s] * model.cost(s) for s in range(num_states)))
    availability = float(
        sum(distribution[s] * model.availability_indicator(s) for s in range(num_states))
    )
    return cost, availability
