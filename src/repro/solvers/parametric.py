"""Algorithm 1: parametric optimization of threshold recovery strategies.

Theorem 1 guarantees that an optimal recovery strategy is a threshold
strategy; Algorithm 1 exploits this by searching directly over the space of
threshold vectors ``Theta = [0, 1]^d`` with ``d = Delta_R - 1`` (or ``d = 1``
when ``Delta_R = inf``), estimating the objective ``J_i(theta)`` by
simulation, and delegating the search to a black-box parametric optimizer
(CEM, DE, SPSA, BO, ...).

:func:`solve_recovery_problem` is the entry point; it returns both the
fitted :class:`~repro.core.strategies.MultiThresholdStrategy` and the
optimizer diagnostics used to reproduce Table 2 and Figures 7-8.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from ..core.node_model import NodeParameters
from ..core.observation import ObservationModel
from ..core.strategies import MultiThresholdStrategy
from .evaluation import RecoverySimulator
from .optimizers import OptimizationResult, ParametricOptimizer

__all__ = ["RecoverySolution", "threshold_dimension", "solve_recovery_problem"]


def threshold_dimension(delta_r: float) -> int:
    """Dimension of the threshold parameter vector (Algorithm 1, line 4)."""
    if delta_r is math.inf or delta_r == math.inf:
        return 1
    if delta_r < 1:
        raise ValueError("delta_r must be >= 1 or inf")
    return max(int(delta_r) - 1, 1)


@dataclass
class RecoverySolution:
    """Output of Algorithm 1.

    Attributes:
        strategy: The fitted multi-threshold recovery strategy
            ``\\hat{pi}_{i,theta,t}``.
        estimated_cost: Monte-Carlo estimate of ``J_i`` under the strategy.
        optimizer_result: Raw optimizer diagnostics (history, evaluations).
        wall_clock_seconds: Time spent in the optimizer (the "Time" column of
            Table 2).
        optimizer_name: Name of the parametric optimizer used.
    """

    strategy: MultiThresholdStrategy
    estimated_cost: float
    optimizer_result: OptimizationResult
    wall_clock_seconds: float
    optimizer_name: str


def solve_recovery_problem(
    params: NodeParameters,
    observation_model: ObservationModel,
    optimizer: ParametricOptimizer,
    horizon: int = 200,
    episodes_per_evaluation: int = 10,
    final_evaluation_episodes: int = 50,
    seed: int | None = None,
) -> RecoverySolution:
    """Run Algorithm 1 for one node.

    Args:
        params: Node model parameters (including ``Delta_R`` and ``eta``).
        observation_model: The intrusion detection model ``Z`` or ``\\hat{Z}``.
        optimizer: A parametric optimizer implementing
            :class:`~repro.solvers.optimizers.ParametricOptimizer` (the ``PO``
            input of Algorithm 1).
        horizon: Episode length used by the Monte-Carlo cost estimator.
        episodes_per_evaluation: Episodes per objective evaluation during the
            search (Appendix E uses ``M = 50``; smaller values trade accuracy
            for speed).
        final_evaluation_episodes: Episodes used to score the returned
            strategy.
        seed: Seed controlling both the optimizer and the simulator.

    Returns:
        The fitted strategy and diagnostics.
    """
    dimension = threshold_dimension(params.delta_r)
    simulator = RecoverySimulator(params, observation_model, horizon=horizon)
    seed_sequence = np.random.SeedSequence(seed)
    evaluation_seed = int(seed_sequence.generate_state(1)[0])

    evaluation_counter = 0

    def objective(theta: np.ndarray) -> float:
        nonlocal evaluation_counter
        evaluation_counter += 1
        strategy = MultiThresholdStrategy.from_vector(theta, delta_r=params.delta_r)
        # Common random numbers across candidates reduce estimator variance.
        return simulator.estimate_cost(
            strategy, num_episodes=episodes_per_evaluation, seed=evaluation_seed
        )

    start = time.perf_counter()
    result = optimizer.optimize(objective, dimension=dimension, seed=seed)
    elapsed = time.perf_counter() - start

    strategy = MultiThresholdStrategy.from_vector(result.best_parameters, delta_r=params.delta_r)
    estimated_cost = simulator.estimate_cost(
        strategy, num_episodes=final_evaluation_episodes, seed=evaluation_seed + 1
    )
    return RecoverySolution(
        strategy=strategy,
        estimated_cost=estimated_cost,
        optimizer_result=result,
        wall_clock_seconds=elapsed,
        optimizer_name=getattr(optimizer, "name", type(optimizer).__name__.lower()),
    )
