"""Algorithm 1: parametric optimization of threshold recovery strategies.

Theorem 1 guarantees that an optimal recovery strategy is a threshold
strategy; Algorithm 1 exploits this by searching directly over the space of
threshold vectors ``Theta = [0, 1]^d`` with ``d = Delta_R - 1`` (or ``d = 1``
when ``Delta_R = inf``), estimating the objective ``J_i(theta)`` by
simulation, and delegating the search to a black-box parametric optimizer
(CEM, DE, SPSA, BO, ...).

:func:`solve_recovery_problem` is the entry point; it returns both the
fitted :class:`~repro.core.strategies.MultiThresholdStrategy` and the
optimizer diagnostics used to reproduce Table 2 and Figures 7-8.

By default the objective estimator routes through the vectorized batch
engine (:mod:`repro.sim`): a single candidate is simulated as one batch of
episodes, and optimizers that evaluate whole populations (CEM, and the
initial designs of DE/BO/random search) submit all candidates as one ``K x
M`` episode batch with common random numbers.  Because the batch engine is
bit-exact against the scalar simulator, ``batch=True`` changes wall-clock
time only — never the solver's output.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from ..core.node_model import NodeParameters
from ..core.observation import ObservationModel
from ..core.strategies import MultiThresholdStrategy
from .evaluation import RecoverySimulator
from .optimizers import OptimizationResult, ParametricOptimizer

__all__ = ["RecoverySolution", "threshold_dimension", "solve_recovery_problem"]


class _BatchThresholdObjective:
    """Simulated objective ``J(theta)`` backed by the batch engine.

    Implements the plain callable protocol expected by every optimizer plus
    the optional ``evaluate_population`` hook that population-based
    optimizers use to estimate all candidates in one vectorized simulation.
    Both entry points use common random numbers (the same episode seed tree)
    so candidate comparisons are low-variance and identical to the scalar
    estimator's.
    """

    def __init__(self, engine, num_episodes: int, seed: int) -> None:
        self._engine = engine
        self._num_episodes = num_episodes
        self._seed = seed

    def __call__(self, theta: np.ndarray) -> float:
        return float(self.evaluate_population(np.atleast_2d(theta))[0])

    def evaluate_population(self, thetas: np.ndarray) -> np.ndarray:
        thetas = np.atleast_2d(np.asarray(thetas, dtype=float))
        return self._engine.run_threshold_population(
            thetas, num_episodes=self._num_episodes, seed=self._seed
        )


def threshold_dimension(delta_r: float) -> int:
    """Dimension of the threshold parameter vector (Algorithm 1, line 4)."""
    if delta_r is math.inf or delta_r == math.inf:
        return 1
    if delta_r < 1:
        raise ValueError("delta_r must be >= 1 or inf")
    return max(int(delta_r) - 1, 1)


@dataclass
class RecoverySolution:
    """Output of Algorithm 1.

    Attributes:
        strategy: The fitted multi-threshold recovery strategy
            ``\\hat{pi}_{i,theta,t}``.
        estimated_cost: Monte-Carlo estimate of ``J_i`` under the strategy.
        optimizer_result: Raw optimizer diagnostics (history, evaluations).
        wall_clock_seconds: Time spent in the optimizer (the "Time" column of
            Table 2).
        optimizer_name: Name of the parametric optimizer used.
    """

    strategy: MultiThresholdStrategy
    estimated_cost: float
    optimizer_result: OptimizationResult
    wall_clock_seconds: float
    optimizer_name: str


def solve_recovery_problem(
    params: NodeParameters,
    observation_model: ObservationModel,
    optimizer: ParametricOptimizer,
    horizon: int = 200,
    episodes_per_evaluation: int = 10,
    final_evaluation_episodes: int = 50,
    seed: int | None = None,
    batch: bool = True,
) -> RecoverySolution:
    """Run Algorithm 1 for one node.

    Args:
        params: Node model parameters (including ``Delta_R`` and ``eta``).
        observation_model: The intrusion detection model ``Z`` or ``\\hat{Z}``.
        optimizer: A parametric optimizer implementing
            :class:`~repro.solvers.optimizers.ParametricOptimizer` (the ``PO``
            input of Algorithm 1).
        horizon: Episode length used by the Monte-Carlo cost estimator.
        episodes_per_evaluation: Episodes per objective evaluation during the
            search (Appendix E uses ``M = 50``; smaller values trade accuracy
            for speed).
        final_evaluation_episodes: Episodes used to score the returned
            strategy.
        seed: Seed controlling both the optimizer and the simulator.
        batch: Route the objective estimator through the vectorized batch
            engine (:mod:`repro.sim`).  The returned solution is identical
            to ``batch=False`` under the same seed — the batch engine is
            bit-exact against the scalar simulator — only faster.

    Returns:
        The fitted strategy and diagnostics.
    """
    dimension = threshold_dimension(params.delta_r)
    simulator = RecoverySimulator(params, observation_model, horizon=horizon)
    seed_sequence = np.random.SeedSequence(seed)
    evaluation_seed = int(seed_sequence.generate_state(1)[0])

    if batch:
        # Common random numbers across candidates reduce estimator variance;
        # population-based optimizers evaluate all K candidates in one
        # K x M episode batch through `evaluate_population`.
        objective = _BatchThresholdObjective(
            simulator._batch_engine(),
            episodes_per_evaluation,
            evaluation_seed,
        )
    else:

        def objective(theta: np.ndarray) -> float:
            strategy = MultiThresholdStrategy.from_vector(theta, delta_r=params.delta_r)
            # Common random numbers across candidates reduce estimator variance.
            return simulator.estimate_cost(
                strategy, num_episodes=episodes_per_evaluation, seed=evaluation_seed
            )

    start = time.perf_counter()
    result = optimizer.optimize(objective, dimension=dimension, seed=seed)
    elapsed = time.perf_counter() - start

    strategy = MultiThresholdStrategy.from_vector(result.best_parameters, delta_r=params.delta_r)
    estimated_cost = simulator.estimate_cost(
        strategy,
        num_episodes=final_evaluation_episodes,
        seed=evaluation_seed + 1,
        batch=batch,
    )
    return RecoverySolution(
        strategy=strategy,
        estimated_cost=estimated_cost,
        optimizer_result=result,
        wall_clock_seconds=elapsed,
        optimizer_name=getattr(optimizer, "name", type(optimizer).__name__.lower()),
    )
