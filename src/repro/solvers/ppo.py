"""PPO baseline: reinforcement learning on the belief MDP (Table 2).

The paper compares Algorithm 1 against Proximal Policy Optimization, a
reinforcement learning algorithm that does not exploit the threshold
structure of Theorem 1.  This module provides a compact, dependency-free
PPO-clip implementation over the one-dimensional belief state:

* the policy is a small two-layer neural network mapping the belief
  ``b in [0, 1]`` (plus a BTR-clock feature) to the probability of
  recovering;
* a value network with the same architecture provides the baseline for
  generalized advantage estimation (GAE);
* updates use the clipped surrogate objective with entropy regularization
  (Appendix E: clip 0.2, GAE lambda 0.95, entropy coefficient 1e-4).

Rollout collection is vectorized through the environment layer
(:class:`~repro.envs.VectorRecoveryEnv`): all ``B`` episodes of an update
advance in lockstep, so each timestep costs **one** policy forward pass
over a ``(B, 2)`` feature batch instead of ``B`` scalar passes, and the
GAE/returns recursion runs as ``B``-wide array operations over the
``(T, B)`` reward matrix instead of a per-episode reversed Python loop.
The pre-refactor scalar collector is kept (``vectorized=False``) as the
reference implementation; the two are statistically equivalent (they
consume different random streams) and the batched path is benchmarked at
a multiple of the scalar path's speed in ``bench_ppo_rollout_speedup.py``.

The role of PPO in the reproduction is to show (Table 2, Fig. 7) that a
structure-agnostic RL baseline reaches higher cost and/or needs more
compute than the threshold parameterization of Algorithm 1.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from ..core.node_model import NodeAction, NodeParameters
from ..core.observation import ObservationModel
from ..envs.base import DEFAULT_CLOCK_CAP as _CLOCK_CAP
from .evaluation import RecoverySimulator

__all__ = ["PPOConfig", "PPOPolicy", "PPOResult", "train_ppo_recovery"]


def _init_layer(rng: np.random.Generator, fan_in: int, fan_out: int) -> tuple[np.ndarray, np.ndarray]:
    scale = math.sqrt(2.0 / fan_in)
    return rng.normal(0.0, scale, size=(fan_in, fan_out)), np.zeros(fan_out)


def _relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


@dataclass
class PPOConfig:
    """Hyper-parameters of the PPO baseline (defaults follow Appendix E)."""

    hidden_size: int = 64
    learning_rate: float = 3e-3
    clip_epsilon: float = 0.2
    gae_lambda: float = 0.95
    discount: float = 0.99
    entropy_coefficient: float = 1e-4
    epochs_per_update: int = 4
    rollout_episodes: int = 8
    updates: int = 30
    horizon: int = 100


class PPOPolicy:
    """Two-layer policy/value network over the (belief, BTR-clock) features."""

    def __init__(self, config: PPOConfig, rng: np.random.Generator) -> None:
        self.config = config
        hidden = config.hidden_size
        self.w1, self.b1 = _init_layer(rng, 2, hidden)
        self.w2, self.b2 = _init_layer(rng, hidden, 1)
        self.vw1, self.vb1 = _init_layer(rng, 2, hidden)
        self.vw2, self.vb2 = _init_layer(rng, hidden, 1)

    # -- forward passes -----------------------------------------------------------
    def recover_probability(self, features: np.ndarray) -> np.ndarray:
        hidden = _relu(features @ self.w1 + self.b1)
        logits = hidden @ self.w2 + self.b2
        return _sigmoid(logits).reshape(-1)

    def value(self, features: np.ndarray) -> np.ndarray:
        hidden = _relu(features @ self.vw1 + self.vb1)
        return (hidden @ self.vw2 + self.vb2).reshape(-1)

    def action(self, belief: float, time_since_recovery: int = 0) -> NodeAction:
        """RecoveryStrategy-compatible greedy action (used for evaluation)."""
        features = np.array([[belief, min(time_since_recovery, _CLOCK_CAP) / float(_CLOCK_CAP)]])
        prob = float(self.recover_probability(features)[0])
        return NodeAction.RECOVER if prob >= 0.5 else NodeAction.WAIT

    def action_batch(
        self, beliefs: np.ndarray, time_since_recovery: np.ndarray
    ) -> np.ndarray:
        """Vectorized greedy :meth:`action`: boolean recover mask over a batch.

        Makes the trained policy a native
        :class:`~repro.sim.strategies.BatchStrategy`, so it can be evaluated
        by the batch engine and driven through the vectorized environments
        without the element-wise fallback loop.
        """
        features = np.stack(
            [
                np.asarray(beliefs, dtype=float),
                np.minimum(np.asarray(time_since_recovery), _CLOCK_CAP) / float(_CLOCK_CAP),
            ],
            axis=1,
        )
        return self.recover_probability(features) >= 0.5

    # -- numerical gradients via finite differences are too slow; use manual backprop.
    def _policy_forward_cache(self, features: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        pre_hidden = features @ self.w1 + self.b1
        hidden = _relu(pre_hidden)
        logits = hidden @ self.w2 + self.b2
        probs = _sigmoid(logits).reshape(-1)
        return pre_hidden, hidden, probs

    def update(
        self,
        features: np.ndarray,
        actions: np.ndarray,
        advantages: np.ndarray,
        returns: np.ndarray,
        old_probs: np.ndarray,
    ) -> None:
        """One epoch of clipped-surrogate policy and value updates."""
        config = self.config
        lr = config.learning_rate

        # --- policy update -------------------------------------------------
        pre_hidden, hidden, probs = self._policy_forward_cache(features)
        action_probs = np.where(actions == 1, probs, 1.0 - probs)
        old_action_probs = np.where(actions == 1, old_probs, 1.0 - old_probs)
        ratios = action_probs / np.maximum(old_action_probs, 1e-8)
        clipped = np.clip(ratios, 1.0 - config.clip_epsilon, 1.0 + config.clip_epsilon)
        use_unclipped = (ratios * advantages <= clipped * advantages)

        # d(loss)/d(prob of action taken); loss = -min(r A, clip(r) A) - ent_coef * H
        grad_ratio = np.where(use_unclipped, advantages, 0.0)
        grad_action_prob = -grad_ratio / np.maximum(old_action_probs, 1e-8)
        # entropy of a Bernoulli: H = -p log p - (1-p) log(1-p); dH/dp = log((1-p)/p)
        entropy_grad = np.log(np.maximum(1.0 - probs, 1e-8)) - np.log(np.maximum(probs, 1e-8))
        grad_prob = np.where(actions == 1, grad_action_prob, -grad_action_prob)
        grad_prob -= config.entropy_coefficient * entropy_grad
        grad_logits = grad_prob * probs * (1.0 - probs)
        grad_logits = grad_logits.reshape(-1, 1) / len(features)

        grad_w2 = hidden.T @ grad_logits
        grad_b2 = grad_logits.sum(axis=0)
        grad_hidden = grad_logits @ self.w2.T
        grad_hidden[pre_hidden <= 0.0] = 0.0
        grad_w1 = features.T @ grad_hidden
        grad_b1 = grad_hidden.sum(axis=0)

        self.w1 -= lr * grad_w1
        self.b1 -= lr * grad_b1
        self.w2 -= lr * grad_w2
        self.b2 -= lr * grad_b2

        # --- value update ----------------------------------------------------
        pre_hidden_v = features @ self.vw1 + self.vb1
        hidden_v = _relu(pre_hidden_v)
        values = (hidden_v @ self.vw2 + self.vb2).reshape(-1)
        value_error = (values - returns).reshape(-1, 1) / len(features)
        grad_vw2 = hidden_v.T @ value_error
        grad_vb2 = value_error.sum(axis=0)
        grad_hidden_v = value_error @ self.vw2.T
        grad_hidden_v[pre_hidden_v <= 0.0] = 0.0
        grad_vw1 = features.T @ grad_hidden_v
        grad_vb1 = grad_hidden_v.sum(axis=0)

        self.vw1 -= lr * grad_vw1
        self.vb1 -= lr * grad_vb1
        self.vw2 -= lr * grad_vw2
        self.vb2 -= lr * grad_vb2


@dataclass
class PPOResult:
    """Training diagnostics of the PPO baseline."""

    policy: PPOPolicy
    history: list[float] = field(default_factory=list)
    wall_clock_seconds: float = 0.0
    estimated_cost: float = float("nan")


def _discounted_reverse_cumsum(series: np.ndarray, discount: float) -> np.ndarray:
    """Backward recursion ``y_t = x_t + discount * y_{t+1}`` over axis 0."""
    from scipy.signal import lfilter

    return lfilter([1.0], [1.0, -discount], series[::-1], axis=0)[::-1]


def _buffered_recover_probabilities(
    policy: PPOPolicy, features: np.ndarray, work: dict
) -> np.ndarray:
    """In-place policy forward pass for the hot rollout loop.

    Computes exactly :meth:`PPOPolicy.recover_probability` (same operation
    sequence, bit for bit) but writes every intermediate into the reusable
    ``work`` buffers, so a timestep allocates nothing.  The returned view
    aliases ``work["logits"]`` and must be consumed before the next call.
    """
    hidden = np.matmul(features, policy.w1, out=work["hidden"])
    hidden += policy.b1
    np.maximum(hidden, 0.0, out=hidden)
    logits = np.matmul(hidden, policy.w2, out=work["logits"])
    logits += policy.b2
    # Inlined _sigmoid: 1 / (1 + exp(-clip(x, -30, 30))).
    np.clip(logits, -30.0, 30.0, out=logits)
    np.negative(logits, out=logits)
    np.exp(logits, out=logits)
    logits += 1.0
    np.divide(1.0, logits, out=logits)
    return logits.reshape(-1)


def _collect_rollouts(
    policy: PPOPolicy,
    env,
    config: PPOConfig,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, float]:
    """Vectorized rollout collection on a :class:`~repro.envs.VectorRecoveryEnv`.

    All ``B = rollout_episodes`` episodes advance in lockstep: each timestep
    performs one stochastic-policy forward pass over the whole batch, forces
    recoveries where the BTR deadline is reached (probability 1, as in the
    scalar collector), and steps the environment once.  GAE advantages and
    discounted returns are then computed with ``B``-wide array operations
    over the ``(T, B)`` reward matrix.  The returned arrays are flattened
    episode-major, matching the layout of :func:`_collect_rollouts_scalar`.
    """
    horizon = config.horizon
    batch = env.num_envs
    observation = env.reset(seed=int(rng.integers(2 ** 31)))

    features = np.empty((horizon, batch, 2))
    actions = np.empty((horizon, batch), dtype=bool)
    rewards = np.empty((horizon, batch))
    old_probs = np.empty((horizon, batch))

    forward_work = {
        "hidden": np.empty((batch, config.hidden_size)),
        "logits": np.empty((batch, 1)),
    }
    sample = rng.random
    env_step = env.step
    for t in range(horizon):
        step_features = features[t]
        step_features[:, 0] = observation.beliefs[:, 0]
        step_features[:, 1] = np.minimum(
            observation.time_since_recovery[:, 0], _CLOCK_CAP
        ) / float(_CLOCK_CAP)
        probs = _buffered_recover_probabilities(policy, step_features, forward_work)
        forced = observation.forced[:, 0]
        recover = (sample(batch) < probs) | forced
        observation, costs, _, _ = env_step(recover[:, None])
        actions[t] = recover
        rewards[t] = costs[:, 0]
        old_probs[t] = np.where(forced, 1.0, probs)
    np.negative(rewards, out=rewards)  # PPO maximizes reward = -cost

    # GAE advantages and discounted returns, vectorized across episodes and
    # time: the backward recursions y_t = x_t + c * y_{t+1} are first-order
    # IIR filters over the time-reversed (T, B) matrices, so two lfilter
    # calls replace the per-episode reversed Python loop.
    values = policy.value(features.reshape(horizon * batch, 2)).reshape(horizon, batch)
    next_values = np.vstack([values[1:], np.zeros((1, batch))])
    deltas = rewards + config.discount * next_values - values
    decay = config.discount * config.gae_lambda
    advantages = _discounted_reverse_cumsum(deltas, decay)
    returns = _discounted_reverse_cumsum(rewards, config.discount)

    # Flatten episode-major (episode 0's steps first), the scalar layout.
    features = features.transpose(1, 0, 2).reshape(horizon * batch, 2)
    actions = actions.T.reshape(-1)
    advantages = advantages.T.reshape(-1)
    returns = returns.T.reshape(-1)
    old_probs = old_probs.T.reshape(-1)

    if advantages.std() > 1e-8:
        advantages = (advantages - advantages.mean()) / advantages.std()
    average_cost = float(-rewards.mean())
    return features, actions, advantages, returns, old_probs, average_cost


def _collect_rollouts_scalar(
    policy: PPOPolicy,
    simulator: RecoverySimulator,
    config: PPOConfig,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, float]:
    """Scalar reference collector: one Python-level env step per (episode, t).

    Kept as the pre-vectorization reference implementation; the batched
    :func:`_collect_rollouts` is statistically equivalent (different random
    streams) and is asserted to be a multiple faster in
    ``benchmarks/bench_ppo_rollout_speedup.py``.
    """
    from ..core.belief import update_compromise_belief
    from ..core.costs import node_cost
    from ..core.node_model import NodeState

    features_list: list[np.ndarray] = []
    actions_list: list[int] = []
    rewards_list: list[float] = []
    probs_list: list[float] = []
    episode_boundaries: list[int] = []
    total_cost = 0.0
    total_steps = 0
    params = simulator.params

    for _ in range(config.rollout_episodes):
        state = NodeState.HEALTHY
        belief = params.p_a
        time_since_recovery = 0
        for _ in range(config.horizon):
            feature = np.array([belief, min(time_since_recovery, 100) / 100.0])
            prob = float(policy.recover_probability(feature.reshape(1, -1))[0])
            forced = (
                params.delta_r != math.inf
                and time_since_recovery >= int(params.delta_r) - 1
            )
            if forced:
                action = NodeAction.RECOVER
                prob_taken = 1.0
            else:
                action = NodeAction.RECOVER if rng.random() < prob else NodeAction.WAIT
                prob_taken = prob
            cost = node_cost(state, action, params.eta)
            total_cost += cost
            total_steps += 1

            next_state = simulator.transition_model.step(state, action, rng)
            if next_state is NodeState.CRASHED:
                next_state = NodeState.HEALTHY
                belief = params.p_a
                time_since_recovery = 0
            else:
                observation = simulator.observation_model.sample(next_state, rng)
                belief = update_compromise_belief(
                    belief, action, observation, simulator.transition_model,
                    simulator.observation_model,
                )
                if action is NodeAction.RECOVER:
                    belief = params.p_a
                    time_since_recovery = 0
                else:
                    time_since_recovery += 1

            features_list.append(feature)
            actions_list.append(int(action))
            rewards_list.append(-cost)  # PPO maximizes reward = -cost
            probs_list.append(prob_taken)
            state = next_state
        episode_boundaries.append(len(features_list))

    features = np.array(features_list)
    actions = np.array(actions_list)
    rewards = np.array(rewards_list)
    old_probs = np.array(probs_list)

    # GAE advantages per episode.
    values = policy.value(features)
    advantages = np.zeros_like(rewards)
    returns = np.zeros_like(rewards)
    start = 0
    for end in episode_boundaries:
        last_advantage = 0.0
        last_return = 0.0
        for t in range(end - 1, start - 1, -1):
            next_value = values[t + 1] if t + 1 < end else 0.0
            delta = rewards[t] + config.discount * next_value - values[t]
            last_advantage = delta + config.discount * config.gae_lambda * last_advantage
            advantages[t] = last_advantage
            last_return = rewards[t] + config.discount * last_return
            returns[t] = last_return
        start = end

    if advantages.std() > 1e-8:
        advantages = (advantages - advantages.mean()) / advantages.std()
    average_cost = total_cost / max(total_steps, 1)
    return features, actions, advantages, returns, old_probs, average_cost


def train_ppo_recovery(
    params: NodeParameters,
    observation_model: ObservationModel,
    config: PPOConfig | None = None,
    seed: int | None = None,
    vectorized: bool = True,
) -> PPOResult:
    """Train the PPO baseline on the intrusion recovery problem.

    Returns the trained policy (usable as a ``RecoveryStrategy`` via its
    :meth:`PPOPolicy.action` method, and as a batch strategy via
    :meth:`PPOPolicy.action_batch`) together with its learning curve and a
    final Monte-Carlo cost estimate comparable to Table 2.

    Args:
        params: Node model parameters (defines ``f_N``, ``eta``, ``Delta_R``).
        observation_model: Intrusion detection model ``Z``.
        config: Hyper-parameters; defaults follow Appendix E.
        seed: Seed for network initialization, rollout randomness and the
            final evaluation.  Training is deterministic given the seed.
        vectorized: Collect rollouts through the batched environment layer
            (:class:`~repro.envs.VectorRecoveryEnv`); ``False`` uses the
            scalar reference collector.  The two are statistically
            equivalent but consume different random streams, so trained
            weights differ between them for the same seed.
    """
    config = config if config is not None else PPOConfig()
    rng = np.random.default_rng(seed)
    policy = PPOPolicy(config, rng)
    simulator = RecoverySimulator(params, observation_model, horizon=config.horizon)
    env = None
    if vectorized:
        from ..envs import VectorRecoveryEnv
        from ..sim import FleetScenario

        scenario = FleetScenario.single_node(
            params, observation_model, horizon=config.horizon
        )
        env = VectorRecoveryEnv(
            scenario,
            num_envs=config.rollout_episodes,
            track_metrics=False,
            copy_observations=False,
        )
    history: list[float] = []

    start = time.perf_counter()
    for _ in range(config.updates):
        if env is not None:
            rollouts = _collect_rollouts(policy, env, config, rng)
        else:
            rollouts = _collect_rollouts_scalar(policy, simulator, config, rng)
        features, actions, advantages, returns, old_probs, average_cost = rollouts
        history.append(average_cost)
        for _ in range(config.epochs_per_update):
            policy.update(features, actions, advantages, returns, old_probs)
    elapsed = time.perf_counter() - start

    estimated_cost = simulator.estimate_cost(
        policy, num_episodes=20, seed=seed, batch=vectorized
    )
    return PPOResult(
        policy=policy,
        history=history,
        wall_clock_seconds=elapsed,
        estimated_cost=estimated_cost,
    )
