"""Solvers for the TOLERANCE control problems.

* Problem 1 (optimal intrusion recovery): :mod:`~repro.solvers.pomdp`
  (incremental pruning, belief-grid value iteration),
  :mod:`~repro.solvers.parametric` (Algorithm 1) with the black-box
  optimizers of :mod:`~repro.solvers.optimizers` and the PPO baseline in
  :mod:`~repro.solvers.ppo`.
* Problem 2 (optimal replication factor): :mod:`~repro.solvers.cmdp`
  (Algorithm 2: occupancy-measure LP and Lagrangian relaxation) on top of
  the generic MDP solvers of :mod:`~repro.solvers.mdp`.
"""

from .cmdp import (
    CMDPSolution,
    ClassAwareCMDPSolution,
    ClassAwareLagrangianSolution,
    LagrangianSolution,
    evaluate_class_aware_strategy,
    evaluate_replication_strategy,
    policy_stationary_distribution,
    solve_class_aware_replication_lagrangian,
    solve_class_aware_replication_lp,
    solve_replication_lagrangian,
    solve_replication_lp,
)
from .evaluation import RecoveryEpisodeResult, RecoverySimulator
from .mdp import (
    MDPSolution,
    policy_evaluation,
    policy_iteration,
    relative_value_iteration,
    value_iteration,
)
from .optimizers import (
    BayesianOptimization,
    CrossEntropyMethod,
    DifferentialEvolution,
    OptimizationResult,
    RandomSearch,
    SPSA,
)
from .parametric import RecoverySolution, solve_recovery_problem, threshold_dimension
from .pomdp import (
    AlphaVector,
    BeliefValueIterationResult,
    IncrementalPruningResult,
    RecoveryPOMDP,
    belief_value_iteration,
    extract_threshold,
    incremental_pruning,
)
from .ppo import PPOConfig, PPOPolicy, PPOResult, train_ppo_recovery

__all__ = [
    "AlphaVector",
    "BayesianOptimization",
    "BeliefValueIterationResult",
    "CMDPSolution",
    "ClassAwareCMDPSolution",
    "ClassAwareLagrangianSolution",
    "CrossEntropyMethod",
    "DifferentialEvolution",
    "IncrementalPruningResult",
    "LagrangianSolution",
    "MDPSolution",
    "OptimizationResult",
    "PPOConfig",
    "PPOPolicy",
    "PPOResult",
    "RandomSearch",
    "RecoveryEpisodeResult",
    "RecoveryPOMDP",
    "RecoverySimulator",
    "RecoverySolution",
    "SPSA",
    "belief_value_iteration",
    "evaluate_class_aware_strategy",
    "evaluate_replication_strategy",
    "extract_threshold",
    "incremental_pruning",
    "policy_evaluation",
    "policy_iteration",
    "policy_stationary_distribution",
    "relative_value_iteration",
    "solve_recovery_problem",
    "solve_class_aware_replication_lagrangian",
    "solve_class_aware_replication_lp",
    "solve_replication_lagrangian",
    "solve_replication_lp",
    "threshold_dimension",
    "train_ppo_recovery",
    "value_iteration",
]
