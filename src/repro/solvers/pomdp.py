"""POMDP machinery for the intrusion recovery problem (Problem 1).

The node-level control problem is a partially observed MDP over the live
states ``{H, C}`` with actions ``{W, R}`` and alert observations.  This
module provides:

* :class:`RecoveryPOMDP` -- the discounted two-state POMDP induced by a
  :class:`~repro.core.node_model.NodeParameters` and an observation model;
* :func:`belief_value_iteration` -- value iteration on a discretized belief
  grid, used to compute (near-) optimal value functions and thresholds;
* :class:`AlphaVector` and :func:`incremental_pruning` -- the exact dynamic
  programming baseline *Incremental Pruning* (IP) of Table 2, which
  represents the value function as the lower envelope of alpha-vectors
  (Figure 4) and prunes dominated vectors after every backup;
* :func:`extract_threshold` -- recover the Theorem 1 threshold from a value
  function or policy.

The paper optimizes the long-run average cost; as is standard we solve the
discounted problem with a discount factor close to one, which yields the
same threshold structure (the paper's Appendix B argument applies verbatim
through the vanishing-discount approach).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.belief import update_compromise_belief
from ..core.costs import expected_node_cost
from ..core.node_model import NodeAction, NodeParameters, NodeState, NodeTransitionModel
from ..core.observation import ObservationModel
from ..sim.kernels import CachedBeliefDynamics

__all__ = [
    "RecoveryPOMDP",
    "BeliefValueIterationResult",
    "belief_value_iteration",
    "AlphaVector",
    "IncrementalPruningResult",
    "incremental_pruning",
    "extract_threshold",
]

_LIVE_STATES = (NodeState.HEALTHY, NodeState.COMPROMISED)


class RecoveryPOMDP:
    """Two-state POMDP of the intrusion recovery problem.

    States are the live node states ``(H, C)``; the crashed state is
    excluded because it is observable in practice (the node stops reporting)
    and contributes no recoverable cost.  Transition probabilities are the
    live-state restriction of ``f_N`` renormalized over ``{H, C}``.
    """

    def __init__(
        self,
        params: NodeParameters,
        observation_model: ObservationModel,
        discount: float = 0.95,
    ) -> None:
        if not 0.0 < discount < 1.0:
            raise ValueError("discount must lie in (0, 1)")
        self.params = params
        self.observation_model = observation_model
        self.discount = discount
        self.transition_model = NodeTransitionModel(params)
        self.transition = self._live_transition(self.transition_model)
        self.observation = self._observation_matrix(observation_model)
        self.costs = np.array(
            [
                [expected_node_cost(0.0, a, params.eta), expected_node_cost(1.0, a, params.eta)]
                for a in (NodeAction.WAIT, NodeAction.RECOVER)
            ]
        )
        #: Exact memo for tau(b, a, o) / P[o | b, a]: backward-induction
        #: sweeps revisit the same grid beliefs at every stage, so both
        #: become dictionary lookups after the first sweep.
        self.dynamics_cache = CachedBeliefDynamics()

    @staticmethod
    def _live_transition(model: NodeTransitionModel) -> np.ndarray:
        """Transition kernel restricted and renormalized to the live states."""
        transition = np.zeros((2, 2, 2))
        for a_index, action in enumerate((NodeAction.WAIT, NodeAction.RECOVER)):
            full = model.matrix(action)
            for s_index, state in enumerate(_LIVE_STATES):
                live_mass = sum(full[state, s_next] for s_next in _LIVE_STATES)
                if live_mass <= 0.0:
                    transition[a_index, s_index, :] = [0.0, 1.0]
                    continue
                for n_index, next_state in enumerate(_LIVE_STATES):
                    transition[a_index, s_index, n_index] = full[state, next_state] / live_mass
        return transition

    @staticmethod
    def _observation_matrix(model: ObservationModel) -> np.ndarray:
        """Observation likelihoods ``Z[s, o]`` over the live states."""
        return np.vstack(
            [model.pmf(NodeState.HEALTHY), model.pmf(NodeState.COMPROMISED)]
        )

    # -- belief-space primitives -------------------------------------------------
    @property
    def num_observations(self) -> int:
        return self.observation.shape[1]

    def belief_cost(self, belief: float, action: NodeAction) -> float:
        return expected_node_cost(belief, action, self.params.eta)

    def belief_update(self, belief: float, action: NodeAction, observation_index: int) -> float:
        key = ("bu", float(belief), int(action), int(observation_index))
        return self.dynamics_cache.get(
            key, lambda: self._belief_update(belief, action, observation_index)
        )

    def _belief_update(
        self, belief: float, action: NodeAction, observation_index: int
    ) -> float:
        observation = int(self.observation_model.observations[observation_index])
        return update_compromise_belief(
            belief, action, observation, self.transition_model, self.observation_model
        )

    def observation_probability(
        self, belief: float, action: NodeAction, observation_index: int
    ) -> float:
        """``P[o | b, a]`` over the live states."""
        key = ("op", float(belief), int(action), int(observation_index))
        return self.dynamics_cache.get(
            key, lambda: self._observation_probability(belief, action, observation_index)
        )

    def _observation_probability(
        self, belief: float, action: NodeAction, observation_index: int
    ) -> float:
        prior = np.array([1.0 - belief, belief]) @ self.transition[action]
        return float(prior @ self.observation[:, observation_index])


# ---------------------------------------------------------------------------
# Belief-grid value iteration
# ---------------------------------------------------------------------------
@dataclass
class BeliefValueIterationResult:
    """Result of :func:`belief_value_iteration`."""

    belief_grid: np.ndarray
    values: np.ndarray
    policy: np.ndarray  # 0 = WAIT, 1 = RECOVER per grid point
    iterations: int
    residual: float

    def value_at(self, belief: float) -> float:
        return float(np.interp(belief, self.belief_grid, self.values))

    def action_at(self, belief: float) -> NodeAction:
        index = int(np.clip(np.searchsorted(self.belief_grid, belief), 0, len(self.belief_grid) - 1))
        return NodeAction.RECOVER if self.policy[index] else NodeAction.WAIT

    def threshold(self) -> float:
        return extract_threshold(self.belief_grid, self.policy)


def belief_value_iteration(
    pomdp: RecoveryPOMDP,
    grid_size: int = 101,
    max_iterations: int = 2000,
    tolerance: float = 1e-7,
) -> BeliefValueIterationResult:
    """Value iteration on a uniform belief grid.

    The belief-MDP Bellman operator is applied on ``grid_size`` equally
    spaced beliefs; successor beliefs are evaluated by linear interpolation.
    This converges to the optimal discounted value function as the grid is
    refined and is the reference solution used by the tests of Theorem 1.
    """
    grid = np.linspace(0.0, 1.0, grid_size)
    values = np.zeros(grid_size)
    policy = np.zeros(grid_size, dtype=int)

    # Precompute successor beliefs and observation probabilities per (b, a).
    successors: dict[tuple[int, int], list[tuple[float, float]]] = {}
    for b_index, belief in enumerate(grid):
        for action in (NodeAction.WAIT, NodeAction.RECOVER):
            entries = []
            for o_index in range(pomdp.num_observations):
                prob = pomdp.observation_probability(belief, action, o_index)
                if prob <= 1e-14:
                    continue
                next_belief = pomdp.belief_update(belief, action, o_index)
                entries.append((prob, next_belief))
            total = sum(p for p, _ in entries)
            if total > 0:
                entries = [(p / total, nb) for p, nb in entries]
            successors[(b_index, int(action))] = entries

    residual = np.inf
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        new_values = np.empty_like(values)
        for b_index, belief in enumerate(grid):
            action_values = []
            for action in (NodeAction.WAIT, NodeAction.RECOVER):
                immediate = pomdp.belief_cost(belief, action)
                expected_next = sum(
                    prob * np.interp(next_belief, grid, values)
                    for prob, next_belief in successors[(b_index, int(action))]
                )
                action_values.append(immediate + pomdp.discount * expected_next)
            best_action = int(np.argmin(action_values))
            new_values[b_index] = action_values[best_action]
            policy[b_index] = best_action
        residual = float(np.max(np.abs(new_values - values)))
        values = new_values
        if residual < tolerance:
            break

    return BeliefValueIterationResult(
        belief_grid=grid,
        values=values,
        policy=policy,
        iterations=iteration,
        residual=residual,
    )


def extract_threshold(belief_grid: np.ndarray, policy: np.ndarray) -> float:
    """Smallest belief at which the policy recovers (Theorem 1 threshold).

    Returns ``1.0`` when the policy never recovers on the grid.
    """
    recover_indices = np.nonzero(policy > 0)[0]
    if recover_indices.size == 0:
        return 1.0
    return float(belief_grid[recover_indices[0]])


# ---------------------------------------------------------------------------
# Incremental pruning (exact alpha-vector dynamic programming)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class AlphaVector:
    """A linear piece ``alpha(b) = (1 - b) * values[0] + b * values[1]`` of V*.

    Alpha-vectors represent the value function of a finite-horizon POMDP as a
    piecewise-linear concave (here: convex, since we minimize costs)
    function of the belief (Figure 4).
    """

    values: tuple[float, float]
    action: NodeAction

    def value(self, belief: float) -> float:
        return (1.0 - belief) * self.values[0] + belief * self.values[1]


@dataclass
class IncrementalPruningResult:
    """Result of :func:`incremental_pruning`."""

    alpha_vectors: list[AlphaVector]
    iterations: int
    backups: int

    def value_at(self, belief: float) -> float:
        return min(alpha.value(belief) for alpha in self.alpha_vectors)

    def action_at(self, belief: float) -> NodeAction:
        best = min(self.alpha_vectors, key=lambda alpha: alpha.value(belief))
        return best.action

    def threshold(self, grid_size: int = 201) -> float:
        grid = np.linspace(0.0, 1.0, grid_size)
        policy = np.array([1 if self.action_at(b) is NodeAction.RECOVER else 0 for b in grid])
        return extract_threshold(grid, policy)


def _prune(vectors: list[tuple[np.ndarray, NodeAction]], grid: np.ndarray) -> list[tuple[np.ndarray, NodeAction]]:
    """Keep only vectors that attain the minimum somewhere on the belief grid.

    This is a grid-based variant of Lark's LP pruning: exact for the
    two-state case up to grid resolution and dramatically faster.
    """
    if not vectors:
        return vectors
    matrix = np.array([v for v, _ in vectors])  # (num_vectors, 2)
    values = np.outer(1.0 - grid, matrix[:, 0]) + np.outer(grid, matrix[:, 1])
    winners = set(np.argmin(values, axis=1).tolist())
    return [vectors[i] for i in sorted(winners)]


def incremental_pruning(
    pomdp: RecoveryPOMDP,
    horizon: int = 50,
    prune_grid_size: int = 401,
    max_vectors: int = 2000,
) -> IncrementalPruningResult:
    """Incremental pruning DP over alpha-vectors (Cassandra et al., the IP baseline).

    Performs ``horizon`` exact backups of the finite-horizon value function.
    After the cross-sum for each action, and again after the union over
    actions, dominated vectors are pruned.  The number of vectors (and hence
    the running time) grows quickly with the horizon, which is exactly the
    scaling behaviour Table 2 reports for IP as ``Delta_R`` grows.
    """
    grid = np.linspace(0.0, 1.0, prune_grid_size)
    backups = 0
    # Terminal value: zero.
    current: list[tuple[np.ndarray, NodeAction]] = [
        (np.zeros(2), NodeAction.WAIT)
    ]

    for _ in range(horizon):
        all_action_vectors: list[tuple[np.ndarray, NodeAction]] = []
        for action in (NodeAction.WAIT, NodeAction.RECOVER):
            # For each observation, project the future vectors.
            per_observation: list[list[np.ndarray]] = []
            for o_index in range(pomdp.num_observations):
                projected = []
                for vector, _ in current:
                    # gamma_{a,o}(s) = sum_{s'} T[a,s,s'] Z[s',o] alpha(s')
                    gamma = np.array(
                        [
                            sum(
                                pomdp.transition[action, s, s_next]
                                * pomdp.observation[s_next, o_index]
                                * vector[s_next]
                                for s_next in range(2)
                            )
                            for s in range(2)
                        ]
                    )
                    projected.append(gamma)
                # Prune per-observation sets to keep cross-sums tractable.
                pruned = _prune([(g, action) for g in projected], grid)
                per_observation.append([g for g, _ in pruned])

            # Cross-sum over observations, pruning incrementally.
            immediate = pomdp.costs[action]
            partial: list[np.ndarray] = [immediate.astype(float)]
            for obs_vectors in per_observation:
                combined = [
                    base + pomdp.discount * gamma for base in partial for gamma in obs_vectors
                ]
                pruned = _prune([(c, action) for c in combined], grid)
                partial = [c for c, _ in pruned]
                if len(partial) > max_vectors:
                    partial = partial[:max_vectors]
            all_action_vectors.extend((vector, action) for vector in partial)
            backups += len(partial)

        current = _prune(all_action_vectors, grid)

    alpha_vectors = [AlphaVector((float(v[0]), float(v[1])), action) for v, action in current]
    return IncrementalPruningResult(alpha_vectors=alpha_vectors, iterations=horizon, backups=backups)
