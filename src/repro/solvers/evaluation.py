"""Monte-Carlo policy evaluation for Problem 1.

Algorithm 1 needs an estimate of the objective ``J_i(theta)`` (Eq. 5) for a
candidate threshold vector ``theta``.  The paper estimates it by simulating
the node POMDP for ``M`` episodes under the candidate strategy and averaging
the per-step cost.  :class:`RecoverySimulator` implements that simulator; it
is also used to evaluate the baselines and the strategies returned by IP and
PPO so that all Table 2 entries are measured with the same estimator.

Evaluation over many episodes can be routed through the NumPy-vectorized
batch engine (:mod:`repro.sim`) with ``evaluate(..., batch=True)`` /
``estimate_cost(..., batch=True)``; both paths share one per-episode seed
tree and produce identical statistics under the same seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.belief import update_compromise_belief
from ..core.costs import node_cost
from ..core.node_model import (
    NodeAction,
    NodeParameters,
    NodeState,
    NodeTransitionModel,
)
from ..core.observation import ObservationModel
from ..core.strategies import RecoveryStrategy

__all__ = ["RecoveryEpisodeResult", "RecoverySimulator"]


@dataclass(frozen=True)
class RecoveryEpisodeResult:
    """Per-episode statistics of one simulated node trajectory."""

    average_cost: float
    time_to_recovery: float
    recovery_frequency: float
    num_recoveries: int
    num_compromises: int
    steps: int


class RecoverySimulator:
    """Simulates the node POMDP under a recovery strategy.

    The simulator reproduces the evaluation protocol of Problem 1: the node
    starts healthy (with the initial belief ``b_1 = p_A``), the hidden state
    evolves according to ``f_N``, observations are drawn from ``Z``, the
    strategy maps beliefs to actions, and the BTR constraint forces a
    recovery every ``Delta_R`` steps.  Crashed nodes are replaced by fresh
    healthy nodes (the model treats a restarted node as new), so long-run
    averages are well defined.
    """

    def __init__(
        self,
        params: NodeParameters,
        observation_model: ObservationModel,
        horizon: int = 200,
        enforce_btr: bool = True,
    ) -> None:
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        self.params = params
        self.observation_model = observation_model
        self.horizon = horizon
        self.enforce_btr = enforce_btr
        self.transition_model = NodeTransitionModel(params)

    # -- single episode -----------------------------------------------------------
    def run_episode(
        self, strategy: RecoveryStrategy, rng: np.random.Generator
    ) -> RecoveryEpisodeResult:
        params = self.params
        state = NodeState.HEALTHY
        belief = params.p_a
        time_since_recovery = 0
        total_cost = 0.0
        recoveries = 0
        compromises = 0
        recovery_delays: list[int] = []
        open_compromise: int | None = None

        for _ in range(self.horizon):
            # Decide based on the current belief.
            btr_deadline = (
                self.enforce_btr
                and params.delta_r != math.inf
                and time_since_recovery >= int(params.delta_r) - 1
            )
            if btr_deadline:
                action = NodeAction.RECOVER
            else:
                action = strategy.action(belief, time_since_recovery)

            total_cost += node_cost(state, action, params.eta)
            if action is NodeAction.RECOVER:
                recoveries += 1
                if open_compromise is not None:
                    recovery_delays.append(open_compromise)
                    open_compromise = None

            # Hidden state transition.
            next_state = self.transition_model.step(state, action, rng)
            if next_state is NodeState.CRASHED:
                # The crashed node is evicted and replaced by a fresh node.
                next_state = NodeState.HEALTHY
                belief = params.p_a
                time_since_recovery = 0
                if open_compromise is not None:
                    recovery_delays.append(open_compromise)
                    open_compromise = None
                state = next_state
                continue

            if state is not NodeState.COMPROMISED and next_state is NodeState.COMPROMISED:
                compromises += 1
                open_compromise = 0
            elif next_state is NodeState.HEALTHY:
                if open_compromise is not None and action is not NodeAction.RECOVER:
                    # Software update restored the node without a recovery.
                    recovery_delays.append(open_compromise)
                open_compromise = None

            if open_compromise is not None:
                open_compromise += 1

            # Observation and belief update.
            observation = self.observation_model.sample(next_state, rng)
            belief = update_compromise_belief(
                belief, action, observation, self.transition_model, self.observation_model
            )

            if action is NodeAction.RECOVER:
                time_since_recovery = 0
                belief = params.p_a
            else:
                time_since_recovery += 1
            state = next_state

        if open_compromise is not None:
            recovery_delays.append(open_compromise)

        time_to_recovery = float(np.mean(recovery_delays)) if recovery_delays else 0.0
        return RecoveryEpisodeResult(
            average_cost=total_cost / self.horizon,
            time_to_recovery=time_to_recovery,
            recovery_frequency=recoveries / self.horizon,
            num_recoveries=recoveries,
            num_compromises=compromises,
            steps=self.horizon,
        )

    # -- Monte-Carlo estimates -------------------------------------------------------
    @staticmethod
    def episode_rngs(seed: int | None, num_episodes: int) -> list[np.random.Generator]:
        """Per-episode generators from the episode seed tree.

        Every episode draws from its own child of
        ``numpy.random.SeedSequence(seed)``.  This convention is shared with
        the batch engine (:mod:`repro.sim`), which consumes the *same*
        streams in vectorized form — that is what makes
        ``evaluate(batch=True)`` reproduce ``evaluate(batch=False)`` exactly,
        episode by episode.

        .. note::
           The convention changed in 1.1.0: earlier releases threaded one
           shared generator through all episodes, so a given seed produces
           *different* (equally valid) Monte-Carlo draws than under 1.0.0.
           Statistical results are unaffected; pinned per-seed numbers are.
        """
        children = np.random.SeedSequence(seed).spawn(num_episodes)
        return [np.random.default_rng(child) for child in children]

    def _batch_engine(self):
        """Batch engine over this simulator's single-node scenario."""
        from ..sim import BatchRecoveryEngine, FleetScenario

        return BatchRecoveryEngine(
            FleetScenario.single_node(
                self.params,
                self.observation_model,
                horizon=self.horizon,
                enforce_btr=self.enforce_btr,
            )
        )

    def estimate_cost(
        self,
        strategy: RecoveryStrategy,
        num_episodes: int = 20,
        seed: int | None = None,
        batch: bool = False,
    ) -> float:
        """Monte-Carlo estimate of ``J_i`` (Eq. 5) under ``strategy``.

        With ``batch=True`` the episodes are simulated by the vectorized
        engine of :mod:`repro.sim`; the estimate is identical to the scalar
        path under the same seed (bit-exact, not just statistically).
        """
        if batch:
            result = self._batch_engine().run(strategy, num_episodes, seed=seed)
            return float(np.mean(result.average_cost[:, 0]))
        costs = [
            self.run_episode(strategy, rng).average_cost
            for rng in self.episode_rngs(seed, num_episodes)
        ]
        return float(np.mean(costs))

    def evaluate(
        self,
        strategy: RecoveryStrategy,
        num_episodes: int = 20,
        seed: int | None = None,
        batch: bool = False,
    ) -> list[RecoveryEpisodeResult]:
        """Run ``num_episodes`` independent episodes and return their statistics.

        Episodes are seeded from the per-episode seed tree (see
        :meth:`episode_rngs`), so results are reproducible given ``seed``
        regardless of evaluation order.  With ``batch=True`` all episodes
        are advanced simultaneously by the vectorized engine of
        :mod:`repro.sim`, returning identical per-episode statistics at a
        fraction of the wall-clock time.
        """
        if batch:
            result = self._batch_engine().run(strategy, num_episodes, seed=seed)
            return result.episode_results(node=0)
        return [
            self.run_episode(strategy, rng)
            for rng in self.episode_rngs(seed, num_episodes)
        ]
