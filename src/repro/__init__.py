"""repro: reproduction of "Intrusion Tolerance for Networked Systems through
Two-Level Feedback Control" (Hammar & Stadler, DSN 2024).

The package is organised as:

* :mod:`repro.core` -- the TOLERANCE contribution: node/observation/belief
  models, the two control problems, threshold strategies, controllers,
  reliability analysis, metrics and the integrated architecture;
* :mod:`repro.solvers` -- Algorithm 1 (parametric threshold optimization with
  CEM/DE/SPSA/BO), Algorithm 2 (occupancy-measure LP), incremental pruning,
  value/policy iteration and the PPO baseline;
* :mod:`repro.sim` -- the NumPy-vectorized batch simulation engine: advances
  B episodes x N nodes simultaneously with bit-exact parity to the scalar
  simulator, powering fast Monte-Carlo evaluation and fleet scenario sweeps;
* :mod:`repro.envs` -- the unified vectorized environment layer: one
  Gym-style batched ``step``/``reset`` API over the simulation engine
  (``VectorRecoveryEnv``), the fleet-level system view (``FleetVectorEnv``)
  and the emulation testbed (``EmulationVectorEnv``), so threshold
  strategies, evaluation policies and learned PPO policies run unmodified
  against every backend;
* :mod:`repro.control` -- the closed-loop two-level control plane: the
  vectorized system controller (bit-parity with the scalar reference), the
  batched ``TwoLevelController`` coupling node recovery with replication
  control over B fleets at once, the empirical ``f_S``
  system-identification loop, a PPO replication policy trained on the
  fleet environment, and the consolidated fleet-sweep API;
* :mod:`repro.serve` -- the long-running decision service: sessions
  register fleets (scenario-v1 documents or built controllers), stream
  ticks and read back recovery/replication decisions, with compatible
  fleets fused into shared batched kernel calls; exposed in-process
  (``DecisionService``), over a socket (``python -m repro serve``,
  speaking the ``repro/decision-v1`` NDJSON schema) and through the
  matching ``ServiceClient``;
* :mod:`repro.consensus` -- the substrates: reconfigurable MinBFT, clients,
  Raft, the simulated authenticated network, signatures, and the USIG;
* :mod:`repro.emulation` -- the evaluation testbed: containers, IDS,
  attacker, background services, the emulation environment (with the
  vectorized adapter) and the intrusion-trace dataset.

Quickstart::

    from repro.core import NodeParameters, BetaBinomialObservationModel
    from repro.solvers import CrossEntropyMethod, solve_recovery_problem

    params = NodeParameters(p_a=0.1, delta_r=float("inf"))
    model = BetaBinomialObservationModel()
    solution = solve_recovery_problem(params, model, CrossEntropyMethod(), seed=0)
    print(solution.strategy.thresholds, solution.estimated_cost)
"""

from . import consensus, control, core, emulation, envs, serve, sim, solvers

__version__ = "1.10.0"

__all__ = [
    "consensus",
    "control",
    "core",
    "emulation",
    "envs",
    "serve",
    "sim",
    "solvers",
    "__version__",
]
