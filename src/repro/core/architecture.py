"""The TOLERANCE architecture: emulation + consensus + two-level control (Fig. 2).

:class:`ToleranceArchitecture` wires all the pieces of the reproduction into
one runnable system:

* an :class:`~repro.emulation.environment.EmulationEnvironment` providing the
  ground-truth node dynamics, IDS alerts, and the two control levels;
* a :class:`~repro.consensus.minbft.MinBFTCluster` running the replicated
  service, whose membership is kept in sync with the emulation: compromised
  replicas behave Byzantine, recovered replicas get a fresh container and a
  state transfer, crashed/evicted replicas are removed, added nodes join
  through a reconfiguration;
* a :class:`~repro.consensus.raft.RaftCluster` hosting the (crash-tolerant)
  system controller, in whose replicated log every global decision is
  recorded;
* a :class:`~repro.consensus.client.MinBFTClient` workload exercising the
  service so that safety/liveness can be audited end to end.

This is the integration point the examples use; the per-experiment
benchmarks mostly drive the individual components directly for speed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..consensus.client import MinBFTClient
from ..consensus.minbft import ByzantineBehavior, MinBFTCluster, MinBFTConfig
from ..consensus.raft import RaftCluster
from ..emulation.environment import (
    EmulationConfig,
    EmulationEnvironment,
    EvaluationPolicy,
    tolerance_policy,
)
from ..emulation.services import ServiceWorkload
from .correctness import check_safety, check_validity
from .metrics import EpisodeMetrics
from .node_model import NodeState
from .observation import ObservationModel

__all__ = ["ArchitectureReport", "ToleranceArchitecture"]


@dataclass
class ArchitectureReport:
    """End-to-end result of one architecture run.

    Attributes:
        metrics: Intrusion tolerance metrics of the emulation layer.
        safety_holds: Whether all live replicas executed consistent request
            sequences (the Safety property of Section IV-A).
        validity_holds: Whether every executed request was issued by a client.
        requests_submitted / requests_completed: Client workload bookkeeping.
        controller_log_entries: Number of global decisions committed to the
            Raft log of the system controller.
        invariant_violations: Count of Proposition 1 violations per condition.
    """

    metrics: EpisodeMetrics
    safety_holds: bool
    validity_holds: bool
    requests_submitted: int
    requests_completed: int
    controller_log_entries: int
    invariant_violations: dict[str, int]


class ToleranceArchitecture:
    """Integrated TOLERANCE system (Fig. 2): nodes, consensus, two-level control."""

    def __init__(
        self,
        config: EmulationConfig | None = None,
        policy: EvaluationPolicy | None = None,
        observation_model: ObservationModel | None = None,
        minbft_config: MinBFTConfig | None = None,
        raft_nodes: int = 3,
        requests_per_step: float = 2.0,
        seed: int | None = None,
    ) -> None:
        self.config = config if config is not None else EmulationConfig(initial_nodes=4, horizon=50)
        self.policy = policy if policy is not None else tolerance_policy()
        self.environment = EmulationEnvironment(
            self.config, self.policy, observation_model=observation_model, seed=seed
        )
        self.cluster = MinBFTCluster(
            num_replicas=self.config.initial_nodes,
            config=minbft_config if minbft_config is not None else MinBFTConfig(),
            seed=seed,
        )
        self.controller_log = RaftCluster(num_nodes=raft_nodes, seed=seed)
        self.controller_log.elect_leader()
        self.client = MinBFTClient("client-0", self.cluster)
        self.workload = ServiceWorkload(requests_per_step=requests_per_step, seed=seed)
        self._node_to_replica: dict[str, str] = {}
        self._sync_initial_mapping()
        self._submitted_requests: list[tuple[str, int]] = []
        self._rng = np.random.default_rng(seed)

    # -- node/replica mapping -----------------------------------------------------------
    def _sync_initial_mapping(self) -> None:
        node_ids = sorted(self.environment.nodes)
        replica_ids = self.cluster.membership
        for node_id, replica_id in zip(node_ids, replica_ids):
            self._node_to_replica[node_id] = replica_id

    def _replica_of(self, node_id: str) -> str | None:
        return self._node_to_replica.get(node_id)

    # -- one integrated time-step ----------------------------------------------------------
    def step(self) -> None:
        """Advance the emulation, mirror its events onto the consensus layer,
        and run one batch of client requests."""
        nodes_before = set(self.environment.nodes)
        record = self.environment.step()
        nodes_after = set(self.environment.nodes)

        # Mirror compromises: compromised replicas behave Byzantine.
        for node_id, node in self.environment.nodes.items():
            replica_id = self._replica_of(node_id)
            if replica_id is None or replica_id not in self.cluster.replicas:
                continue
            attack_state = self.environment.attacker.state_of(node_id)
            if node.state is NodeState.COMPROMISED:
                behavior = attack_state.post_compromise_behavior
                if behavior is ByzantineBehavior.NONE:
                    behavior = ByzantineBehavior.PARTICIPATE
                self.cluster.compromise(replica_id, behavior)
            elif node.state is NodeState.HEALTHY:
                if self.cluster.replicas[replica_id].byzantine is not ByzantineBehavior.NONE:
                    self.cluster.recover_replica(replica_id)

        # Mirror crashes and evictions.
        for node_id in nodes_before - nodes_after:
            replica_id = self._node_to_replica.pop(node_id, None)
            if replica_id is not None and replica_id in self.cluster.replicas:
                self.cluster.crash(replica_id)
                self.cluster.evict_replica(replica_id)
                self.controller_log.propose({"action": "evict", "node": node_id})

        # Mirror additions.
        for node_id in nodes_after - nodes_before:
            replica_id = self.cluster.add_replica()
            self._node_to_replica[node_id] = replica_id
            self.controller_log.propose({"action": "add", "node": node_id})

        # Drive the client workload.
        for event in self.workload.requests_for_step(record.time_step):
            if event.operation == "write":
                request_id = self.client.write(event.key, event.value)
            else:
                request_id = self.client.read(event.key)
            self._submitted_requests.append((self.client.client_id, request_id))
        self.cluster.run(ticks=20)

    def run(self, horizon: int | None = None) -> ArchitectureReport:
        """Run the integrated system for ``horizon`` steps and audit correctness."""
        steps = horizon if horizon is not None else self.config.horizon
        for _ in range(steps):
            self.step()
        self.cluster.run(ticks=100)

        metrics = self.environment.metrics.finalize()
        live_sequences = [
            replica.state_machine.executed_requests()
            for replica_id, replica in self.cluster.replicas.items()
            if replica.byzantine is ByzantineBehavior.NONE
            and not self.cluster.network.is_crashed(replica_id)
        ]
        executed_ids = set()
        for sequence in live_sequences:
            executed_ids.update(tuple(item) for item in sequence)
        safety = check_safety(live_sequences)
        validity = check_validity(executed_ids, set(self._submitted_requests))

        leader = self.controller_log.leader()
        log_entries = 0
        if leader is not None:
            log_entries = len(self.controller_log.nodes[leader].applied_commands)

        return ArchitectureReport(
            metrics=metrics,
            safety_holds=safety,
            validity_holds=validity,
            requests_submitted=len(self._submitted_requests),
            requests_completed=len(self.client.completed),
            controller_log_entries=log_entries,
            invariant_violations=self.environment.auditor.violation_counts(),
        )
