"""Intrusion tolerance metrics (Section III-C) and statistical utilities.

The paper quantifies intrusion tolerance with three metrics:

* ``T^(R)`` -- average time-to-recovery: the average number of time-steps
  from the moment a node is compromised until recovery starts;
* ``T^(A)`` -- average availability: the fraction of time where the number
  of compromised and crashed nodes is at most ``f``; and
* ``F^(R)`` -- frequency of recoveries: the fraction of time-steps where a
  recovery occurs.

This module provides incremental estimators for these metrics
(:class:`MetricsCollector`), the Student-t confidence intervals used in all
tables and figures, and the Kullback-Leibler metric-selection analysis of
Appendix H (:func:`metric_divergence_report`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np
from scipy import stats

from .observation import kl_divergence

__all__ = [
    "EpisodeMetrics",
    "MetricsCollector",
    "confidence_interval",
    "summarize_runs",
    "summarize_metric_arrays",
    "metric_divergence_report",
]


@dataclass(frozen=True)
class EpisodeMetrics:
    """Metrics of one evaluation episode.

    Attributes:
        availability: Average availability ``T^(A)`` in ``[0, 1]``.
        time_to_recovery: Average time-to-recovery ``T^(R)`` in time-steps.
            Following Table 7, episodes in which compromised nodes are never
            recovered report the episode length (e.g. ``10^3``).
        recovery_frequency: Fraction of time-steps with at least one recovery.
        average_nodes: Average number of nodes (the global objective ``J``).
        episode_length: Number of time-steps in the episode.
        recoveries: Total number of recovery actions executed.
        compromises: Total number of compromise events.
    """

    availability: float
    time_to_recovery: float
    recovery_frequency: float
    average_nodes: float
    episode_length: int
    recoveries: int = 0
    compromises: int = 0


class MetricsCollector:
    """Incremental estimator of ``T^(A)``, ``T^(R)``, ``F^(R)`` and ``J``.

    Usage::

        collector = MetricsCollector(f=1)
        for each time step:
            collector.record_step(
                healthy=..., compromised=..., crashed=...,
                recoveries=..., compromise_events=..., recovery_of_compromised=...)
        metrics = collector.finalize()

    Time-to-recovery accounting: the collector tracks, for every node that
    becomes compromised, how many steps elapse before that node is recovered
    (``record_compromise`` / ``record_recovery_start``).  Nodes still
    compromised at the end of the episode contribute the episode length, the
    same convention as the ``10^3`` entries of Table 7.
    """

    def __init__(self, f: int, max_time_to_recovery: float | None = None) -> None:
        if f < 0:
            raise ValueError("f must be non-negative")
        self.f = f
        self.max_time_to_recovery = max_time_to_recovery
        self._steps = 0
        self._available_steps = 0
        self._steps_with_recovery = 0
        self._total_recoveries = 0
        self._total_nodes = 0.0
        self._total_node_steps = 0
        self._open_compromises: dict[object, int] = {}
        self._completed_recovery_delays: list[int] = []
        self._total_compromises = 0

    # -- per-step updates -------------------------------------------------------
    def record_step(
        self,
        healthy: int,
        compromised: int,
        crashed: int,
        recoveries: int = 0,
    ) -> None:
        """Record the node-state census and recovery count of one time-step."""
        if min(healthy, compromised, crashed, recoveries) < 0:
            raise ValueError("counts must be non-negative")
        self._steps += 1
        total_nodes = healthy + compromised + crashed
        self._total_nodes += total_nodes
        self._total_node_steps += max(total_nodes, 1)
        if compromised + crashed <= self.f:
            self._available_steps += 1
        if recoveries > 0:
            self._steps_with_recovery += 1
        self._total_recoveries += recoveries
        for node_id in list(self._open_compromises):
            self._open_compromises[node_id] += 1

    def record_compromise(self, node_id: object) -> None:
        """Register that ``node_id`` became compromised at the current step."""
        if node_id not in self._open_compromises:
            self._open_compromises[node_id] = 0
            self._total_compromises += 1

    def record_recovery_start(self, node_id: object) -> None:
        """Register that recovery of ``node_id`` started at the current step."""
        delay = self._open_compromises.pop(node_id, None)
        if delay is not None:
            self._completed_recovery_delays.append(delay)

    # -- results ----------------------------------------------------------------
    @property
    def steps(self) -> int:
        return self._steps

    def availability(self) -> float:
        if self._steps == 0:
            return 1.0
        return self._available_steps / self._steps

    def recovery_frequency(self) -> float:
        """Per-node recovery frequency ``F^(R)``: recoveries per node-step.

        This is the per-node quantity that appears in the objective of
        Problem 1 (Eq. 5) and in Table 7: PERIODIC with period ``Delta_R``
        has ``F^(R) ~= 1 / Delta_R`` regardless of the system size.

        The estimate is clamped to ``[0, 1]``: a frequency cannot exceed
        one, but a degenerate census (more recoveries reported than nodes
        present in a step) could otherwise push the ratio above it.
        """
        if self._total_node_steps == 0:
            return 0.0
        return min(self._total_recoveries / self._total_node_steps, 1.0)

    def time_to_recovery(self) -> float:
        """Average time-to-recovery ``T^(R)``.

        Compromises still unresolved at the end of the episode are censored:
        they contribute the time elapsed since the compromise (capped at
        ``max_time_to_recovery``), which reproduces the ``10^3``-style
        entries of Table 7 for strategies that never recover.
        """
        ceiling = self.max_time_to_recovery if self.max_time_to_recovery is not None else float(self._steps)
        delays: list[float] = [float(d) for d in self._completed_recovery_delays]
        delays.extend(min(float(elapsed), float(ceiling)) for elapsed in self._open_compromises.values())
        if not delays:
            return 0.0
        return float(np.mean(delays))

    def average_nodes(self) -> float:
        if self._steps == 0:
            return 0.0
        return self._total_nodes / self._steps

    def finalize(self) -> EpisodeMetrics:
        return EpisodeMetrics(
            availability=self.availability(),
            time_to_recovery=self.time_to_recovery(),
            recovery_frequency=self.recovery_frequency(),
            average_nodes=self.average_nodes(),
            episode_length=self._steps,
            recoveries=self._total_recoveries,
            compromises=self._total_compromises,
        )


def confidence_interval(
    samples: Sequence[float], confidence: float = 0.95
) -> tuple[float, float]:
    """Mean and Student-t half-width, the convention used by all paper tables."""
    values = np.asarray(list(samples), dtype=float)
    if values.size == 0:
        raise ValueError("at least one sample is required")
    mean = float(values.mean())
    if values.size == 1:
        return mean, 0.0
    sem = stats.sem(values)
    if sem == 0.0 or math.isnan(sem):
        return mean, 0.0
    half_width = float(sem * stats.t.ppf(0.5 + confidence / 2.0, values.size - 1))
    return mean, half_width


def summarize_runs(
    runs: Sequence[EpisodeMetrics], confidence: float = 0.95
) -> dict[str, tuple[float, float]]:
    """Aggregate per-seed episode metrics into (mean, ci) pairs per metric."""
    if not runs:
        raise ValueError("at least one run is required")
    return {
        "availability": confidence_interval([r.availability for r in runs], confidence),
        "time_to_recovery": confidence_interval([r.time_to_recovery for r in runs], confidence),
        "recovery_frequency": confidence_interval([r.recovery_frequency for r in runs], confidence),
        "average_nodes": confidence_interval([r.average_nodes for r in runs], confidence),
    }


def summarize_metric_arrays(
    metric_arrays: Mapping[str, Sequence[float]], confidence: float = 0.95
) -> dict[str, tuple[float, float]]:
    """Aggregate per-episode metric arrays into ``(mean, ci)`` pairs.

    The array-native counterpart of :func:`summarize_runs`, used to
    summarize the per-episode statistics produced by the batch simulation
    engine (:mod:`repro.sim`), where each metric arrives as one array over
    episodes instead of a list of :class:`EpisodeMetrics` objects.
    """
    if not metric_arrays:
        raise ValueError("at least one metric array is required")
    return {
        name: confidence_interval(np.asarray(values, dtype=float).ravel(), confidence)
        for name, values in metric_arrays.items()
    }


def metric_divergence_report(
    metric_samples: Mapping[str, tuple[Iterable[float], Iterable[float]]],
    num_bins: int = 30,
) -> dict[str, float]:
    """KL-divergence ranking of candidate detection metrics (Appendix H, Fig. 18).

    Args:
        metric_samples: Mapping from metric name to a pair
            ``(samples_no_intrusion, samples_intrusion)``.
        num_bins: Number of histogram bins used to discretize continuous
            metrics before computing the divergence.

    Returns:
        Mapping from metric name to ``D_KL(Z_{O|H} || Z_{O|C})``, higher means
        the metric carries more information for detecting intrusions.
    """
    report: dict[str, float] = {}
    for name, (healthy_samples, intrusion_samples) in metric_samples.items():
        healthy = np.asarray(list(healthy_samples), dtype=float)
        intrusion = np.asarray(list(intrusion_samples), dtype=float)
        if healthy.size == 0 or intrusion.size == 0:
            raise ValueError(f"metric {name!r} must have samples for both conditions")
        low = min(healthy.min(), intrusion.min())
        high = max(healthy.max(), intrusion.max())
        if low == high:
            report[name] = 0.0
            continue
        bins = np.linspace(low, high, num_bins + 1)
        healthy_hist, _ = np.histogram(healthy, bins=bins)
        intrusion_hist, _ = np.histogram(intrusion, bins=bins)
        report[name] = kl_divergence(
            healthy_hist.astype(float) + 1e-6, intrusion_hist.astype(float) + 1e-6
        )
    return report
