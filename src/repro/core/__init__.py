"""Core library: the TOLERANCE two-level control architecture.

The local level (intrusion recovery, Problem 1) lives in
:mod:`~repro.core.node_model`, :mod:`~repro.core.observation`,
:mod:`~repro.core.belief`, :mod:`~repro.core.costs`,
:mod:`~repro.core.strategies` and :mod:`~repro.core.node_controller`;
the global level (replication control, Problem 2) in
:mod:`~repro.core.system_model` and :mod:`~repro.core.system_controller`.
:mod:`~repro.core.architecture` wires both levels onto the consensus and
emulation substrates.
"""

from .architecture import ArchitectureReport, ToleranceArchitecture
from .belief import (
    BeliefFilter,
    BeliefState,
    batch_update_compromise_belief,
    belief_transition_distribution,
    update_compromise_belief,
)
from .correctness import (
    CorrectnessAuditor,
    InvariantViolation,
    check_safety,
    check_validity,
    tolerance_threshold,
)
from .costs import (
    NodeCostFunction,
    SystemCostFunction,
    expected_node_cost,
    lagrangian_system_cost,
    node_cost,
    system_cost,
)
from .metrics import (
    EpisodeMetrics,
    MetricsCollector,
    confidence_interval,
    metric_divergence_report,
    summarize_metric_arrays,
    summarize_runs,
)
from .node_controller import NodeController, NodeControllerState
from .node_model import (
    NODE_ACTIONS,
    NODE_STATES,
    NodeAction,
    NodeParameters,
    NodeState,
    NodeTransitionModel,
    expected_time_to_failure,
    failure_probability_curve,
    geometric_failure_pmf,
)
from .observation import (
    BetaBinomialObservationModel,
    DiscreteObservationModel,
    EmpiricalObservationModel,
    ObservationModel,
    is_tp2,
    kl_divergence,
    poisson_observation_model,
)
from .reliability import (
    ReliabilityAnalysis,
    healthy_nodes_transition_matrix,
    mean_time_to_failure,
    reliability_function,
)
from .strategies import (
    AdaptiveHeuristicReplicationStrategy,
    BeliefPeriodicStrategy,
    ClassAwareReplicationStrategy,
    ClassPreferenceReplicationStrategy,
    ClassTabularReplicationStrategy,
    MixedReplicationStrategy,
    MultiThresholdStrategy,
    NeverAddStrategy,
    NoRecoveryStrategy,
    PeriodicStrategy,
    RecoveryStrategy,
    ReplicationStrategy,
    ReplicationThresholdStrategy,
    TabularReplicationStrategy,
    ThresholdStrategy,
    sample_action_index,
    strategy_is_class_aware,
)
from .system_controller import SystemController, SystemControllerDecision
from .system_model import (
    BinomialSystemModel,
    ClassAwareSystemModel,
    EmpiricalSystemModel,
    SystemModel,
    class_aware_system_model,
    fresh_node_survival,
    system_model_from_node_beliefs,
)

__all__ = [
    "AdaptiveHeuristicReplicationStrategy",
    "ArchitectureReport",
    "BeliefFilter",
    "BeliefPeriodicStrategy",
    "BeliefState",
    "BetaBinomialObservationModel",
    "BinomialSystemModel",
    "ClassAwareReplicationStrategy",
    "ClassAwareSystemModel",
    "ClassPreferenceReplicationStrategy",
    "ClassTabularReplicationStrategy",
    "CorrectnessAuditor",
    "DiscreteObservationModel",
    "EmpiricalObservationModel",
    "EmpiricalSystemModel",
    "EpisodeMetrics",
    "InvariantViolation",
    "MetricsCollector",
    "MixedReplicationStrategy",
    "MultiThresholdStrategy",
    "NODE_ACTIONS",
    "NODE_STATES",
    "NeverAddStrategy",
    "NoRecoveryStrategy",
    "NodeAction",
    "NodeController",
    "NodeControllerState",
    "NodeCostFunction",
    "NodeParameters",
    "NodeState",
    "NodeTransitionModel",
    "ObservationModel",
    "PeriodicStrategy",
    "RecoveryStrategy",
    "ReliabilityAnalysis",
    "ReplicationStrategy",
    "ReplicationThresholdStrategy",
    "SystemController",
    "SystemControllerDecision",
    "SystemCostFunction",
    "SystemModel",
    "TabularReplicationStrategy",
    "ThresholdStrategy",
    "ToleranceArchitecture",
    "batch_update_compromise_belief",
    "belief_transition_distribution",
    "check_safety",
    "check_validity",
    "confidence_interval",
    "expected_node_cost",
    "expected_time_to_failure",
    "failure_probability_curve",
    "geometric_failure_pmf",
    "healthy_nodes_transition_matrix",
    "is_tp2",
    "kl_divergence",
    "lagrangian_system_cost",
    "mean_time_to_failure",
    "metric_divergence_report",
    "node_cost",
    "poisson_observation_model",
    "reliability_function",
    "summarize_metric_arrays",
    "summarize_runs",
    "system_cost",
    "class_aware_system_model",
    "fresh_node_survival",
    "sample_action_index",
    "strategy_is_class_aware",
    "system_model_from_node_beliefs",
    "tolerance_threshold",
    "update_compromise_belief",
]
