"""Local node model: the machine replacement POMDP of Problem 1.

This module implements the hidden state model of a single TOLERANCE node
(Section V-A of the paper).  A node is in one of three states:

* ``HEALTHY`` (``H``)      -- the replica behaves correctly,
* ``COMPROMISED`` (``C``)  -- the replica is controlled by the attacker,
* ``CRASHED`` (``EMPTY``)  -- the replica has crashed (absorbing state).

At every time-step the node controller chooses between two actions,
``WAIT`` and ``RECOVER``.  The state evolves according to the Markovian
transition function :math:`f_{N,i}` given by Equation (2) of the paper,
parameterised by

* ``p_a``  -- probability the attacker compromises the node in one step,
* ``p_c1`` -- probability the node crashes while healthy,
* ``p_c2`` -- probability the node crashes while compromised,
* ``p_u``  -- probability the replica software is updated (which also
  restores a compromised replica to the healthy state).

The module provides the transition kernel both as a callable
(:meth:`NodeTransitionModel.probability`) and as dense matrices
(:meth:`NodeTransitionModel.matrix`), plus utilities used throughout the
library: sampling of state trajectories, the geometric time-to-failure
distribution illustrated in Figure 5, and validation of the assumptions
(A)-(C) of Theorem 1.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, replace
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "NodeState",
    "NodeAction",
    "NodeParameters",
    "NodeTransitionModel",
    "failure_probability_curve",
    "geometric_failure_pmf",
]


class NodeState(enum.IntEnum):
    """Hidden state of a node (Fig. 3 of the paper).

    The integer values follow the convention in the paper where
    ``H = 0`` and ``C = 1``; the crashed state is given index ``2`` so that
    states can be used to index transition matrices directly.
    """

    HEALTHY = 0
    COMPROMISED = 1
    CRASHED = 2

    @property
    def symbol(self) -> str:
        """Single letter notation used in the paper (``H``, ``C``, ``0``)."""
        return {"HEALTHY": "H", "COMPROMISED": "C", "CRASHED": "0"}[self.name]

    @property
    def is_failed(self) -> bool:
        """Whether the node counts against the tolerance threshold ``f``."""
        return self is not NodeState.HEALTHY


class NodeAction(enum.IntEnum):
    """Action of a node controller: (W)ait = 0 or (R)ecover = 1."""

    WAIT = 0
    RECOVER = 1

    @property
    def symbol(self) -> str:
        return "W" if self is NodeAction.WAIT else "R"


#: Canonical orderings used when building matrices.
NODE_STATES: tuple[NodeState, ...] = (
    NodeState.HEALTHY,
    NodeState.COMPROMISED,
    NodeState.CRASHED,
)
NODE_ACTIONS: tuple[NodeAction, ...] = (NodeAction.WAIT, NodeAction.RECOVER)


@dataclass(frozen=True)
class NodeParameters:
    """Parameters of the node transition and cost model (Table 1, Eq. 2, Eq. 5).

    Attributes:
        p_a: Probability that the attacker compromises the node during one
            time interval, ``p_{A,i}`` in the paper.
        p_c1: Probability that the node crashes in the healthy state,
            ``p_{C_1,i}``.
        p_c2: Probability that the node crashes in the compromised state,
            ``p_{C_2,i}``.
        p_u: Probability that the node's software is updated during one
            interval, ``p_{U,i}``.
        eta: Cost weight ``eta >= 1`` trading off time-to-recovery against
            recovery frequency in the node cost function (Eq. 5).
        delta_r: Bounded-time-to-recovery (BTR) constraint ``Delta_R``: the
            maximum number of time-steps between two recoveries (Eq. 6b).
            ``math.inf`` disables periodic recoveries.
        k: Maximum number of nodes allowed to recover simultaneously
            (Proposition 1); carried here for convenience of the
            architecture layer.
    """

    p_a: float = 0.1
    p_c1: float = 1e-5
    p_c2: float = 1e-3
    p_u: float = 0.02
    eta: float = 2.0
    delta_r: float = math.inf
    k: int = 1

    def __post_init__(self) -> None:
        for name in ("p_a", "p_c1", "p_c2", "p_u"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")
        if self.eta < 1.0:
            raise ValueError(f"eta must be >= 1, got {self.eta}")
        if self.delta_r is not math.inf:
            if self.delta_r != math.inf and (self.delta_r < 1 or int(self.delta_r) != self.delta_r):
                raise ValueError(f"delta_r must be a positive integer or inf, got {self.delta_r}")
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")

    # -- Theorem 1 assumptions -------------------------------------------------
    def satisfies_assumption_a(self) -> bool:
        """Assumption A: all probabilities lie strictly inside (0, 1)."""
        return all(
            0.0 < p < 1.0 for p in (self.p_a, self.p_c1, self.p_c2, self.p_u)
        )

    def satisfies_assumption_b(self) -> bool:
        """Assumption B: ``p_a + p_u <= 1``."""
        return self.p_a + self.p_u <= 1.0

    def satisfies_assumption_c(self) -> bool:
        """Assumption C: crash probability gap between C and H is large enough."""
        numerator = self.p_c1 * (self.p_u - 1.0)
        denominator = self.p_a * (self.p_c1 - 1.0) + self.p_c1 * (self.p_u - 1.0)
        if denominator == 0.0:
            return False
        return numerator / denominator <= self.p_c2

    def satisfies_theorem_1_assumptions(self) -> bool:
        """Whether assumptions (A)-(C) of Theorem 1 hold for these parameters.

        Assumptions (D)-(E) concern the observation model and are checked by
        :mod:`repro.core.observation`.
        """
        return (
            self.satisfies_assumption_a()
            and self.satisfies_assumption_b()
            and self.satisfies_assumption_c()
        )

    def with_updates(self, **kwargs) -> "NodeParameters":
        """Return a copy of the parameters with the given fields replaced."""
        return replace(self, **kwargs)


class NodeTransitionModel:
    """The Markov transition kernel ``f_{N,i}`` of Equation (2).

    The model exposes transition probabilities both element-wise and as
    dense ``(|A|, |S|, |S|)`` matrices suitable for POMDP solvers, and it
    supports sampling trajectories of the hidden state.
    """

    def __init__(self, params: NodeParameters) -> None:
        self.params = params
        self._matrices = self._build_matrices(params)

    @staticmethod
    def _build_matrices(params: NodeParameters) -> np.ndarray:
        """Build transition matrices ``P[a, s, s']`` following Eq. (2a)-(2j)."""
        p_a, p_c1, p_c2, p_u = params.p_a, params.p_c1, params.p_c2, params.p_u
        h, c, e = NodeState.HEALTHY, NodeState.COMPROMISED, NodeState.CRASHED
        w, r = NodeAction.WAIT, NodeAction.RECOVER

        matrices = np.zeros((len(NODE_ACTIONS), len(NODE_STATES), len(NODE_STATES)))

        for action in (w, r):
            # (2a): the crashed state is absorbing.
            matrices[action, e, e] = 1.0
            # (2b): crash from healthy.
            matrices[action, h, e] = p_c1
            # (2c): crash from compromised.
            matrices[action, c, e] = p_c2
            # (2d)-(2e): remain healthy (identical for W and R).
            matrices[action, h, h] = (1.0 - p_a) * (1.0 - p_c1)
            # (2h): healthy -> compromised (identical for W and R).
            matrices[action, h, c] = (1.0 - p_c1) * p_a

        # (2f): recovery succeeds unless re-compromised or crashed.
        matrices[r, c, h] = (1.0 - p_a) * (1.0 - p_c2)
        # (2i): recovery foiled by immediate re-compromise.
        matrices[r, c, c] = (1.0 - p_c2) * p_a
        # (2g): software update restores a compromised replica under WAIT.
        matrices[w, c, h] = (1.0 - p_c2) * p_u
        # (2j): compromised node stays compromised under WAIT.
        matrices[w, c, c] = (1.0 - p_c2) * (1.0 - p_u)

        return matrices

    # -- queries --------------------------------------------------------------
    def probability(
        self, next_state: NodeState, state: NodeState, action: NodeAction
    ) -> float:
        """Return ``f_N(next_state | state, action)``."""
        return float(self._matrices[action, state, next_state])

    def matrix(self, action: NodeAction) -> np.ndarray:
        """Return the ``|S| x |S|`` transition matrix for ``action``."""
        return self._matrices[action].copy()

    def matrices(self) -> np.ndarray:
        """Return all transition matrices as an ``(|A|, |S|, |S|)`` array."""
        return self._matrices.copy()

    def sampling_cdf(self) -> np.ndarray:
        """Per-``(action, state)`` sampling CDFs, shape ``(|A|, |S|, |S|)``.

        Each row ``cdf[a, s]`` is the cumulative sum of ``f_N(. | s, a)``
        normalized by its final entry — the CDF that
        ``numpy.random.Generator.choice`` inverts internally.  Inverting it
        with ``searchsorted(cdf[a, s], u, side='right')`` on a uniform draw
        ``u`` reproduces :meth:`step` bit for bit, which is what the batch
        simulator in :mod:`repro.sim` does for whole batches at once.
        """
        cdf = self._matrices.cumsum(axis=2)
        cdf /= cdf[:, :, -1:]
        return cdf

    def is_stochastic(self, atol: float = 1e-12) -> bool:
        """Check that every row of every transition matrix sums to one."""
        row_sums = self._matrices.sum(axis=2)
        return bool(np.allclose(row_sums, 1.0, atol=atol))

    # -- sampling -------------------------------------------------------------
    def step(
        self,
        state: NodeState,
        action: NodeAction,
        rng: np.random.Generator,
    ) -> NodeState:
        """Sample the successor state ``s' ~ f_N(. | state, action)``."""
        probs = self._matrices[action, state]
        return NodeState(int(rng.choice(len(NODE_STATES), p=probs)))

    def sample_trajectory(
        self,
        horizon: int,
        actions: Sequence[NodeAction] | None = None,
        initial_state: NodeState = NodeState.HEALTHY,
        rng: np.random.Generator | None = None,
    ) -> list[NodeState]:
        """Sample a state trajectory of length ``horizon + 1``.

        Args:
            horizon: Number of transitions to simulate.
            actions: Optional per-step actions; defaults to always ``WAIT``.
            initial_state: State at time 1.
            rng: Source of randomness.

        Returns:
            The list ``[s_1, s_2, ..., s_{horizon+1}]``.
        """
        rng = rng if rng is not None else np.random.default_rng()
        if actions is None:
            actions = [NodeAction.WAIT] * horizon
        if len(actions) < horizon:
            raise ValueError("not enough actions for the requested horizon")
        trajectory = [initial_state]
        state = initial_state
        for t in range(horizon):
            state = self.step(state, actions[t], rng)
            trajectory.append(state)
        return trajectory

    # -- analytical curves -----------------------------------------------------
    def failure_probability(self, horizon: int) -> np.ndarray:
        """P[node compromised or crashed by step t] under the all-WAIT policy.

        Reproduces the curves in Figure 5 of the paper.  Returns an array of
        length ``horizon`` where entry ``t-1`` is
        ``P[S_t = C or S_t = 0 | pi = WAIT forever]`` with ``S_1 = H``.
        """
        return failure_probability_curve(self.params, horizon)


def failure_probability_curve(params: NodeParameters, horizon: int) -> np.ndarray:
    """Probability that a node has failed (C or crash) by each time-step.

    The curve assumes no recoveries and no software updates influence is
    governed purely by ``params``; this matches the setting of Figure 5
    where ``p_u = 0`` and the controller always waits.
    """
    if horizon < 1:
        raise ValueError("horizon must be >= 1")
    model = NodeTransitionModel(params)
    transition = model.matrix(NodeAction.WAIT)
    distribution = np.zeros(len(NODE_STATES))
    distribution[NodeState.HEALTHY] = 1.0
    curve = np.empty(horizon)
    for t in range(horizon):
        distribution = distribution @ transition
        curve[t] = distribution[NodeState.COMPROMISED] + distribution[NodeState.CRASHED]
    return curve


def geometric_failure_pmf(params: NodeParameters, horizon: int) -> np.ndarray:
    """PMF of the number of steps until a healthy node first leaves ``H``.

    Section V-A notes that the time until a node fails (crash or compromise)
    is geometrically distributed.  The per-step leave probability is
    ``1 - (1 - p_a)(1 - p_c1)``.
    """
    stay = (1.0 - params.p_a) * (1.0 - params.p_c1)
    leave = 1.0 - stay
    steps = np.arange(1, horizon + 1)
    return (stay ** (steps - 1)) * leave


def expected_time_to_failure(params: NodeParameters) -> float:
    """Expected number of steps until a healthy node is compromised or crashes."""
    stay = (1.0 - params.p_a) * (1.0 - params.p_c1)
    leave = 1.0 - stay
    if leave <= 0.0:
        return math.inf
    return 1.0 / leave


def states_from_symbols(symbols: Iterable[str]) -> list[NodeState]:
    """Convert paper notation (``"H"``, ``"C"``, ``"0"``) to :class:`NodeState`."""
    mapping = {"H": NodeState.HEALTHY, "C": NodeState.COMPROMISED, "0": NodeState.CRASHED}
    result = []
    for symbol in symbols:
        if symbol not in mapping:
            raise ValueError(f"unknown node state symbol: {symbol!r}")
        result.append(mapping[symbol])
    return result
