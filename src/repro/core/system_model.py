"""Global system model: the replication-factor CMDP of Problem 2.

The system controller observes the state ``s_t``, the expected number of
healthy nodes, and chooses ``a_t in {0, 1}`` (add a node or not).  The
transition function ``f_S`` (Eq. 8) is defined by

.. math::

    f_S(s_{t+1} | s_t, a_t) = P\\Big[\\Big\\lfloor \\sum_{i} (1 - B_{i,t})
        \\Big\\rfloor = s_{t+1} - a_t\\Big],

i.e. the next state is the number of nodes believed healthy plus the node
added.  In this reproduction we expose two concrete instantiations of
``f_S``:

* :class:`BinomialSystemModel` -- each of the ``s_t`` healthy nodes stays
  healthy with probability ``p_stay`` and new compromises/crashes occur
  independently; this is the model used for the analytical experiments
  (Figures 9, 13, 16) and corresponds to estimating ``f_S`` from simulations
  of Problem 1, as Appendix E describes;
* :class:`EmpiricalSystemModel` -- ``f_S`` estimated from observed
  ``(s_t, a_t, s_{t+1})`` transitions produced by the emulation layer.

Both satisfy the interface :class:`SystemModel`, which the CMDP solver
(Algorithm 2) consumes.

Heterogeneous (Table 6 style) fleets additionally get the **class-aware**
variant :class:`ClassAwareSystemModel`: the action space grows from
``{wait, add}`` to ``{wait, add(class c_1), ..., add(class c_C)}``, where
adding a node of class ``c`` shifts the successor state up by one with the
class's *fresh-node survival probability* ``q_c`` (a hardened container is
more likely to still be healthy one step after activation than a vulnerable
one).  :func:`class_aware_system_model` builds the stacked kernel from any
fitted two-action model plus per-class survivals; with a single class and
``q = 1`` the stack reproduces the classless kernel bit for bit, which is
what keeps homogeneous results unchanged (regression-tested in
``tests/test_class_aware_cmdp.py``).
"""

from __future__ import annotations

import hashlib
import struct
from typing import Iterable, Sequence

import numpy as np
from scipy import stats

__all__ = [
    "SystemModel",
    "BinomialSystemModel",
    "EmpiricalSystemModel",
    "ClassAwareSystemModel",
    "class_aware_system_model",
    "fresh_node_survival",
    "system_model_from_node_beliefs",
]


class SystemModel:
    """Finite CMDP model of the replication control problem.

    Attributes:
        smax: Maximum number of nodes; states are ``{0, ..., smax}``.
        f: Tolerance threshold; availability requires ``s >= f + 1``.
        epsilon_a: Lower bound on the average availability (Eq. 10b).
        transition: Array ``T[a, s, s']`` with ``a in {0, 1}`` for the
            classless model (``a >= 2`` only in the class-aware subclass).
    """

    def __init__(
        self,
        transition: np.ndarray,
        f: int,
        epsilon_a: float,
    ) -> None:
        transition = np.asarray(transition, dtype=float)
        if transition.ndim != 3 or transition.shape[0] < 2:
            raise ValueError("transition must have shape (A >= 2, smax+1, smax+1)")
        if transition.shape[1] != transition.shape[2]:
            raise ValueError("transition matrices must be square")
        if not np.allclose(transition.sum(axis=2), 1.0, atol=1e-8):
            raise ValueError("transition rows must sum to one")
        if np.any(transition < -1e-12):
            raise ValueError("transition probabilities must be non-negative")
        if f < 0:
            raise ValueError("f must be non-negative")
        if not 0.0 < epsilon_a <= 1.0:
            raise ValueError("epsilon_a must lie in (0, 1]")
        self.transition = np.clip(transition, 0.0, None)
        # Renormalize to wash out clipping noise.
        self.transition /= self.transition.sum(axis=2, keepdims=True)
        self.smax = transition.shape[1] - 1
        self.f = f
        self.epsilon_a = epsilon_a

    # -- basic queries ----------------------------------------------------------
    @property
    def num_states(self) -> int:
        return self.smax + 1

    @property
    def states(self) -> np.ndarray:
        return np.arange(self.num_states)

    @property
    def num_actions(self) -> int:
        """Size of the action space (2 for the classless ``{wait, add}``)."""
        return int(self.transition.shape[0])

    @property
    def actions(self) -> tuple[int, ...]:
        return tuple(range(self.num_actions))

    def probability(self, next_state: int, state: int, action: int) -> float:
        return float(self.transition[action, state, next_state])

    def cost(self, state: int, action: int = 0) -> float:
        """Immediate cost: the number of nodes (Eq. 9)."""
        del action
        return float(state)

    def availability_indicator(self, state: int) -> float:
        """``[s >= f + 1]`` used by the availability constraint (Eq. 10b)."""
        return 1.0 if state >= self.f + 1 else 0.0

    # -- canonical serialization -------------------------------------------------
    def canonical_bytes(self) -> bytes:
        """Deterministic byte serialization of the fitted model.

        Two models whose CMDPs are numerically identical — same transition
        kernel bit for bit, same ``f`` and ``epsilon_a`` — serialize to the
        same bytes regardless of how they were constructed (constructor,
        ``from_counts``, a pickling round-trip); any bitwise perturbation
        of the kernel changes the bytes.  This is the content the policy
        solve cache (:mod:`repro.control.policy_cache`) keys solved
        recovery/replication policies on, so sysid refits that land on an
        unchanged kernel can skip the LP/Lagrangian re-solve.

        Subclasses whose solutions depend on more than ``(transition, f,
        epsilon_a)`` — :class:`ClassAwareSystemModel` with its class names
        and add costs — extend the payload.
        """
        transition = np.ascontiguousarray(self.transition, dtype=np.float64)
        header = struct.pack(
            "<3sqqd", b"sys", int(transition.shape[0]), int(self.smax), float(self.epsilon_a)
        )
        return header + struct.pack("<q", int(self.f)) + transition.tobytes()

    def content_hash(self) -> str:
        """SHA-256 hex digest of :meth:`canonical_bytes` (the cache key)."""
        return hashlib.sha256(self.canonical_bytes()).hexdigest()

    # -- sampling ---------------------------------------------------------------
    def step(self, state: int, action: int, rng: np.random.Generator) -> int:
        probs = self.transition[action, state]
        return int(rng.choice(self.num_states, p=probs))

    # -- Theorem 2 assumptions ----------------------------------------------------
    def satisfies_assumption_b(self) -> bool:
        """Assumption B of Theorem 2: all transition probabilities are positive."""
        return bool(np.all(self.transition > 0.0))

    def satisfies_assumption_c(self) -> bool:
        """Assumption C: tail sums are non-decreasing in the current state."""
        for action in self.actions:
            matrix = self.transition[action]
            tails = np.cumsum(matrix[:, ::-1], axis=1)[:, ::-1]
            for s in range(self.num_states):
                for s_hat in range(self.num_states - 1):
                    if tails[s_hat + 1, s] < tails[s_hat, s] - 1e-9:
                        return False
        return True

    def satisfies_assumption_d(self) -> bool:
        """Assumption D: the add-action advantage in tail-sum is increasing in s."""
        matrix_0 = self.transition[0]
        matrix_1 = self.transition[1]
        tails_0 = np.cumsum(matrix_0[:, ::-1], axis=1)[:, ::-1]
        tails_1 = np.cumsum(matrix_1[:, ::-1], axis=1)[:, ::-1]
        for s_hat in range(self.num_states):
            diffs = tails_1[s_hat] - tails_0[s_hat]
            if np.any(np.diff(diffs) < -1e-9):
                return False
        return True


class BinomialSystemModel(SystemModel):
    """``f_S`` where each healthy node survives a step independently.

    With ``s`` healthy nodes, each survives (stays healthy) with probability
    ``p_stay = (1 - p_fail)`` and failed nodes are replaced only through the
    add action.  A small ``regeneration`` probability models recoveries at
    the local level restoring nodes to health without the system controller
    acting, which keeps all transition probabilities positive (assumption B).
    """

    def __init__(
        self,
        smax: int,
        f: int,
        per_node_failure_probability: float = 0.05,
        regeneration_probability: float = 0.02,
        epsilon_a: float = 0.9,
    ) -> None:
        if smax < 1:
            raise ValueError("smax must be >= 1")
        if not 0.0 <= per_node_failure_probability < 1.0:
            raise ValueError("per_node_failure_probability must lie in [0, 1)")
        if not 0.0 <= regeneration_probability < 1.0:
            raise ValueError("regeneration_probability must lie in [0, 1)")
        self.per_node_failure_probability = per_node_failure_probability
        self.regeneration_probability = regeneration_probability
        transition = self._build(smax, per_node_failure_probability, regeneration_probability)
        super().__init__(transition, f=f, epsilon_a=epsilon_a)

    @staticmethod
    def _build(
        smax: int, p_fail: float, p_regen: float
    ) -> np.ndarray:
        num_states = smax + 1
        transition = np.zeros((2, num_states, num_states))
        for action in (0, 1):
            for s in range(num_states):
                # Survivors among the s healthy nodes.
                survivor_counts = np.arange(s + 1)
                survivor_probs = stats.binom.pmf(survivor_counts, s, 1.0 - p_fail)
                # Unhealthy capacity that may regenerate back to healthy.
                capacity = smax - s
                regen_counts = np.arange(capacity + 1)
                regen_probs = stats.binom.pmf(regen_counts, capacity, p_regen)
                for survivors, p_s in zip(survivor_counts, survivor_probs):
                    for regen, p_r in zip(regen_counts, regen_probs):
                        next_state = min(survivors + regen + action, smax)
                        transition[action, s, next_state] += p_s * p_r
        # Keep every probability strictly positive (assumption B) by mixing in
        # a vanishing uniform component.
        epsilon = 1e-9
        transition = (1.0 - epsilon) * transition + epsilon / num_states
        return transition


class EmpiricalSystemModel(SystemModel):
    """``f_S`` estimated from observed transitions ``(s_t, a_t, s_{t+1})``.

    This mirrors how the paper instantiates Problem 2 for the evaluation in
    Section VIII: ``f_S`` is "estimated from simulations of Problem 1"
    (Appendix E).  Laplace smoothing keeps the chain unichain.
    """

    def __init__(
        self,
        transitions: Iterable[tuple[int, int, int]],
        smax: int,
        f: int,
        epsilon_a: float = 0.9,
        smoothing: float = 0.5,
    ) -> None:
        num_states = smax + 1
        counts = np.full((2, num_states, num_states), smoothing, dtype=float)
        observed = 0
        for state, action, next_state in transitions:
            if not 0 <= state <= smax or not 0 <= next_state <= smax:
                raise ValueError("transition outside the state space")
            if action not in (0, 1):
                raise ValueError("action must be 0 or 1")
            counts[action, state, next_state] += 1.0
            observed += 1
        if observed == 0:
            raise ValueError("at least one observed transition is required")
        transition = counts / counts.sum(axis=2, keepdims=True)
        super().__init__(transition, f=f, epsilon_a=epsilon_a)
        self.num_observed_transitions = observed

    @classmethod
    def from_counts(
        cls,
        counts: np.ndarray,
        f: int,
        epsilon_a: float = 0.9,
        num_observed: int | None = None,
    ) -> "EmpiricalSystemModel":
        """Build the model from a pre-aggregated count matrix.

        ``counts`` has shape ``(2, smax + 1, smax + 1)`` and already
        includes any smoothing mass; callers with large transition sets
        (the vectorized ``f_S`` fit in :mod:`repro.control.sysid`)
        aggregate with ``np.add.at`` instead of the per-triple Python loop
        of the constructor.

        Args:
            counts: Transition counts ``[a, s, s']`` including smoothing.
            f: Tolerance threshold.
            epsilon_a: Availability bound.
            num_observed: Number of raw observed transitions behind the
                counts (reported by :attr:`num_observed_transitions`);
                defaults to the rounded count total.
        """
        counts = np.asarray(counts, dtype=float)
        if counts.ndim != 3 or counts.shape[0] != 2 or counts.shape[1] != counts.shape[2]:
            raise ValueError(
                f"counts must have shape (2, smax+1, smax+1), got {counts.shape}"
            )
        model = cls.__new__(cls)
        SystemModel.__init__(
            model, counts / counts.sum(axis=2, keepdims=True), f=f, epsilon_a=epsilon_a
        )
        model.num_observed_transitions = (
            num_observed if num_observed is not None else int(round(counts.sum()))
        )
        return model


class ClassAwareSystemModel(SystemModel):
    """Replication CMDP with one add action per container class.

    Actions are ``{0: wait, 1: add(c_1), ..., C: add(c_C)}`` over the same
    CMDP state space ``{0, ..., smax}`` (expected healthy nodes, Eq. 8).
    Adding a node of class ``c`` is worth the class's fresh-node survival:
    the successor distribution is the Eq. 8 shift with probability ``q_c``
    and the passive kernel with probability ``1 - q_c`` (see
    :func:`class_aware_system_model`).

    Unlike the base constructor, this one takes *already normalized*
    kernels (as produced by :func:`class_aware_system_model` from a fitted
    base model) and does **not** renormalize them: renormalization is not
    bit-stable, and preserving the base model's rows exactly is what makes
    the single-class reduction bit-for-bit.

    Attributes:
        class_names: The container-class label behind each add action, in
            action order (``class_names[c]`` is action ``c + 1``).
        add_costs: Extra per-step cost of each action, shape ``(1 + C,)``
            with ``add_costs[0] = 0``; lets a deployment price the classes
            differently on top of the Eq. 9 node count.
    """

    def __init__(
        self,
        transition: np.ndarray,
        f: int,
        epsilon_a: float,
        class_names: Sequence[str],
        add_costs: Sequence[float] | None = None,
    ) -> None:
        transition = np.asarray(transition, dtype=float)
        if transition.ndim != 3 or transition.shape[0] != len(class_names) + 1:
            raise ValueError(
                "transition must have shape (1 + num_classes, smax+1, smax+1); "
                f"got {transition.shape} for {len(class_names)} classes"
            )
        names = tuple(str(name) for name in class_names)
        if len(set(names)) != len(names) or not names:
            raise ValueError(f"class names must be unique and non-empty, got {names}")
        if transition.shape[1] != transition.shape[2]:
            raise ValueError("transition matrices must be square")
        if not np.allclose(transition.sum(axis=2), 1.0, atol=1e-8):
            raise ValueError("transition rows must sum to one")
        if np.any(transition < -1e-12):
            raise ValueError("transition probabilities must be non-negative")
        if f < 0:
            raise ValueError("f must be non-negative")
        if not 0.0 < epsilon_a <= 1.0:
            raise ValueError("epsilon_a must lie in (0, 1]")
        self.transition = transition
        self.smax = transition.shape[1] - 1
        self.f = f
        self.epsilon_a = epsilon_a
        self.class_names = names
        if add_costs is None:
            costs = np.zeros(self.num_actions)
        else:
            costs = np.asarray(add_costs, dtype=float)
            if costs.shape != (self.num_actions,):
                raise ValueError(
                    f"add_costs must have one entry per action "
                    f"({self.num_actions}), got shape {costs.shape}"
                )
            if costs[0] != 0.0:
                raise ValueError("the wait action must carry zero add cost")
        self.add_costs = costs

    @property
    def num_classes(self) -> int:
        return len(self.class_names)

    def canonical_bytes(self) -> bytes:
        """Class-aware canonical serialization.

        Extends the base payload with the class-name tuple (in action
        order — reordering the classes permutes the action space and is a
        different CMDP) and the per-action add costs, so two class-aware
        models hash equal exactly when they would produce the same
        solution.
        """
        names = b"".join(
            struct.pack("<q", len(encoded)) + encoded
            for encoded in (name.encode("utf-8") for name in self.class_names)
        )
        costs = np.ascontiguousarray(self.add_costs, dtype=np.float64).tobytes()
        return (
            b"class-aware" + super().canonical_bytes()
            + struct.pack("<q", len(self.class_names)) + names + costs
        )

    def cost(self, state: int, action: int = 0) -> float:
        """Eq. 9 node count plus the action's class-specific add cost."""
        return float(state) + float(self.add_costs[action])


def fresh_node_survival(p_a: float, p_c1: float) -> float:
    """Model-based fresh-node survival ``q = (1 - p_A)(1 - p_C1)``.

    The probability that a node activated fresh (healthy, prior belief
    ``p_A``) is still healthy one step later: not compromised and not
    crashed.  The model-based counterpart of the empirical estimate in
    :func:`repro.control.sysid.fresh_node_survival_from_model`.
    """
    if not 0.0 <= p_a <= 1.0 or not 0.0 <= p_c1 <= 1.0:
        raise ValueError("p_a and p_c1 must be probabilities")
    return (1.0 - p_a) * (1.0 - p_c1)


def class_aware_system_model(
    base: SystemModel,
    class_names: Sequence[str],
    survival_probabilities: Sequence[float],
    add_costs: Sequence[float] | None = None,
) -> ClassAwareSystemModel:
    """Build the class-indexed kernel stack from a fitted two-action model.

    The wait kernel is ``base``'s; the add kernel of class ``c`` mixes the
    base model's add kernel (the Eq. 8 shift) with its wait kernel by the
    class's fresh-node survival ``q_c``:

    .. math::

        f_S(s' | s, \\text{add}(c)) = q_c f_S(s' | s, 1)
            + (1 - q_c) f_S(s' | s, 0).

    With a single class and ``q = 1`` the stacked kernel *is* the base
    kernel (``0 \\cdot T_0 + 1 \\cdot T_1 = T_1`` exactly in floating
    point), which makes the class-aware solvers reduce bit for bit to the
    classless ones on homogeneous fleets.

    Args:
        base: A fitted classless model (``num_actions == 2``), e.g. an
            :class:`EmpiricalSystemModel` from the system-identification
            pipeline.
        class_names: Container-class labels in action order.
        survival_probabilities: Per-class fresh-node survivals ``q_c``.
        add_costs: Optional per-action extra costs (``1 + C`` entries,
            leading zero for wait).
    """
    if base.num_actions != 2:
        raise ValueError(
            f"base must be a classless two-action model, got {base.num_actions} actions"
        )
    names = tuple(class_names)
    survivals = [float(q) for q in survival_probabilities]
    if len(survivals) != len(names):
        raise ValueError(
            f"need one survival probability per class ({len(names)}), "
            f"got {len(survivals)}"
        )
    for name, q in zip(names, survivals):
        if not 0.0 <= q <= 1.0:
            raise ValueError(
                f"survival probability of class {name!r} must lie in [0, 1], got {q}"
            )
    wait, add = base.transition[0], base.transition[1]
    stack = np.empty((1 + len(names), base.num_states, base.num_states))
    stack[0] = wait
    for c, q in enumerate(survivals):
        stack[1 + c] = (1.0 - q) * wait + q * add
    return ClassAwareSystemModel(
        stack,
        f=base.f,
        epsilon_a=base.epsilon_a,
        class_names=names,
        add_costs=add_costs,
    )


def system_model_from_node_beliefs(
    beliefs: Sequence[float],
    smax: int,
    f: int,
    epsilon_a: float = 0.9,
    per_node_crash_probability: float = 1e-3,
) -> BinomialSystemModel:
    """Construct ``f_S`` from the current node beliefs (Eq. 8).

    The expected per-node failure probability is the average belief that a
    node is compromised plus the crash probability; this gives the binomial
    healthy-count kernel that the system controller plans against between
    belief transmissions.
    """
    if not beliefs:
        raise ValueError("at least one node belief is required")
    mean_belief = float(np.clip(np.mean(np.asarray(beliefs, dtype=float)), 0.0, 1.0))
    p_fail = min(mean_belief + per_node_crash_probability, 0.999)
    return BinomialSystemModel(
        smax=smax,
        f=f,
        per_node_failure_probability=p_fail,
        epsilon_a=epsilon_a,
    )
